"""repro.prof — performance observability for the simulated runtimes.

Decomposes every simulated execution into machine-model cost categories
(compute, memory, fork/join, dispatch, barrier, critical, atomic,
message, collective, kernel launch, imbalance, idle) with event
counters, under a hard conservation invariant: category sums equal
``sim_seconds`` at every processor count.  The analysis layer fits a
Karp–Flatt serial fraction from scaling curves and classifies each
sample's bottleneck.  See ``docs/profiling.md``.
"""

from .analyze import (
    BOTTLENECK_GROUPS,
    COMPUTE_BOUND_THRESHOLD,
    bottleneck,
    classify_bottleneck,
    karp_flatt,
    lost_cycles_by_n,
    lost_cycles_rows,
    overhead_growth,
    profile_of,
    render_cost_tree,
    run_cost_totals,
    serial_fraction,
)
from .record import (
    CATEGORIES,
    LOST_CATEGORIES,
    ProfBuilder,
    Profile,
    RunProfile,
    merge_counters,
)

__all__ = [
    "BOTTLENECK_GROUPS",
    "CATEGORIES",
    "COMPUTE_BOUND_THRESHOLD",
    "LOST_CATEGORIES",
    "ProfBuilder",
    "Profile",
    "RunProfile",
    "bottleneck",
    "classify_bottleneck",
    "karp_flatt",
    "lost_cycles_by_n",
    "lost_cycles_rows",
    "merge_counters",
    "overhead_growth",
    "profile_of",
    "render_cost_tree",
    "run_cost_totals",
    "serial_fraction",
]
