"""Profile records: cost-decomposed simulated executions.

A :class:`Profile` splits one sample's simulated time at every measured
processor count into the cost categories of the machine model
(:mod:`repro.runtime.machine`), alongside event counters (messages,
collective bytes by kind, parallel regions, atomics, kernel launches).

The decomposition is *conservative by construction*: every site that
advances a simulated clock (``ExecCtx.cost``, ``extra_units``,
``parallel_adjust``) either is compute by default or attributes the same
delta to a named category, and the compute category absorbs the exact
algebraic residue.  Category sums therefore equal ``sim_seconds`` at
every processor count to float precision — the conservation invariant
the golden tests in ``tests/prof`` pin for all seven execution models.

Profiling is opt-in per :class:`~repro.runtime.context.ExecCtx`: when
``ctx.prof is None`` (the default) no instrumentation site does any work
beyond one attribute load, mirroring the ``inject.ACTIVE`` idle fast
path of :mod:`repro.faults`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

#: The cost taxonomy, in canonical (report) order.
#:
#: ==============  ========================================================
#: category        what it measures
#: ==============  ========================================================
#: compute         useful work: op units / active processors
#: memory          bandwidth-saturation stall (the ``mem_frac`` floor)
#: fork_join       OpenMP parallel-region create/join overhead
#: dispatch        pattern/chunk dispatch (Kokkos patterns, dynamic chunks)
#: barrier         reduction/combine trees and scan phase barriers
#: critical        critical-section serialization + lock traffic
#: atomic          atomic RMW cost + contention serialization
#: message         point-to-point alpha/beta time (send, travel, recv)
#: collective      collective tree completion time
#: kernel_launch   GPU kernel launch overhead
#: imbalance       load imbalance: max chunk/warp above the ideal share
#: idle            waiting with nothing to do (stragglers, rank skew)
#: ==============  ========================================================
CATEGORIES = (
    "compute", "memory", "fork_join", "dispatch", "barrier", "critical",
    "atomic", "message", "collective", "kernel_launch", "imbalance", "idle",
)

#: categories that represent time *not* spent on useful work
LOST_CATEGORIES = tuple(c for c in CATEGORIES if c != "compute")


@dataclass
class RunProfile:
    """Breakdown of a single execution configuration (one processor
    count): category seconds plus event counters."""

    categories: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)

    def total(self) -> float:
        return sum(self.categories.values())


@dataclass
class Profile:
    """Cost decomposition of one sample across its measured processor
    counts — the profiling twin of ``RunResult.times``."""

    model: str
    #: processor count -> category -> simulated seconds
    categories: Dict[int, Dict[str, float]] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)

    def ns(self):
        return sorted(self.categories)

    def total(self, n: int) -> float:
        """Sum of category seconds at ``n`` — equals ``times[n]``."""
        return sum(self.categories[n].values())

    def at(self, n: int) -> Dict[str, float]:
        return self.categories[n]

    def share(self, n: int, category: str) -> float:
        """Fraction of the time at ``n`` spent in ``category``."""
        total = self.total(n)
        if total <= 0.0:
            return 0.0
        return self.categories[n].get(category, 0.0) / total

    # -- JSON round trip (SampleRecord stores the dict form) ----------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "categories": {
                str(n): {k: v for k, v in cats.items()}
                for n, cats in self.categories.items()
            },
            "counters": dict(self.counters),
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "Profile":
        return cls(
            model=str(raw.get("model", "")),
            categories={
                int(n): {str(k): float(v) for k, v in cats.items()}
                for n, cats in dict(raw.get("categories", {})).items()
            },
            counters={str(k): float(v)
                      for k, v in dict(raw.get("counters", {})).items()},
        )


class ProfBuilder:
    """Accumulates attribution while one ``ExecCtx`` executes.

    The builder mirrors the three clocks of the context:

    * ``moved``  — unscaled op units *reclassified* out of compute
      (serial-context lock/atomic overhead charged to ``ctx.cost``);
    * ``adjust`` — per-processor-count named shares of
      ``ctx.parallel_adjust`` (imbalance, memory floor, fork/join, ...);
    * ``extra``  — named shares of ``ctx.extra_units`` (message waits,
      collective completion, folded hybrid regions).

    :meth:`categories_for` folds them into per-category *seconds* whose
    sum reproduces ``ctx.sim_seconds(n)`` exactly: compute is defined as
    the residue ``clock - sum(named)``, so no attribution formula can
    break conservation.
    """

    __slots__ = ("moved", "adjust", "extra", "counters")

    def __init__(self):
        self.moved: Dict[str, float] = {}
        self.adjust: Dict[int, Dict[str, float]] = {}
        self.extra: Dict[str, float] = {}
        self.counters: Dict[str, float] = {}

    # -- attribution (called from the runtimes) -----------------------------

    def move(self, category: str, units: float) -> None:
        """Reclassify ``units`` of serial ``ctx.cost`` into ``category``."""
        if units:
            self.moved[category] = self.moved.get(category, 0.0) + units

    def add_adjust(self, n: int, category: str, units: float) -> None:
        """Attribute part of this region's ``parallel_adjust[n]`` delta."""
        if units:
            cats = self.adjust.setdefault(n, {})
            cats[category] = cats.get(category, 0.0) + units

    def add_extra(self, category: str, units: float) -> None:
        """Attribute units just added to ``ctx.extra_units``."""
        if units:
            self.extra[category] = self.extra.get(category, 0.0) + units

    def count(self, key: str, amount: float = 1.0) -> None:
        self.counters[key] = self.counters.get(key, 0.0) + amount

    # -- finalization -------------------------------------------------------

    def categories_for(self, ctx, n: int) -> Dict[str, float]:
        """Category seconds at processor count ``n``; sums to
        ``ctx.sim_seconds(n)`` by construction."""
        scale = ctx.work_scale
        cats: Dict[str, float] = {}

        # ctx.cost: compute, minus serial-context reclassifications
        moved_total = 0.0
        for k, v in self.moved.items():
            cats[k] = cats.get(k, 0.0) + v * scale
            moved_total += v
        cats["compute"] = cats.get("compute", 0.0) \
            + (ctx.cost - moved_total) * scale

        # ctx.extra_units: attributed waits; any unattributed residue
        # (nothing produces one today) is idle time by definition
        attributed = 0.0
        for k, v in self.extra.items():
            cats[k] = cats.get(k, 0.0) + v
            attributed += v
        residue = ctx.extra_units - attributed
        if residue:
            cats["idle"] = cats.get("idle", 0.0) + residue

        # ctx.parallel_adjust[n]: named overheads; the remainder is the
        # ideal-parallel compute delta (work/n - work, negative)
        adj = ctx.parallel_adjust.get(n, 0.0)
        named = 0.0
        for k, v in self.adjust.get(n, {}).items():
            cats[k] = cats.get(k, 0.0) + v
            named += v
        cats["compute"] += adj - named

        cycle = ctx.machine.cpu.cycle
        return {k: v * cycle for k, v in cats.items()
                if v != 0.0 or k == "compute"}

    def snapshot(self, ctx, n: int) -> RunProfile:
        return RunProfile(categories=self.categories_for(ctx, n),
                          counters=dict(self.counters))


def merge_counters(into: Dict[str, float],
                   new: Dict[str, float]) -> Dict[str, float]:
    """Accumulate one counter dict into another (returns ``into``)."""
    for k, v in new.items():
        into[k] = into.get(k, 0.0) + v
    return into
