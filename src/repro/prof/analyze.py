"""Scaling diagnosis on top of raw profiles.

Three layers:

* **Karp–Flatt**: fit an experimentally determined serial fraction from
  a measured scaling curve — the classic "why did my speedup stop"
  estimator (``e = (1/S - 1/n) / (1 - 1/n)``).  A serial fraction that
  *grows* with ``n`` indicates overhead, not Amdahl saturation.
* **Bottleneck classification**: map one configuration's category
  breakdown to a verdict (comm-bound, memory-bandwidth-bound,
  overhead-bound, contention-bound, load-imbalanced, compute-bound).
* **Lost-cycles aggregation**: average category *shares* across the
  correct samples of a run per processor count — the table that
  mechanistically explains the paper's Figure 5 OpenMP-vs-Kokkos
  efficiency contrast.

Everything here consumes plain dicts / :class:`~repro.prof.record.Profile`
objects; there is no dependency on the harness, so the harness can depend
on this package without a cycle.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .record import CATEGORIES, LOST_CATEGORIES, Profile

#: bottleneck verdict -> the categories whose lost time votes for it
BOTTLENECK_GROUPS: Dict[str, Tuple[str, ...]] = {
    "comm-bound": ("message", "collective"),
    "memory-bandwidth-bound": ("memory",),
    "overhead-bound": ("fork_join", "dispatch", "kernel_launch", "barrier"),
    "contention-bound": ("atomic", "critical"),
    "load-imbalanced": ("imbalance", "idle"),
}

#: below this lost-time share the sample is just compute-bound
COMPUTE_BOUND_THRESHOLD = 0.15


# -- Amdahl / Karp–Flatt ------------------------------------------------------


def karp_flatt(times: Dict[int, float]) -> Dict[int, float]:
    """Experimentally determined serial fraction at each ``n > base``.

    ``e_n = (1/S_n - 1/n') / (1 - 1/n')`` with speedup ``S_n`` and
    processor ratio ``n'`` measured against the smallest measured count
    (usually 1).  Returns an empty dict when fewer than two counts were
    measured or the base time is degenerate.
    """
    if len(times) < 2:
        return {}
    base_n = min(times)
    t_base = times[base_n]
    if t_base <= 0.0:
        return {}
    out: Dict[int, float] = {}
    for n in sorted(times):
        ratio = n / base_n
        if ratio <= 1.0 or times[n] <= 0.0:
            continue
        speedup = t_base / times[n]
        out[n] = (1.0 / speedup - 1.0 / ratio) / (1.0 - 1.0 / ratio)
    return out


def serial_fraction(times: Dict[int, float]) -> Optional[float]:
    """One-number Amdahl summary: the Karp–Flatt fraction at the largest
    measured count (the most informative point — overheads have had the
    most processors to show up on)."""
    fractions = karp_flatt(times)
    if not fractions:
        return None
    return fractions[max(fractions)]


def overhead_growth(times: Dict[int, float]) -> Optional[float]:
    """Slope of the Karp–Flatt fraction over the measured counts: > 0
    means the 'serial fraction' grows with n, i.e. per-processor
    overhead rather than a fixed Amdahl bottleneck."""
    fractions = karp_flatt(times)
    if len(fractions) < 2:
        return None
    ns = sorted(fractions)
    return fractions[ns[-1]] - fractions[ns[0]]


# -- bottleneck classification ------------------------------------------------


def classify_bottleneck(categories: Dict[str, float],
                        threshold: float = COMPUTE_BOUND_THRESHOLD) -> str:
    """Verdict for one configuration's category breakdown (seconds)."""
    total = sum(categories.values())
    if total <= 0.0:
        return "compute-bound"
    lost = sum(categories.get(c, 0.0) for c in LOST_CATEGORIES)
    if lost / total < threshold:
        return "compute-bound"
    best, best_val = "compute-bound", 0.0
    for verdict, group in BOTTLENECK_GROUPS.items():
        val = sum(categories.get(c, 0.0) for c in group)
        if val > best_val:
            best, best_val = verdict, val
    return best


def bottleneck(profile: Profile) -> str:
    """Verdict at the largest measured processor count — where the
    scaling curve ends and the lost time is largest."""
    if not profile.categories:
        return "compute-bound"
    return classify_bottleneck(profile.categories[max(profile.categories)])


# -- lost-cycles aggregation --------------------------------------------------


def profile_of(sample) -> Optional[Profile]:
    """The :class:`Profile` of a SampleRecord-like object, or None."""
    raw = getattr(sample, "profile", None)
    if not raw:
        return None
    if isinstance(raw, Profile):
        return raw
    return Profile.from_dict(raw)


def lost_cycles_by_n(samples: Iterable) -> Dict[int, Dict[str, float]]:
    """Mean category *share* per processor count over profiled samples.

    Shares (not raw seconds) so samples of different problems average
    meaningfully; ``correct`` samples only, mirroring how the paper's
    efficiency plots pool only passing programs.
    """
    sums: Dict[int, Dict[str, float]] = {}
    counts: Dict[int, int] = {}
    for s in samples:
        if getattr(s, "status", "") != "correct":
            continue
        prof = profile_of(s)
        if prof is None:
            continue
        for n in prof.categories:
            total = prof.total(n)
            if total <= 0.0:
                continue
            bucket = sums.setdefault(n, {})
            for cat, v in prof.categories[n].items():
                bucket[cat] = bucket.get(cat, 0.0) + v / total
            counts[n] = counts.get(n, 0) + 1
    return {
        n: {cat: v / counts[n] for cat, v in bucket.items()}
        for n, bucket in sums.items()
    }


def lost_cycles_rows(run, exec_models: Optional[Iterable[str]] = None
                     ) -> List[Dict[str, object]]:
    """Flat lost-cycles rows for one EvalRun-like object: one row per
    (exec model, processor count) with mean category shares."""
    rows: List[Dict[str, object]] = []
    records = list(run.prompts.values())
    models = list(exec_models) if exec_models is not None else sorted(
        {r.exec_model for r in records})
    for model in models:
        samples = [s for r in records if r.exec_model == model
                   for s in r.samples]
        for n, shares in sorted(lost_cycles_by_n(samples).items()):
            row: Dict[str, object] = {"exec_model": model, "n": n}
            for cat in CATEGORIES:
                row[cat] = shares.get(cat, 0.0)
            row["lost"] = sum(shares.get(c, 0.0) for c in LOST_CATEGORIES)
            rows.append(row)
    return rows


def run_cost_totals(run) -> Dict[str, float]:
    """Total simulated seconds per cost category over one EvalRun-like
    object, at each sample's largest measured processor count.

    Raw seconds (not shares): the caller is an aggregator — the serving
    layer folds these into its ``/metrics`` cost breakdown so a fleet of
    requests exposes *where* its simulated cycles went.  ``correct``
    samples only, mirroring :func:`lost_cycles_by_n`.
    """
    totals: Dict[str, float] = {}
    for rec in run.prompts.values():
        for s in rec.samples:
            if getattr(s, "status", "") != "correct":
                continue
            prof = profile_of(s)
            if prof is None or not prof.categories:
                continue
            top = max(prof.categories)
            for cat, v in prof.categories[top].items():
                totals[cat] = totals.get(cat, 0.0) + v
    return totals


# -- rendering ----------------------------------------------------------------


def render_cost_tree(profile: Profile, times: Optional[Dict[int, float]] = None,
                     indent: str = "  ") -> str:
    """Human-readable per-n cost tree with shares and a verdict line.

    The tree the ``repro profile`` CLI prints::

        n=32   1.234 ms  [overhead-bound]
          compute        0.812 ms  65.8%
          fork_join      0.201 ms  16.3%
          ...
    """
    lines: List[str] = []
    for n in profile.ns():
        cats = profile.categories[n]
        total = profile.total(n)
        verdict = classify_bottleneck(cats)
        shown = times[n] if times and n in times else total
        lines.append(f"n={n:<6d} {shown * 1e3:10.4f} ms  [{verdict}]")
        for cat in CATEGORIES:
            v = cats.get(cat, 0.0)
            if v == 0.0 and cat != "compute":
                continue
            share = (v / total * 100.0) if total > 0.0 else 0.0
            lines.append(f"{indent}{cat:<13s} {v * 1e3:10.4f} ms "
                         f"{share:5.1f}%")
    fractions = karp_flatt(times or {})
    if fractions:
        top = max(fractions)
        lines.append(f"Karp–Flatt serial fraction at n={top}: "
                     f"{fractions[top]:.3f}"
                     + (" (grows with n: overhead, not Amdahl)"
                        if (overhead_growth(times or {}) or 0.0) > 0.02
                        else ""))
    return "\n".join(lines)
