"""Aggregations from EvalRun records to the paper's reported quantities."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..bench.spec import EXECUTION_MODELS, PROBLEM_TYPES
from ..harness.evaluate import EvalRun, PromptRecord
from ..metrics import (
    benchmark_build_at_k,
    benchmark_efficiency_at_k,
    benchmark_pass_at_k,
    benchmark_speedup_at_k,
)

#: the paper excludes search from the performance metrics (footnote 1)
PERF_EXCLUDED_PTYPES = frozenset({"search"})

#: samples carrying no performance evidence: infra failures were never
#: judged, quarantined poison tasks were pulled by the guard before
#: judgement, degraded samples lost their timing sweep to a fault.
#: Dropped from the speedup/efficiency pools entirely (not scored as 0).
PERF_EXCLUDED_STATUSES = frozenset({"system_error", "quarantined",
                                    "degraded"})

#: the n used per execution model in Figures 6 and 7 (§8 RQ3): 32 threads
#: for OpenMP/Kokkos, 512 ranks for MPI, 4 ranks x 64 threads for hybrid;
#: for CUDA/HIP n is each prompt's kernel thread count (None = per-prompt).
HEADLINE_N: Dict[str, Optional[int]] = {
    "serial": 1, "openmp": 32, "kokkos": 32, "mpi": 512, "mpi+omp": 256,
    "cuda": None, "hip": None,
}


def pass_at_k_for(records: Iterable[PromptRecord], k: int) -> float:
    return benchmark_pass_at_k([r.statuses() for r in records], k)


def build_at_k_for(records: Iterable[PromptRecord], k: int) -> float:
    return benchmark_build_at_k([r.statuses() for r in records], k)


def present_exec_models(run: EvalRun) -> List[str]:
    seen = {r.exec_model for r in run.prompts.values()}
    return [m for m in EXECUTION_MODELS if m in seen]


def present_ptypes(run: EvalRun) -> List[str]:
    seen = {r.ptype for r in run.prompts.values()}
    return [p for p in PROBLEM_TYPES if p in seen]


def pass_by_exec_model(run: EvalRun, k: int = 1) -> Dict[str, float]:
    """pass@k per execution model (Figure 1's bars for one LLM)."""
    return {
        m: pass_at_k_for(run.by_exec_model(m), k)
        for m in present_exec_models(run)
    }


def pass_serial_vs_parallel(run: EvalRun, k: int = 1) -> Dict[str, float]:
    """The serial / parallel split (Figure 2)."""
    return {
        "serial": pass_at_k_for(run.by_exec_model("serial"), k),
        "parallel": pass_at_k_for(run.parallel_prompts(), k),
    }


def pass_by_ptype(run: EvalRun, k: int = 1) -> Dict[str, float]:
    """pass@k per problem type (Figure 3's bars for one LLM)."""
    return {pt: pass_at_k_for(run.by_ptype(pt), k)
            for pt in present_ptypes(run)}


def pass_curve(run: EvalRun, ks: Sequence[int]) -> Dict[int, float]:
    """pass@k over the parallel prompts at several k (Figure 4)."""
    statuses = [r.statuses() for r in run.parallel_prompts()]
    return {k: benchmark_pass_at_k(statuses, k) for k in ks}


# -- performance ------------------------------------------------------------------


def _perf_records(run: EvalRun, exec_model: str) -> List[PromptRecord]:
    return [
        r for r in run.by_exec_model(exec_model)
        if r.ptype not in PERF_EXCLUDED_PTYPES and r.baseline
    ]


def _judged_times(r: PromptRecord, n: int) -> List[Optional[float]]:
    """Per-sample times at ``n`` with infra-failed / degraded samples
    removed from the pool (their absence must shrink the denominator,
    not score as a 0-speedup failure)."""
    return [t for s, t in zip(r.statuses(), r.times_at(n))
            if s not in PERF_EXCLUDED_STATUSES]


def perf_entries(records: Iterable[PromptRecord],
                 n: Optional[int]) -> List[Dict]:
    """Per-prompt {baseline, times, n} rows for the speedup metrics.

    ``n=None`` (CUDA/HIP) takes each prompt's own measured processor
    count — the kernel thread count, which varies across prompts.
    """
    entries: List[Dict] = []
    for r in records:
        if n is not None:
            entries.append({
                "baseline": r.baseline,
                "times": _judged_times(r, n),
                "n": n,
            })
            continue
        ns = r.measured_ns()
        prompt_n = max(ns) if ns else 1
        entries.append({
            "baseline": r.baseline,
            "times": _judged_times(r, prompt_n),
            "n": prompt_n,
        })
    return entries


def speedup_by_exec_model(run: EvalRun, k: int = 1) -> Dict[str, float]:
    """speedup_n@k at the headline n per execution model (Figure 6)."""
    out: Dict[str, float] = {}
    for m in EXECUTION_MODELS:
        if m == "serial":
            continue
        entries = perf_entries(_perf_records(run, m), HEADLINE_N[m])
        out[m] = benchmark_speedup_at_k(entries, k) if entries else 0.0
    return out


def efficiency_by_exec_model(run: EvalRun, k: int = 1) -> Dict[str, float]:
    """efficiency_n@k at the headline n per execution model (Figure 7)."""
    out: Dict[str, float] = {}
    for m in EXECUTION_MODELS:
        entries = perf_entries(_perf_records(run, m), HEADLINE_N[m])
        out[m] = benchmark_efficiency_at_k(entries, k) if entries else 0.0
    return out


def overall_parallel_speedup(run: EvalRun, k: int = 1) -> float:
    """speedup_n@k pooled over all six parallel models (the "GPT-4 achieves
    20.28x" style headline number)."""
    entries: List[Dict] = []
    for m in EXECUTION_MODELS:
        if m == "serial":
            continue
        entries.extend(perf_entries(_perf_records(run, m), HEADLINE_N[m]))
    return benchmark_speedup_at_k(entries, k) if entries else 0.0


def overall_parallel_efficiency(run: EvalRun, k: int = 1) -> float:
    entries: List[Dict] = []
    for m in EXECUTION_MODELS:
        if m == "serial":
            continue
        entries.extend(perf_entries(_perf_records(run, m), HEADLINE_N[m]))
    return benchmark_efficiency_at_k(entries, k) if entries else 0.0


def efficiency_curve(run: EvalRun, exec_model: str,
                     ns: Sequence[int], k: int = 1) -> Dict[int, float]:
    """efficiency_n@k across processor counts (Figure 5's curves)."""
    records = _perf_records(run, exec_model)
    out: Dict[int, float] = {}
    for n in ns:
        entries = perf_entries(records, n)
        out[n] = benchmark_efficiency_at_k(entries, k) if entries else 0.0
    return out


def status_breakdown(run: EvalRun) -> Dict[str, int]:
    """Counts of every harness status across all samples (diagnostics)."""
    counts: Dict[str, int] = {}
    for r in run.prompts.values():
        for s in r.samples:
            counts[s.status] = counts.get(s.status, 0) + 1
    return counts
