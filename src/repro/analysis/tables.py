"""Plain-text rendering of the paper's tables and figure series."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..bench.registry import PCGBench
from ..bench.spec import PROBLEM_TYPE_DESCRIPTIONS, PROBLEM_TYPES
from ..models.profiles import MODEL_CARDS, MODEL_ORDER


def render_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "", floatfmt: str = "{:.3f}") -> str:
    """A minimal fixed-width table renderer (no external deps)."""
    body: List[List[str]] = []
    for row in rows:
        body.append([
            floatfmt.format(c) if isinstance(c, float) else str(c)
            for c in row
        ])
    widths = [
        max(len(str(headers[j])), *(len(r[j]) for r in body)) if body
        else len(str(headers[j]))
        for j in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def table1(bench: Optional[PCGBench] = None) -> str:
    """Table 1: the problem-type inventory of PCGBench."""
    bench = bench or PCGBench()
    inventory = bench.inventory()
    models = len(bench.models)
    rows = []
    for pt in PROBLEM_TYPES:
        rows.append((pt, inventory.get(pt, 0), models,
                     inventory.get(pt, 0) * models,
                     PROBLEM_TYPE_DESCRIPTIONS[pt]))
    total = sum(inventory.values())
    rows.append(("TOTAL", total, models, total * models, ""))
    return render_table(
        ["problem type", "problems", "models", "prompts", "description"],
        rows,
        title=f"Table 1 — PCGBench inventory ({total * models} prompts)",
    )


def table2() -> str:
    """Table 2: the models compared in the evaluation."""
    rows = []
    for name in MODEL_ORDER:
        card = MODEL_CARDS[name]
        rows.append((
            name,
            card["params"] or "-",
            "yes" if card["open_weights"] else "no",
            card["license"] or "-",
            card["humaneval"] if card["humaneval"] is not None else "-",
            card["mbpp"] if card["mbpp"] is not None else "-",
        ))
    return render_table(
        ["model", "params", "weights", "license", "HumanEval", "MBPP"],
        rows,
        title="Table 2 — evaluated models",
        floatfmt="{:.2f}",
    )


def per_model_table(title: str, columns: Sequence[str],
                    data: Dict[str, Dict[str, float]],
                    percent: bool = True) -> str:
    """Render {llm: {column: value}} with models as rows."""
    rows = []
    for name in MODEL_ORDER:
        if name not in data:
            continue
        vals = data[name]
        row: List = [name]
        for c in columns:
            v = vals.get(c)
            if v is None:
                row.append("-")
            elif percent:
                row.append(f"{100 * v:.1f}")
            else:
                row.append(f"{v:.3g}")
        rows.append(row)
    return render_table(["model"] + list(columns), rows, title=title,
                        floatfmt="{:.3g}")


def curve_table(title: str, xlabel: str,
                data: Dict[str, Dict[int, float]]) -> str:
    """Render {series: {x: y}} with x values as columns."""
    xs = sorted({x for series in data.values() for x in series})
    rows = []
    for name, series in data.items():
        rows.append([name] + [
            f"{series[x]:.3f}" if x in series else "-" for x in xs
        ])
    return render_table([xlabel] + [str(x) for x in xs], rows, title=title)
