"""Builders that regenerate each of the paper's figures as data + text.

Each ``figN_*`` function consumes per-model :class:`EvalRun` results (see
:mod:`repro.harness.evaluate`) and returns the series the corresponding
paper figure plots, alongside a rendered text table.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..bench.spec import EXECUTION_MODELS, PROBLEM_TYPES
from ..harness.evaluate import EvalRun
from ..prof import CATEGORIES, LOST_CATEGORIES, lost_cycles_rows
from .aggregate import (
    efficiency_by_exec_model,
    efficiency_curve,
    overall_parallel_efficiency,
    overall_parallel_speedup,
    pass_by_exec_model,
    pass_by_ptype,
    pass_curve,
    pass_serial_vs_parallel,
    speedup_by_exec_model,
)
from .tables import curve_table, per_model_table

Runs = Dict[str, EvalRun]


def fig1_pass_by_exec_model(runs: Runs) -> Tuple[Dict, str]:
    """Figure 1: pass@1 for each execution model, per LLM."""
    data = {name: pass_by_exec_model(run, k=1) for name, run in runs.items()}
    cols = [m for m in EXECUTION_MODELS
            if any(m in row for row in data.values())]
    text = per_model_table(
        "Figure 1 — pass@1 (%) per execution model", cols, data,
    )
    return data, text


def fig2_overall(runs: Runs) -> Tuple[Dict, str]:
    """Figure 2: serial vs parallel pass@1 per LLM."""
    data = {name: pass_serial_vs_parallel(run, k=1)
            for name, run in runs.items()}
    text = per_model_table(
        "Figure 2 — pass@1 (%) over PCGBench",
        ["serial", "parallel"], data,
    )
    return data, text


def fig3_pass_by_ptype(runs: Runs) -> Tuple[Dict, str]:
    """Figure 3: pass@1 per problem type, per LLM."""
    data = {name: pass_by_ptype(run, k=1) for name, run in runs.items()}
    cols = [p for p in PROBLEM_TYPES
            if any(p in row for row in data.values())]
    text = per_model_table(
        "Figure 3 — pass@1 (%) per problem type", cols, data,
    )
    return data, text


def fig4_pass_curve(runs: Runs,
                    ks: Sequence[int] = (1, 5, 10, 20)) -> Tuple[Dict, str]:
    """Figure 4: pass@k on the parallel prompts for k in {1, 5, 10, 20}."""
    data = {name: pass_curve(run, ks) for name, run in runs.items()}
    text = curve_table("Figure 4 — pass@k on parallel prompts", "model/k", data)
    return data, text


def fig5_efficiency_curves(
    runs: Runs,
    mpi_ns: Sequence[int] = (1, 4, 16, 64, 256, 512),
    thread_ns: Sequence[int] = (1, 2, 4, 8, 16, 32),
) -> Tuple[Dict, str]:
    """Figure 5: efficiency_n@1 across n for MPI, OpenMP and Kokkos."""
    data: Dict[str, Dict[str, Dict[int, float]]] = {}
    blocks = []
    for exec_model, ns in (("mpi", mpi_ns), ("openmp", thread_ns),
                           ("kokkos", thread_ns)):
        series = {
            name: efficiency_curve(run, exec_model, ns, k=1)
            for name, run in runs.items()
        }
        data[exec_model] = series
        blocks.append(curve_table(
            f"Figure 5 — efficiency_n@1, {exec_model} (n across columns)",
            "model/n", series,
        ))
    return data, "\n\n".join(blocks)


def fig6_speedups(runs: Runs) -> Tuple[Dict, str]:
    """Figure 6: speedup_n@1 per parallel execution model (n = 32 threads
    for OpenMP/Kokkos, 512 ranks for MPI, 4x64 for hybrid, kernel threads
    for CUDA/HIP), plus the pooled parallel headline number."""
    data = {}
    for name, run in runs.items():
        row = speedup_by_exec_model(run, k=1)
        row["all-parallel"] = overall_parallel_speedup(run, k=1)
        data[name] = row
    cols = [m for m in EXECUTION_MODELS if m != "serial"] + ["all-parallel"]
    text = per_model_table("Figure 6 — speedup_n@1", cols, data,
                           percent=False)
    return data, text


def fig8_lost_cycles(
    runs: Runs,
    exec_models: Sequence[str] = ("openmp", "kokkos"),
) -> Tuple[Dict, str]:
    """Figure 8 (new): where the parallel time goes.

    For each execution model, the mean fraction of simulated time lost to
    non-compute categories per processor count, plus the per-category
    attribution at the largest n.  This is the mechanism behind the
    Figure 5 contrast: OpenMP's lost share is dominated by fork/join and
    the memory-bandwidth floor and grows with n, while Kokkos' persistent
    pool keeps dispatch cost flat.  Requires runs evaluated with
    ``profile=True``; unprofiled runs produce empty series.
    """
    data: Dict[str, Dict[str, Dict[int, Dict[str, float]]]] = {}
    blocks = []
    for exec_model in exec_models:
        per_llm: Dict[str, Dict[int, Dict[str, float]]] = {}
        series: Dict[str, Dict[int, float]] = {}
        for name, run in runs.items():
            rows = lost_cycles_rows(run, [exec_model])
            per_llm[name] = {
                int(r["n"]): {c: float(r[c]) for c in CATEGORIES}
                for r in rows
            }
            series[name] = {int(r["n"]): float(r["lost"]) for r in rows}
        data[exec_model] = per_llm
        blocks.append(curve_table(
            f"Figure 8 — lost-cycles share, {exec_model} "
            "(fraction of simulated time; n across columns)",
            "model/n", series,
        ))
        # category attribution at the largest measured n
        detail: Dict[str, Dict[str, float]] = {}
        for name, shares_by_n in per_llm.items():
            if not shares_by_n:
                continue
            detail[name] = shares_by_n[max(shares_by_n)]
        if detail:
            cols = [c for c in LOST_CATEGORIES
                    if any(row.get(c, 0.0) > 0.0 for row in detail.values())]
            blocks.append(per_model_table(
                f"Figure 8 — lost time by category (%), {exec_model} "
                "at the largest n", cols, detail,
            ))
    return data, "\n\n".join(blocks)


def fig7_efficiency(runs: Runs) -> Tuple[Dict, str]:
    """Figure 7: efficiency_n@1 for serial and parallel prompts."""
    data = {}
    for name, run in runs.items():
        row = efficiency_by_exec_model(run, k=1)
        row["all-parallel"] = overall_parallel_efficiency(run, k=1)
        data[name] = row
    cols = list(EXECUTION_MODELS) + ["all-parallel"]
    text = per_model_table("Figure 7 — efficiency_n@1", cols, data,
                           percent=False)
    return data, text
