"""Problem-size scaling analysis — the paper's proposed metric extension.

Section 6.2 closes with: *"both performance metrics could be modified to
be parameterized by problem size instead of number of processors in order
to study the computational complexity of the generated code."*  This
module implements that extension: run a program (and the optimal
baseline) at a ladder of problem sizes, fit a power law cost ~ a * n^b to
each, and compare exponents — a generated O(n^2) scan against an O(n)
baseline shows up as an exponent gap of ~1 even when both are "correct".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bench.baselines import baseline_source
from ..bench.spec import Problem
from ..lang import compile_source
from ..lang.errors import MiniParError
from ..runtime import DEFAULT_MACHINE, ExecCtx, Machine, SerialRuntime
from ..runtime.compile import CompiledProgram, compile_program


@dataclass
class SizeScaling:
    """A fitted cost-vs-size power law for one program."""

    sizes: List[int]
    costs: List[float]          # op units (serial work) per size
    coefficient: float          # a in cost ~ a * n^b
    exponent: float             # b

    def predicted(self, n: int) -> float:
        return self.coefficient * n ** self.exponent


def _fit_power_law(sizes: Sequence[int], costs: Sequence[float]) -> Tuple[float, float]:
    xs = np.log(np.asarray(sizes, dtype=float))
    ys = np.log(np.asarray(costs, dtype=float))
    b, log_a = np.polyfit(xs, ys, 1)
    return math.exp(log_a), float(b)


def measure_size_scaling(
    program: CompiledProgram,
    problem: Problem,
    sizes: Sequence[int],
    machine: Machine = DEFAULT_MACHINE,
    seed: int = 101,
    fuel: int = 60_000_000,
) -> Optional[SizeScaling]:
    """Serial-work cost of ``program`` at each size; None on any failure."""
    measured_sizes: List[int] = []
    costs: List[float] = []
    for size in sizes:
        rng = np.random.default_rng(seed)
        inputs = problem.generate(rng, size)
        args = problem.to_minipar_args(inputs)
        ctx = ExecCtx(machine, SerialRuntime(), fuel=fuel)
        try:
            program.run_kernel(problem.entry, ctx, args)
        except MiniParError:
            return None
        # use the *actual* generated primary size (generators derive their
        # own dimensions from the nominal size)
        primary = next(
            (v.shape[0] * (v.shape[1] if v.ndim == 2 else 1)
             for v in inputs.values() if isinstance(v, np.ndarray)),
            size,
        )
        measured_sizes.append(int(primary))
        costs.append(ctx.cost)
    a, b = _fit_power_law(measured_sizes, costs)
    return SizeScaling(sizes=measured_sizes, costs=costs,
                       coefficient=a, exponent=b)


def baseline_size_scaling(problem: Problem,
                          sizes: Sequence[int],
                          machine: Machine = DEFAULT_MACHINE,
                          seed: int = 101) -> SizeScaling:
    program = compile_program(compile_source(baseline_source(problem.name)))
    scaling = measure_size_scaling(program, problem, sizes, machine, seed)
    assert scaling is not None, f"baseline failed for {problem.name}"
    return scaling


def complexity_gap(
    sample_source: str,
    problem: Problem,
    sizes: Sequence[int],
    machine: Machine = DEFAULT_MACHINE,
) -> Optional[Dict[str, float]]:
    """Compare a generated sample's fitted exponent with the baseline's.

    Returns {"sample_exponent", "baseline_exponent", "gap"} or None when
    the sample fails to build or run at some size.
    """
    try:
        program = compile_program(compile_source(sample_source))
    except MiniParError:
        return None
    sample = measure_size_scaling(program, problem, sizes, machine)
    if sample is None:
        return None
    base = baseline_size_scaling(problem, sizes, machine)
    return {
        "sample_exponent": sample.exponent,
        "baseline_exponent": base.exponent,
        "gap": sample.exponent - base.exponent,
    }
