"""Aggregation and reporting: regenerate the paper's tables and figures."""

from . import aggregate, export, figures, problem_size, tables
from .aggregate import (
    HEADLINE_N,
    PERF_EXCLUDED_PTYPES,
    efficiency_by_exec_model,
    efficiency_curve,
    pass_by_exec_model,
    pass_by_ptype,
    pass_curve,
    pass_serial_vs_parallel,
    speedup_by_exec_model,
    status_breakdown,
)
from .export import (
    compare_runs,
    profile_csv,
    profile_rows,
    service_metrics_csv,
    summary_rows,
    to_csv,
)
from .figures import (
    fig1_pass_by_exec_model,
    fig2_overall,
    fig3_pass_by_ptype,
    fig4_pass_curve,
    fig5_efficiency_curves,
    fig6_speedups,
    fig7_efficiency,
    fig8_lost_cycles,
)
from .tables import curve_table, per_model_table, render_table, table1, table2

__all__ = [
    "aggregate", "figures", "tables", "export", "problem_size",
    "to_csv", "summary_rows", "compare_runs", "profile_rows", "profile_csv",
    "service_metrics_csv",
    "pass_by_exec_model", "pass_serial_vs_parallel", "pass_by_ptype",
    "pass_curve", "speedup_by_exec_model", "efficiency_by_exec_model",
    "efficiency_curve", "status_breakdown",
    "HEADLINE_N", "PERF_EXCLUDED_PTYPES",
    "fig1_pass_by_exec_model", "fig2_overall", "fig3_pass_by_ptype",
    "fig4_pass_curve", "fig5_efficiency_curves", "fig6_speedups",
    "fig7_efficiency", "fig8_lost_cycles",
    "render_table", "table1", "table2", "per_model_table", "curve_table",
]
