"""Exports and run-to-run comparisons for evaluation results.

Downstream users of a benchmark harness need flat files and diffs more
than plots: ``to_csv`` flattens an :class:`EvalRun` to one row per sample
(status, timings at every measured n; profiled runs add contention
counters, a bottleneck verdict, and per-category time shares), and
:func:`compare_runs` reports pass@1 deltas between two runs per execution
model and problem type — the tool for "did my prompt change / model
update help?" questions.  :func:`profile_rows` / :func:`profile_csv`
flatten the lost-cycles aggregation of a profiled run.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional, Tuple

from ..bench.spec import EXECUTION_MODELS, PROBLEM_TYPES
from ..harness.evaluate import EvalRun
from ..prof import CATEGORIES, classify_bottleneck, lost_cycles_rows, profile_of
from .aggregate import pass_at_k_for


def _diag_summary(diags: List[Dict]) -> str:
    """Compact ``analyzer/kind:certainty`` list, ';'-joined, for one cell."""
    return ";".join(
        f"{d.get('analyzer', '?')}/{d.get('kind', '?')}:"
        f"{d.get('certainty', '?')}"
        for d in diags
    )


def _profile_cells(sample) -> List[object]:
    """Contention counters, bottleneck verdict and per-category shares (at
    the largest measured n) for one profiled sample; blanks otherwise."""
    prof = profile_of(sample)
    if prof is None or not prof.categories:
        return ["", "", ""] + [""] * len(CATEGORIES)
    top = max(prof.categories)
    return (
        [prof.counters.get("atomic_ops", ""),
         prof.counters.get("atomic_targets", ""),
         classify_bottleneck(prof.at(top))]
        + [prof.share(top, c) for c in CATEGORIES]
    )


def to_csv(run: EvalRun) -> str:
    """One row per generated sample, flat enough for pandas/spreadsheets.

    Runs evaluated with profiling additionally get the Tracer contention
    counters (atomic ops, distinct atomic targets), the bottleneck
    verdict at the largest measured n, and per-category time-share
    columns (``p_<category>``); unprofiled runs keep the legacy schema.
    """
    all_ns: List[int] = sorted({
        n for rec in run.prompts.values() for s in rec.samples for n in s.times
    })
    profiled = any(s.profile for rec in run.prompts.values()
                   for s in rec.samples)
    header = ["llm", "prompt", "ptype", "exec_model", "sample", "status",
              "intended", "baseline_s", "n_diagnostics", "diagnostics"]
    if profiled:
        header += (["atomic_ops", "atomic_targets", "bottleneck"]
                   + [f"p_{c}" for c in CATEGORIES])
    header += [f"t_n{n}_s" for n in all_ns]
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(header)
    for uid in sorted(run.prompts):
        rec = run.prompts[uid]
        for i, s in enumerate(rec.samples):
            row = [run.llm, uid, rec.ptype, rec.exec_model, i, s.status,
                   s.intended,
                   rec.baseline if rec.baseline is not None else "",
                   len(s.diagnostics), _diag_summary(s.diagnostics)]
            if profiled:
                row += _profile_cells(s)
            writer.writerow(row + [s.times.get(n, "") for n in all_ns])
    return buf.getvalue()


def profile_rows(run: EvalRun) -> List[Dict[str, object]]:
    """Lost-cycles rows: mean category shares per (exec model, n) over the
    correct profiled samples (see :func:`repro.prof.lost_cycles_rows`)."""
    return lost_cycles_rows(run)


def profile_csv(run: EvalRun) -> str:
    """The lost-cycles aggregation as CSV — one row per (exec model, n)."""
    header = ["exec_model", "n"] + list(CATEGORIES) + ["lost"]
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(header)
    for row in profile_rows(run):
        writer.writerow([row[k] for k in header])
    return buf.getvalue()


def service_metrics_csv(snapshot: Dict[str, object]) -> str:
    """Flatten a serving-layer ``/metrics`` snapshot to (section, key,
    value) rows — the ``/metrics.csv`` endpoint and the archival format
    for service-run dashboards.

    Nested dicts become dotted keys within their section (histogram
    buckets, per-shard stats, profile cost totals); scalars land in the
    ``service`` section.  Purely mechanical so the CSV and JSON views
    can never disagree.
    """
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["section", "key", "value"])

    def emit(section: str, prefix: str, value: object) -> None:
        if isinstance(value, dict):
            for k in sorted(value, key=str):
                emit(section, f"{prefix}.{k}" if prefix else str(k), value[k])
        else:
            writer.writerow([section, prefix, value])

    for key in sorted(snapshot, key=str):
        value = snapshot[key]
        if isinstance(value, dict):
            emit(str(key), "", value)
        else:
            writer.writerow(["service", key, value])
    return buf.getvalue()


def summary_rows(run: EvalRun) -> List[Dict[str, object]]:
    """Per-(exec model, ptype) pass@1 cells — the full Figure 1 x Figure 3
    cross table for one model."""
    rows: List[Dict[str, object]] = []
    for m in EXECUTION_MODELS:
        for pt in PROBLEM_TYPES:
            records = [r for r in run.by_exec_model(m) if r.ptype == pt]
            if not records:
                continue
            rows.append({
                "exec_model": m,
                "ptype": pt,
                "prompts": len(records),
                "pass@1": pass_at_k_for(records, 1),
            })
    return rows


def compare_runs(a: EvalRun, b: EvalRun,
                 min_delta: float = 0.0) -> List[Tuple[str, float, float, float]]:
    """Per-execution-model pass@1 deltas between two runs.

    Returns (dimension, a_value, b_value, delta) rows for every execution
    model and problem type present in both runs, filtered to |delta| >=
    ``min_delta`` and sorted by |delta| descending.
    """
    out: List[Tuple[str, float, float, float]] = []

    def add(dim: str, ra, rb) -> None:
        if not ra or not rb:
            return
        va, vb = pass_at_k_for(ra, 1), pass_at_k_for(rb, 1)
        if abs(vb - va) >= min_delta:
            out.append((dim, va, vb, vb - va))

    for m in EXECUTION_MODELS:
        add(f"exec:{m}", a.by_exec_model(m), b.by_exec_model(m))
    for pt in PROBLEM_TYPES:
        add(f"ptype:{pt}", a.by_ptype(pt), b.by_ptype(pt))
    out.sort(key=lambda row: abs(row[3]), reverse=True)
    return out
