"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    Show the benchmark inventory (Table 1) and the model zoo (Table 2).
``prompt <uid>``
    Print one prompt, e.g. ``prompt scan/partial_minimums/kokkos``.
``run <uid> [--model NAME] [--samples N] [--temperature T] [--timing]``
    Generate samples for one prompt with a simulated LLM and push them
    through the harness; print each verdict.
``eval [--models A,B] [--ptypes x,y] [--exec a,b] [--samples N] [--timing]``
    Evaluate models over a benchmark slice and print the Figure 1/2/3
    tables (plus 6/7 with ``--timing``, and the lost-cycles table with
    ``--timing --profile``).
``profile <uid> [--model NAME] [--all]``
    Time one prompt with the cost-decomposed profiler and print a
    per-n cost tree with bottleneck verdicts (``docs/profiling.md``).
    By default the handwritten reference solution is profiled — fully
    deterministic; ``--model`` profiles LLM samples instead.
``figures [--samples N]``
    Regenerate all paper figures from (or into) the on-disk cache —
    the scripted equivalent of ``pytest benchmarks/ --benchmark-only``.
``lint <file> [--exec MODEL]`` / ``lint --corpus``
    Run MiniParSan (``repro.lint``) over one MiniPar source file, or over
    the whole handwritten baseline + solution corpus.  Exit status: 0
    when no ``definite`` diagnostics, 1 when any, 2 on a build error.
``serve [--host H] [--port P] [--shards N] [--jobs N] [--queue N]``
    Run the evaluation service (``docs/serving.md``): JSON over HTTP,
    micro-batched requests deduplicated across clients by content hash,
    sharded worker pools with per-shard resume journals, bounded-queue
    admission control (429 + Retry-After on overload), and a
    ``/metrics`` endpoint.  ``--smoke`` starts the server, drives one
    request through a live socket, checks the digest, and exits —
    the CI liveness check.
``chaos [--seed N] [--jobs N] [--invariant NAME] [--plan FILE]``
    Run the fault-injection invariant suite (``docs/faults.md``,
    ``docs/resilience.md``): same seed replays the same faults, a
    fault-free injector is byte-for-byte transparent, the scheduler
    survives worker kills and corrupted results, a kill at every journal
    index resumes exactly, and the guard layer (quarantine, hedging,
    whole-process SIGKILL recovery) preserves exactness.
    ``--invariant NAME`` runs one invariant (the CI ``chaos-guard`` job
    uses ``--invariant guard-resilience``); ``--plan`` instead prints
    the fault schedule a seed expands to.  Exit status: 0 when every
    selected invariant holds, 1 otherwise.

``run``/``eval``/``figures`` accept ``--no-static-screen`` to disable
the MiniParSan pre-execution screen (no ``static_fail`` short-circuit;
every sample runs dynamically, as before the linter existed).

``eval`` and ``figures`` accept ``--jobs N`` to run the harness on the
:mod:`repro.sched` worker pool and ``--resume`` to continue an
interrupted pass from its JSONL journal (see ``docs/scheduler.md``).
``eval``/``figures``/``serve`` accept ``--no-hedge`` to disable the
guard layer's speculative straggler duplication (``docs/resilience.md``;
output is byte-identical either way).

``eval --dispatch {lpt,fifo,random}`` picks the scheduler's ready-queue
policy and ``serve --dispatch {lpt,fifo}`` toggles cost-balanced shard
partitions + the work-stealing board (``docs/scheduler.md``): ``lpt``
dispatches longest-predicted-first from the durable duration ledger to
cut makespan on skewed workloads; every policy produces byte-identical
output.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .analysis import (
    fig1_pass_by_exec_model,
    fig2_overall,
    fig3_pass_by_ptype,
    fig4_pass_curve,
    fig5_efficiency_curves,
    fig6_speedups,
    fig7_efficiency,
    fig8_lost_cycles,
    status_breakdown,
    table1,
    table2,
)
from .bench import PCGBench
from .harness import ConfigurationError, EvalCache, Runner, evaluate_model
from .models import MODEL_ORDER, load_model, profile


def _split(value: Optional[str]) -> Optional[List[str]]:
    return [v.strip() for v in value.split(",")] if value else None


def _sched_kwargs(args: argparse.Namespace, llm_name: str,
                  with_timing: bool) -> dict:
    """Scheduler pass-through kwargs for evaluate_model, CLI runs only.

    Journals live under the cache root so ``--resume`` after a Ctrl-C
    picks up exactly where the run died; a progress line is printed to
    stderr as tasks finish.
    """
    import os

    from .sched import ProgressPrinter, journal_path_for

    dispatch = getattr(args, "dispatch", "lpt")
    if args.jobs <= 1 and not args.resume and dispatch == "lpt":
        return {}
    root = os.environ.get("REPRO_CACHE", ".repro_cache")
    journal = journal_path_for(root, llm_name, args.samples,
                               args.temperature, with_timing, args.seed,
                               tag="cli")
    kwargs = {
        "jobs": max(args.jobs, 1),
        "journal": str(journal),
        "resume": args.resume and journal.exists(),
        "sample_cache": str(Path(root) / "samples"),
        "dispatch": dispatch,
        "events": ProgressPrinter(
            lambda line: print(line, file=sys.stderr)),
    }
    if not getattr(args, "hedge", True):
        from .guard import GuardPolicy

        kwargs["guard"] = GuardPolicy(hedge=False)
    return kwargs


def cmd_list(args: argparse.Namespace) -> int:
    print(table1())
    print()
    print(table2())
    return 0


def cmd_prompt(args: argparse.Namespace) -> int:
    bench = PCGBench()
    try:
        prompt = bench.prompt(args.uid)
    except KeyError:
        print(f"unknown prompt {args.uid!r}; uids look like "
              "'scan/prefix_sum/openmp'", file=sys.stderr)
        return 2
    print(prompt.text)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    bench = PCGBench()
    prompt = bench.prompt(args.uid)
    llm = load_model(args.model)
    runner = Runner(static_screen=args.static_screen,
                    vectorize=args.vectorize)
    samples = llm.generate(prompt, args.samples, args.temperature, args.seed)
    correct = 0
    for i, sample in enumerate(samples):
        res = runner.evaluate_sample(sample.source, prompt,
                                     with_timing=args.timing)
        correct += res.status == "correct"
        line = f"[{i}] {res.status}"
        if res.detail:
            line += f"  ({res.detail[:80]})"
        print(line)
        if args.verbose:
            print(sample.source)
        if res.times:
            t_star = runner.baseline_time(prompt.problem)
            for n, t in sorted(res.times.items()):
                print(f"      n={n}: {t*1e3:.3f} ms "
                      f"(speedup {t_star/t:.2f}x)")
    print(f"pass@1 estimate: {correct}/{len(samples)}")
    return 0


def cmd_eval(args: argparse.Namespace) -> int:
    bench = PCGBench(problem_types=_split(args.ptypes),
                     models=_split(args.exec))
    model_names = _split(args.models) or list(MODEL_ORDER)
    runner = Runner(static_screen=args.static_screen,
                    vectorize=args.vectorize)
    runs = {}
    for name in model_names:
        print(f"evaluating {name} on {len(bench)} prompts ...",
              file=sys.stderr)
        runs[name] = evaluate_model(
            load_model(name), bench, num_samples=args.samples,
            temperature=args.temperature, with_timing=args.timing,
            runner=runner, seed=args.seed, profile=args.profile,
            **_sched_kwargs(args, name, args.timing),
        )
    for builder in (fig1_pass_by_exec_model, fig2_overall,
                    fig3_pass_by_ptype):
        _, text = builder(runs)
        print("\n" + text)
    if args.timing:
        for builder in (fig6_speedups, fig7_efficiency):
            _, text = builder(runs)
            print("\n" + text)
    if args.profile:
        _, text = fig8_lost_cycles(runs)
        print("\n" + text)
    if args.verbose:
        for name, run in runs.items():
            print(f"\n{name} status breakdown: {status_breakdown(run)}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from .models.solutions import variants_for
    from .prof import render_cost_tree

    bench = PCGBench()
    try:
        prompt = bench.prompt(args.uid)
    except KeyError:
        print(f"unknown prompt {args.uid!r}; uids look like "
              "'scan/prefix_sum/openmp'", file=sys.stderr)
        return 2
    runner = Runner(static_screen=args.static_screen,
                    vectorize=args.vectorize)
    if args.model:
        llm = load_model(args.model)
        samples = llm.generate(prompt, args.samples, args.temperature,
                               args.seed)
        jobs = [(f"{args.model}[{i}]", s.source)
                for i, s in enumerate(samples)]
    else:
        variants = variants_for(prompt.problem, prompt.model)
        jobs = [(f"solution[{i}] ({v.quality})", v.source)
                for i, v in enumerate(variants)]
    if not args.all:
        jobs = jobs[:1]
    profiled = 0
    for label, source in jobs:
        res = runner.evaluate_sample(source, prompt, with_timing=True,
                                     profile=True)
        print(f"{prompt.uid} :: {label}: {res.status}")
        if res.status != "correct" or res.profile is None:
            if res.detail:
                print(f"  {res.detail[:100]}")
            continue
        profiled += 1
        print(render_cost_tree(res.profile, res.times))
        counters = res.profile.counters
        if counters:
            print("counters: " + ", ".join(
                f"{k}={v:g}" for k, v in sorted(counters.items())))
        print()
    return 0 if profiled else 1


def cmd_figures(args: argparse.Namespace) -> int:
    bench = PCGBench()
    cache = EvalCache()
    runner = Runner(static_screen=args.static_screen,
                    vectorize=args.vectorize)

    def runs_for(samples, temperature, timing, seed, names):
        return {
            n: cache.get_or_run(load_model(n), bench, num_samples=samples,
                                temperature=temperature, with_timing=timing,
                                seed=seed, runner=runner, jobs=args.jobs,
                                resume=args.resume)
            for n in names
        }

    print(table1())
    print("\n" + table2())
    k1 = runs_for(args.samples, 0.2, False, 11, MODEL_ORDER)
    for builder in (fig1_pass_by_exec_model, fig2_overall,
                    fig3_pass_by_ptype):
        _, text = builder(k1)
        print("\n" + text)
    open_models = [m for m in MODEL_ORDER if not profile(m).chat_only]
    hot = runs_for(max(args.samples, 25), 0.8, False, 13, open_models)
    _, text = fig4_pass_curve(hot)
    print("\n" + text)
    timed = runs_for(min(args.samples, 5), 0.2, True, 17, MODEL_ORDER)
    for builder in (fig5_efficiency_curves, fig6_speedups, fig7_efficiency):
        _, text = builder(timed)
        print("\n" + text)
    return 0


def _detect_model(checked) -> str:
    """Best-effort execution model of a standalone source file."""
    cats = checked.builtin_categories
    if "gpu" in cats:
        return "cuda"
    if "kokkos" in cats:
        return "kokkos"
    if "mpi" in cats:
        return "mpi+omp" if checked.uses_omp_pragmas else "mpi"
    if checked.uses_omp_pragmas:
        return "openmp"
    return "serial"


def cmd_lint(args: argparse.Namespace) -> int:
    from .lang import CompileError, compile_source
    from .lint import definite, lint_checked, lint_source

    if args.corpus:
        from .bench import all_problems, baseline_source
        from .bench.spec import EXECUTION_MODELS
        from .models.solutions import variants_for

        programs, n_definite, n_possible = 0, 0, 0
        for problem in all_problems():
            jobs = [("baseline/" + problem.name, "serial",
                     baseline_source(problem.name))]
            for model in EXECUTION_MODELS:
                for i, v in enumerate(variants_for(problem, model)):
                    jobs.append((f"{problem.name}/{model}[{i}]", model,
                                 v.source))
            for label, model, source in jobs:
                programs += 1
                diags = lint_source(source, model)
                bad = definite(diags)
                n_definite += len(bad)
                n_possible += sum(d.certainty == "possible" for d in diags)
                for d in bad:
                    print(f"{label}: {d.render()}")
        print(f"linted {programs} corpus programs: "
              f"{n_definite} definite, {n_possible} possible")
        return 1 if n_definite else 0

    if not args.file:
        print("error: provide a source file or --corpus", file=sys.stderr)
        return 2
    try:
        source = Path(args.file).read_text()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        checked = compile_source(source)
    except CompileError as exc:
        print(f"{args.file}: build error: {exc}", file=sys.stderr)
        return 2
    model = args.exec or _detect_model(checked)
    diags = lint_checked(checked, model)
    for d in diags:
        print(f"{args.file}:{d.render()}")
    if not diags:
        print(f"{args.file}: clean under {model!r}")
    return 1 if definite(diags) else 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import EvalService, HttpServer

    async def _smoke() -> int:
        import json

        from .serve.client import HttpClient

        service = _make_service()
        server = HttpServer(service, args.host, 0)    # ephemeral port
        await service.start()
        await server.start()
        host, port = server.address
        client = HttpClient(host, port)
        try:
            status, _, body = await client.submit({
                "model": "GPT-3.5", "ptypes": ["transform"],
                "exec": ["serial", "openmp"], "samples": 2, "seed": 7})
            if status != 202:
                print(f"smoke: submit failed: {status} {body}",
                      file=sys.stderr)
                return 1
            snap = await client.poll_until_done(body["id"])
            code, headers, payload = await client.result(body["id"])
            metrics = await client.metrics()
            ok = (snap["status"] == "done" and code == 200
                  and headers.get("x-run-digest") == snap.get("digest")
                  and json.loads(payload)["llm"] == "GPT-3.5"
                  and metrics["completed"] == 1)
            print(f"smoke: status={snap['status']} digest="
                  f"{headers.get('x-run-digest', '')[:16]}... "
                  f"executed={metrics['tasks_executed']} "
                  f"-> {'ok' if ok else 'FAILED'}")
            return 0 if ok else 1
        finally:
            await server.stop()
            await service.shutdown(drain=True)

    def _make_service() -> EvalService:
        return EvalService(
            workdir=Path(args.workdir), shards=args.shards,
            jobs_per_shard=args.jobs, max_queue=args.queue,
            batch_window=args.batch_window, max_batch=args.max_batch,
            batching=args.batching, vectorize=args.vectorize,
            hedging=args.hedge, retry_after_cap=args.retry_after_cap,
            dispatch=args.dispatch)

    if args.smoke:
        return asyncio.run(_smoke())

    async def _serve() -> int:
        from .serve.http import serve_forever

        service = _make_service()
        print(f"repro serve: listening on {args.host}:{args.port} "
              f"({args.shards} shards x {args.jobs} jobs, "
              f"queue {args.queue})", file=sys.stderr)
        await serve_forever(service, args.host, args.port)
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro serve: shut down", file=sys.stderr)
        return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import FaultPlan
    from .faults.chaos import run_chaos

    if args.plan:
        plan = FaultPlan.from_seed(args.seed)
        Path(args.plan).write_text(plan.to_json())
        print(f"fault plan for seed {args.seed} "
              f"({len(plan.rules)} rules) -> {args.plan}")
        for rule in plan.rules:
            print(f"  {rule.point}: {rule.action} "
                  f"occurrences={rule.occurrences} param={rule.param}")
        return 0
    reports = run_chaos(seed=args.seed, jobs=args.jobs,
                        log=lambda line: print(line, file=sys.stderr),
                        only=args.invariant)
    if not reports:
        print(f"error: unknown invariant {args.invariant!r}",
              file=sys.stderr)
        return 2
    failed = [r for r in reports if not r.passed]
    for r in reports:
        print(r.line())
    print(f"chaos: {len(reports) - len(failed)}/{len(reports)} "
          "invariants hold")
    return 1 if failed else 0


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Can Large Language Models Write "
                     "Parallel Code?' (HPDC 2024)"),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show Table 1 and Table 2").set_defaults(
        fn=cmd_list)

    p = sub.add_parser("prompt", help="print one PCGBench prompt")
    p.add_argument("uid", help="e.g. scan/prefix_sum/openmp")
    p.set_defaults(fn=cmd_prompt)

    p = sub.add_parser("run", help="sample one prompt and run the harness")
    p.add_argument("uid")
    p.add_argument("--model", default="GPT-3.5", choices=list(MODEL_ORDER))
    p.add_argument("--samples", type=int, default=5)
    p.add_argument("--temperature", type=float, default=0.2)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--timing", action="store_true")
    p.add_argument("--no-static-screen", dest="static_screen",
                   action="store_false",
                   help="disable the MiniParSan pre-execution screen")
    p.add_argument("--no-vectorize", dest="vectorize", action="store_false",
                   help="run every loop on the scalar closure tier "
                        "(results are bit-identical; only slower)")
    p.add_argument("--verbose", "-v", action="store_true")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("eval", help="evaluate models over a benchmark slice")
    p.add_argument("--models", help="comma-separated model names")
    p.add_argument("--ptypes", help="comma-separated problem types")
    p.add_argument("--exec", help="comma-separated execution models")
    p.add_argument("--samples", type=int, default=6)
    p.add_argument("--temperature", type=float, default=0.2)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--timing", action="store_true")
    p.add_argument("--profile", action="store_true",
                   help="cost-decomposed profiles (requires --timing); "
                        "prints the lost-cycles table")
    p.add_argument("--jobs", "-j", type=_positive_int, default=1,
                   help="worker processes for the evaluation scheduler")
    p.add_argument("--dispatch", default="lpt",
                   choices=["lpt", "fifo", "random"],
                   help="ready-queue policy: lpt = longest-predicted-"
                        "first from the duration ledger (default), fifo "
                        "= plan order, random = seeded shuffle "
                        "(byte-identical output under every policy)")
    p.add_argument("--resume", action="store_true",
                   help="resume an interrupted run from its journal")
    p.add_argument("--no-hedge", dest="hedge", action="store_false",
                   help="disable speculative straggler duplication "
                        "(results are byte-identical; only slower on "
                        "straggling tasks)")
    p.add_argument("--no-static-screen", dest="static_screen",
                   action="store_false",
                   help="disable the MiniParSan pre-execution screen")
    p.add_argument("--no-vectorize", dest="vectorize", action="store_false",
                   help="run every loop on the scalar closure tier "
                        "(results are bit-identical; only slower)")
    p.add_argument("--verbose", "-v", action="store_true")
    p.set_defaults(fn=cmd_eval)

    p = sub.add_parser(
        "profile", help="print the cost-decomposed profile of one prompt")
    p.add_argument("uid", help="e.g. stencil/jacobi_2d/openmp")
    p.add_argument("--model", default=None, choices=list(MODEL_ORDER),
                   help="profile this LLM's samples instead of the "
                        "handwritten reference solution")
    p.add_argument("--samples", type=int, default=3)
    p.add_argument("--temperature", type=float, default=0.2)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--all", action="store_true",
                   help="profile every variant/sample, not just the first")
    p.add_argument("--no-static-screen", dest="static_screen",
                   action="store_false",
                   help="disable the MiniParSan pre-execution screen")
    p.add_argument("--no-vectorize", dest="vectorize", action="store_false",
                   help="run every loop on the scalar closure tier "
                        "(results are bit-identical; only slower)")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("figures", help="regenerate all paper figures")
    p.add_argument("--samples", type=int, default=8)
    p.add_argument("--jobs", "-j", type=_positive_int, default=1,
                   help="worker processes for the evaluation scheduler")
    p.add_argument("--resume", action="store_true",
                   help="resume interrupted evaluation passes")
    p.add_argument("--no-hedge", dest="hedge", action="store_false",
                   help="disable speculative straggler duplication "
                        "(byte-identical output)")
    p.add_argument("--no-static-screen", dest="static_screen",
                   action="store_false",
                   help="disable the MiniParSan pre-execution screen")
    p.add_argument("--no-vectorize", dest="vectorize", action="store_false",
                   help="run every loop on the scalar closure tier "
                        "(results are bit-identical; only slower)")
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser(
        "lint", help="run MiniParSan static analysis on a source file")
    p.add_argument("file", nargs="?",
                   help="MiniPar source file to analyze")
    p.add_argument("--exec", default=None,
                   choices=["serial", "openmp", "kokkos", "mpi", "mpi+omp",
                            "cuda", "hip"],
                   help="execution model (default: auto-detect)")
    p.add_argument("--corpus", action="store_true",
                   help="lint every handwritten baseline and solution")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "serve", help="run the async batched evaluation service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8752)
    p.add_argument("--shards", type=_positive_int, default=2,
                   help="worker pools the merged task set is split across")
    p.add_argument("--jobs", "-j", type=_positive_int, default=1,
                   help="worker processes per shard")
    p.add_argument("--queue", type=_positive_int, default=64,
                   help="max in-flight requests before 429 rejections")
    p.add_argument("--batch-window", type=float, default=0.05,
                   help="seconds to wait for co-batchable requests")
    p.add_argument("--max-batch", type=_positive_int, default=16,
                   help="max requests coalesced into one batch")
    p.add_argument("--no-batching", dest="batching", action="store_false",
                   help="execute every request as its own batch")
    p.add_argument("--no-hedge", dest="hedge", action="store_false",
                   help="disable speculative straggler duplication in the "
                        "shard pools (byte-identical output)")
    p.add_argument("--retry-after-cap", type=float, default=60.0,
                   help="ceiling on the Retry-After hint sent with 429 "
                        "rejections, seconds")
    p.add_argument("--no-vectorize", dest="vectorize", action="store_false",
                   help="scalar closure tier only (bit-identical, slower)")
    p.add_argument("--dispatch", default="lpt", choices=["lpt", "fifo"],
                   help="lpt = cost-balanced shard partitions + work-"
                        "stealing board + longest-first pools (default); "
                        "fifo = legacy hash partition, no stealing "
                        "(byte-identical results either way)")
    p.add_argument("--workdir", default=".repro_serve",
                   help="shard journals + sample cache directory")
    p.add_argument("--smoke", action="store_true",
                   help="start, run one request through a live socket, "
                        "verify, and exit (CI liveness check)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "chaos", help="run the fault-injection invariant suite")
    p.add_argument("--seed", type=int, default=11,
                   help="seed for the generated fault schedule")
    p.add_argument("--jobs", "-j", type=_positive_int, default=4,
                   help="worker processes for the scheduler checks")
    p.add_argument("--invariant", metavar="NAME", default=None,
                   help="run only this invariant (e.g. guard-resilience)")
    p.add_argument("--plan", metavar="FILE",
                   help="write the seed's fault plan as JSON and exit")
    p.set_defaults(fn=cmd_chaos)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
