"""Checkpointing for scheduled runs.

Two persistence layers, both keyed by content-hash task ids from
:mod:`repro.sched.plan`:

* :class:`Journal` — an append-only JSONL file recording every finished
  task of *one run*.  Each line is flushed as it is written, so however a
  run dies (crash, Ctrl-C, OOM-kill) the journal holds exactly the work
  that finished; resuming replays it and only the remainder executes.
  A header line pins the run configuration — a journal written under a
  different config (model, samples, runner, bench slice) is ignored
  rather than resumed.

* :class:`SampleCache` — a content-addressed store shared *across* runs:
  one small JSON file per task id, sharded by hash prefix.  Identical
  generated sources (common at low temperature, where a confident model
  repeats its top candidate) are evaluated once ever per runner config.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple

#: bump when the journal line format changes; mismatched journals are
#: discarded (recomputed), never crashed on.
JOURNAL_VERSION = 1


class Journal:
    """Append-only JSONL checkpoint of finished tasks for one run."""

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self._fh = None

    # -- reading ------------------------------------------------------------

    def load(self, run_key: str) -> Dict[str, Dict[str, object]]:
        """Replay the journal; returns task id → result payload.

        Corrupt trailing lines (a run killed mid-write) are ignored, as is
        the whole file when the header is missing or belongs to a
        different run configuration.
        """
        if not self.path.exists():
            return {}
        results: Dict[str, Dict[str, object]] = {}
        header_ok = False
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue            # torn write at kill time
                if not isinstance(record, dict):
                    continue
                if record.get("kind") == "header":
                    header_ok = (record.get("run_key") == run_key
                                 and record.get("version") == JOURNAL_VERSION)
                    continue
                if not header_ok:
                    continue
                task_id = record.get("task")
                payload = record.get("result")
                if isinstance(task_id, str) and isinstance(payload, dict):
                    results[task_id] = payload
        return results

    # -- writing ------------------------------------------------------------

    def start(self, run_key: str, fresh: bool = False) -> None:
        """Open for appending; (re)writes the header when starting fresh or
        when the existing file does not match ``run_key``."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        reset = fresh or not self._has_header(run_key)
        mode = "w" if reset else "a"
        self._fh = self.path.open(mode, encoding="utf-8")
        if reset:
            self._write({"kind": "header", "version": JOURNAL_VERSION,
                         "run_key": run_key})

    def _has_header(self, run_key: str) -> bool:
        if not self.path.exists():
            return False
        try:
            with self.path.open("r", encoding="utf-8") as fh:
                first = fh.readline().strip()
            record = json.loads(first)
            return (isinstance(record, dict)
                    and record.get("kind") == "header"
                    and record.get("run_key") == run_key
                    and record.get("version") == JOURNAL_VERSION)
        except (OSError, json.JSONDecodeError):
            return False

    def append(self, task_id: str, payload: Dict[str, object]) -> None:
        if self._fh is None:
            raise RuntimeError("Journal.append before Journal.start")
        self._write({"task": task_id, "result": payload})

    def _write(self, record: Dict[str, object]) -> None:
        # flush per line: a killed *process* loses nothing (the OS holds the
        # page); torn lines from a killed machine are skipped by load().
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def discard(self) -> None:
        """Remove the journal file (the run completed and was persisted)."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SampleCache:
    """Content-addressed, cross-run store of per-task results."""

    def __init__(self, root: Path | str):
        self.root = Path(root)

    def _path(self, task_id: str) -> Path:
        return self.root / task_id[:2] / f"{task_id}.json"

    def get(self, task_id: str) -> Optional[Dict[str, object]]:
        path = self._path(task_id)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def put(self, task_id: str, payload: Dict[str, object]) -> None:
        path = self._path(task_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, path)       # atomic: concurrent runs never see torn files

    def __contains__(self, task_id: str) -> bool:
        return self._path(task_id).exists()


def journal_path_for(root: Path | str, llm_name: str, num_samples: int,
                     temperature: float, with_timing: bool, seed: int,
                     tag: str = "full") -> Path:
    """Canonical journal location for a run configuration under ``root``
    (mirrors ``EvalCache``'s file naming)."""
    fname = (
        f"{llm_name}_{tag}_s{num_samples}_t{temperature:g}"
        f"_{'timed' if with_timing else 'plain'}_r{seed}.journal.jsonl"
    )
    return Path(root) / "journal" / fname.replace("/", "-")
