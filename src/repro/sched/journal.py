"""Checkpointing for scheduled runs.

Two persistence layers, both keyed by content-hash task ids from
:mod:`repro.sched.plan`:

* :class:`Journal` — an append-only JSONL file recording every finished
  task of *one run*.  Appends are buffered and **group-committed**: one
  ``write`` + ``flush`` + ``fsync`` covers every record appended since
  the last :meth:`Journal.commit` (the pool calls it once per drain
  cycle — when the result queue goes momentarily quiet — and
  :meth:`Journal.close` commits the remainder), so a burst of fast tasks
  costs one fsync instead of one each.  Recovery semantics are
  unchanged: a record is committed iff newline-terminated, and losing a
  buffered tail to a kill is always safe because the scheduler
  re-executes exactly the missing tasks deterministically on resume.
  A header line pins the run configuration — a journal written under a
  different config (model, samples, runner, bench slice) is ignored
  rather than resumed.

* :class:`SampleCache` — a content-addressed store shared *across* runs:
  one small JSON file per task id, sharded by hash prefix.  Identical
  generated sources (common at low temperature, where a confident model
  repeats its top candidate) are evaluated once ever per runner config.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..faults import inject
from ..faults.inject import FaultInjected

#: bump when the journal line format changes; mismatched journals are
#: discarded (recomputed), never crashed on.
JOURNAL_VERSION = 1

#: buffered records that force an automatic commit, bounding how much a
#: kill between drain cycles can cost (re-execution, never corruption)
GROUP_COMMIT_BOUND = 64


class Journal:
    """Append-only JSONL checkpoint of finished tasks for one run."""

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self._fh = None
        self._buffer: list = []
        #: fsyncs issued — the group-commit tests assert coalescing on it
        self.commits = 0

    # -- reading ------------------------------------------------------------

    def load(self, run_key: str) -> Dict[str, Dict[str, object]]:
        """Replay the journal; returns task id → result payload.

        A record is *committed* iff its line is newline-terminated: a run
        killed mid-write (at any byte offset of the record) leaves a torn
        tail after the last newline, which is ignored here and truncated
        by the next :meth:`start`.  The whole file is ignored when the
        header is missing or belongs to a different run configuration.
        """
        if not self.path.exists():
            return {}
        results: Dict[str, Dict[str, object]] = {}
        header_ok = False
        text = self.path.read_text(encoding="utf-8")
        committed, newline, _torn_tail = text.rpartition("\n")
        if not newline:
            return {}
        for line in committed.split("\n"):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue                # mid-file corruption: skip the line
            if not isinstance(record, dict):
                continue
            if record.get("kind") == "header":
                header_ok = (record.get("run_key") == run_key
                             and record.get("version") == JOURNAL_VERSION)
                continue
            if not header_ok:
                continue
            task_id = record.get("task")
            payload = record.get("result")
            if isinstance(task_id, str) and isinstance(payload, dict):
                results[task_id] = payload
        return results

    # -- writing ------------------------------------------------------------

    def start(self, run_key: str, fresh: bool = False) -> None:
        """Open for appending; (re)writes the header when starting fresh or
        when the existing file does not match ``run_key``.

        Before appending, any torn tail (bytes after the last newline —
        a record whose write was killed partway) is truncated so a new
        record can never merge with half of an old one."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        reset = fresh or not self._has_header(run_key)
        if not reset:
            self._truncate_torn_tail()
        mode = "w" if reset else "a"
        self._fh = self.path.open(mode, encoding="utf-8")
        if reset:
            self._write({"kind": "header", "version": JOURNAL_VERSION,
                         "run_key": run_key})
        self.commit()       # the header is durable before any record

    def _truncate_torn_tail(self) -> None:
        try:
            with self.path.open("r+b") as fh:
                data = fh.read()
                if not data or data.endswith(b"\n"):
                    return
                keep = data.rfind(b"\n") + 1   # 0 when no newline at all
                fh.truncate(keep)
        except OSError:                         # pragma: no cover - defensive
            pass

    def _has_header(self, run_key: str) -> bool:
        if not self.path.exists():
            return False
        try:
            with self.path.open("r", encoding="utf-8") as fh:
                first = fh.readline().strip()
            record = json.loads(first)
            return (isinstance(record, dict)
                    and record.get("kind") == "header"
                    and record.get("run_key") == run_key
                    and record.get("version") == JOURNAL_VERSION)
        except (OSError, json.JSONDecodeError):
            return False

    def append(self, task_id: str, payload: Dict[str, object]) -> None:
        if self._fh is None:
            raise RuntimeError("Journal.append before Journal.start")
        self._write({"task": task_id, "result": payload})

    def _write(self, record: Dict[str, object]) -> None:
        # buffer whole lines; commit() writes, flushes, and fsyncs the
        # batch in one go.  Committed iff newline-terminated is
        # preserved: commit only ever writes complete lines.
        line = json.dumps(record) + "\n"
        if inject.ACTIVE is not None:
            rule = inject.ACTIVE.fire("sched.journal.torn_write",
                                      str(record.get("task", "header")))
            if rule is not None:
                # every earlier record commits first, then this one
                # tears *after* the last newline — exactly the state a
                # mid-record kill leaves, which load() skips
                self.commit()
                frac = rule.param if 0.0 < rule.param < 1.0 else 0.5
                keep = max(1, int(len(line) * frac))
                self._fh.write(line[:keep])    # no newline: uncommitted
                self._fh.flush()
                raise FaultInjected(
                    "sched.journal.torn_write",
                    f"journal write torn after {keep}/{len(line)} bytes",
                    transient=False)
        self._buffer.append(line)
        if len(self._buffer) >= GROUP_COMMIT_BOUND:
            self.commit()

    def commit(self) -> None:
        """Group commit: write every buffered record, one write + one
        flush + one fsync.  The pool invokes this once per drain cycle,
        coalescing the per-record fsyncs a result burst would otherwise
        pay; a no-op when nothing is buffered."""
        if self._fh is None or not self._buffer:
            return
        self._fh.write("".join(self._buffer))
        self._buffer.clear()
        self._fh.flush()
        try:
            os.fsync(self._fh.fileno())
        except OSError:                 # pragma: no cover - exotic fs
            pass
        self.commits += 1

    def close(self) -> None:
        if self._fh is not None:
            self.commit()
            self._fh.close()
            self._fh = None
        self._buffer.clear()

    def discard(self) -> None:
        """Remove the journal file (the run completed and was persisted)."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SampleCache:
    """Content-addressed, cross-run store of per-task results.

    Entries are wrapped with a sha256 checksum of the payload, so any
    on-disk corruption — truncation, a flipped byte, a stray editor —
    turns into a cache *miss* (the task recomputes and rewrites) rather
    than a silently-wrong result flowing into metrics.  Entries from the
    pre-checksum format are likewise treated as misses.
    """

    def __init__(self, root: Path | str):
        self.root = Path(root)

    def _path(self, task_id: str) -> Path:
        return self.root / task_id[:2] / f"{task_id}.json"

    @staticmethod
    def _digest(payload: Dict[str, object]) -> str:
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def get(self, task_id: str) -> Optional[Dict[str, object]]:
        path = self._path(task_id)
        try:
            wrapper = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(wrapper, dict):
            return None
        payload = wrapper.get("payload")
        if not isinstance(payload, dict):
            return None
        if wrapper.get("sha256") != self._digest(payload):
            return None                  # bit rot / torn write: recompute
        return payload

    def put(self, task_id: str, payload: Dict[str, object]) -> bool:
        """Write one entry durably; returns False when the write failed.

        The snapshot path is tmp-write → fsync(file) → rename →
        fsync(dir): without the fsyncs a machine crash right after the
        rename can leave a zero-length or torn file *at the final path*
        (the rename can be journaled before the data blocks hit disk).
        A failed write — e.g. an injected ``guard.disk.enospc`` — cleans
        up the tmp file and degrades to a future cache miss; it never
        corrupts an existing entry and never crashes the run (the cache
        is an optimisation, not a correctness dependency)."""
        path = self._path(task_id)
        data = json.dumps({"sha256": self._digest(payload),
                           "payload": payload})
        enospc = False
        if inject.ACTIVE is not None:
            rule = inject.ACTIVE.fire("sched.cache.truncate", task_id)
            if rule is not None:
                data = data[: max(1, len(data) // 2)]
            rule = inject.ACTIVE.fire("sched.cache.bitflip", task_id)
            if rule is not None:
                pos = len(data) // 2
                flipped = chr(ord(data[pos]) ^ 0x01)
                data = data[:pos] + flipped + data[pos + 1:]
            enospc = inject.ACTIVE.fire("guard.disk.enospc",
                                        task_id) is not None
        tmp = path.with_suffix(".tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            if enospc:
                raise OSError(errno.ENOSPC,
                              "No space left on device (injected)")
            with tmp.open("w", encoding="utf-8") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)   # atomic: readers never see torn files
            self._fsync_dir(path.parent)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        return True

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Persist the rename itself (the directory entry)."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:             # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(fd)
        except OSError:             # pragma: no cover - e.g. NFS quirks
            pass
        finally:
            os.close(fd)

    def __contains__(self, task_id: str) -> bool:
        return self.get(task_id) is not None


def journal_path_for(root: Path | str, llm_name: str, num_samples: int,
                     temperature: float, with_timing: bool, seed: int,
                     tag: str = "full") -> Path:
    """Canonical journal location for a run configuration under ``root``
    (mirrors ``EvalCache``'s file naming)."""
    fname = (
        f"{llm_name}_{tag}_s{num_samples}_t{temperature:g}"
        f"_{'timed' if with_timing else 'plain'}_r{seed}.journal.jsonl"
    )
    return Path(root) / "journal" / fname.replace("/", "-")
