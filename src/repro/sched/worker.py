"""Harness-side worker functions for the scheduler pool.

Both functions are module-level so they can cross a process boundary by
reference.  Each worker rebuilds its own :class:`PCGBench` view and looks
prompts up by uid — prompt/problem objects carry numpy closures and never
travel through the task queue; only strings do.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..bench.registry import PCGBench
from ..harness.runner import Runner, compile_cache_stats
from .plan import KIND_BASELINE, KIND_SAMPLE


def init_harness(runner: Runner, ptypes: Sequence[str],
                 models: Sequence[str]):
    """Per-worker init: rebuild the bench slice and index it."""
    bench = PCGBench(problem_types=list(ptypes) or None,
                     models=list(models) or None)
    prompts = {p.uid: p for p in bench.prompts}
    problems = {p.name: p for p in bench.problems}
    return runner, prompts, problems


def execute_task(ctx, payload: Dict[str, object]) -> Dict[str, object]:
    """Run one task; returns a JSON-serialisable result payload."""
    runner, prompts, problems = ctx
    kind = payload["kind"]
    if kind == KIND_BASELINE:
        problem = problems[payload["problem"]]
        return {"baseline": runner.baseline_time(problem)}
    if kind == KIND_SAMPLE:
        prompt = prompts[payload["uid"]]
        cache_before = compile_cache_stats()
        res = runner.evaluate_sample(str(payload["source"]), prompt,
                                     with_timing=bool(payload["with_timing"]),
                                     profile=bool(payload.get("profile")))
        cache_after = compile_cache_stats()
        return {"status": res.status, "detail": res.detail,
                "times": {int(k): float(v) for k, v in res.times.items()},
                "diagnostics": [d.to_dict() for d in res.diagnostics],
                "profile": res.profile.to_dict()
                if res.profile is not None else None,
                # observability riders: vec-tier telemetry plus this
                # task's compile-cache delta (the worker counters are
                # process-wide, so ship differences, not totals)
                "vec": res.vec,
                "compile_cache": {
                    k: cache_after[k] - cache_before[k]
                    for k in ("hits", "misses")}}
    raise ValueError(f"unknown task kind {kind!r}")


def failure_payload(kind: str, detail: str) -> Dict[str, object]:
    """Placeholder result for a task whose retry budget is exhausted.

    The status is ``system_error`` — the *infrastructure* gave up, the
    sample was never judged — so metric denominators exclude it instead
    of depressing pass@k the way a (model-attributed) ``runtime_error``
    would.  Never journaled or cached — a resumed run retries the task."""
    if kind == KIND_BASELINE:
        return {"baseline": None}
    return {"status": "system_error",
            "detail": f"scheduler: {detail}", "times": {},
            "diagnostics": [], "profile": None, "vec": None,
            "compile_cache": None}


def quarantine_payload(kind: str, detail: str) -> Dict[str, object]:
    """Persisted result for a poison task the HealthLedger quarantined.

    Unlike ``system_error`` (transient: resampled on resume, never
    journaled), ``quarantined`` is a *sticky* verdict: the task killed
    multiple distinct workers, so it is journaled, replayed on resume,
    and reported as its own status lane — never silently retried.  Like
    ``system_error`` it is excluded from every pass@k and speedup
    denominator (the sample was never judged)."""
    if kind == KIND_BASELINE:
        return {"baseline": None}
    return {"status": "quarantined",
            "detail": f"guard: {detail}", "times": {},
            "diagnostics": [], "profile": None, "vec": None,
            "compile_cache": None}


def valid_result(task_payload: Dict[str, object], body: object) -> bool:
    """Shape-check one worker result before it is accepted/journaled.

    Guards the parent against results corrupted on the result channel: a
    payload failing this check is requeued like a raised exception."""
    if not isinstance(body, dict):
        return False
    if task_payload.get("kind") == KIND_BASELINE:
        baseline = body.get("baseline", "missing")
        return baseline is None or isinstance(baseline, (int, float))
    return (isinstance(body.get("status"), str)
            and isinstance(body.get("times", {}), dict)
            and isinstance(body.get("detail", ""), str))
