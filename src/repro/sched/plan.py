"""Decompose an ``(llm, bench, config)`` evaluation into a deterministic
job graph.

Generation is cheap and deterministic (the simulated LLMs are pure
functions of ``(model, prompt, seed)``), so the planner materialises every
sample *source* up front in the parent process.  What remains — compile,
check, run, time — is the expensive part, and each ``(prompt, sample)``
becomes one independent task.  Timing runs add one baseline task per
distinct problem (prompts for the same problem under different execution
models share a sequential baseline).

Task identity is a content hash of ``(kind, source, prompt uid,
runner fingerprint, with_timing)``.  Two samples with byte-identical
source for the same prompt therefore share one task — the scheduler
executes it once and fans the result out to every slot — and the same
hash keys the cross-run sample cache.  The sampling seed never enters the
hash: it already determined the source text, and folding it in would
defeat cross-run deduplication.

``assemble`` rebuilds the :class:`~repro.harness.evaluate.EvalRun` in
*plan order* (bench prompt order, then sample index), independent of the
order results arrived in, which is what makes a ``jobs=N`` run
byte-identical to the serial loop.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bench.registry import PCGBench
from ..harness.evaluate import EvalRun, PromptRecord, SampleRecord
from ..harness.runner import Runner
from ..models.llm import SimulatedLLM

#: task kinds
KIND_SAMPLE = "sample"
KIND_BASELINE = "baseline"

#: detail strings are truncated to this many chars in SampleRecords,
#: mirroring the serial loop in ``evaluate_model``
DETAIL_LIMIT = 160


def runner_fingerprint(runner: Runner) -> str:
    """Stable digest of everything about the runner that affects results.

    The machine is a frozen dataclass tree of numbers, so its ``repr`` is
    a deterministic, complete description of the cost model.
    """
    desc = repr((runner.machine, runner.thread_counts,
                 runner.mpi_rank_counts, runner.hybrid_config,
                 runner.correctness_trials, runner.seed,
                 runner.static_screen))
    return hashlib.sha256(desc.encode()).hexdigest()[:16]


def bench_spec(bench: PCGBench) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """(problem_types, models) from which a worker can rebuild the bench."""
    ptypes = tuple(dict.fromkeys(p.ptype for p in bench.problems))
    return ptypes, tuple(bench.models)


def sample_task_id(source: str, prompt_uid: str, fingerprint: str,
                   with_timing: bool, profile: bool = False) -> str:
    # the profile marker extends the mode string only when profiling is
    # on, so every pre-profiling task id (and its cached result) survives
    mode = ("timed" if with_timing else "plain") + ("-prof" if profile else "")
    digest = hashlib.sha256()
    for part in (KIND_SAMPLE, prompt_uid, fingerprint, mode, source):
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def baseline_task_id(problem_name: str, fingerprint: str) -> str:
    digest = hashlib.sha256()
    for part in (KIND_BASELINE, problem_name, fingerprint):
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def shard_for(task_id: str, shards: int) -> int:
    """Deterministic shard assignment from a content-hash task id.

    The leading hex digits are already uniformly distributed, so the
    shard of a task is a pure function of its identity — two requests
    that share a task always route it to the same shard, which is what
    lets per-shard journals resume work started by an earlier attempt.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return int(task_id[:8], 16) % shards


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work a pool worker can execute in isolation."""

    task_id: str
    kind: str                       # KIND_SAMPLE | KIND_BASELINE
    prompt_uid: str = ""            # sample tasks
    source: str = ""                # sample tasks
    with_timing: bool = False
    problem: str = ""               # baseline tasks
    profile: bool = False           # sample tasks: record a cost profile

    def payload(self) -> Dict[str, object]:
        """The picklable message sent through the task queue."""
        if self.kind == KIND_SAMPLE:
            return {"kind": self.kind, "uid": self.prompt_uid,
                    "source": self.source, "with_timing": self.with_timing,
                    "profile": self.profile}
        return {"kind": self.kind, "problem": self.problem}


@dataclass(frozen=True)
class SampleSlot:
    """One (prompt, sample index) position in the final EvalRun."""

    prompt_uid: str
    sample_index: int
    intended: str                   # generation-side label, not a result
    task_id: str


@dataclass(frozen=True)
class PromptPlan:
    uid: str
    ptype: str
    exec_model: str
    problem: str
    baseline_task: Optional[str]    # task id, timing runs only
    slots: Tuple[SampleSlot, ...]


@dataclass
class Plan:
    """A full evaluation decomposed into deduplicated tasks."""

    llm: str
    temperature: float
    num_samples: int
    with_timing: bool
    seed: int
    fingerprint: str
    bench_ptypes: Tuple[str, ...]
    bench_models: Tuple[str, ...]
    profile: bool = False
    prompts: List[PromptPlan] = field(default_factory=list)
    tasks: Dict[str, TaskSpec] = field(default_factory=dict)

    @property
    def num_slots(self) -> int:
        return sum(len(p.slots) for p in self.prompts)

    def run_key(self) -> str:
        """Digest identifying this exact run configuration; stored in the
        journal header so a stale journal is never resumed against a
        different configuration."""
        desc = json.dumps({
            "llm": self.llm, "temperature": self.temperature,
            "num_samples": self.num_samples, "with_timing": self.with_timing,
            "seed": self.seed, "fingerprint": self.fingerprint,
            "ptypes": list(self.bench_ptypes),
            "models": list(self.bench_models),
            "profile": self.profile,
        }, sort_keys=True)
        return hashlib.sha256(desc.encode()).hexdigest()[:24]

    def ordered_task_ids(self) -> List[str]:
        """Unique task ids in first-use (deterministic) order."""
        return list(self.tasks)


def build_plan(llm: SimulatedLLM, bench: PCGBench, num_samples: int,
               temperature: float, with_timing: bool, runner: Runner,
               seed: int, profile: bool = False) -> Plan:
    """Expand the evaluation into slots and deduplicated tasks."""
    fingerprint = runner_fingerprint(runner)
    ptypes, models = bench_spec(bench)
    plan = Plan(llm=llm.name, temperature=temperature,
                num_samples=num_samples, with_timing=with_timing, seed=seed,
                fingerprint=fingerprint, bench_ptypes=ptypes,
                bench_models=models, profile=profile)
    for prompt in bench.prompts:
        baseline_tid = None
        if with_timing:
            baseline_tid = baseline_task_id(prompt.problem.name, fingerprint)
            plan.tasks.setdefault(baseline_tid, TaskSpec(
                task_id=baseline_tid, kind=KIND_BASELINE,
                problem=prompt.problem.name))
        slots = []
        samples = llm.generate(prompt, num_samples, temperature, seed)
        for index, sample in enumerate(samples):
            tid = sample_task_id(sample.source, prompt.uid, fingerprint,
                                 with_timing, profile)
            plan.tasks.setdefault(tid, TaskSpec(
                task_id=tid, kind=KIND_SAMPLE, prompt_uid=prompt.uid,
                source=sample.source, with_timing=with_timing,
                profile=profile))
            slots.append(SampleSlot(prompt_uid=prompt.uid,
                                    sample_index=index,
                                    intended=sample.intended, task_id=tid))
        plan.prompts.append(PromptPlan(
            uid=prompt.uid, ptype=prompt.problem.ptype,
            exec_model=prompt.model, problem=prompt.problem.name,
            baseline_task=baseline_tid, slots=tuple(slots)))
    return plan


def assemble(plan: Plan, results: Dict[str, Dict[str, object]]) -> EvalRun:
    """Rebuild the EvalRun from task results, in plan order.

    ``results`` maps task id → result payload (the dict produced by
    ``worker.execute_task``, possibly round-tripped through the JSONL
    journal, so ``times`` keys may be strings).
    """
    run = EvalRun(llm=plan.llm, temperature=plan.temperature,
                  num_samples=plan.num_samples, with_timing=plan.with_timing,
                  seed=plan.seed)
    for pp in plan.prompts:
        record = PromptRecord(uid=pp.uid, ptype=pp.ptype,
                              exec_model=pp.exec_model)
        if pp.baseline_task is not None:
            payload = results[pp.baseline_task]
            record.baseline = payload.get("baseline")
        for slot in pp.slots:
            payload = results[slot.task_id]
            times = payload.get("times") or {}
            record.samples.append(SampleRecord(
                # a payload with no status means the infrastructure lost
                # the result — a system_error, never blamed on the model
                status=str(payload.get("status", "system_error")),
                intended=slot.intended,
                detail=str(payload.get("detail", ""))[:DETAIL_LIMIT],
                times={int(k): v for k, v in times.items()},
                diagnostics=list(payload.get("diagnostics") or []),
                profile=payload.get("profile"),
                vec=payload.get("vec"),
            ))
        run.prompts[pp.uid] = record
    return run
