"""A fault-isolated multiprocessing worker pool with a bounded queue.

The pool is deliberately generic — it moves ``(task_id, payload)`` pairs
to N worker processes and results back — so the fault-handling logic can
be unit-tested with synthetic crash/hang/raise tasks independently of the
harness.  :mod:`repro.sched.worker` supplies the harness-specific init
and execute functions.

Fault model (the part a naive ``multiprocessing.Pool`` gets wrong):

* a task that **raises** inside a worker is reported and requeued, up to
  ``max_retries`` extra attempts, then recorded as a failure; retries
  queue strictly *behind* pending fresh work, so a retry storm can never
  starve the queue tail;
* a worker that **dies** (segfault, ``os._exit``, OOM-kill) is detected
  by liveness polling; its in-flight task is requeued and a replacement
  worker is spawned — the run never dies with it;
* a task that **hangs** past ``task_timeout`` gets its worker terminated
  and is treated like a crash;
* a task that kills ``poison_threshold`` *distinct* workers is **poison**
  (the task, not the machine, is what kills workers) and is moved to the
  ``quarantined`` lane by the :class:`~repro.guard.health.HealthLedger`
  instead of burning budget forever;
* a task running far past the completed-task time distribution is a
  **straggler** and gets a speculative duplicate on an idle worker
  (:class:`~repro.guard.hedge.HedgeBook`); the first result to arrive
  wins and later copies are discarded — byte-identical either way,
  because every copy computes identical judged content;
* repeated crashes trip a circuit breaker (``max_crashes``) that fails
  the remaining tasks instead of respawning forever.

Results are reported through ``on_result`` *before* the corresponding
:class:`TaskFinished` event is emitted, so a sink that aborts the run
(:class:`SchedulerAbort`) is guaranteed the journal already holds every
task it was told about.

Workers poll their parent pid while idle: if the whole scheduler process
is SIGKILLed (``repro.guard.supervisor``), the orphaned workers notice
the reparenting and exit instead of blocking on the task queue forever.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as stdlib_queue
import time
from collections import deque
from typing import Callable, Dict, Optional, Sequence, Set, Tuple

from ..faults import inject
from ..guard.health import GuardPolicy, HealthLedger, VERDICT_POISON
from ..guard.hedge import HedgeBook
from .events import (
    EmitFn,
    ProgressSnapshot,
    SOURCE_EXECUTED,
    SOURCE_FAILED,
    SOURCE_QUARANTINED,
    SchedulerAbort,
    TaskFinished,
    TaskHedged,
    TaskStarted,
    WorkerCrashed,
    WorkerReplaced,
    payload_counters,
)

#: parent-side poll interval for results / liveness, seconds
_POLL = 0.05
#: seconds of total silence before sweeping for orphaned tasks
_STALL_SWEEP = 2.0
#: idle-worker wakeup interval for the orphaned-parent check, seconds
_ORPHAN_POLL = 1.0


def _pool_context() -> mp.context.BaseContext:
    """fork where available (cheap, inherits the compiled problem bank);
    spawn otherwise."""
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(method)


def _poll_result(result_q, timeout: float):
    """Read one message from the result SimpleQueue, or None on timeout.

    The result channel is a SimpleQueue on purpose: its ``put`` writes
    synchronously (no feeder thread), so a worker killed by ``os._exit``
    or a segfault can never take already-reported results down with it —
    with a buffered ``mp.Queue`` the parent would mis-blame (and
    eventually fail) tasks that actually finished.
    """
    reader = getattr(result_q, "_reader", None)
    try:
        if reader is not None:
            if not reader.poll(timeout):
                return None
        elif result_q.empty():          # pragma: no cover - fallback path
            time.sleep(timeout)
            return None
        return result_q.get()
    except (EOFError, OSError):         # torn write from a dying worker
        return None


def _worker_main(worker_id: int, init_fn: Optional[Callable],
                 init_args: tuple, work_fn: Callable,
                 task_q: "mp.Queue", result_q: "mp.Queue") -> None:
    """Worker loop: init once, then execute tasks until the sentinel.

    Every exception is caught and reported — a worker only ever exits via
    the sentinel, by being killed from outside, or by noticing its parent
    process vanished (a whole-process SIGKILL reparents the worker; an
    orphan must not sit on ``task_q.get()`` forever).
    """
    parent_pid = os.getppid()
    try:
        ctx = init_fn(*init_args) if init_fn is not None else init_args
    except BaseException as exc:  # noqa: BLE001 - must never escape
        result_q.put(("init_error", worker_id, None,
                      f"{type(exc).__name__}: {exc}", 0.0, 0))
        return
    while True:
        try:
            item = task_q.get(timeout=_ORPHAN_POLL)
        except stdlib_queue.Empty:
            if os.getppid() != parent_pid:
                os._exit(0)         # orphaned: the scheduler was killed
            continue
        if item is None:
            result_q.put(("bye", worker_id, None, None, 0.0, 0))
            return
        task_id, attempt, payload = item
        result_q.put(("start", worker_id, task_id, None, 0.0, attempt))
        if inject.ACTIVE is not None:
            # fork-inherited injector: keys carry the attempt index so a
            # kill rule matching "#a0" takes down only the first dispatch
            # and the requeued attempt survives on the replacement worker
            rule = inject.ACTIVE.fire("sched.worker.kill",
                                      f"{task_id}#a{attempt}")
            if rule is not None:
                os._exit(17)
        began = time.perf_counter()
        try:
            result = work_fn(ctx, payload)
        except BaseException as exc:  # noqa: BLE001 - fault isolation
            result_q.put(("fail", worker_id, task_id,
                          f"{type(exc).__name__}: {exc}",
                          time.perf_counter() - began, attempt))
        else:
            result_q.put(("done", worker_id, task_id, result,
                          time.perf_counter() - began, attempt))


class WorkerPool:
    """N worker processes fed from a bounded task queue."""

    def __init__(self, jobs: int, work_fn: Callable,
                 init_fn: Optional[Callable] = None,
                 init_args: tuple = (),
                 task_timeout: Optional[float] = 300.0,
                 max_retries: int = 2,
                 queue_bound: Optional[int] = None,
                 emit: Optional[EmitFn] = None,
                 max_crashes: Optional[int] = None,
                 validate: Optional[Callable[[dict, object], bool]] = None,
                 guard: Optional[GuardPolicy] = None,
                 quarantine: Optional[Callable[[str, str], dict]] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.work_fn = work_fn
        self.init_fn = init_fn
        self.init_args = init_args
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        #: optional result validator ``(task_payload, result) -> bool``;
        #: a result that fails validation (e.g. corrupted on the result
        #: channel) is treated exactly like a raised exception: requeued
        #: up to the retry budget, never reported to ``on_result``
        self.validate = validate
        self.queue_bound = queue_bound or max(2 * jobs, 4)
        self.emit = emit or (lambda event: None)
        self.max_crashes = max_crashes if max_crashes is not None \
            else 4 * jobs + 4
        #: supervision policy (quarantine + hedging); defaults on
        self.guard = guard or GuardPolicy()
        #: ``(kind, detail) -> payload`` factory for quarantined tasks;
        #: without one a poison task fails fast through the failure lane
        #: (the ledger still short-circuits its remaining retries)
        self.quarantine = quarantine
        self._ctx = _pool_context()

    # -- lifecycle helpers ---------------------------------------------------

    def _spawn(self, worker_id: int, task_q, result_q):
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self.init_fn, self.init_args, self.work_fn,
                  task_q, result_q),
            daemon=True,
        )
        proc.start()
        return proc

    # -- the run loop --------------------------------------------------------

    def run(self, tasks: Sequence[Tuple[str, dict]],
            on_result: Optional[Callable[[str, dict], None]] = None,
            progress_total: Optional[int] = None,
            predictions: Optional[Dict[str, Tuple[float, str]]] = None,
            hedge_seed: Sequence[float] = (),
            feed: Optional[Callable[[], Optional[Tuple[str, dict]]]] = None,
            on_drain: Optional[Callable[[], None]] = None,
            ) -> Tuple[Dict[str, dict], Dict[str, str]]:
        """Execute ``tasks``; returns ``(results, failures)``.

        ``on_result(task_id, result)`` runs in the parent, in completion
        order, before the task's ``TaskFinished`` event (journal-then-
        notify).  ``failures`` maps task id → last error string for tasks
        that exhausted their retry budget.  Quarantined tasks land in
        ``results`` via the ``quarantine`` payload factory (or in
        ``failures`` when the pool has none).

        ``tasks`` arrive pre-ordered by the caller's dispatch policy
        (:func:`repro.sched.predict.order_tasks`); the pool preserves
        that order for fresh work.  ``predictions`` (task id →
        ``(value, provenance)``) decorate ``TaskFinished`` events so
        predicted-vs-actual error is observable.  ``hedge_seed``
        warm-starts the straggler book from ledger history.  ``feed``,
        when given, is a pull source consulted whenever local queues
        run dry — it returns ``(task_id, payload)`` or ``None`` for
        "nothing right now" (work stealing re-consults it every cycle);
        the run ends when the feed is dry *and* every known task is
        settled.  ``on_drain`` fires once per drain cycle — when the
        result channel goes momentarily quiet — and is the journal's
        group-commit hook.
        """
        payloads: Dict[str, dict] = dict(tasks)
        total = len(payloads)
        if progress_total is None:
            progress_total = total
        progress_base = progress_total - total
        results: Dict[str, dict] = {}
        failures: Dict[str, str] = {}
        if total == 0 and feed is None:
            return results, failures

        task_q = self._ctx.Queue(maxsize=self.queue_bound + 1)
        result_q = self._ctx.SimpleQueue()
        pending = deque(payloads)         # fresh work, dispatch order
        retries: deque = deque()          # requeues: strictly behind fresh
        outstanding: set = set()          # dispatched, not yet finished
        #: worker → (task, deadline, started_at)
        running: Dict[int, Tuple[str, float, float]] = {}
        attempts: Dict[str, int] = {tid: 0 for tid in payloads}  # dispatches
        fails: Dict[str, int] = {tid: 0 for tid in payloads}
        live: Dict[str, int] = {tid: 0 for tid in payloads}  # copies in flight
        hedge_dispatches: Set[Tuple[str, int]] = set()
        preds = predictions or {}
        ledger = HealthLedger(self.guard.poison_threshold)
        book = HedgeBook(self.guard, seed=hedge_seed)
        procs: Dict[int, mp.process.BaseProcess] = {}
        crashes = 0
        feed_open = feed is not None    # crash-budget bail closes the feed
        feed_dry = False                # last pull returned None
        last_message = time.monotonic()

        for wid in range(self.jobs):
            procs[wid] = self._spawn(wid, task_q, result_q)
        next_wid = self.jobs

        def finished() -> int:
            return len(results) + len(failures)

        def settled(tid: str) -> bool:
            return tid in results or tid in failures

        def dispatch(tid: str) -> bool:
            try:
                task_q.put_nowait((tid, attempts[tid], payloads[tid]))
            except stdlib_queue.Full:
                return False
            attempts[tid] += 1
            live[tid] += 1
            outstanding.add(tid)
            return True

        def pull_feed() -> bool:
            """Claim one task from the feed into ``pending``; False when
            the feed has nothing right now."""
            nonlocal feed_dry
            item = feed()
            if item is None:
                feed_dry = True
                return False
            feed_dry = False
            tid, payload = item
            if tid not in payloads:
                payloads[tid] = payload
                attempts[tid] = 0
                fails[tid] = 0
                live[tid] = 0
            if not settled(tid):
                pending.append(tid)
            return True

        def fill_queue() -> None:
            while len(outstanding) < self.queue_bound:
                if not pending and not retries and feed_open:
                    if not pull_feed():
                        return
                source = pending if pending else retries
                if not source:
                    return
                tid = source[0]
                if settled(tid):
                    source.popleft()
                    continue
                if not dispatch(tid):
                    return              # queue full: keep position
                source.popleft()

        def record_failure(tid: str, detail: str) -> None:
            failures[tid] = detail
            outstanding.discard(tid)
            self.emit(TaskFinished(
                task_id=tid, kind=payloads[tid].get("kind", ""),
                source=SOURCE_FAILED, status="system_error", worker=-1,
                duration=0.0, attempts=attempts[tid]))

        def record_quarantine(tid: str, last_detail: str) -> None:
            detail = f"{ledger.fingerprint(tid)}; last: {last_detail}"
            ledger.quarantine(tid, detail)
            if self.quarantine is None:
                record_failure(tid, detail)
                return
            payload = self.quarantine(payloads[tid].get("kind", ""), detail)
            results[tid] = payload
            outstanding.discard(tid)
            if on_result is not None:
                on_result(tid, payload)
            self.emit(TaskFinished(
                task_id=tid, kind=payloads[tid].get("kind", ""),
                source=SOURCE_QUARANTINED,
                status=str((payload or {}).get("status", "")), worker=-1,
                duration=0.0, attempts=attempts[tid]))

        def copy_failed(tid: str, detail: str) -> None:
            """One dispatch of ``tid`` definitively failed."""
            if settled(tid):
                return
            fails[tid] += 1
            if live.get(tid, 0) > 0:
                return          # a duplicate still races; judge on arrival
            outstanding.discard(tid)
            if fails[tid] <= self.max_retries:
                retries.append(tid)
            else:
                record_failure(tid, detail)

        def on_worker_death(wid: int, detail: str,
                            kind: str = "crash") -> None:
            nonlocal crashes, next_wid
            crashes += 1
            entry = running.pop(wid, None)
            tid = entry[0] if entry is not None else None
            self.emit(WorkerCrashed(worker=wid, task_id=tid, detail=detail,
                                    kind=kind))
            procs.pop(wid, None)
            if tid is not None:
                live[tid] = max(0, live.get(tid, 0) - 1)
                if not settled(tid):
                    verdict = ledger.record_death(tid, wid, kind, detail)
                    if verdict == VERDICT_POISON and self.guard.quarantine:
                        record_quarantine(tid, detail)
                    else:
                        copy_failed(tid, detail)
            if crashes <= self.max_crashes \
                    and (finished() < len(payloads)
                         or (feed_open and not feed_dry)):
                procs[next_wid] = self._spawn(next_wid, task_q, result_q)
                self.emit(WorkerReplaced(old_worker=wid,
                                         new_worker=next_wid))
                next_wid += 1

        def maybe_hedge(now: float) -> None:
            """Duplicate stragglers onto idle workers — only once all
            fresh and retried work is dispatched (and a feed, if any,
            reported dry), so speculation never delays first execution
            of anything."""
            if not self.guard.hedge or pending or retries:
                return
            if feed_open and not feed_dry:
                return                  # unclaimed work may still exist
            idle = len(procs) - len(running)
            if idle <= 0:
                return
            cut = book.threshold()
            if cut is None:
                return
            for wid in sorted(running,
                              key=lambda w: (running[w][2], w)):
                if idle <= 0:
                    return
                tid, _deadline, started = running[wid]
                if settled(tid) or not book.may_hedge(tid):
                    continue
                if live.get(tid, 0) != 1 or now - started < cut:
                    continue
                index = attempts[tid]
                if not dispatch(tid):
                    return              # queue full: try next poll round
                hedge_dispatches.add((tid, index))
                book.note_hedge(tid)
                self.emit(TaskHedged(
                    task_id=tid, kind=payloads[tid].get("kind", ""),
                    worker=wid, elapsed=now - started, threshold=cut))
                idle -= 1

        def snapshot() -> None:
            self.emit(ProgressSnapshot(
                done=finished() + progress_base,
                total=max(progress_total, len(payloads) + progress_base),
                queue_depth=len(outstanding), busy_workers=len(running),
                workers=len(procs)))

        try:
            while True:
                fill_queue()
                if finished() >= len(payloads):
                    # all known work settled; a feed may still hold more
                    if not feed_open or not pull_feed():
                        break
                    continue
                message = _poll_result(result_q, _POLL)
                now = time.monotonic()
                if message is not None:
                    last_message = now
                    kind, wid, tid, body, duration, attempt = message
                    if kind == "start":
                        deadline = now + (self.task_timeout or float("inf"))
                        running[wid] = (tid, deadline, now)
                        self.emit(TaskStarted(
                            task_id=tid,
                            kind=payloads[tid].get("kind", ""), worker=wid))
                    elif kind == "done":
                        running.pop(wid, None)
                        live[tid] = max(0, live.get(tid, 0) - 1)
                        if settled(tid):
                            continue    # late arrival from a hedge loser
                        if (live.get(tid, 0) > 0
                                and inject.ACTIVE is not None
                                and inject.ACTIVE.fire(
                                    "guard.hedge.lose", tid) is not None):
                            # injected first-arrival loss: the duplicate
                            # still in flight must deliver the same bytes
                            continue
                        if inject.ACTIVE is not None and inject.ACTIVE.fire(
                                "sched.result.corrupt", tid) is not None:
                            body = {"__corrupted__": True}
                        if self.validate is not None \
                                and not self.validate(payloads[tid], body):
                            copy_failed(
                                tid, "result payload failed validation "
                                     "(corrupted on the result channel)")
                            snapshot()
                            continue
                        outstanding.discard(tid)
                        results[tid] = body
                        book.observe(duration)
                        hedged_win = (tid, attempt) in hedge_dispatches
                        if hedged_win:
                            book.wins += 1
                        if on_result is not None:
                            on_result(tid, body)
                        predicted, pred_source = preds.get(tid, (0.0, ""))
                        self.emit(TaskFinished(
                            task_id=tid,
                            kind=payloads[tid].get("kind", ""),
                            source=SOURCE_EXECUTED,
                            status=str((body or {}).get("status", "")),
                            worker=wid, duration=duration,
                            attempts=attempts[tid],
                            diagnostics=len(
                                (body or {}).get("diagnostics") or ()),
                            counters=payload_counters(body),
                            hedged=hedged_win,
                            predicted=predicted,
                            predicted_source=pred_source))
                        snapshot()
                    elif kind == "fail":
                        running.pop(wid, None)
                        live[tid] = max(0, live.get(tid, 0) - 1)
                        if not settled(tid):
                            copy_failed(tid, body)
                            snapshot()
                    elif kind == "init_error":
                        # a worker that cannot even initialise is a
                        # configuration problem, not a task fault
                        raise RuntimeError(
                            f"scheduler worker failed to initialise: {body}")
                    continue

                # silence: the drain cycle ended — group-commit whatever
                # the result burst journaled, then check worker liveness
                # and task deadlines
                if on_drain is not None:
                    on_drain()
                for wid in list(procs):
                    proc = procs[wid]
                    if not proc.is_alive():
                        on_worker_death(
                            wid, f"worker exited with code {proc.exitcode}")
                for wid, (tid, deadline, _started) in list(running.items()):
                    if now > deadline:
                        proc = procs.get(wid)
                        if proc is not None:
                            proc.terminate()
                            proc.join(timeout=5.0)
                        on_worker_death(
                            wid, f"task exceeded {self.task_timeout:.0f}s "
                                 "wall-clock timeout (infrastructure, "
                                 "unlike a fuel-budget sample timeout)",
                            kind="timeout")
                if crashes > self.max_crashes:
                    feed_open = False   # unclaimed feed work stays put
                    for tid in list(outstanding) + list(pending) \
                            + list(retries):
                        if not settled(tid):
                            record_failure(
                                tid, "worker crash budget exhausted")
                    pending.clear()
                    retries.clear()
                    break
                maybe_hedge(now)
                # orphan sweep: tasks dispatched to a worker that died
                # between dequeue and its "start" message
                if (outstanding and not running
                        and now - last_message > _STALL_SWEEP
                        and task_q.empty()):
                    for tid in list(outstanding):
                        outstanding.discard(tid)
                        if not settled(tid):
                            live[tid] = 0
                            retries.append(tid)
                    last_message = now
        finally:
            self._shutdown(procs, task_q, result_q)
        return results, failures

    def _shutdown(self, procs, task_q, result_q) -> None:
        # drain the task queue so sentinels are the next thing workers see
        try:
            while True:
                task_q.get_nowait()
        except (stdlib_queue.Empty, OSError):
            pass
        for _ in procs:
            try:
                task_q.put_nowait(None)
            except stdlib_queue.Full:
                break
        deadline = time.monotonic() + 5.0
        for proc in procs.values():
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        task_q.cancel_join_thread()
        task_q.close()
        if hasattr(result_q, "close"):
            result_q.close()
