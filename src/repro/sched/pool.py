"""A fault-isolated multiprocessing worker pool with a bounded queue.

The pool is deliberately generic — it moves ``(task_id, payload)`` pairs
to N worker processes and results back — so the fault-handling logic can
be unit-tested with synthetic crash/hang/raise tasks independently of the
harness.  :mod:`repro.sched.worker` supplies the harness-specific init
and execute functions.

Fault model (the part a naive ``multiprocessing.Pool`` gets wrong):

* a task that **raises** inside a worker is reported and requeued, up to
  ``max_retries`` extra attempts, then recorded as a failure;
* a worker that **dies** (segfault, ``os._exit``, OOM-kill) is detected
  by liveness polling; its in-flight task is requeued and a replacement
  worker is spawned — the run never dies with it;
* a task that **hangs** past ``task_timeout`` gets its worker terminated
  and is treated like a crash;
* repeated crashes trip a circuit breaker (``max_crashes``) that fails
  the remaining tasks instead of respawning forever.

Results are reported through ``on_result`` *before* the corresponding
:class:`TaskFinished` event is emitted, so a sink that aborts the run
(:class:`SchedulerAbort`) is guaranteed the journal already holds every
task it was told about.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as stdlib_queue
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..faults import inject
from .events import (
    EmitFn,
    ProgressSnapshot,
    SOURCE_EXECUTED,
    SOURCE_FAILED,
    SchedulerAbort,
    TaskFinished,
    TaskStarted,
    WorkerCrashed,
    WorkerReplaced,
    payload_counters,
)

#: parent-side poll interval for results / liveness, seconds
_POLL = 0.05
#: seconds of total silence before sweeping for orphaned tasks
_STALL_SWEEP = 2.0


def _pool_context() -> mp.context.BaseContext:
    """fork where available (cheap, inherits the compiled problem bank);
    spawn otherwise."""
    method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(method)


def _poll_result(result_q, timeout: float):
    """Read one message from the result SimpleQueue, or None on timeout.

    The result channel is a SimpleQueue on purpose: its ``put`` writes
    synchronously (no feeder thread), so a worker killed by ``os._exit``
    or a segfault can never take already-reported results down with it —
    with a buffered ``mp.Queue`` the parent would mis-blame (and
    eventually fail) tasks that actually finished.
    """
    reader = getattr(result_q, "_reader", None)
    try:
        if reader is not None:
            if not reader.poll(timeout):
                return None
        elif result_q.empty():          # pragma: no cover - fallback path
            time.sleep(timeout)
            return None
        return result_q.get()
    except (EOFError, OSError):         # torn write from a dying worker
        return None


def _worker_main(worker_id: int, init_fn: Optional[Callable],
                 init_args: tuple, work_fn: Callable,
                 task_q: "mp.Queue", result_q: "mp.Queue") -> None:
    """Worker loop: init once, then execute tasks until the sentinel.

    Every exception is caught and reported — a worker only ever exits via
    the sentinel or by being killed from outside.
    """
    try:
        ctx = init_fn(*init_args) if init_fn is not None else init_args
    except BaseException as exc:  # noqa: BLE001 - must never escape
        result_q.put(("init_error", worker_id, None,
                      f"{type(exc).__name__}: {exc}", 0.0))
        return
    while True:
        item = task_q.get()
        if item is None:
            result_q.put(("bye", worker_id, None, None, 0.0))
            return
        task_id, attempt, payload = item
        result_q.put(("start", worker_id, task_id, None, 0.0))
        if inject.ACTIVE is not None:
            # fork-inherited injector: keys carry the attempt index so a
            # kill rule matching "#a0" takes down only the first dispatch
            # and the requeued attempt survives on the replacement worker
            rule = inject.ACTIVE.fire("sched.worker.kill",
                                      f"{task_id}#a{attempt}")
            if rule is not None:
                os._exit(17)
        began = time.perf_counter()
        try:
            result = work_fn(ctx, payload)
        except BaseException as exc:  # noqa: BLE001 - fault isolation
            result_q.put(("fail", worker_id, task_id,
                          f"{type(exc).__name__}: {exc}",
                          time.perf_counter() - began))
        else:
            result_q.put(("done", worker_id, task_id, result,
                          time.perf_counter() - began))


class WorkerPool:
    """N worker processes fed from a bounded task queue."""

    def __init__(self, jobs: int, work_fn: Callable,
                 init_fn: Optional[Callable] = None,
                 init_args: tuple = (),
                 task_timeout: Optional[float] = 300.0,
                 max_retries: int = 2,
                 queue_bound: Optional[int] = None,
                 emit: Optional[EmitFn] = None,
                 max_crashes: Optional[int] = None,
                 validate: Optional[Callable[[dict, object], bool]] = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.work_fn = work_fn
        self.init_fn = init_fn
        self.init_args = init_args
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        #: optional result validator ``(task_payload, result) -> bool``;
        #: a result that fails validation (e.g. corrupted on the result
        #: channel) is treated exactly like a raised exception: requeued
        #: up to the retry budget, never reported to ``on_result``
        self.validate = validate
        self.queue_bound = queue_bound or max(2 * jobs, 4)
        self.emit = emit or (lambda event: None)
        self.max_crashes = max_crashes if max_crashes is not None \
            else 4 * jobs + 4
        self._ctx = _pool_context()

    # -- lifecycle helpers ---------------------------------------------------

    def _spawn(self, worker_id: int, task_q, result_q):
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self.init_fn, self.init_args, self.work_fn,
                  task_q, result_q),
            daemon=True,
        )
        proc.start()
        return proc

    # -- the run loop --------------------------------------------------------

    def run(self, tasks: Sequence[Tuple[str, dict]],
            on_result: Optional[Callable[[str, dict], None]] = None,
            progress_total: Optional[int] = None,
            ) -> Tuple[Dict[str, dict], Dict[str, str]]:
        """Execute ``tasks``; returns ``(results, failures)``.

        ``on_result(task_id, result)`` runs in the parent, in completion
        order, before the task's ``TaskFinished`` event (journal-then-
        notify).  ``failures`` maps task id → last error string for tasks
        that exhausted their retry budget.
        """
        payloads: Dict[str, dict] = dict(tasks)
        total = len(payloads)
        if progress_total is None:
            progress_total = total
        results: Dict[str, dict] = {}
        failures: Dict[str, str] = {}
        if total == 0:
            return results, failures

        task_q = self._ctx.Queue(maxsize=self.queue_bound + 1)
        result_q = self._ctx.SimpleQueue()
        pending = deque(payloads)
        outstanding: set = set()          # dispatched, not yet finished
        running: Dict[int, Tuple[str, float]] = {}   # worker → (task, deadline)
        attempts: Dict[str, int] = {tid: 0 for tid in payloads}
        procs: Dict[int, mp.process.BaseProcess] = {}
        crashes = 0
        last_message = time.monotonic()

        for wid in range(self.jobs):
            procs[wid] = self._spawn(wid, task_q, result_q)
        next_wid = self.jobs

        def finished() -> int:
            return len(results) + len(failures)

        def fill_queue() -> None:
            while pending and len(outstanding) < self.queue_bound:
                tid = pending.popleft()
                if tid in results or tid in failures:
                    continue
                try:
                    task_q.put_nowait((tid, attempts[tid], payloads[tid]))
                except stdlib_queue.Full:
                    pending.appendleft(tid)
                    return
                attempts[tid] += 1
                outstanding.add(tid)

        def record_failure(tid: str, detail: str) -> None:
            failures[tid] = detail
            outstanding.discard(tid)
            self.emit(TaskFinished(
                task_id=tid, kind=payloads[tid].get("kind", ""),
                source=SOURCE_FAILED, status="system_error", worker=-1,
                duration=0.0, attempts=attempts[tid]))

        def retry_or_fail(tid: str, detail: str) -> None:
            outstanding.discard(tid)
            if attempts[tid] <= self.max_retries:
                pending.append(tid)
            else:
                record_failure(tid, detail)

        def on_worker_death(wid: int, detail: str,
                            kind: str = "crash") -> None:
            nonlocal crashes, next_wid
            crashes += 1
            tid = running.pop(wid, (None, 0.0))[0]
            self.emit(WorkerCrashed(worker=wid, task_id=tid, detail=detail,
                                    kind=kind))
            procs.pop(wid, None)
            if tid is not None and tid not in results:
                retry_or_fail(tid, detail)
            if crashes <= self.max_crashes and finished() < total:
                procs[next_wid] = self._spawn(next_wid, task_q, result_q)
                self.emit(WorkerReplaced(old_worker=wid,
                                         new_worker=next_wid))
                next_wid += 1

        def snapshot() -> None:
            self.emit(ProgressSnapshot(
                done=finished() + (progress_total - total),
                total=progress_total,
                queue_depth=len(outstanding), busy_workers=len(running),
                workers=len(procs)))

        try:
            while finished() < total:
                fill_queue()
                message = _poll_result(result_q, _POLL)
                now = time.monotonic()
                if message is not None:
                    last_message = now
                    kind, wid, tid, body, duration = message
                    if kind == "start":
                        deadline = now + (self.task_timeout or float("inf"))
                        running[wid] = (tid, deadline)
                        self.emit(TaskStarted(
                            task_id=tid,
                            kind=payloads[tid].get("kind", ""), worker=wid))
                    elif kind == "done":
                        running.pop(wid, None)
                        if inject.ACTIVE is not None and inject.ACTIVE.fire(
                                "sched.result.corrupt", tid) is not None:
                            body = {"__corrupted__": True}
                        if self.validate is not None \
                                and tid not in results \
                                and tid not in failures \
                                and not self.validate(payloads[tid], body):
                            retry_or_fail(
                                tid, "result payload failed validation "
                                     "(corrupted on the result channel)")
                            snapshot()
                            continue
                        outstanding.discard(tid)
                        if tid not in results and tid not in failures:
                            results[tid] = body
                            if on_result is not None:
                                on_result(tid, body)
                            self.emit(TaskFinished(
                                task_id=tid,
                                kind=payloads[tid].get("kind", ""),
                                source=SOURCE_EXECUTED,
                                status=str((body or {}).get("status", "")),
                                worker=wid, duration=duration,
                                attempts=attempts[tid],
                                diagnostics=len(
                                    (body or {}).get("diagnostics") or ()),
                                counters=payload_counters(body)))
                            snapshot()
                    elif kind == "fail":
                        running.pop(wid, None)
                        if tid not in results and tid not in failures:
                            retry_or_fail(tid, body)
                            snapshot()
                    elif kind == "init_error":
                        # a worker that cannot even initialise is a
                        # configuration problem, not a task fault
                        raise RuntimeError(
                            f"scheduler worker failed to initialise: {body}")
                    continue

                # silence: check worker liveness and task deadlines
                for wid in list(procs):
                    proc = procs[wid]
                    if not proc.is_alive():
                        on_worker_death(
                            wid, f"worker exited with code {proc.exitcode}")
                for wid, (tid, deadline) in list(running.items()):
                    if now > deadline:
                        proc = procs.get(wid)
                        if proc is not None:
                            proc.terminate()
                            proc.join(timeout=5.0)
                        on_worker_death(
                            wid, f"task exceeded {self.task_timeout:.0f}s "
                                 "wall-clock timeout (infrastructure, "
                                 "unlike a fuel-budget sample timeout)",
                            kind="timeout")
                if crashes > self.max_crashes:
                    for tid in list(outstanding) + list(pending):
                        if tid not in results and tid not in failures:
                            record_failure(
                                tid, "worker crash budget exhausted")
                    pending.clear()
                    break
                # orphan sweep: tasks dispatched to a worker that died
                # between dequeue and its "start" message
                if (outstanding and not running
                        and now - last_message > _STALL_SWEEP
                        and task_q.empty()):
                    for tid in list(outstanding):
                        outstanding.discard(tid)
                        pending.append(tid)
                    last_message = now
        finally:
            self._shutdown(procs, task_q, result_q)
        return results, failures

    def _shutdown(self, procs, task_q, result_q) -> None:
        # drain the task queue so sentinels are the next thing workers see
        try:
            while True:
                task_q.get_nowait()
        except (stdlib_queue.Empty, OSError):
            pass
        for _ in procs:
            try:
                task_q.put_nowait(None)
            except stdlib_queue.Full:
                break
        deadline = time.monotonic() + 5.0
        for proc in procs.values():
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        task_q.cancel_join_thread()
        task_q.close()
        if hasattr(result_q, "close"):
            result_q.close()
