"""Orchestration: plan → (journal replay | cache hits | pool execution)
→ deterministic assembly.

``run_scheduled`` is the parallel counterpart of the serial loop in
:func:`repro.harness.evaluate.evaluate_model` and produces a
byte-identical ``EvalRun`` for the same configuration: results are keyed
by content-hash task id and reassembled in plan order, so neither worker
count nor completion order can leak into the output.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Optional, Tuple, Union

from ..bench.registry import PCGBench
from ..guard.health import GuardPolicy
from ..harness.evaluate import EvalRun, effective_samples
from ..harness.runner import Runner
from ..models.llm import SimulatedLLM
from .events import (
    EmitFn,
    RunFinished,
    SOURCE_CACHE,
    SOURCE_EXECUTED,
    SOURCE_JOURNAL,
    StageFinished,
    TaskFinished,
    Telemetry,
    chain,
)
from .journal import Journal, SampleCache
from .plan import assemble, build_plan
from .pool import WorkerPool
from .predict import (
    DISPATCH_LPT,
    DurationLedger,
    ledger_path_for,
    order_tasks,
    plan_keys,
    predict_plan,
)
from .worker import (
    execute_task,
    failure_payload,
    init_harness,
    quarantine_payload,
    valid_result,
)

#: statuses that are never journaled or cached: the infrastructure (not
#: the sample) failed, so a resumed run must resample the task.
#: ``quarantined`` is deliberately NOT here — quarantine is a sticky
#: verdict: it is journaled and replayed on resume, never re-executed.
TRANSIENT_STATUSES = frozenset({"system_error"})
_TRANSIENT_STATUSES = TRANSIENT_STATUSES


def run_scheduled(
    llm: SimulatedLLM,
    bench: PCGBench,
    num_samples: int = 8,
    temperature: float = 0.2,
    with_timing: bool = False,
    runner: Optional[Runner] = None,
    seed: int = 1,
    jobs: int = 1,
    journal_path: Optional[Union[str, Path]] = None,
    resume: bool = False,
    sample_cache_dir: Optional[Union[str, Path]] = None,
    emit: Optional[EmitFn] = None,
    progress: Optional[Callable[[str], None]] = None,
    task_timeout: Optional[float] = 300.0,
    max_retries: int = 2,
    profile: bool = False,
    guard: Optional[GuardPolicy] = None,
    dispatch: str = DISPATCH_LPT,
    ledger_path: Optional[Union[str, Path]] = None,
) -> Tuple[EvalRun, Telemetry]:
    """Run the §7 pipeline through the scheduler; returns (run, telemetry).

    With ``journal_path`` set, every finished task is checkpointed and a
    later call with ``resume=True`` replays finished work instead of
    recomputing it.  With ``sample_cache_dir`` set, results are also
    stored content-addressed and shared across runs.  ``guard``
    configures supervision (poison-task quarantine + straggler hedging,
    :class:`repro.guard.GuardPolicy`); the default policy has both on.

    ``dispatch`` picks the ready-queue policy
    (:mod:`repro.sched.predict`): ``"lpt"`` (default) dispatches
    longest-predicted-first to cut the straggler tail, ``"fifo"`` keeps
    plan order, ``"random"`` is a seed-keyed shuffle.  Predictions come
    from the :class:`~repro.sched.predict.DurationLedger` at
    ``ledger_path`` (default: ``durations.jsonl`` inside
    ``sample_cache_dir``) with a static estimator fallback; observed
    durations are fed back after every executed task.  Policy choice is
    pure throughput: ``assemble`` rebuilds the run in plan order, so
    every policy yields byte-identical output.
    """
    order_tasks((), dispatch)           # reject bad policy before any work
    runner = runner or Runner()
    num_samples = effective_samples(num_samples)
    telemetry = Telemetry()
    began = time.monotonic()

    stage = time.monotonic()
    plan = build_plan(llm, bench, num_samples, temperature, with_timing,
                      runner, seed, profile=profile)
    # cost-predictive dispatch: ledger history (EMA seconds per feature
    # key) where warm, static feature estimates where cold
    if ledger_path is None and sample_cache_dir is not None:
        ledger_path = ledger_path_for(sample_cache_dir)
    ledger = (DurationLedger(ledger_path)
              if ledger_path is not None else None)
    keys = plan_keys(plan)
    predictions = predict_plan(plan, runner, ledger)

    def observe_duration(event: object) -> None:
        if (ledger is not None and isinstance(event, TaskFinished)
                and event.source == SOURCE_EXECUTED
                and event.task_id in keys):
            ledger.observe(keys[event.task_id], event.duration)

    sink = chain(observe_duration, telemetry, emit)
    sink(StageFinished(stage="plan", seconds=time.monotonic() - stage))

    stage = time.monotonic()
    run_key = plan.run_key()
    results: dict = {}
    journal = Journal(journal_path) if journal_path is not None else None
    try:
        if journal is not None and resume:
            for task_id, payload in journal.load(run_key).items():
                spec = plan.tasks.get(task_id)
                if spec is None:        # journal entry from a stale plan
                    continue
                if str(payload.get("status", "")) in _TRANSIENT_STATUSES:
                    continue            # infra failure: resample, not replay
                results[task_id] = payload
                sink(TaskFinished(
                    task_id=task_id, kind=spec.kind, source=SOURCE_JOURNAL,
                    status=str(payload.get("status", "")),
                    diagnostics=len(payload.get("diagnostics") or ())))
        if journal is not None:
            journal.start(run_key, fresh=not resume)

        cache = (SampleCache(sample_cache_dir)
                 if sample_cache_dir is not None else None)
        remaining = []
        for task_id, spec in plan.tasks.items():
            if task_id in results:
                continue
            if cache is not None:
                hit = cache.get(task_id)
                if hit is not None:
                    results[task_id] = hit
                    if journal is not None:
                        journal.append(task_id, hit)
                    sink(TaskFinished(
                        task_id=task_id, kind=spec.kind, source=SOURCE_CACHE,
                        status=str(hit.get("status", "")),
                        diagnostics=len(hit.get("diagnostics") or ())))
                    continue
            remaining.append(task_id)
        # throughput-only reordering: assemble() rebuilds in plan order
        remaining = order_tasks(remaining, dispatch, predictions, seed=seed)

        if remaining:
            def on_result(task_id: str, payload: dict) -> None:
                if str(payload.get("status", "")) in _TRANSIENT_STATUSES:
                    return              # never persist infra failures
                if journal is not None:
                    journal.append(task_id, payload)
                if cache is not None:
                    cache.put(task_id, payload)

            def on_drain() -> None:
                # one fsync per drain cycle instead of one per record
                if journal is not None:
                    journal.commit()
                if ledger is not None:
                    ledger.flush()

            hedge_seed = (ledger.seed_durations(keys[tid]
                                                for tid in remaining)
                          if ledger is not None else ())
            pool = WorkerPool(
                jobs=jobs, work_fn=execute_task, init_fn=init_harness,
                init_args=(runner, plan.bench_ptypes, plan.bench_models),
                task_timeout=task_timeout, max_retries=max_retries,
                emit=sink, validate=valid_result,
                guard=guard, quarantine=quarantine_payload)
            executed, failures = pool.run(
                [(tid, plan.tasks[tid].payload()) for tid in remaining],
                on_result=on_result,
                progress_total=len(plan.tasks),
                predictions=predictions,
                hedge_seed=hedge_seed,
                on_drain=on_drain)
            results.update(executed)
            for task_id, detail in failures.items():
                results[task_id] = failure_payload(
                    plan.tasks[task_id].kind, detail)
        sink(StageFinished(stage="execute", seconds=time.monotonic() - stage))

        stage = time.monotonic()
        run = assemble(plan, results)
        if progress is not None:
            for pp in plan.prompts:
                progress(pp.uid)
        sink(StageFinished(stage="assemble",
                           seconds=time.monotonic() - stage))
        sink(RunFinished(
            total_tasks=len(plan.tasks), executed=telemetry.executed,
            from_journal=telemetry.from_journal,
            from_cache=telemetry.from_cache, failed=telemetry.failed,
            wall_seconds=time.monotonic() - began,
            quarantined=telemetry.quarantined))
    finally:
        if journal is not None:
            journal.close()
        if ledger is not None:
            ledger.close()
    return run, telemetry
