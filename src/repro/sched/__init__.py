"""repro.sched — a parallel, resumable evaluation scheduler.

Turns one ``(llm, bench, config)`` evaluation into a deterministic job
graph of independent ``(prompt, sample)`` and baseline-timing tasks,
executes it on a fault-isolated multiprocessing pool, checkpoints every
finished task to a JSONL journal (resume without recomputation), and
deduplicates identical generated sources through a content-addressed
sample cache.  See ``docs/scheduler.md``.

The public entry points most callers want are ``evaluate_model(...,
jobs=N)`` / ``EvalCache.get_or_run(..., jobs=N, resume=True)`` in
:mod:`repro.harness`; this package is the machinery underneath.
"""

from .events import (
    ProgressPrinter,
    ProgressSnapshot,
    RunFinished,
    SOURCE_CACHE,
    SOURCE_EXECUTED,
    SOURCE_FAILED,
    SOURCE_JOURNAL,
    SOURCE_QUARANTINED,
    SchedulerAbort,
    StageFinished,
    TaskFinished,
    TaskHedged,
    TaskStarted,
    Telemetry,
    WorkerCrashed,
    WorkerReplaced,
    chain,
)
from .journal import Journal, SampleCache, journal_path_for
from .plan import (
    KIND_BASELINE,
    KIND_SAMPLE,
    Plan,
    PromptPlan,
    SampleSlot,
    TaskSpec,
    assemble,
    baseline_task_id,
    bench_spec,
    build_plan,
    runner_fingerprint,
    sample_task_id,
    shard_for,
)
from .pool import WorkerPool
from .predict import (
    CostEstimator,
    DISPATCH_FIFO,
    DISPATCH_LPT,
    DISPATCH_POLICIES,
    DISPATCH_RANDOM,
    DurationLedger,
    PRED_ESTIMATOR,
    PRED_LEDGER,
    feature_key,
    ledger_path_for,
    order_tasks,
    plan_keys,
    predict_plan,
)
from .scheduler import TRANSIENT_STATUSES, run_scheduled
from .worker import (execute_task, failure_payload, init_harness,
                     quarantine_payload)

__all__ = [
    # plan
    "Plan", "PromptPlan", "SampleSlot", "TaskSpec", "build_plan", "assemble",
    "sample_task_id", "baseline_task_id", "runner_fingerprint", "bench_spec",
    "shard_for", "KIND_SAMPLE", "KIND_BASELINE",
    # pool + worker
    "WorkerPool", "init_harness", "execute_task", "failure_payload",
    "quarantine_payload",
    # journal
    "Journal", "SampleCache", "journal_path_for",
    # events
    "Telemetry", "TaskStarted", "TaskFinished", "TaskHedged",
    "WorkerCrashed", "WorkerReplaced", "ProgressSnapshot", "StageFinished",
    "RunFinished", "ProgressPrinter", "SchedulerAbort", "chain",
    "SOURCE_EXECUTED", "SOURCE_JOURNAL", "SOURCE_CACHE", "SOURCE_FAILED",
    "SOURCE_QUARANTINED",
    # cost-predictive dispatch
    "CostEstimator", "DurationLedger", "feature_key", "ledger_path_for",
    "order_tasks", "plan_keys", "predict_plan",
    "DISPATCH_LPT", "DISPATCH_FIFO", "DISPATCH_RANDOM", "DISPATCH_POLICIES",
    "PRED_LEDGER", "PRED_ESTIMATOR",
    # orchestration
    "run_scheduled", "TRANSIENT_STATUSES",
]
