"""Structured scheduler telemetry (progress, worker health, stage times).

Every observable state change in a scheduled evaluation is emitted as a
small frozen dataclass through a single callback (``EmitFn``).  Consumers
range from the CLI progress printer to the throughput benchmarks to the
resumability tests, which count how many tasks were *executed* vs served
from the journal or the content-addressed sample cache.

An emit callback may raise :class:`SchedulerAbort` to stop a run
gracefully: the pool drains its workers and the exception propagates to
the caller with the journal already containing every finished task — the
hook the interrupt/resume tests (and a Ctrl-C handler) build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: where a task's result came from
SOURCE_EXECUTED = "executed"    # computed by a worker this run
SOURCE_JOURNAL = "journal"      # replayed from the resume journal
SOURCE_CACHE = "cache"          # content-addressed sample cache hit
SOURCE_FAILED = "failed"        # retry budget exhausted; placeholder result
SOURCE_QUARANTINED = "quarantined"  # poison task pulled by the HealthLedger


class SchedulerAbort(Exception):
    """Raised by an event sink to stop a scheduled run gracefully."""


@dataclass(frozen=True)
class TaskStarted:
    task_id: str
    kind: str                   # "sample" | "baseline"
    worker: int


@dataclass(frozen=True)
class TaskFinished:
    task_id: str
    kind: str
    source: str                 # one of the SOURCE_* constants
    status: str = ""            # harness status for sample tasks
    worker: int = -1
    duration: float = 0.0       # wall seconds inside the worker loop
    attempts: int = 1
    diagnostics: int = 0        # MiniParSan findings on the result
    #: observability riders from the worker payload: vectorized-tier
    #: counters (vec_bulk_loops / vec_bulk_iters / vec_fallbacks) and the
    #: task's compile-cache delta (compile_cache_hits / _misses).  Only
    #: executed tasks carry them — replays describe work already counted.
    counters: Dict[str, int] = field(default_factory=dict)
    #: True when the accepted result came from a speculative hedge
    #: dispatch rather than the primary one (telemetry only — the bytes
    #: of the result are identical either way)
    hedged: bool = False
    #: cost prediction the dispatcher held for this task (0.0 when no
    #: prediction existed) and its provenance: "ledger" (seconds, from
    #: observed history) or "estimator" (arbitrary units, static
    #: features).  Only executed tasks carry one — replays were never
    #: dispatched.  See :mod:`repro.sched.predict`.
    predicted: float = 0.0
    predicted_source: str = ""


@dataclass(frozen=True)
class TaskHedged:
    """A straggling task got a speculative duplicate on an idle worker."""

    task_id: str
    kind: str
    #: worker currently running the straggling primary copy
    worker: int
    #: seconds the primary had been running when the hedge launched
    elapsed: float
    #: straggler cut (quantile * multiplier) that triggered the hedge
    threshold: float


@dataclass(frozen=True)
class WorkerCrashed:
    worker: int
    task_id: Optional[str]
    detail: str
    #: "crash" (died on its own) or "timeout" (killed by the parent's
    #: wall-clock deadline — an infrastructure fault, distinct from a
    #: sample exhausting its fuel budget inside the worker)
    kind: str = "crash"


@dataclass(frozen=True)
class WorkerReplaced:
    old_worker: int
    new_worker: int


@dataclass(frozen=True)
class ProgressSnapshot:
    done: int
    total: int
    queue_depth: int            # tasks dispatched but not finished
    busy_workers: int
    workers: int


@dataclass(frozen=True)
class StageFinished:
    stage: str                  # "plan" | "execute" | "assemble"
    seconds: float


@dataclass(frozen=True)
class RunFinished:
    total_tasks: int
    executed: int
    from_journal: int
    from_cache: int
    failed: int
    wall_seconds: float
    quarantined: int = 0


def payload_counters(body: object) -> Dict[str, int]:
    """Extract the observability counters from a worker result payload."""
    out: Dict[str, int] = {}
    if not isinstance(body, dict):
        return out
    vec = body.get("vec")
    if isinstance(vec, dict):
        for key in ("bulk_loops", "bulk_iters", "fallbacks"):
            try:
                out[f"vec_{key}"] = int(vec.get(key, 0))
            except (TypeError, ValueError):
                pass
    cache = body.get("compile_cache")
    if isinstance(cache, dict):
        for key in ("hits", "misses"):
            try:
                out[f"compile_cache_{key}"] = int(cache.get(key, 0))
            except (TypeError, ValueError):
                pass
    return out


EmitFn = Callable[[object], None]


def chain(*sinks: Optional[EmitFn]) -> EmitFn:
    """Compose event sinks; ``None`` entries are skipped."""
    live = [s for s in sinks if s is not None]

    def emit(event: object) -> None:
        for sink in live:
            sink(event)

    return emit


@dataclass
class Telemetry:
    """Aggregating event sink: counters the tests and benchmarks assert on."""

    counts: Dict[str, int] = field(default_factory=dict)
    statuses: Dict[str, int] = field(default_factory=dict)
    diagnostics: int = 0
    provenance: Dict[str, str] = field(default_factory=dict)
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    busy_seconds: float = 0.0
    crashes: int = 0
    #: subset of ``crashes`` that were wall-clock deadline kills — the
    #: infrastructure timeouts, reported apart from sample ``timeout``
    #: statuses (which mean the sample itself hung)
    infra_timeouts: int = 0
    retries: int = 0
    workers: int = 0
    wall_seconds: float = 0.0
    #: speculative duplicates launched for straggling tasks, and how
    #: many accepted results came from such a duplicate
    hedges: int = 0
    hedge_wins: int = 0
    #: vectorized-tier counters summed over executed tasks
    vec_bulk_loops: int = 0
    vec_bulk_iters: int = 0
    vec_fallbacks: int = 0
    #: compile-cache traffic summed over executed tasks
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0
    #: cost-prediction provenance over executed tasks (repro.sched.predict):
    #: how many dispatches carried a ledger-history prediction vs the
    #: static-estimator fallback — the ledger *hit rate* numerator and
    #: denominator
    ledger_predictions: int = 0
    estimator_predictions: int = 0
    #: predicted-vs-actual error, accumulated only over ledger-sourced
    #: predictions (both sides in seconds; estimator units are rank-only
    #: and would pollute a seconds-denominated error)
    pred_samples: int = 0
    pred_abs_err_seconds: float = 0.0
    events: List[object] = field(default_factory=list)
    keep_events: bool = False

    def __call__(self, event: object) -> None:
        if self.keep_events:
            self.events.append(event)
        if isinstance(event, TaskFinished):
            self.counts[event.source] = self.counts.get(event.source, 0) + 1
            self.provenance[event.task_id] = event.source
            if event.status:
                self.statuses[event.status] = \
                    self.statuses.get(event.status, 0) + 1
            self.busy_seconds += event.duration
            self.retries += max(0, event.attempts - 1)
            self.diagnostics += event.diagnostics
            if event.hedged:
                self.hedge_wins += 1
            c = event.counters
            self.vec_bulk_loops += c.get("vec_bulk_loops", 0)
            self.vec_bulk_iters += c.get("vec_bulk_iters", 0)
            self.vec_fallbacks += c.get("vec_fallbacks", 0)
            self.compile_cache_hits += c.get("compile_cache_hits", 0)
            self.compile_cache_misses += c.get("compile_cache_misses", 0)
            if event.source == SOURCE_EXECUTED:
                if event.predicted_source == "ledger":
                    self.ledger_predictions += 1
                    self.pred_samples += 1
                    self.pred_abs_err_seconds += abs(
                        event.duration - event.predicted)
                elif event.predicted_source == "estimator":
                    self.estimator_predictions += 1
        elif isinstance(event, TaskHedged):
            self.hedges += 1
        elif isinstance(event, WorkerCrashed):
            self.crashes += 1
            if event.kind == "timeout":
                self.infra_timeouts += 1
        elif isinstance(event, StageFinished):
            self.stage_seconds[event.stage] = event.seconds
        elif isinstance(event, ProgressSnapshot):
            self.workers = max(self.workers, event.workers)
        elif isinstance(event, RunFinished):
            self.wall_seconds = event.wall_seconds

    def merge(self, other: "Telemetry") -> None:
        """Fold another Telemetry into this one (e.g. per-shard sinks of a
        sharded run merged into the run-level aggregate)."""
        for key, val in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + val
        for key, val in other.statuses.items():
            self.statuses[key] = self.statuses.get(key, 0) + val
        self.diagnostics += other.diagnostics
        self.provenance.update(other.provenance)
        for stage, seconds in other.stage_seconds.items():
            self.stage_seconds[stage] = \
                self.stage_seconds.get(stage, 0.0) + seconds
        self.busy_seconds += other.busy_seconds
        self.crashes += other.crashes
        self.infra_timeouts += other.infra_timeouts
        self.retries += other.retries
        self.hedges += other.hedges
        self.hedge_wins += other.hedge_wins
        self.vec_bulk_loops += other.vec_bulk_loops
        self.vec_bulk_iters += other.vec_bulk_iters
        self.vec_fallbacks += other.vec_fallbacks
        self.compile_cache_hits += other.compile_cache_hits
        self.compile_cache_misses += other.compile_cache_misses
        self.ledger_predictions += other.ledger_predictions
        self.estimator_predictions += other.estimator_predictions
        self.pred_samples += other.pred_samples
        self.pred_abs_err_seconds += other.pred_abs_err_seconds
        self.workers += other.workers
        self.wall_seconds = max(self.wall_seconds, other.wall_seconds)
        if self.keep_events:
            self.events.extend(other.events)

    # -- derived views -------------------------------------------------------

    @property
    def executed(self) -> int:
        return self.counts.get(SOURCE_EXECUTED, 0)

    @property
    def from_journal(self) -> int:
        return self.counts.get(SOURCE_JOURNAL, 0)

    @property
    def from_cache(self) -> int:
        return self.counts.get(SOURCE_CACHE, 0)

    @property
    def failed(self) -> int:
        return self.counts.get(SOURCE_FAILED, 0)

    @property
    def quarantined(self) -> int:
        return self.counts.get(SOURCE_QUARANTINED, 0)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def ledger_hit_rate(self) -> float:
        """Fraction of executed-task dispatches predicted from ledger
        history (vs the static-estimator fallback)."""
        denom = self.ledger_predictions + self.estimator_predictions
        return self.ledger_predictions / denom if denom else 0.0

    def pred_mae_seconds(self) -> float:
        """Mean absolute predicted-vs-actual error over ledger-sourced
        predictions, seconds."""
        if not self.pred_samples:
            return 0.0
        return self.pred_abs_err_seconds / self.pred_samples

    def utilization(self) -> float:
        """Mean fraction of run wall-clock each worker spent on tasks."""
        if self.workers <= 0 or self.wall_seconds <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / (self.workers * self.wall_seconds))

    def executed_ids(self) -> List[str]:
        return [t for t, s in self.provenance.items()
                if s == SOURCE_EXECUTED]


class ProgressPrinter:
    """Small CLI sink: one status line every ``every`` finished tasks."""

    def __init__(self, write: Callable[[str], None], every: int = 25):
        self.write = write
        self.every = max(1, every)
        self._done = 0

    def __call__(self, event: object) -> None:
        if isinstance(event, TaskFinished):
            self._done += 1
        elif isinstance(event, ProgressSnapshot):
            if event.done and (event.done % self.every == 0
                               or event.done == event.total):
                self.write(
                    f"sched: {event.done}/{event.total} tasks, "
                    f"{event.busy_workers}/{event.workers} workers busy, "
                    f"queue depth {event.queue_depth}"
                )
        elif isinstance(event, WorkerCrashed):
            self.write(f"sched: worker {event.worker} crashed "
                       f"({event.detail}); requeueing")
        elif isinstance(event, RunFinished):
            quarantined = (f", {event.quarantined} quarantined"
                           if event.quarantined else "")
            self.write(
                f"sched: done — {event.executed} executed, "
                f"{event.from_journal} from journal, "
                f"{event.from_cache} from cache, {event.failed} failed"
                f"{quarantined} in {event.wall_seconds:.2f}s"
            )
