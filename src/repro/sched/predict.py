"""Cost prediction for dispatch: the duration ledger and the estimator.

The evaluation workload is embarrassingly parallel but badly *skewed*:
a timed sample sweeps every problem size (and every thread/rank count),
while a sample that fails the static screen costs microseconds.  A FIFO
dispatcher therefore routinely strands a worker behind one long task
after every short task has drained — the classic longest-task-last
makespan pathology.  This module supplies the two ingredients the
scheduler and the service use to do better:

* :class:`DurationLedger` — a durable, append-only JSONL record of
  observed per-task wall times, keyed not by task id (content hashes
  almost never repeat across configurations) but by a coarse *feature
  key* ``(kind, problem, execution model, timed/profiled)``.  Tasks
  sharing a key have near-identical cost structure — same sweep sizes,
  same simulated runtime — so the ledger's per-key EMA is a good
  predictor from the second run onwards.  The file lives next to the
  sample cache, is merged on load (any process may append; torn tails
  and malformed lines are skipped, exactly like the journal's
  committed-iff-newline rule), and is compacted into per-key summary
  records when it grows.

* :class:`CostEstimator` — a static fallback for cold keys, scoring
  *relative* cost from features alone: source length, loop count, the
  timing-sweep size implied by the execution model, and a cheap textual
  vectorizability screen (bodies the tier-2 recognizer can lower run
  much faster).  Its unit is arbitrary — estimates only ever *rank*
  tasks, they are never mixed into seconds-denominated telemetry.

Neither prediction can perturb results: dispatch order is throughput
policy, and :func:`repro.sched.plan.assemble` rebuilds every
``EvalRun`` in plan order regardless of execution order.  That is the
whole byte-identity argument, and ``tests/sched/test_dispatch.py``
pins it for every problem under all seven execution models.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import threading
from collections import deque
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from ..harness.evaluate import ConfigurationError
from ..harness.runner import Runner
from .plan import KIND_BASELINE, KIND_SAMPLE, Plan

#: dispatch policies for the pool's ready queue
DISPATCH_LPT = "lpt"            # longest-predicted-first (default)
DISPATCH_FIFO = "fifo"          # plan first-use order (the pre-ledger order)
DISPATCH_RANDOM = "random"      # seed-keyed deterministic shuffle
DISPATCH_POLICIES = (DISPATCH_LPT, DISPATCH_FIFO, DISPATCH_RANDOM)

#: prediction provenance markers carried on TaskFinished events
PRED_LEDGER = "ledger"          # seconds, from observed history
PRED_ESTIMATOR = "estimator"    # arbitrary units, from static features

#: buffered observations before an automatic flush
_FLUSH_EVERY = 64
#: observation lines on disk that trigger compaction on close
_COMPACT_AT = 8192
#: recent observations kept per key (quantiles + hedge seeding)
_RECENT_CAP = 64


def feature_key(kind: str, problem: str, exec_model: str = "",
                with_timing: bool = False, profile: bool = False) -> str:
    """Coarse cost-class key shared by tasks with the same cost shape.

    Deliberately excludes the source text and the runner fingerprint:
    two samples for the same problem under the same execution model and
    mode cost nearly the same regardless of their exact bytes, and a key
    that almost never repeats would never accumulate history.
    """
    mode = ("timed" if with_timing else "plain") + ("-prof" if profile else "")
    return f"{kind}|{problem}|{exec_model}|{mode}"


def _nearest_rank(values: Sequence[float], q: float) -> float:
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


class _KeyStats:
    """In-memory summary of one feature key's observations."""

    __slots__ = ("count", "ema", "recent")

    def __init__(self) -> None:
        self.count = 0
        self.ema = 0.0
        self.recent: Deque[float] = deque(maxlen=_RECENT_CAP)


class DurationLedger:
    """Durable per-key wall-time history with EMA + quantile summaries.

    One JSONL observation per line (``{"k": key, "d": seconds}``), plus
    optional ``{"kind": "summary", ...}`` records written by compaction.
    Appends are buffered and written as whole lines in a single
    ``write`` call, so concurrent appenders (shard threads, parallel
    runs sharing a cache directory) interleave at line granularity and
    a torn tail from a killed process is skipped on the next load —
    losing buffered observations only costs prediction accuracy, never
    correctness.  All methods are thread-safe.
    """

    def __init__(self, path: Path | str, alpha: float = 0.3):
        self.path = Path(path)
        self.alpha = alpha
        self._lock = threading.Lock()
        self._stats: Dict[str, _KeyStats] = {}
        self._buffer: List[str] = []
        self._fh = None
        self._disk_lines = 0
        self._load()

    # -- loading / merging ---------------------------------------------------

    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        committed, newline, _torn = text.rpartition("\n")
        if not newline:
            return
        for line in committed.split("\n"):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue                # torn or corrupt line: skip
            if not isinstance(record, dict):
                continue
            self._disk_lines += 1
            key = record.get("k")
            if not isinstance(key, str):
                continue
            if record.get("kind") == "summary":
                self._absorb_summary(key, record)
                continue
            dur = record.get("d")
            if isinstance(dur, (int, float)) and dur >= 0:
                self._absorb(key, float(dur))

    def _absorb(self, key: str, duration: float) -> None:
        st = self._stats.setdefault(key, _KeyStats())
        st.count += 1
        st.ema = (duration if st.count == 1
                  else self.alpha * duration + (1 - self.alpha) * st.ema)
        st.recent.append(duration)

    def _absorb_summary(self, key: str, record: dict) -> None:
        st = self._stats.setdefault(key, _KeyStats())
        try:
            count = int(record.get("count", 0))
            ema = float(record.get("ema", 0.0))
            recent = [float(v) for v in record.get("recent", ())]
        except (TypeError, ValueError):
            return
        if st.count == 0:
            st.count, st.ema = count, ema
            st.recent.extend(recent)
        else:                           # merged file: replay as observations
            st.count += count
            for v in recent:
                st.ema = self.alpha * v + (1 - self.alpha) * st.ema
                st.recent.append(v)

    # -- recording -----------------------------------------------------------

    def observe(self, key: str, duration: float) -> None:
        """Record one observed wall time (seconds) for ``key``."""
        if duration < 0:
            return
        with self._lock:
            self._absorb(key, float(duration))
            self._buffer.append(json.dumps(
                {"k": key, "d": round(float(duration), 6)}) + "\n")
            if len(self._buffer) >= _FLUSH_EVERY:
                self._flush_locked()

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._buffer:
            return
        if self._fh is None:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("a", encoding="utf-8")
            except OSError:             # read-only cache dir: predictions
                self._buffer.clear()    # still work, history just not saved
                return
        try:
            self._fh.write("".join(self._buffer))
            self._fh.flush()
        except OSError:
            pass
        self._disk_lines += len(self._buffer)
        self._buffer.clear()

    def close(self) -> None:
        with self._lock:
            self._flush_locked()
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            if self._disk_lines > _COMPACT_AT:
                self._compact_locked()

    def _compact_locked(self) -> None:
        """Rewrite the file as one summary line per key (atomic)."""
        tmp = self.path.with_suffix(".tmp")
        try:
            with tmp.open("w", encoding="utf-8") as fh:
                for key in sorted(self._stats):
                    st = self._stats[key]
                    fh.write(json.dumps({
                        "kind": "summary", "k": key, "count": st.count,
                        "ema": round(st.ema, 6),
                        "recent": [round(v, 6) for v in st.recent],
                    }) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            self._disk_lines = len(self._stats)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

    # -- prediction ----------------------------------------------------------

    def predict(self, key: str) -> Optional[float]:
        """EMA wall seconds for ``key``, or None while the key is cold."""
        with self._lock:
            st = self._stats.get(key)
            return st.ema if st is not None and st.count > 0 else None

    def quantile(self, key: str, q: float) -> Optional[float]:
        """Nearest-rank quantile of the key's recent observations."""
        with self._lock:
            st = self._stats.get(key)
            if st is None or not st.recent:
                return None
            return _nearest_rank(list(st.recent), q)

    def seed_durations(self, keys: Iterable[str],
                       cap: int = 256) -> List[float]:
        """Recent observed durations across ``keys`` — the HedgeBook
        warm-start sample.  Returns ``[]`` when every key is cold (the
        graceful cold-ledger fallback: hedging then warms up in-run,
        exactly as before the ledger existed)."""
        out: List[float] = []
        with self._lock:
            for key in sorted(set(keys)):
                st = self._stats.get(key)
                if st is not None:
                    out.extend(st.recent)
        return out[-cap:] if len(out) > cap else out

    @property
    def keys(self) -> int:
        with self._lock:
            return len(self._stats)

    def __enter__(self) -> "DurationLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: textual markers of bodies the tier-2 recognizer will not lower; their
#: presence predicts scalar-tier (slower) execution.  A heuristic over
#: source text — rank-only, it never has to be exactly right.
_VEC_BLOCKERS = ("/", "%", "while", "if ", "sqrt", "exp(", "log(", "pow(")


class CostEstimator:
    """Static relative-cost model for keys with no ledger history.

    The output unit is arbitrary ("cost units", roughly milliseconds of
    a plain untimed sample): estimates are only ever compared with each
    other to *order* a ready queue or balance shard bins, so only the
    ranking matters.  Estimator values are flagged ``estimator`` on
    events and excluded from the seconds-denominated prediction-error
    telemetry.
    """

    def __init__(self, runner: Optional[Runner] = None):
        self.runner = runner or Runner()

    def sweep_points(self, exec_model: str) -> int:
        """Timing configurations the runner sweeps for one sample."""
        if exec_model in ("openmp", "kokkos"):
            return len(self.runner.thread_counts)
        if exec_model == "mpi":
            return len(self.runner.mpi_rank_counts)
        return 1                        # serial / mpi+omp / cuda / hip

    def estimate_sample(self, source: str, exec_model: str,
                        with_timing: bool, profile: bool = False) -> float:
        cost = 1.0 + len(source) / 2000.0
        cost += 0.2 * (source.count("for ") + source.count("pfor "))
        if with_timing:
            # a timed sample reruns the program across the n-sweep and
            # every thread/rank configuration — the dominant cost axis
            cost *= 4.0 * self.sweep_points(exec_model)
        if profile:
            cost *= 1.15
        if self.runner.vectorize and not any(
                marker in source for marker in _VEC_BLOCKERS):
            cost *= 0.5                 # likely lowered to the numpy tier
        return cost

    def estimate_baseline(self) -> float:
        """Baselines run the handwritten serial solution over the full
        n-sweep — reliably one of the longest tasks in a timed run."""
        return 8.0


def predict_plan(plan: Plan, runner: Optional[Runner] = None,
                 ledger: Optional[DurationLedger] = None
                 ) -> Dict[str, Tuple[float, str]]:
    """Per-task cost predictions: task id → ``(value, provenance)``.

    Ledger history wins (seconds, ``"ledger"``); cold keys fall back to
    the static estimator (arbitrary units, ``"estimator"``).  Mixing the
    two units inside one ordering is deliberate: both rank long before
    short, and LPT only consumes the ranking.
    """
    est = CostEstimator(runner)
    out: Dict[str, Tuple[float, str]] = {}
    for tid, key in plan_keys(plan).items():
        hist = ledger.predict(key) if ledger is not None else None
        if hist is not None:
            out[tid] = (hist, PRED_LEDGER)
            continue
        spec = plan.tasks[tid]
        if spec.kind == KIND_BASELINE:
            out[tid] = (est.estimate_baseline(), PRED_ESTIMATOR)
        else:
            exec_model = key.split("|")[2]
            out[tid] = (est.estimate_sample(
                spec.source, exec_model, spec.with_timing, spec.profile),
                PRED_ESTIMATOR)
    return out


def plan_keys(plan: Plan) -> Dict[str, str]:
    """Feature key for every task in the plan (task id → key)."""
    keys: Dict[str, str] = {}
    for pp in plan.prompts:
        if pp.baseline_task is not None:
            keys.setdefault(pp.baseline_task, feature_key(
                KIND_BASELINE, pp.problem, "", with_timing=True))
        for slot in pp.slots:
            spec = plan.tasks[slot.task_id]
            keys.setdefault(slot.task_id, feature_key(
                KIND_SAMPLE, pp.problem, pp.exec_model,
                spec.with_timing, spec.profile))
    return keys


def order_tasks(task_ids: Sequence[str], policy: str,
                predictions: Optional[Dict[str, Tuple[float, str]]] = None,
                seed: int = 0) -> List[str]:
    """Order the ready queue under a dispatch policy — deterministically.

    ``lpt`` sorts longest-predicted-first with the plan index as the
    stable tie-break, ``fifo`` keeps first-use plan order, ``random`` is
    a seed-keyed hash shuffle (useful as a differential-testing foil:
    any order must produce the same bytes).
    """
    if policy not in DISPATCH_POLICIES:
        raise ConfigurationError(
            f"unknown dispatch policy {policy!r}; "
            f"choose from {list(DISPATCH_POLICIES)}")
    ids = list(task_ids)
    if policy == DISPATCH_FIFO or len(ids) <= 1:
        return ids
    if policy == DISPATCH_RANDOM:
        def shuffle_key(tid: str) -> str:
            return hashlib.sha256(f"{seed}:{tid}".encode()).hexdigest()
        return sorted(ids, key=shuffle_key)
    index = {tid: i for i, tid in enumerate(ids)}
    preds = predictions or {}

    def lpt_key(tid: str) -> Tuple[float, int]:
        value = preds.get(tid, (0.0, ""))[0]
        return (-value, index[tid])

    return sorted(ids, key=lpt_key)


def ledger_path_for(cache_root: Path | str) -> Path:
    """Canonical ledger location next to a sample-cache directory.

    Cache shards are two-hex-digit subdirectories, so a fixed filename
    at the root can never collide with an entry."""
    return Path(cache_root) / "durations.jsonl"


__all__ = [
    "CostEstimator", "DISPATCH_FIFO", "DISPATCH_LPT", "DISPATCH_POLICIES",
    "DISPATCH_RANDOM", "DurationLedger", "PRED_ESTIMATOR", "PRED_LEDGER",
    "feature_key", "ledger_path_for", "order_tasks", "plan_keys",
    "predict_plan",
]
