"""The PCGBench registry: 60 problems x 7 execution models = 420 prompts."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .problems import all_problems, problems_by_type
from .prompts import prompts_for
from .spec import EXECUTION_MODELS, PROBLEM_TYPES, Problem, Prompt


class PCGBench:
    """The full benchmark, with filtered views for partial runs."""

    def __init__(
        self,
        problem_types: Optional[Sequence[str]] = None,
        models: Optional[Sequence[str]] = None,
    ):
        ptypes = tuple(problem_types) if problem_types else PROBLEM_TYPES
        for pt in ptypes:
            if pt not in PROBLEM_TYPES:
                raise ValueError(f"unknown problem type {pt!r}")
        self.models = tuple(models) if models else EXECUTION_MODELS
        for m in self.models:
            if m not in EXECUTION_MODELS:
                raise ValueError(f"unknown execution model {m!r}")
        by_type = problems_by_type()
        self.problems: List[Problem] = [
            p for pt in ptypes for p in by_type[pt]
        ]
        self.prompts: List[Prompt] = prompts_for(self.problems, self.models)

    def __len__(self) -> int:
        return len(self.prompts)

    def by_model(self, model: str) -> List[Prompt]:
        return [p for p in self.prompts if p.model == model]

    def by_type(self, ptype: str) -> List[Prompt]:
        return [p for p in self.prompts if p.problem.ptype == ptype]

    def problem(self, name: str) -> Problem:
        for p in self.problems:
            if p.name == name:
                return p
        raise KeyError(name)

    def prompt(self, uid: str) -> Prompt:
        for p in self.prompts:
            if p.uid == uid:
                return p
        raise KeyError(uid)

    def inventory(self) -> Dict[str, int]:
        """Counts per problem type (the data behind Table 1)."""
        out: Dict[str, int] = {}
        for p in self.problems:
            out[p.ptype] = out.get(p.ptype, 0) + 1
        return out


def full_benchmark() -> PCGBench:
    """The complete 420-prompt PCGBench."""
    return PCGBench()


__all__ = ["PCGBench", "full_benchmark", "all_problems"]
