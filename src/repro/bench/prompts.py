"""Prompt rendering: one text prompt per (problem, execution model).

Follows the paper's prompt design (§4): a block comment holding the
natural-language description, the execution-model instruction, and example
inputs/outputs, followed by the opening of the kernel the LLM must
complete.  (In the paper the includes are prepended; MiniPar needs no
includes, the instruction sentence plays that disambiguation role.)
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .spec import EXECUTION_MODELS, Problem, Prompt

#: The per-model instruction sentence appended to each description.
MODEL_INSTRUCTIONS: Dict[str, str] = {
    "serial": "",
    "openmp": "Use OpenMP to compute in parallel.",
    "kokkos": (
        "Use Kokkos parallel patterns (parallel_for, parallel_reduce, "
        "parallel_scan) to compute in parallel. Assume Kokkos has already "
        "been initialized."
    ),
    "mpi": (
        "Use MPI to compute in parallel. Assume MPI has already been "
        "initialized. Every rank has a copy of the inputs; the result must "
        "be correct on rank 0."
    ),
    "mpi+omp": (
        "Use MPI and OpenMP to compute in parallel. Assume MPI has already "
        "been initialized. Every rank has a copy of the inputs; the result "
        "must be correct on rank 0."
    ),
    "cuda": (
        "Use CUDA to compute in parallel. The kernel is launched with at "
        "least one thread per element."
    ),
    "hip": (
        "Use HIP to compute in parallel. The kernel is launched with at "
        "least one thread per element."
    ),
}


def render_prompt(problem: Problem, model: str) -> Prompt:
    """Render the prompt text for one (problem, execution model) task."""
    if model not in EXECUTION_MODELS:
        raise ValueError(f"unknown execution model {model!r}")
    lines: List[str] = ["/*"]
    lines.append(f"   {problem.description}")
    instruction = MODEL_INSTRUCTIONS[model]
    if instruction:
        lines.append(f"   {instruction}")
    if problem.examples:
        lines.append("   Examples:")
        for given, result in problem.examples:
            lines.append(f"   input: {given}")
            lines.append(f"   output: {result}")
    if model in ("cuda", "hip") and problem.ret is not None:
        lines.append(
            "   The kernel cannot return a value: write the result into "
            "result[0] instead."
        )
        init = problem.gpu_result_init
        if not callable(init):
            lines.append(f"   result[0] is initialized to {init}.")
        else:
            lines.append(
                "   result[0] is initialized as described; leave it "
                "unchanged when there is nothing to report."
            )
    lines.append("*/")
    lines.append(problem.signature(model))
    return Prompt(problem=problem, model=model, text="\n".join(lines))


def prompts_for(problems: Iterable[Problem],
                models: Iterable[str] = EXECUTION_MODELS) -> List[Prompt]:
    """The cross product of problems and execution models, in order."""
    models = tuple(models)
    return [render_prompt(p, m) for p in problems for m in models]
