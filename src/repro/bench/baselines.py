"""Handwritten optimal sequential baselines for every PCGBench problem.

The paper's harness (§7.2) pairs each prompt with a handwritten, optimal
sequential implementation used both to validate outputs and as the
reference time ``T*`` in speedup_n@k / efficiency_n@k.  These are MiniPar
programs run under the serial runtime.

Notably, the Fourier baselines are iterative radix-2 FFTs (O(n log n))
while generated solutions are typically direct O(n^2) transforms — that
asymmetry is deliberate and mirrors why the paper observes poor fft
speedups.
"""

from __future__ import annotations

from typing import Dict

_PI = "3.141592653589793"

BASELINES: Dict[str, str] = {}


def _baseline(name: str, source: str) -> None:
    assert name not in BASELINES, name
    BASELINES[name] = source


def baseline_source(problem_name: str) -> str:
    """The optimal serial MiniPar implementation for ``problem_name``."""
    return BASELINES[problem_name]


# -- transform ----------------------------------------------------------------

_baseline("relu", """
kernel relu(x: array<float>) {
    for (i in 0..len(x)) {
        x[i] = max(x[i], 0.0);
    }
}
""")

_baseline("celsius_to_fahrenheit", """
kernel celsius_to_fahrenheit(c: array<float>, f: array<float>) {
    for (i in 0..len(c)) {
        f[i] = c[i] * 9.0 / 5.0 + 32.0;
    }
}
""")

_baseline("clamp_range", """
kernel clamp_range(x: array<float>, lo: float, hi: float) {
    for (i in 0..len(x)) {
        x[i] = min(max(x[i], lo), hi);
    }
}
""")

_baseline("cube_elements", """
kernel cube_elements(x: array<float>) {
    for (i in 0..len(x)) {
        x[i] = x[i] * x[i] * x[i];
    }
}
""")

_baseline("halve_shifted", """
kernel halve_shifted(x: array<float>) {
    for (i in 0..len(x)) {
        x[i] = (x[i] + 1.0) / 2.0;
    }
}
""")

# -- reduce --------------------------------------------------------------------

_baseline("sum_of_elements", """
kernel sum_of_elements(x: array<float>) -> float {
    let total = 0.0;
    for (i in 0..len(x)) {
        total += x[i];
    }
    return total;
}
""")

_baseline("smallest_element", """
kernel smallest_element(x: array<float>) -> float {
    let m = x[0];
    for (i in 1..len(x)) {
        m = min(m, x[i]);
    }
    return m;
}
""")

_baseline("sum_of_squares", """
kernel sum_of_squares(x: array<float>) -> float {
    let total = 0.0;
    for (i in 0..len(x)) {
        total += x[i] * x[i];
    }
    return total;
}
""")

_baseline("count_above_threshold", """
kernel count_above_threshold(x: array<float>, t: float) -> int {
    let count = 0;
    for (i in 0..len(x)) {
        if (x[i] > t) {
            count += 1;
        }
    }
    return count;
}
""")

_baseline("max_adjacent_diff", """
kernel max_adjacent_diff(x: array<float>) -> float {
    let best = abs(x[1] - x[0]);
    for (i in 1..len(x) - 1) {
        best = max(best, abs(x[i + 1] - x[i]));
    }
    return best;
}
""")

# -- scan -------------------------------------------------------------------------

_baseline("prefix_sum", """
kernel prefix_sum(x: array<float>, out: array<float>) {
    let acc = 0.0;
    for (i in 0..len(x)) {
        acc += x[i];
        out[i] = acc;
    }
}
""")

_baseline("reverse_prefix_sum", """
kernel reverse_prefix_sum(x: array<float>, out: array<float>) {
    let acc = 0.0;
    let n = len(x);
    for (k in 0..n) {
        let i = n - 1 - k;
        acc += x[i];
        out[i] = acc;
    }
}
""")

_baseline("partial_minimums", """
kernel partial_minimums(x: array<float>) {
    let m = x[0];
    for (i in 1..len(x)) {
        m = min(m, x[i]);
        x[i] = m;
    }
}
""")

_baseline("exclusive_prefix_sum", """
kernel exclusive_prefix_sum(x: array<float>, out: array<float>) {
    let acc = 0.0;
    for (i in 0..len(x)) {
        out[i] = acc;
        acc += x[i];
    }
}
""")

_baseline("running_maximums", """
kernel running_maximums(x: array<float>, out: array<float>) {
    let m = x[0];
    for (i in 0..len(x)) {
        m = max(m, x[i]);
        out[i] = m;
    }
}
""")

# -- sort --------------------------------------------------------------------------

_baseline("sort_ascending", """
kernel sort_ascending(x: array<float>) {
    sort(x);
}
""")

_baseline("sort_descending", """
kernel sort_descending(x: array<float>) {
    sort(x);
    let n = len(x);
    for (i in 0..n / 2) {
        swap(x, i, n - 1 - i);
    }
}
""")

_baseline("sort_by_magnitude", """
kernel sort_by_magnitude(x: array<float>) {
    let n = len(x);
    let mags = alloc_float(n);
    for (i in 0..n) {
        mags[i] = abs(x[i]);
    }
    let sorted_mags = copy(mags);
    sort(sorted_mags);
    let tmp = alloc_float(n);
    for (i in 0..n) {
        let lo = 0;
        let hi = n;
        while (lo < hi) {
            let mid = (lo + hi) / 2;
            if (sorted_mags[mid] < mags[i]) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        tmp[lo] = x[i];
    }
    for (i in 0..n) {
        x[i] = tmp[i];
    }
}
""")

_baseline("sort_subrange", """
kernel sort_subrange(x: array<float>, lo: int, hi: int) {
    let m = hi - lo;
    let tmp = alloc_float(m);
    for (i in 0..m) {
        tmp[i] = x[lo + i];
    }
    sort(tmp);
    for (i in 0..m) {
        x[lo + i] = tmp[i];
    }
}
""")

_baseline("rank_of_elements", """
kernel rank_of_elements(x: array<float>, r: array<int>) {
    let n = len(x);
    let sorted_x = copy(x);
    sort(sorted_x);
    for (i in 0..n) {
        let lo = 0;
        let hi = n;
        while (lo < hi) {
            let mid = (lo + hi) / 2;
            if (sorted_x[mid] < x[i]) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        r[i] = lo;
    }
}
""")

# -- search --------------------------------------------------------------------------

_baseline("index_of_first", """
kernel index_of_first(x: array<float>, v: float) -> int {
    for (i in 0..len(x)) {
        if (x[i] == v) {
            return i;
        }
    }
    return -1;
}
""")

_baseline("contains_value", """
kernel contains_value(x: array<float>, v: float) -> int {
    for (i in 0..len(x)) {
        if (x[i] == v) {
            return 1;
        }
    }
    return 0;
}
""")

_baseline("index_of_minimum", """
kernel index_of_minimum(x: array<float>) -> int {
    let best = 0;
    for (i in 1..len(x)) {
        if (x[i] < x[best]) {
            best = i;
        }
    }
    return best;
}
""")

_baseline("binary_search_sorted", """
kernel binary_search_sorted(x: array<float>, v: float) -> int {
    let lo = 0;
    let hi = len(x);
    while (lo < hi) {
        let mid = (lo + hi) / 2;
        if (x[mid] == v) {
            return mid;
        }
        if (x[mid] < v) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return -1;
}
""")

_baseline("first_unsorted_position", """
kernel first_unsorted_position(x: array<float>) -> int {
    for (i in 0..len(x) - 1) {
        if (x[i] > x[i + 1]) {
            return i;
        }
    }
    return -1;
}
""")

# -- histogram ------------------------------------------------------------------------

_baseline("hist_unit_interval", """
kernel hist_unit_interval(x: array<float>, h: array<int>) {
    for (i in 0..len(x)) {
        h[int(x[i] * 10.0)] += 1;
    }
}
""")

_baseline("hist_mod_k", """
kernel hist_mod_k(x: array<int>, k: int, h: array<int>) {
    for (i in 0..len(x)) {
        h[x[i] % k] += 1;
    }
}
""")

_baseline("hist_deciles", """
kernel hist_deciles(x: array<float>, lo: float, hi: float, h: array<int>) {
    let width = hi - lo;
    for (i in 0..len(x)) {
        let b = int((x[i] - lo) / width * 10.0);
        h[min(max(b, 0), 9)] += 1;
    }
}
""")

_baseline("hist_custom_edges", """
kernel hist_custom_edges(x: array<float>, edges: array<float>, h: array<int>) {
    let m = len(edges) - 1;
    for (i in 0..len(x)) {
        let lo = 0;
        let hi = m;
        while (lo + 1 < hi) {
            let mid = (lo + hi) / 2;
            if (edges[mid] <= x[i]) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        h[lo] += 1;
    }
}
""")

_baseline("hist_alphabet", """
kernel hist_alphabet(x: array<int>, h: array<int>) {
    for (i in 0..len(x)) {
        h[x[i]] += 1;
    }
}
""")

# -- stencil ---------------------------------------------------------------------------

_baseline("jacobi_1d", """
kernel jacobi_1d(x: array<float>, y: array<float>) {
    let n = len(x);
    y[0] = x[0];
    y[n - 1] = x[n - 1];
    for (i in 1..n - 1) {
        y[i] = (x[i - 1] + x[i] + x[i + 1]) / 3.0;
    }
}
""")

_baseline("jacobi_2d", """
kernel jacobi_2d(grid: array2d<float>, out: array2d<float>) {
    let r = rows(grid);
    let c = cols(grid);
    for (i in 0..r) {
        for (j in 0..c) {
            if (i == 0 || i == r - 1 || j == 0 || j == c - 1) {
                out[i, j] = grid[i, j];
            } else {
                out[i, j] = (grid[i - 1, j] + grid[i + 1, j] + grid[i, j - 1]
                    + grid[i, j + 1] + grid[i, j]) / 5.0;
            }
        }
    }
}
""")

_baseline("heat_step_1d", """
kernel heat_step_1d(u: array<float>, alpha: float, unew: array<float>) {
    let n = len(u);
    unew[0] = u[0];
    unew[n - 1] = u[n - 1];
    for (i in 1..n - 1) {
        unew[i] = u[i] + alpha * (u[i - 1] - 2.0 * u[i] + u[i + 1]);
    }
}
""")

_baseline("game_of_life_step", """
kernel game_of_life_step(board: array2d<int>, out: array2d<int>) {
    let r = rows(board);
    let c = cols(board);
    for (i in 0..r) {
        for (j in 0..c) {
            let alive = 0;
            for (di in 0..3) {
                for (dj in 0..3) {
                    let ni = i + di - 1;
                    let nj = j + dj - 1;
                    if ((di != 1 || dj != 1) && ni >= 0 && ni < r && nj >= 0 && nj < c) {
                        alive += board[ni, nj];
                    }
                }
            }
            if (alive == 3 || (board[i, j] == 1 && alive == 2)) {
                out[i, j] = 1;
            } else {
                out[i, j] = 0;
            }
        }
    }
}
""")

_baseline("max_pool_3x3", """
kernel max_pool_3x3(grid: array2d<float>, out: array2d<float>) {
    let r = rows(grid);
    let c = cols(grid);
    for (i in 0..r) {
        for (j in 0..c) {
            let best = grid[i, j];
            for (di in 0..3) {
                for (dj in 0..3) {
                    let ni = i + di - 1;
                    let nj = j + dj - 1;
                    if (ni >= 0 && ni < r && nj >= 0 && nj < c) {
                        best = max(best, grid[ni, nj]);
                    }
                }
            }
            out[i, j] = best;
        }
    }
}
""")

# -- dense_la -------------------------------------------------------------------------------

_baseline("axpy", """
kernel axpy(a: float, x: array<float>, y: array<float>) {
    for (i in 0..len(x)) {
        y[i] = a * x[i] + y[i];
    }
}
""")

_baseline("dot_product", """
kernel dot_product(x: array<float>, y: array<float>) -> float {
    let total = 0.0;
    for (i in 0..len(x)) {
        total += x[i] * y[i];
    }
    return total;
}
""")

_baseline("gemv", """
kernel gemv(A: array2d<float>, x: array<float>, y: array<float>) {
    let r = rows(A);
    let c = cols(A);
    for (i in 0..r) {
        let acc = 0.0;
        for (j in 0..c) {
            acc += A[i, j] * x[j];
        }
        y[i] = acc;
    }
}
""")

_baseline("gemm", """
kernel gemm(A: array2d<float>, B: array2d<float>, C: array2d<float>) {
    let n = rows(A);
    let m = cols(B);
    let k = cols(A);
    for (i in 0..n) {
        for (kk in 0..k) {
            let a = A[i, kk];
            for (j in 0..m) {
                C[i, j] += a * B[kk, j];
            }
        }
    }
}
""")

_baseline("outer_product", """
kernel outer_product(x: array<float>, y: array<float>, A: array2d<float>) {
    for (i in 0..len(x)) {
        for (j in 0..len(y)) {
            A[i, j] = x[i] * y[j];
        }
    }
}
""")

# -- sparse_la --------------------------------------------------------------------------------

_baseline("spmv_csr", """
kernel spmv_csr(rowptr: array<int>, colidx: array<int>, vals: array<float>,
                x: array<float>, y: array<float>) {
    let n = len(rowptr) - 1;
    for (i in 0..n) {
        let acc = 0.0;
        for (k in rowptr[i]..rowptr[i + 1]) {
            acc += vals[k] * x[colidx[k]];
        }
        y[i] = acc;
    }
}
""")

_baseline("sparse_dot", """
kernel sparse_dot(idx_a: array<int>, val_a: array<float>,
                  idx_b: array<int>, val_b: array<float>) -> float {
    let total = 0.0;
    let i = 0;
    let j = 0;
    let na = len(idx_a);
    let nb = len(idx_b);
    while (i < na && j < nb) {
        if (idx_a[i] == idx_b[j]) {
            total += val_a[i] * val_b[j];
            i += 1;
            j += 1;
        } else {
            if (idx_a[i] < idx_b[j]) {
                i += 1;
            } else {
                j += 1;
            }
        }
    }
    return total;
}
""")

_baseline("sparse_axpy", """
kernel sparse_axpy(a: float, idx: array<int>, val: array<float>,
                   y: array<float>) {
    for (k in 0..len(idx)) {
        y[idx[k]] += a * val[k];
    }
}
""")

_baseline("csr_row_sums", """
kernel csr_row_sums(rowptr: array<int>, vals: array<float>,
                    out: array<float>) {
    let n = len(rowptr) - 1;
    for (i in 0..n) {
        let acc = 0.0;
        for (k in rowptr[i]..rowptr[i + 1]) {
            acc += vals[k];
        }
        out[i] = acc;
    }
}
""")

_baseline("spmv_transpose", """
kernel spmv_transpose(rowptr: array<int>, colidx: array<int>,
                      vals: array<float>, x: array<float>, y: array<float>) {
    let n = len(rowptr) - 1;
    for (i in 0..n) {
        for (k in rowptr[i]..rowptr[i + 1]) {
            y[colidx[k]] += vals[k] * x[i];
        }
    }
}
""")

# -- graph ------------------------------------------------------------------------------------

_baseline("count_components", """
kernel count_components(rowptr: array<int>, colidx: array<int>) -> int {
    let n = len(rowptr) - 1;
    let seen = alloc_int(n);
    let stack = alloc_int(n);
    let count = 0;
    for (s in 0..n) {
        if (seen[s] == 0) {
            count += 1;
            seen[s] = 1;
            stack[0] = s;
            let top = 1;
            while (top > 0) {
                top -= 1;
                let v = stack[top];
                for (k in rowptr[v]..rowptr[v + 1]) {
                    let u = colidx[k];
                    if (seen[u] == 0) {
                        seen[u] = 1;
                        stack[top] = u;
                        top += 1;
                    }
                }
            }
        }
    }
    return count;
}
""")

_baseline("bfs_distances", """
kernel bfs_distances(rowptr: array<int>, colidx: array<int>, src: int,
                     dist: array<int>) {
    let n = len(rowptr) - 1;
    fill(dist, -1);
    let queue = alloc_int(n);
    dist[src] = 0;
    queue[0] = src;
    let head = 0;
    let tail = 1;
    while (head < tail) {
        let v = queue[head];
        head += 1;
        for (k in rowptr[v]..rowptr[v + 1]) {
            let u = colidx[k];
            if (dist[u] < 0) {
                dist[u] = dist[v] + 1;
                queue[tail] = u;
                tail += 1;
            }
        }
    }
}
""")

_baseline("max_degree", """
kernel max_degree(rowptr: array<int>, colidx: array<int>) -> int {
    let n = len(rowptr) - 1;
    let best = 0;
    for (v in 0..n) {
        best = max(best, rowptr[v + 1] - rowptr[v]);
    }
    return best;
}
""")

_baseline("count_triangles", """
kernel has_edge(rowptr: array<int>, colidx: array<int>, u: int, w: int) -> int {
    let lo = rowptr[u];
    let hi = rowptr[u + 1];
    while (lo < hi) {
        let mid = (lo + hi) / 2;
        if (colidx[mid] == w) {
            return 1;
        }
        if (colidx[mid] < w) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return 0;
}

kernel count_triangles(rowptr: array<int>, colidx: array<int>) -> int {
    let n = len(rowptr) - 1;
    let count = 0;
    for (v in 0..n) {
        for (a in rowptr[v]..rowptr[v + 1]) {
            let u = colidx[a];
            if (u > v) {
                for (b in rowptr[v]..rowptr[v + 1]) {
                    let w = colidx[b];
                    if (w > u && has_edge(rowptr, colidx, u, w) == 1) {
                        count += 1;
                    }
                }
            }
        }
    }
    return count;
}
""")

_baseline("is_bipartite", """
kernel is_bipartite(rowptr: array<int>, colidx: array<int>) -> int {
    let n = len(rowptr) - 1;
    let colour = alloc_int(n);
    fill(colour, -1);
    let queue = alloc_int(n);
    for (s in 0..n) {
        if (colour[s] < 0) {
            colour[s] = 0;
            queue[0] = s;
            let head = 0;
            let tail = 1;
            while (head < tail) {
                let v = queue[head];
                head += 1;
                for (k in rowptr[v]..rowptr[v + 1]) {
                    let u = colidx[k];
                    if (colour[u] < 0) {
                        colour[u] = 1 - colour[v];
                        queue[tail] = u;
                        tail += 1;
                    } else {
                        if (colour[u] == colour[v]) {
                            return 0;
                        }
                    }
                }
            }
        }
    }
    return 1;
}
""")

# -- geometry ------------------------------------------------------------------------------------

_baseline("closest_pair_distance", """
kernel closest_pair_distance(x: array<float>, y: array<float>) -> float {
    let n = len(x);
    let best = (x[1] - x[0]) * (x[1] - x[0]) + (y[1] - y[0]) * (y[1] - y[0]);
    for (i in 0..n) {
        for (j in i + 1..n) {
            let dx = x[j] - x[i];
            let dy = y[j] - y[i];
            best = min(best, dx * dx + dy * dy);
        }
    }
    return sqrt(best);
}
""")

_baseline("polygon_area", """
kernel polygon_area(x: array<float>, y: array<float>) -> float {
    let n = len(x);
    let acc = 0.0;
    for (i in 0..n) {
        let j = (i + 1) % n;
        acc += x[i] * y[j] - x[j] * y[i];
    }
    return abs(acc) / 2.0;
}
""")

_baseline("count_points_in_circle", """
kernel count_points_in_circle(x: array<float>, y: array<float>, cx: float,
                              cy: float, r: float) -> int {
    let count = 0;
    for (i in 0..len(x)) {
        let dx = x[i] - cx;
        let dy = y[i] - cy;
        if (dx * dx + dy * dy <= r * r) {
            count += 1;
        }
    }
    return count;
}
""")

_baseline("bounding_box", """
kernel bounding_box(x: array<float>, y: array<float>, out: array<float>) {
    let minx = x[0];
    let maxx = x[0];
    let miny = y[0];
    let maxy = y[0];
    for (i in 1..len(x)) {
        minx = min(minx, x[i]);
        maxx = max(maxx, x[i]);
        miny = min(miny, y[i]);
        maxy = max(maxy, y[i]);
    }
    out[0] = minx;
    out[1] = maxx;
    out[2] = miny;
    out[3] = maxy;
}
""")

_baseline("farthest_pair_distance", """
kernel farthest_pair_distance(x: array<float>, y: array<float>) -> float {
    let n = len(x);
    let best = 0.0;
    for (i in 0..n) {
        for (j in i + 1..n) {
            let dx = x[j] - x[i];
            let dy = y[j] - y[i];
            best = max(best, dx * dx + dy * dy);
        }
    }
    return sqrt(best);
}
""")

# -- fft ---------------------------------------------------------------------------------------------

_FFT_CORE = """
kernel fft_in_place(re: array<float>, im: array<float>, sign: float) {
    let n = len(re);
    let j = 0;
    for (i in 1..n) {
        let bit = n / 2;
        while (bit >= 1 && j >= bit) {
            j -= bit;
            bit /= 2;
        }
        j += bit;
        if (i < j) {
            swap(re, i, j);
            swap(im, i, j);
        }
    }
    let length = 2;
    while (length <= n) {
        let ang = sign * 2.0 * {PI} / float(length);
        let half = length / 2;
        let start = 0;
        while (start < n) {
            for (k in 0..half) {
                let wr = cos(ang * float(k));
                let wi = sin(ang * float(k));
                let ur = re[start + k];
                let ui = im[start + k];
                let tr = re[start + k + half];
                let ti = im[start + k + half];
                let vr = tr * wr - ti * wi;
                let vi = tr * wi + ti * wr;
                re[start + k] = ur + vr;
                im[start + k] = ui + vi;
                re[start + k + half] = ur - vr;
                im[start + k + half] = ui - vi;
            }
            start += length;
        }
        length *= 2;
    }
}
""".replace("{PI}", _PI)

_baseline("dft", _FFT_CORE + """
kernel dft(re: array<float>, im: array<float>, out_re: array<float>,
           out_im: array<float>) {
    for (i in 0..len(re)) {
        out_re[i] = re[i];
        out_im[i] = im[i];
    }
    fft_in_place(out_re, out_im, -1.0);
}
""")

_baseline("inverse_dft", _FFT_CORE + """
kernel inverse_dft(re: array<float>, im: array<float>, out_re: array<float>,
                   out_im: array<float>) {
    let n = len(re);
    for (i in 0..n) {
        out_re[i] = re[i];
        out_im[i] = im[i];
    }
    fft_in_place(out_re, out_im, 1.0);
    for (i in 0..n) {
        out_re[i] /= float(n);
        out_im[i] /= float(n);
    }
}
""")

_baseline("power_spectrum", _FFT_CORE + """
kernel power_spectrum(re: array<float>, im: array<float>,
                      power: array<float>) {
    let n = len(re);
    let tr = copy(re);
    let ti = copy(im);
    fft_in_place(tr, ti, -1.0);
    for (i in 0..n) {
        power[i] = tr[i] * tr[i] + ti[i] * ti[i];
    }
}
""")

_baseline("dft_real_signal", _FFT_CORE + """
kernel dft_real_signal(x: array<float>, out_re: array<float>,
                       out_im: array<float>) {
    let n = len(x);
    for (i in 0..n) {
        out_re[i] = x[i];
        out_im[i] = 0.0;
    }
    fft_in_place(out_re, out_im, -1.0);
}
""")

_baseline("cosine_transform", """
kernel cosine_transform(x: array<float>, out: array<float>) {
    let n = len(x);
    for (k in 0..n) {
        let acc = 0.0;
        for (i in 0..n) {
            acc += x[i] * cos({PI} * float(k) * (float(i) + 0.5) / float(n));
        }
        out[k] = acc;
    }
}
""".replace("{PI}", _PI))
