"""PCGBench: 60 problems x 7 execution models = 420 prompts (paper §4)."""

from .baselines import BASELINES, baseline_source
from .problems import all_problems, problems_by_type
from .prompts import MODEL_INSTRUCTIONS, prompts_for, render_prompt
from .registry import PCGBench, full_benchmark
from .spec import (
    EXECUTION_MODELS,
    PROBLEM_TYPE_DESCRIPTIONS,
    PROBLEM_TYPES,
    ParamSpec,
    Problem,
    Prompt,
)

__all__ = [
    "PCGBench",
    "full_benchmark",
    "Problem",
    "Prompt",
    "ParamSpec",
    "EXECUTION_MODELS",
    "PROBLEM_TYPES",
    "PROBLEM_TYPE_DESCRIPTIONS",
    "all_problems",
    "problems_by_type",
    "render_prompt",
    "prompts_for",
    "MODEL_INSTRUCTIONS",
    "baseline_source",
    "BASELINES",
]
