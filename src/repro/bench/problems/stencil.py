"""Stencil problems (Table 1): one iteration of 1-D and 2-D stencils."""

from __future__ import annotations

import numpy as np

from ..spec import ParamSpec, Problem
from .common import floats, grid, side_for


def _jacobi1d_ref(inp):
    x = np.asarray(inp["x"])
    y = x.copy()
    y[1:-1] = (x[:-2] + x[1:-1] + x[2:]) / 3.0
    return {"y": y}


def _jacobi2d_ref(inp):
    g = np.asarray(inp["grid"])
    out = g.copy()
    out[1:-1, 1:-1] = (
        g[:-2, 1:-1] + g[2:, 1:-1] + g[1:-1, :-2] + g[1:-1, 2:] + g[1:-1, 1:-1]
    ) / 5.0
    return {"out": out}


def _heat_ref(inp):
    u = np.asarray(inp["u"])
    a = inp["alpha"]
    out = u.copy()
    out[1:-1] = u[1:-1] + a * (u[:-2] - 2.0 * u[1:-1] + u[2:])
    return {"unew": out}


def _life_ref(inp):
    b = np.asarray(inp["board"])
    padded = np.pad(b, 1)
    neigh = sum(
        padded[1 + di:1 + di + b.shape[0], 1 + dj:1 + dj + b.shape[1]]
        for di in (-1, 0, 1) for dj in (-1, 0, 1) if (di, dj) != (0, 0)
    )
    out = ((neigh == 3) | ((b == 1) & (neigh == 2))).astype(np.int64)
    return {"out": out}


def _pool_ref(inp):
    g = np.asarray(inp["grid"])
    r, c = g.shape
    out = np.empty_like(g)
    for i in range(r):
        for j in range(c):
            out[i, j] = g[max(0, i - 1):min(r, i + 2),
                          max(0, j - 1):min(c, j + 2)].max()
    return {"out": out}


def _gen_2d(key_in, key_out, dtype=np.float64):
    def gen(rng, n):
        g = grid(rng, n)
        return {key_in: g, key_out: np.zeros_like(g)}
    return gen


PROBLEMS = [
    Problem(
        name="jacobi_1d",
        ptype="stencil",
        description=(
            "Perform one Jacobi iteration: for each interior index i, "
            "y[i] = (x[i-1] + x[i] + x[i+1]) / 3.  The endpoints are copied: "
            "y[0] = x[0] and y[n-1] = x[n-1]."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("y", "array<float>", "out"),
        ),
        ret=None,
        generate=lambda rng, n: {"x": floats(rng, n), "y": np.zeros(n)},
        reference=_jacobi1d_ref,
        examples=(
            ("x = [3, 0, 3, 9]", "y becomes [3, 2, 4, 9]"),
        ),
    ),
    Problem(
        name="jacobi_2d",
        ptype="stencil",
        description=(
            "Perform one 2-D Jacobi iteration on grid: for each interior "
            "cell, out[i, j] is the average of the cell and its four "
            "neighbours (up, down, left, right).  Boundary cells are copied "
            "unchanged."
        ),
        params=(
            ParamSpec("grid", "array2d<float>", "in"),
            ParamSpec("out", "array2d<float>", "out"),
        ),
        ret=None,
        generate=_gen_2d("grid", "out"),
        reference=_jacobi2d_ref,
        examples=(
            ("grid = [[0,0,0],[0,5,0],[0,0,0]]",
             "out becomes [[0,0,0],[0,1,0],[0,0,0]]"),
        ),
        correctness_size=196,   # 14x14
        timing_size=2304,       # 48x48
        work_scale=512.0,
    ),
    Problem(
        name="heat_step_1d",
        ptype="stencil",
        description=(
            "Perform one explicit heat-equation step: for each interior i, "
            "unew[i] = u[i] + alpha * (u[i-1] - 2*u[i] + u[i+1]).  The "
            "endpoints are copied unchanged."
        ),
        params=(
            ParamSpec("u", "array<float>", "in"),
            ParamSpec("alpha", "float", "in"),
            ParamSpec("unew", "array<float>", "out"),
        ),
        ret=None,
        generate=lambda rng, n: {
            "u": floats(rng, n), "alpha": 0.25, "unew": np.zeros(n),
        },
        reference=_heat_ref,
        examples=(
            ("u = [0, 4, 0], alpha = 0.25", "unew becomes [0, 2, 0]"),
        ),
    ),
    Problem(
        name="game_of_life_step",
        ptype="stencil",
        description=(
            "Compute one step of Conway's Game of Life.  board holds 0 "
            "(dead) or 1 (alive); cells outside the board are dead.  A live "
            "cell survives with 2 or 3 live neighbours; a dead cell becomes "
            "alive with exactly 3.  Write the next generation into out."
        ),
        params=(
            ParamSpec("board", "array2d<int>", "in"),
            ParamSpec("out", "array2d<int>", "out"),
        ),
        ret=None,
        generate=lambda rng, n: {
            "board": (rng.uniform(size=(side_for(n), side_for(n))) < 0.35
                      ).astype(np.int64),
            "out": np.zeros((side_for(n), side_for(n)), dtype=np.int64),
        },
        reference=_life_ref,
        examples=(
            ("board = [[0,1,0],[0,1,0],[0,1,0]] (a blinker)",
             "out becomes [[0,0,0],[1,1,1],[0,0,0]]"),
        ),
        correctness_size=196,
        timing_size=2304,
        work_scale=512.0,
    ),
    Problem(
        name="max_pool_3x3",
        ptype="stencil",
        description=(
            "For every cell of grid write into out the maximum over its 3x3 "
            "neighbourhood, clamped at the edges (cells outside the grid are "
            "ignored)."
        ),
        params=(
            ParamSpec("grid", "array2d<float>", "in"),
            ParamSpec("out", "array2d<float>", "out"),
        ),
        ret=None,
        generate=_gen_2d("grid", "out"),
        reference=_pool_ref,
        examples=(
            ("grid = [[1,2],[3,4]]", "out becomes [[4,4],[4,4]]"),
        ),
        correctness_size=196,
        timing_size=2304,
        work_scale=512.0,
    ),
]
