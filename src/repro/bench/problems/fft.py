"""Fourier transform problems (Table 1).

Kernels compute direct O(n^2) transforms (per-output parallelisable); the
handwritten *sequential baseline* for the standard transforms is an
iterative radix-2 FFT, so — as in the paper — generated transform code
tends to show poor speedup against the optimal baseline.
"""

from __future__ import annotations

import numpy as np

from ..spec import ParamSpec, Problem
from .common import floats


def _pow2(n: int) -> int:
    p = 1
    while p * 2 <= n:
        p *= 2
    return max(16, p)


def _gen_complex(rng, n):
    m = _pow2(max(16, n // 4))
    return {
        "re": floats(rng, m, -2, 2),
        "im": floats(rng, m, -2, 2),
        "out_re": np.zeros(m),
        "out_im": np.zeros(m),
    }


def _gen_real(rng, n):
    m = _pow2(max(16, n // 4))
    return {
        "x": floats(rng, m, -2, 2),
        "out_re": np.zeros(m),
        "out_im": np.zeros(m),
    }


def _gen_power(rng, n):
    m = _pow2(max(16, n // 4))
    return {
        "re": floats(rng, m, -2, 2),
        "im": floats(rng, m, -2, 2),
        "power": np.zeros(m),
    }


def _gen_cosine(rng, n):
    m = _pow2(max(16, n // 4))
    return {"x": floats(rng, m, -2, 2), "out": np.zeros(m)}


def _dft_ref(inp):
    z = np.asarray(inp["re"]) + 1j * np.asarray(inp["im"])
    f = np.fft.fft(z)
    return {"out_re": f.real, "out_im": f.imag}


def _idft_ref(inp):
    z = np.asarray(inp["re"]) + 1j * np.asarray(inp["im"])
    f = np.fft.ifft(z)
    return {"out_re": f.real, "out_im": f.imag}


def _power_ref(inp):
    z = np.asarray(inp["re"]) + 1j * np.asarray(inp["im"])
    f = np.fft.fft(z)
    return {"power": np.abs(f) ** 2}


def _real_ref(inp):
    f = np.fft.fft(np.asarray(inp["x"]))
    return {"out_re": f.real, "out_im": f.imag}


def _cosine_ref(inp):
    x = np.asarray(inp["x"])
    n = len(x)
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    m = np.cos(np.pi * k * (i + 0.5) / n)
    return {"out": m @ x}


_DFT_DOC = (
    "The DFT is defined by X[k] = sum over i of "
    "(re[i] + j*im[i]) * exp(-2*pi*j*k*i/n)."
)

PROBLEMS = [
    Problem(
        name="dft",
        ptype="fft",
        description=(
            "Compute the discrete Fourier transform of the complex signal "
            f"given by re and im, writing the result into out_re and out_im. "
            f"{_DFT_DOC}  n is a power of two."
        ),
        params=(
            ParamSpec("re", "array<float>", "in"),
            ParamSpec("im", "array<float>", "in"),
            ParamSpec("out_re", "array<float>", "out"),
            ParamSpec("out_im", "array<float>", "out"),
        ),
        ret=None,
        generate=_gen_complex,
        reference=_dft_ref,
        examples=(
            ("re = [1, 0, 0, 0], im = [0, 0, 0, 0]",
             "out_re becomes [1, 1, 1, 1], out_im becomes [0, 0, 0, 0]"),
        ),
        correctness_size=128,
        timing_size=1024,      # n = 256 -> 65k inner ops
        work_scale=64.0,
        tol=5e-4,
        gpu_threads=lambda inp: len(inp["re"]),
    ),
    Problem(
        name="inverse_dft",
        ptype="fft",
        description=(
            "Compute the inverse discrete Fourier transform of the complex "
            "signal given by re and im into out_re and out_im: "
            "x[i] = (1/n) * sum over k of (re[k] + j*im[k]) * "
            "exp(+2*pi*j*k*i/n).  n is a power of two."
        ),
        params=(
            ParamSpec("re", "array<float>", "in"),
            ParamSpec("im", "array<float>", "in"),
            ParamSpec("out_re", "array<float>", "out"),
            ParamSpec("out_im", "array<float>", "out"),
        ),
        ret=None,
        generate=_gen_complex,
        reference=_idft_ref,
        examples=(
            ("re = [1, 1, 1, 1], im = [0, 0, 0, 0]",
             "out_re becomes [1, 0, 0, 0], out_im becomes [0, 0, 0, 0]"),
        ),
        correctness_size=128,
        timing_size=1024,
        work_scale=64.0,
        tol=5e-4,
        gpu_threads=lambda inp: len(inp["re"]),
    ),
    Problem(
        name="power_spectrum",
        ptype="fft",
        description=(
            "Compute the power spectrum of the complex signal given by re "
            "and im: power[k] = |X[k]|^2 where X is the DFT of the signal. "
            f"{_DFT_DOC}  n is a power of two."
        ),
        params=(
            ParamSpec("re", "array<float>", "in"),
            ParamSpec("im", "array<float>", "in"),
            ParamSpec("power", "array<float>", "out"),
        ),
        ret=None,
        generate=_gen_power,
        reference=_power_ref,
        examples=(
            ("re = [1, 0, 0, 0], im = [0, 0, 0, 0]",
             "power becomes [1, 1, 1, 1]"),
        ),
        correctness_size=128,
        timing_size=1024,
        work_scale=64.0,
        tol=5e-4,
        gpu_threads=lambda inp: len(inp["re"]),
    ),
    Problem(
        name="dft_real_signal",
        ptype="fft",
        description=(
            "Compute the discrete Fourier transform of the real signal x "
            "(imaginary part zero), writing the result into out_re and "
            "out_im.  X[k] = sum over i of x[i] * exp(-2*pi*j*k*i/n).  "
            "n is a power of two."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("out_re", "array<float>", "out"),
            ParamSpec("out_im", "array<float>", "out"),
        ),
        ret=None,
        generate=_gen_real,
        reference=_real_ref,
        examples=(
            ("x = [1, 1, 1, 1]", "out_re becomes [4, 0, 0, 0], out_im stays 0"),
        ),
        correctness_size=128,
        timing_size=1024,
        work_scale=64.0,
        tol=5e-4,
        gpu_threads=lambda inp: len(inp["x"]),
    ),
    Problem(
        name="cosine_transform",
        ptype="fft",
        description=(
            "Compute the DCT-II style cosine transform of x into out: "
            "out[k] = sum over i of x[i] * cos(pi * k * (i + 0.5) / n)."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("out", "array<float>", "out"),
        ),
        ret=None,
        generate=_gen_cosine,
        reference=_cosine_ref,
        examples=(
            ("x = [1, 1]", "out becomes [2, 0]"),
        ),
        correctness_size=128,
        timing_size=1024,
        work_scale=64.0,
        tol=5e-4,
        gpu_threads=lambda inp: len(inp["x"]),
    ),
]
