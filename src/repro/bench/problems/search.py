"""Search problems (Table 1).

The paper excludes this type from the performance metrics because early
exits give super-linear parallel speedups; the harness honours that (see
metrics docs), but correctness is still scored.
"""

from __future__ import annotations

import numpy as np

from ..spec import ParamSpec, Problem
from .common import floats, ints


def _gen_with_target(rng, n):
    x = ints(rng, n, 0, max(4, n // 2)).astype(np.float64)
    # target present ~2/3 of the time
    if rng.uniform() < 2 / 3:
        v = float(x[rng.integers(0, n)])
    else:
        v = float(max(4, n // 2) + 5)
    return x, v


def _first_index_ref(inp):
    x, v = np.asarray(inp["x"]), inp["v"]
    hits = np.flatnonzero(x == v)
    return {"return": int(hits[0]) if len(hits) else -1}


def _gen_first_index(rng, n):
    x, v = _gen_with_target(rng, n)
    return {"x": x, "v": v}


def _gen_sorted(rng, n):
    x = np.sort(floats(rng, n))
    x = np.unique(x)
    while len(x) < n:  # pad keeping sortedness and uniqueness
        x = np.unique(np.concatenate([x, x[-1:] + np.arange(1, n - len(x) + 1)]))
    if rng.uniform() < 2 / 3:
        v = float(x[rng.integers(0, n)])
    else:
        v = float(x[-1] + 1.0)
    return {"x": x[:n], "v": v}


def _gen_almost_sorted(rng, n):
    x = np.sort(floats(rng, n))
    x = np.unique(x)
    while len(x) < n:
        x = np.unique(np.concatenate([x, x[-1:] + np.arange(1, n - len(x) + 1)]))
    x = x[:n].copy()
    if rng.uniform() < 2 / 3 and n > 2:
        k = int(rng.integers(0, n - 1))
        x[k], x[k + 1] = x[k + 1], x[k]
    return {"x": x}


def _len_init(inp):
    return len(inp["x"])


def _gpu_expected_index(ref_fn):
    """Not-found is encoded as len(x) in the GPU result buffer."""
    def expected(inp):
        r = ref_fn(inp)["return"]
        return len(inp["x"]) if r == -1 else r
    return expected


def _first_unsorted_ref(inp):
    x = np.asarray(inp["x"])
    bad = np.flatnonzero(x[:-1] > x[1:])
    return {"return": int(bad[0]) if len(bad) else -1}


PROBLEMS = [
    Problem(
        name="index_of_first",
        ptype="search",
        description=(
            "Return the index of the first element of x equal to v, or -1 "
            "if v does not occur in x."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("v", "float", "in"),
        ),
        ret="int",
        generate=_gen_first_index,
        reference=_first_index_ref,
        examples=(
            ("x = [4, 7, 4], v = 4", "returns 0"),
            ("x = [4, 7, 4], v = 5", "returns -1"),
        ),
        gpu_result_init=_len_init,
        gpu_expected=_gpu_expected_index(_first_index_ref),
    ),
    Problem(
        name="contains_value",
        ptype="search",
        description=(
            "Return 1 if any element of x equals v, otherwise return 0."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("v", "float", "in"),
        ),
        ret="int",
        generate=_gen_first_index,
        reference=lambda inp: {
            "return": int(bool(np.any(np.asarray(inp["x"]) == inp["v"])))
        },
        examples=(
            ("x = [1, 2, 3], v = 2", "returns 1"),
            ("x = [1, 2, 3], v = 9", "returns 0"),
        ),
    ),
    Problem(
        name="index_of_minimum",
        ptype="search",
        description=(
            "Return the index of the first occurrence of the minimum "
            "element of x."
        ),
        params=(ParamSpec("x", "array<float>", "in"),),
        ret="int",
        generate=lambda rng, n: {"x": floats(rng, n)},
        reference=lambda inp: {"return": int(np.argmin(inp["x"]))},
        examples=(
            ("x = [5, -2, 8, -2]", "returns 1"),
        ),
    ),
    Problem(
        name="binary_search_sorted",
        ptype="search",
        description=(
            "x is sorted ascending with distinct elements.  Return the index "
            "of v in x, or -1 if v is not present."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("v", "float", "in"),
        ),
        ret="int",
        generate=_gen_sorted,
        reference=_first_index_ref,
        examples=(
            ("x = [1, 3, 5, 7], v = 5", "returns 2"),
            ("x = [1, 3, 5, 7], v = 4", "returns -1"),
        ),
        gpu_result_init=_len_init,
        gpu_expected=_gpu_expected_index(_first_index_ref),
    ),
    Problem(
        name="first_unsorted_position",
        ptype="search",
        description=(
            "Return the smallest index i with x[i] > x[i+1], i.e. the first "
            "place where x stops being sorted ascending; return -1 if x is "
            "fully sorted."
        ),
        params=(ParamSpec("x", "array<float>", "in"),),
        ret="int",
        generate=_gen_almost_sorted,
        reference=_first_unsorted_ref,
        examples=(
            ("x = [1, 2, 5, 4, 6]", "returns 2"),
            ("x = [1, 2, 3]", "returns -1"),
        ),
        gpu_result_init=_len_init,
        gpu_expected=_gpu_expected_index(_first_unsorted_ref),
    ),
]
