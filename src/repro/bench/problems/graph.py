"""Graph problems (Table 1), over undirected CSR adjacency structures."""

from __future__ import annotations

from collections import deque

import numpy as np

from ..spec import ParamSpec, Problem
from .common import csr_graph


def _neighbours(rowptr, colidx, v):
    return colidx[rowptr[v]:rowptr[v + 1]]


def _components_ref(inp):
    rowptr, colidx = inp["rowptr"], inp["colidx"]
    n = len(rowptr) - 1
    seen = np.zeros(n, dtype=bool)
    count = 0
    for s in range(n):
        if seen[s]:
            continue
        count += 1
        stack = [s]
        seen[s] = True
        while stack:
            v = stack.pop()
            for u in _neighbours(rowptr, colidx, v):
                if not seen[u]:
                    seen[u] = True
                    stack.append(int(u))
    return {"return": count}


def _bfs_ref(inp):
    rowptr, colidx, src = inp["rowptr"], inp["colidx"], inp["src"]
    n = len(rowptr) - 1
    dist = np.full(n, -1, dtype=np.int64)
    dist[src] = 0
    q = deque([src])
    while q:
        v = q.popleft()
        for u in _neighbours(rowptr, colidx, v):
            if dist[u] < 0:
                dist[u] = dist[v] + 1
                q.append(int(u))
    return {"dist": dist}


def _max_degree_ref(inp):
    rowptr = np.asarray(inp["rowptr"])
    return {"return": int(np.max(np.diff(rowptr)))}


def _triangles_ref(inp):
    rowptr, colidx = inp["rowptr"], inp["colidx"]
    n = len(rowptr) - 1
    adj = [set(_neighbours(rowptr, colidx, v).tolist()) for v in range(n)]
    count = 0
    for v in range(n):
        for u in adj[v]:
            if u <= v:
                continue
            for w in adj[v]:
                if w > u and w in adj[u]:
                    count += 1
    return {"return": count}


def _bipartite_ref(inp):
    rowptr, colidx = inp["rowptr"], inp["colidx"]
    n = len(rowptr) - 1
    colour = np.full(n, -1, dtype=np.int64)
    for s in range(n):
        if colour[s] >= 0:
            continue
        colour[s] = 0
        q = deque([s])
        while q:
            v = q.popleft()
            for u in _neighbours(rowptr, colidx, v):
                if colour[u] < 0:
                    colour[u] = 1 - colour[v]
                    q.append(int(u))
                elif colour[u] == colour[v]:
                    return {"return": 0}
    return {"return": 1}


def _gen_graph(rng, n, **kw):
    verts = max(16, n // 4)
    rowptr, colidx = csr_graph(rng, verts, **kw)
    return verts, rowptr, colidx


def _gen_components(rng, n):
    k = int(rng.integers(1, 5))
    verts, rowptr, colidx = _gen_graph(rng, n, n_components=k)
    return {"rowptr": rowptr, "colidx": colidx}


def _gen_bfs(rng, n):
    verts, rowptr, colidx = _gen_graph(rng, n, n_components=2)
    return {
        "rowptr": rowptr, "colidx": colidx,
        "src": int(rng.integers(0, verts)),
        "dist": np.zeros(verts, dtype=np.int64),
    }


def _gen_plain(rng, n):
    _, rowptr, colidx = _gen_graph(rng, n)
    return {"rowptr": rowptr, "colidx": colidx}


def _gen_maybe_bipartite(rng, n):
    verts = max(16, n // 4)
    if rng.uniform() < 0.5:
        # random graphs of this density are essentially never bipartite;
        # construct one explicitly half the time
        half = verts // 2
        adj = [set() for _ in range(verts)]
        edges = verts * 3
        for _ in range(edges):
            u = int(rng.integers(0, half))
            v = int(rng.integers(half, verts))
            adj[u].add(v)
            adj[v].add(u)
        rowptr = [0]
        colidx: list = []
        for v in range(verts):
            colidx.extend(sorted(adj[v]))
            rowptr.append(len(colidx))
        return {
            "rowptr": np.asarray(rowptr, dtype=np.int64),
            "colidx": np.asarray(colidx, dtype=np.int64),
        }
    _, rowptr, colidx = _gen_graph(rng, n)
    return {"rowptr": rowptr, "colidx": colidx}


_CSR_DOC = (
    "The undirected graph has n vertices in CSR form: the neighbours of "
    "vertex v are colidx[rowptr[v] .. rowptr[v+1]) and rowptr has length "
    "n+1.  Edges appear in both endpoints' lists."
)

PROBLEMS = [
    Problem(
        name="count_components",
        ptype="graph",
        description=(
            f"{_CSR_DOC}  Return the number of connected components."
        ),
        params=(
            ParamSpec("rowptr", "array<int>", "in"),
            ParamSpec("colidx", "array<int>", "in"),
        ),
        ret="int",
        generate=_gen_components,
        reference=_components_ref,
        examples=(
            ("two disjoint edges: rowptr = [0, 1, 2, 3, 4], colidx = [1, 0, 3, 2]",
             "returns 2"),
        ),
        gpu_threads=lambda inp: len(inp["rowptr"]) - 1,
    ),
    Problem(
        name="bfs_distances",
        ptype="graph",
        description=(
            f"{_CSR_DOC}  Compute the breadth-first distance (number of "
            "edges) from vertex src to every vertex into dist; unreachable "
            "vertices get -1.  dist is already allocated."
        ),
        params=(
            ParamSpec("rowptr", "array<int>", "in"),
            ParamSpec("colidx", "array<int>", "in"),
            ParamSpec("src", "int", "in"),
            ParamSpec("dist", "array<int>", "out"),
        ),
        ret=None,
        generate=_gen_bfs,
        reference=_bfs_ref,
        examples=(
            ("path 0-1-2, src = 0", "dist becomes [0, 1, 2]"),
        ),
        gpu_threads=lambda inp: len(inp["rowptr"]) - 1,
    ),
    Problem(
        name="max_degree",
        ptype="graph",
        description=(
            f"{_CSR_DOC}  Return the maximum vertex degree."
        ),
        params=(
            ParamSpec("rowptr", "array<int>", "in"),
            ParamSpec("colidx", "array<int>", "in"),
        ),
        ret="int",
        generate=_gen_plain,
        reference=_max_degree_ref,
        examples=(
            ("star with centre 0 and leaves 1..3", "returns 3"),
        ),
        gpu_threads=lambda inp: len(inp["rowptr"]) - 1,
    ),
    Problem(
        name="count_triangles",
        ptype="graph",
        description=(
            f"{_CSR_DOC}  Return the number of triangles (unordered vertex "
            "triples with all three edges present).  Each triangle is "
            "counted once."
        ),
        params=(
            ParamSpec("rowptr", "array<int>", "in"),
            ParamSpec("colidx", "array<int>", "in"),
        ),
        ret="int",
        generate=_gen_plain,
        reference=_triangles_ref,
        examples=(
            ("a single triangle on vertices 0, 1, 2", "returns 1"),
        ),
        correctness_size=192,
        timing_size=1024,
        work_scale=128.0,
        gpu_threads=lambda inp: len(inp["rowptr"]) - 1,
    ),
    Problem(
        name="is_bipartite",
        ptype="graph",
        description=(
            f"{_CSR_DOC}  Return 1 if the graph is bipartite (2-colourable), "
            "otherwise 0."
        ),
        params=(
            ParamSpec("rowptr", "array<int>", "in"),
            ParamSpec("colidx", "array<int>", "in"),
        ),
        ret="int",
        generate=_gen_maybe_bipartite,
        reference=_bipartite_ref,
        examples=(
            ("square 0-1-2-3-0", "returns 1"),
            ("triangle 0-1-2-0", "returns 0"),
        ),
        gpu_threads=lambda inp: len(inp["rowptr"]) - 1,
        gpu_result_init=1,
    ),
]
