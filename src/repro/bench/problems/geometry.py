"""Geometry problems (Table 1): properties of 2-D point sets."""

from __future__ import annotations

import numpy as np

from ..spec import ParamSpec, Problem
from .common import floats


def _gen_points(rng, n):
    m = max(16, n // 8)
    return {"x": floats(rng, m, -10, 10), "y": floats(rng, m, -10, 10)}


def _closest_pair_ref(inp):
    x, y = np.asarray(inp["x"]), np.asarray(inp["y"])
    dx = x[:, None] - x[None, :]
    dy = y[:, None] - y[None, :]
    d2 = dx * dx + dy * dy
    np.fill_diagonal(d2, np.inf)
    return {"return": float(np.sqrt(d2.min()))}


def _farthest_pair_ref(inp):
    x, y = np.asarray(inp["x"]), np.asarray(inp["y"])
    dx = x[:, None] - x[None, :]
    dy = y[:, None] - y[None, :]
    d2 = dx * dx + dy * dy
    return {"return": float(np.sqrt(d2.max()))}


def _gen_polygon(rng, n):
    m = max(8, n // 8)
    # convex-ish polygon: sorted angles around the origin with jittered radii
    angles = np.sort(rng.uniform(0.0, 2 * np.pi, m))
    radii = np.round(rng.uniform(2.0, 8.0, m), 3)
    return {
        "x": np.round(radii * np.cos(angles), 3),
        "y": np.round(radii * np.sin(angles), 3),
    }


def _polygon_area_ref(inp):
    x, y = np.asarray(inp["x"]), np.asarray(inp["y"])
    area = 0.5 * abs(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1)))
    return {"return": float(area)}


def _gen_circle(rng, n):
    p = _gen_points(rng, n)
    return {**p, "cx": 1.0, "cy": -1.0, "r": 6.0}


def _in_circle_ref(inp):
    x, y = np.asarray(inp["x"]), np.asarray(inp["y"])
    d2 = (x - inp["cx"]) ** 2 + (y - inp["cy"]) ** 2
    return {"return": int(np.sum(d2 <= inp["r"] ** 2))}


def _bbox_ref(inp):
    x, y = np.asarray(inp["x"]), np.asarray(inp["y"])
    return {"out": np.array([x.min(), x.max(), y.min(), y.max()])}


def _gen_bbox(rng, n):
    p = _gen_points(rng, n)
    # sentinel-initialized so accumulation-style kernels (GPU atomics) work
    return {**p, "out": np.array([1e30, -1e30, 1e30, -1e30])}


PROBLEMS = [
    Problem(
        name="closest_pair_distance",
        ptype="geometry",
        description=(
            "Points are given by coordinate arrays x and y.  Return the "
            "smallest Euclidean distance between any two distinct points."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("y", "array<float>", "in"),
        ),
        ret="float",
        generate=_gen_points,
        reference=_closest_pair_ref,
        examples=(
            ("x = [0, 3, 0], y = [0, 0, 1]", "returns 1"),
        ),
        correctness_size=256,
        timing_size=2048,     # 256 points -> 65k pairs
        work_scale=128.0,
        tol=1e-5,
        gpu_threads=lambda inp: len(inp["x"]),
        gpu_result_init=1e30,
    ),
    Problem(
        name="polygon_area",
        ptype="geometry",
        description=(
            "The vertices of a simple polygon are given in order by x and y. "
            "Return its area (the absolute value of the shoelace formula)."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("y", "array<float>", "in"),
        ),
        ret="float",
        generate=_gen_polygon,
        reference=_polygon_area_ref,
        examples=(
            ("unit square: x = [0, 1, 1, 0], y = [0, 0, 1, 1]", "returns 1"),
        ),
        tol=1e-5,
        gpu_threads=lambda inp: len(inp["x"]),
    ),
    Problem(
        name="count_points_in_circle",
        ptype="geometry",
        description=(
            "Points are given by x and y.  Return the number of points whose "
            "Euclidean distance from (cx, cy) is at most r."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("y", "array<float>", "in"),
            ParamSpec("cx", "float", "in"),
            ParamSpec("cy", "float", "in"),
            ParamSpec("r", "float", "in"),
        ),
        ret="int",
        generate=_gen_circle,
        reference=_in_circle_ref,
        examples=(
            ("x = [0, 5], y = [0, 5], cx = 0, cy = 0, r = 2", "returns 1"),
        ),
        gpu_threads=lambda inp: len(inp["x"]),
    ),
    Problem(
        name="bounding_box",
        ptype="geometry",
        description=(
            "Points are given by x and y.  Write the axis-aligned bounding "
            "box into out (length 4) as [min x, max x, min y, max y].  out "
            "is pre-initialized to [1e30, -1e30, 1e30, -1e30]."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("y", "array<float>", "in"),
            ParamSpec("out", "array<float>", "out"),
        ),
        ret=None,
        generate=_gen_bbox,
        reference=_bbox_ref,
        examples=(
            ("x = [1, -2], y = [0, 4]", "out becomes [-2, 1, 0, 4]"),
        ),
        gpu_threads=lambda inp: len(inp["x"]),
    ),
    Problem(
        name="farthest_pair_distance",
        ptype="geometry",
        description=(
            "Points are given by x and y.  Return the largest Euclidean "
            "distance between any two points (the diameter of the set)."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("y", "array<float>", "in"),
        ),
        ret="float",
        generate=_gen_points,
        reference=_farthest_pair_ref,
        examples=(
            ("x = [0, 3, 0], y = [0, 0, 1]", "returns 3.162 (between (3,0) and (0,1))"),
        ),
        correctness_size=256,
        timing_size=2048,
        work_scale=128.0,
        tol=1e-5,
        gpu_threads=lambda inp: len(inp["x"]),
    ),
]
