"""The 60 PCGBench problems, five per problem type (Table 1)."""

from __future__ import annotations

from typing import Dict, List

from ..spec import PROBLEM_TYPES, Problem
from . import (
    dense_la,
    fft,
    geometry,
    graph,
    histogram,
    reduce_,
    scan,
    search,
    sort,
    sparse_la,
    stencil,
    transform,
)

_MODULES = {
    "sort": sort,
    "scan": scan,
    "dense_la": dense_la,
    "sparse_la": sparse_la,
    "search": search,
    "reduce": reduce_,
    "histogram": histogram,
    "stencil": stencil,
    "graph": graph,
    "geometry": geometry,
    "fft": fft,
    "transform": transform,
}


def problems_by_type() -> Dict[str, List[Problem]]:
    """All problems, keyed by problem type, in Table 1 order."""
    out: Dict[str, List[Problem]] = {}
    for ptype in PROBLEM_TYPES:
        probs = list(_MODULES[ptype].PROBLEMS)
        assert len(probs) == 5, f"{ptype} must define exactly 5 problems"
        for p in probs:
            assert p.ptype == ptype, (p.name, p.ptype, ptype)
        out[ptype] = probs
    return out


def all_problems() -> List[Problem]:
    """The 60 problems in deterministic order."""
    out: List[Problem] = []
    for ptype in PROBLEM_TYPES:
        out.extend(problems_by_type()[ptype])
    return out
