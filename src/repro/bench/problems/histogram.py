"""Histogram problems (Table 1): binning values by a property."""

from __future__ import annotations

import numpy as np

from ..spec import ParamSpec, Problem
from .common import ints


def _gen_unit(rng, n):
    return {
        "x": np.round(rng.uniform(0.0, 1.0, n), 4).clip(0.0, 0.9999),
        "h": np.zeros(10, dtype=np.int64),
    }


def _unit_ref(inp):
    bins = np.floor(np.asarray(inp["x"]) * 10).astype(np.int64)
    return {"h": np.bincount(bins, minlength=10)}


def _gen_mod(rng, n):
    return {
        "x": ints(rng, n, 0, 1000),
        "k": 8,
        "h": np.zeros(8, dtype=np.int64),
    }


def _mod_ref(inp):
    return {"h": np.bincount(np.asarray(inp["x"]) % inp["k"],
                             minlength=inp["k"])}


def _gen_deciles(rng, n):
    x = np.round(rng.uniform(-5.0, 5.0, n), 3)
    return {"x": x, "lo": -5.0, "hi": 5.0, "h": np.zeros(10, dtype=np.int64)}


def _deciles_ref(inp):
    x = np.asarray(inp["x"])
    t = (x - inp["lo"]) / (inp["hi"] - inp["lo"])
    bins = np.clip(np.floor(t * 10).astype(np.int64), 0, 9)
    return {"h": np.bincount(bins, minlength=10)}


def _gen_edges(rng, n):
    edges = np.array([0.0, 1.0, 2.5, 4.0, 7.0, 10.0])
    x = np.round(rng.uniform(0.0, 9.999, n), 3)
    return {"x": x, "edges": edges, "h": np.zeros(len(edges) - 1, dtype=np.int64)}


def _edges_ref(inp):
    edges = np.asarray(inp["edges"])
    bins = np.searchsorted(edges, np.asarray(inp["x"]), side="right") - 1
    bins = np.clip(bins, 0, len(edges) - 2)
    return {"h": np.bincount(bins, minlength=len(edges) - 1)}


def _gen_letters(rng, n):
    return {"x": ints(rng, n, 0, 26), "h": np.zeros(26, dtype=np.int64)}


PROBLEMS = [
    Problem(
        name="hist_unit_interval",
        ptype="histogram",
        description=(
            "Every element of x lies in [0, 1).  Count the elements falling "
            "in each of ten equal-width bins: element v belongs to bin "
            "floor(v * 10).  Write the counts into h (length 10, already "
            "zeroed)."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("h", "array<int>", "out"),
        ),
        ret=None,
        generate=_gen_unit,
        reference=_unit_ref,
        examples=(
            ("x = [0.05, 0.15, 0.17, 0.95]", "h becomes [1, 2, 0, 0, 0, 0, 0, 0, 0, 1]"),
        ),
    ),
    Problem(
        name="hist_mod_k",
        ptype="histogram",
        description=(
            "x holds non-negative integers.  Count how many elements fall "
            "in each residue class modulo k, writing the counts into h "
            "(length k, already zeroed): element v belongs to bin v % k."
        ),
        params=(
            ParamSpec("x", "array<int>", "in"),
            ParamSpec("k", "int", "in"),
            ParamSpec("h", "array<int>", "out"),
        ),
        ret=None,
        generate=_gen_mod,
        reference=_mod_ref,
        examples=(
            ("x = [0, 3, 4, 8], k = 4", "h becomes [3, 0, 0, 1]"),
        ),
    ),
    Problem(
        name="hist_deciles",
        ptype="histogram",
        description=(
            "Every element of x lies in [lo, hi].  Split [lo, hi] into ten "
            "equal-width bins and count the elements in each, writing counts "
            "into h (length 10, already zeroed).  Values equal to hi belong "
            "to the last bin."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("lo", "float", "in"),
            ParamSpec("hi", "float", "in"),
            ParamSpec("h", "array<int>", "out"),
        ),
        ret=None,
        generate=_gen_deciles,
        reference=_deciles_ref,
        examples=(
            ("x = [0, 9.5], lo = 0, hi = 10", "h becomes [1, 0, 0, 0, 0, 0, 0, 0, 0, 1]"),
        ),
    ),
    Problem(
        name="hist_custom_edges",
        ptype="histogram",
        description=(
            "edges is a sorted array of m+1 bin boundaries.  Every element "
            "of x lies in [edges[0], edges[m]).  Count the elements in each "
            "of the m bins [edges[j], edges[j+1]) into h (length m, already "
            "zeroed)."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("edges", "array<float>", "in"),
            ParamSpec("h", "array<int>", "out"),
        ),
        ret=None,
        generate=_gen_edges,
        reference=_edges_ref,
        examples=(
            ("x = [0.5, 3.0, 3.5], edges = [0, 1, 2.5, 4]",
             "h becomes [1, 0, 2]"),
        ),
    ),
    Problem(
        name="hist_alphabet",
        ptype="histogram",
        description=(
            "x holds letter codes in 0..25.  Count the occurrences of each "
            "code into h (length 26, already zeroed)."
        ),
        params=(
            ParamSpec("x", "array<int>", "in"),
            ParamSpec("h", "array<int>", "out"),
        ),
        ret=None,
        generate=_gen_letters,
        reference=lambda inp: {"h": np.bincount(inp["x"], minlength=26)},
        examples=(
            ("x = [0, 2, 2]", "h becomes [1, 0, 2, 0, ..., 0]"),
        ),
    ),
]
