"""Sparse linear algebra problems (Table 1), CSR/COO formats.

The paper finds this the hardest problem type for every LLM (Fig. 3):
indirection, irregular row lengths, and scatter updates all resist naive
parallelisation.
"""

from __future__ import annotations

import numpy as np

from ..spec import ParamSpec, Problem
from .common import csr_matrix, floats


def _gen_spmv(rng, n):
    rows = max(8, n // 8)
    rowptr, colidx, vals = csr_matrix(rng, rows)
    return {
        "rowptr": rowptr, "colidx": colidx, "vals": vals,
        "x": floats(rng, rows, -2, 2), "y": np.zeros(rows),
    }


def _spmv_ref(inp):
    rowptr, colidx, vals = inp["rowptr"], inp["colidx"], inp["vals"]
    x = np.asarray(inp["x"])
    n = len(rowptr) - 1
    y = np.zeros(n)
    for i in range(n):
        s, e = rowptr[i], rowptr[i + 1]
        y[i] = np.dot(vals[s:e], x[colidx[s:e]])
    return {"y": y}


def _spmv_t_ref(inp):
    rowptr, colidx, vals = inp["rowptr"], inp["colidx"], inp["vals"]
    x = np.asarray(inp["x"])
    n = len(rowptr) - 1
    y = np.zeros(n)
    for i in range(n):
        s, e = rowptr[i], rowptr[i + 1]
        np.add.at(y, colidx[s:e], vals[s:e] * x[i])
    return {"y": y}


def _gen_sparse_vectors(rng, n):
    m = max(8, n // 4)
    universe = max(16, n)
    idx_a = np.sort(rng.choice(universe, size=m, replace=False)).astype(np.int64)
    idx_b = np.sort(rng.choice(universe, size=m, replace=False)).astype(np.int64)
    # guarantee some overlap
    k = max(1, m // 4)
    idx_b[:k] = idx_a[:k]
    idx_b = np.sort(np.unique(idx_b))
    while len(idx_b) < m:
        cand = int(rng.integers(0, universe))
        if cand not in idx_b:
            idx_b = np.sort(np.append(idx_b, cand))
    return {
        "idx_a": idx_a, "val_a": floats(rng, m, -2, 2),
        "idx_b": idx_b[:m], "val_b": floats(rng, m, -2, 2),
    }


def _sparse_dot_ref(inp):
    da = dict(zip(inp["idx_a"].tolist(), np.asarray(inp["val_a"]).tolist()))
    total = 0.0
    for i, v in zip(inp["idx_b"].tolist(), np.asarray(inp["val_b"]).tolist()):
        total += da.get(i, 0.0) * v
    return {"return": total}


def _gen_sparse_axpy(rng, n):
    dense = max(16, n)
    m = max(8, n // 4)
    idx = np.sort(rng.choice(dense, size=m, replace=False)).astype(np.int64)
    return {
        "a": 1.5,
        "idx": idx,
        "val": floats(rng, m, -2, 2),
        "y": floats(rng, dense, -2, 2),
    }


def _sparse_axpy_ref(inp):
    y = np.asarray(inp["y"]).copy()
    np.add.at(y, inp["idx"], inp["a"] * np.asarray(inp["val"]))
    return {"y": y}


def _gen_row_sums(rng, n):
    rows = max(8, n // 8)
    rowptr, colidx, vals = csr_matrix(rng, rows)
    return {"rowptr": rowptr, "vals": vals, "out": np.zeros(rows)}


def _row_sums_ref(inp):
    rowptr, vals = inp["rowptr"], np.asarray(inp["vals"])
    n = len(rowptr) - 1
    out = np.array([vals[rowptr[i]:rowptr[i + 1]].sum() for i in range(n)])
    return {"out": out}


PROBLEMS = [
    Problem(
        name="spmv_csr",
        ptype="sparse_la",
        description=(
            "Compute the sparse matrix-vector product y = A * x for a "
            "square CSR matrix A given by rowptr (length n+1), colidx and "
            "vals (length nnz).  Row i's entries are vals[rowptr[i] .. "
            "rowptr[i+1]) in columns colidx[rowptr[i] .. rowptr[i+1]).  "
            "y has length n and is already zeroed."
        ),
        params=(
            ParamSpec("rowptr", "array<int>", "in"),
            ParamSpec("colidx", "array<int>", "in"),
            ParamSpec("vals", "array<float>", "in"),
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("y", "array<float>", "out"),
        ),
        ret=None,
        generate=_gen_spmv,
        reference=_spmv_ref,
        examples=(
            ("rowptr = [0, 1, 3], colidx = [1, 0, 1], vals = [2, 1, 3], "
             "x = [5, 7]", "y becomes [14, 26]"),
        ),
        tol=1e-5,
        gpu_threads=lambda inp: len(inp["rowptr"]) - 1,
    ),
    Problem(
        name="sparse_dot",
        ptype="sparse_la",
        description=(
            "Two sparse vectors are given as sorted index arrays with "
            "matching value arrays: (idx_a, val_a) and (idx_b, val_b).  "
            "Return their dot product: the sum of val_a[i] * val_b[j] over "
            "all pairs with idx_a[i] == idx_b[j]."
        ),
        params=(
            ParamSpec("idx_a", "array<int>", "in"),
            ParamSpec("val_a", "array<float>", "in"),
            ParamSpec("idx_b", "array<int>", "in"),
            ParamSpec("val_b", "array<float>", "in"),
        ),
        ret="float",
        generate=_gen_sparse_vectors,
        reference=_sparse_dot_ref,
        examples=(
            ("idx_a = [0, 3], val_a = [2, 4], idx_b = [3, 5], val_b = [10, 1]",
             "returns 40"),
        ),
        tol=1e-5,
        gpu_threads=lambda inp: len(inp["idx_a"]),
    ),
    Problem(
        name="sparse_axpy",
        ptype="sparse_la",
        description=(
            "A sparse vector is given by sorted distinct indices idx and "
            "values val.  Update the dense vector y in place: "
            "y[idx[k]] += a * val[k] for every k."
        ),
        params=(
            ParamSpec("a", "float", "in"),
            ParamSpec("idx", "array<int>", "in"),
            ParamSpec("val", "array<float>", "in"),
            ParamSpec("y", "array<float>", "inout"),
        ),
        ret=None,
        generate=_gen_sparse_axpy,
        reference=_sparse_axpy_ref,
        examples=(
            ("a = 2, idx = [1, 3], val = [5, 1], y = [0, 0, 0, 0]",
             "y becomes [0, 10, 0, 2]"),
        ),
        gpu_threads=lambda inp: len(inp["idx"]),
    ),
    Problem(
        name="csr_row_sums",
        ptype="sparse_la",
        description=(
            "For a CSR matrix given by rowptr (length n+1) and vals, write "
            "the sum of each row's values into out (length n, zeroed): "
            "out[i] = sum of vals[rowptr[i] .. rowptr[i+1])."
        ),
        params=(
            ParamSpec("rowptr", "array<int>", "in"),
            ParamSpec("vals", "array<float>", "in"),
            ParamSpec("out", "array<float>", "out"),
        ),
        ret=None,
        generate=_gen_row_sums,
        reference=_row_sums_ref,
        examples=(
            ("rowptr = [0, 2, 3], vals = [1, 2, 5]", "out becomes [3, 5]"),
        ),
        tol=1e-5,
        gpu_threads=lambda inp: len(inp["rowptr"]) - 1,
    ),
    Problem(
        name="spmv_transpose",
        ptype="sparse_la",
        description=(
            "Compute y = A^T * x for a square CSR matrix A given by rowptr, "
            "colidx and vals: for every row i and entry k in "
            "rowptr[i]..rowptr[i+1], accumulate y[colidx[k]] += vals[k] * x[i].  "
            "y has length n and is already zeroed."
        ),
        params=(
            ParamSpec("rowptr", "array<int>", "in"),
            ParamSpec("colidx", "array<int>", "in"),
            ParamSpec("vals", "array<float>", "in"),
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("y", "array<float>", "out"),
        ),
        ret=None,
        generate=_gen_spmv,
        reference=_spmv_t_ref,
        examples=(
            ("rowptr = [0, 1, 3], colidx = [1, 0, 1], vals = [2, 1, 3], "
             "x = [5, 7]", "y becomes [7, 31]"),
        ),
        tol=1e-5,
        gpu_threads=lambda inp: len(inp["rowptr"]) - 1,
    ),
]
