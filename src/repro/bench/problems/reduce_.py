"""Reduce problems: fold an array down to a scalar (Table 1).

Named ``reduce_`` to avoid shadowing :func:`functools.reduce` habits.
"""

from __future__ import annotations

import numpy as np

from ..spec import ParamSpec, Problem
from .common import floats

PROBLEMS = [
    Problem(
        name="sum_of_elements",
        ptype="reduce",
        description="Return the sum of all elements of x.",
        params=(ParamSpec("x", "array<float>", "in"),),
        ret="float",
        generate=lambda rng, n: {"x": floats(rng, n)},
        reference=lambda inp: {"return": float(np.sum(inp["x"]))},
        examples=(
            ("x = [1, 2, 3, 4]", "returns 10"),
            ("x = [-1, 1]", "returns 0"),
        ),
    ),
    Problem(
        name="smallest_element",
        ptype="reduce",
        description="Return the minimum value contained in x.",
        params=(ParamSpec("x", "array<float>", "in"),),
        ret="float",
        generate=lambda rng, n: {"x": floats(rng, n)},
        reference=lambda inp: {"return": float(np.min(inp["x"]))},
        examples=(
            ("x = [3, -1, 7]", "returns -1"),
        ),
        gpu_result_init=1e30,
    ),
    Problem(
        name="sum_of_squares",
        ptype="reduce",
        description=(
            "Return the sum of the squares of the elements of x "
            "(the squared L2 norm)."
        ),
        params=(ParamSpec("x", "array<float>", "in"),),
        ret="float",
        generate=lambda rng, n: {"x": floats(rng, n, -3.0, 3.0)},
        reference=lambda inp: {"return": float(np.sum(inp["x"] ** 2))},
        examples=(
            ("x = [1, 2, 2]", "returns 9"),
        ),
    ),
    Problem(
        name="count_above_threshold",
        ptype="reduce",
        description=(
            "Return how many elements of x are strictly greater than the "
            "threshold t."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("t", "float", "in"),
        ),
        ret="int",
        generate=lambda rng, n: {"x": floats(rng, n), "t": 1.5},
        reference=lambda inp: {"return": int(np.sum(inp["x"] > inp["t"]))},
        examples=(
            ("x = [0, 2, 5, 1], t = 1.5", "returns 2"),
        ),
    ),
    Problem(
        name="max_adjacent_diff",
        ptype="reduce",
        description=(
            "Return the maximum absolute difference between adjacent "
            "elements of x, i.e. max over i of |x[i+1] - x[i]|.  x has at "
            "least two elements."
        ),
        params=(ParamSpec("x", "array<float>", "in"),),
        ret="float",
        generate=lambda rng, n: {"x": floats(rng, n)},
        reference=lambda inp: {
            "return": float(np.max(np.abs(np.diff(inp["x"]))))
        },
        examples=(
            ("x = [1, 4, 2, 2]", "returns 3"),
        ),
        gpu_result_init=-1e30,
    ),
]
