"""Scan problems: prefix operations over arrays (Table 1).

Includes the paper's running example (partial minimums, Listing 1) and
*variant* scans (reverse prefix sum) chosen, as in the paper, so the task
is not verbatim in any training set.
"""

from __future__ import annotations

import numpy as np

from ..spec import ParamSpec, Problem
from .common import floats

PROBLEMS = [
    Problem(
        name="prefix_sum",
        ptype="scan",
        description=(
            "Compute the inclusive prefix sum of x into out: "
            "out[i] = x[0] + x[1] + ... + x[i]."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("out", "array<float>", "out"),
        ),
        ret=None,
        generate=lambda rng, n: {"x": floats(rng, n, -5, 5), "out": np.zeros(n)},
        reference=lambda inp: {"out": np.cumsum(inp["x"])},
        examples=(
            ("x = [1, 2, 3, 4]", "out becomes [1, 3, 6, 10]"),
        ),
    ),
    Problem(
        name="reverse_prefix_sum",
        ptype="scan",
        description=(
            "Compute the reverse prefix sum of x into out: "
            "out[i] = x[i] + x[i+1] + ... + x[n-1]."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("out", "array<float>", "out"),
        ),
        ret=None,
        generate=lambda rng, n: {"x": floats(rng, n, -5, 5), "out": np.zeros(n)},
        reference=lambda inp: {"out": np.cumsum(inp["x"][::-1])[::-1].copy()},
        examples=(
            ("x = [1, 2, 3, 4]", "out becomes [10, 9, 7, 4]"),
        ),
    ),
    Problem(
        name="partial_minimums",
        ptype="scan",
        description=(
            "Replace the i-th element of the array x with the minimum "
            "value from indices 0 through i."
        ),
        params=(ParamSpec("x", "array<float>", "inout"),),
        ret=None,
        generate=lambda rng, n: {"x": floats(rng, n)},
        reference=lambda inp: {"x": np.minimum.accumulate(inp["x"])},
        examples=(
            ("x = [8, 6, -1, 7, 3, 4, 4]", "x becomes [8, 6, -1, -1, -1, -1, -1]"),
            ("x = [5, 4, 6, 4, 3, 6, 1, 1]", "x becomes [5, 4, 4, 4, 3, 3, 1, 1]"),
        ),
    ),
    Problem(
        name="exclusive_prefix_sum",
        ptype="scan",
        description=(
            "Compute the exclusive prefix sum of x into out: out[0] = 0 and "
            "out[i] = x[0] + ... + x[i-1] for i > 0."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("out", "array<float>", "out"),
        ),
        ret=None,
        generate=lambda rng, n: {"x": floats(rng, n, -5, 5), "out": np.zeros(n)},
        reference=lambda inp: {
            "out": np.concatenate([[0.0], np.cumsum(inp["x"])[:-1]])
        },
        examples=(
            ("x = [1, 2, 3, 4]", "out becomes [0, 1, 3, 6]"),
        ),
    ),
    Problem(
        name="running_maximums",
        ptype="scan",
        description=(
            "Compute the running maximum of x into out: "
            "out[i] = max(x[0], ..., x[i])."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("out", "array<float>", "out"),
        ),
        ret=None,
        generate=lambda rng, n: {"x": floats(rng, n), "out": np.zeros(n)},
        reference=lambda inp: {"out": np.maximum.accumulate(inp["x"])},
        examples=(
            ("x = [2, 1, 5, 3]", "out becomes [2, 2, 5, 5]"),
        ),
    ),
]
