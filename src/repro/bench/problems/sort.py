"""Sort problems (Table 1): in-place and out-of-place orderings."""

from __future__ import annotations

import numpy as np

from ..spec import ParamSpec, Problem
from .common import floats


def _rank_reference(inp):
    x = np.asarray(inp["x"])
    order = np.argsort(x, kind="stable")
    ranks = np.empty(len(x), dtype=np.int64)
    ranks[order] = np.arange(len(x))
    return {"r": ranks}


def _distinct_floats(rng, n):
    # distinct values make rank well-defined
    base = rng.permutation(n).astype(np.float64)
    return np.round(base + rng.uniform(0.0, 0.4, n), 3)


PROBLEMS = [
    Problem(
        name="sort_ascending",
        ptype="sort",
        description="Sort the array x in place into ascending order.",
        params=(ParamSpec("x", "array<float>", "inout"),),
        ret=None,
        generate=lambda rng, n: {"x": floats(rng, n)},
        reference=lambda inp: {"x": np.sort(inp["x"])},
        examples=(
            ("x = [3, 1, 2]", "x becomes [1, 2, 3]"),
        ),
        work_scale=256.0,
    ),
    Problem(
        name="sort_descending",
        ptype="sort",
        description="Sort the array x in place into descending order.",
        params=(ParamSpec("x", "array<float>", "inout"),),
        ret=None,
        generate=lambda rng, n: {"x": floats(rng, n)},
        reference=lambda inp: {"x": np.sort(inp["x"])[::-1].copy()},
        examples=(
            ("x = [3, 1, 2]", "x becomes [3, 2, 1]"),
        ),
        work_scale=256.0,
    ),
    Problem(
        name="sort_by_magnitude",
        ptype="sort",
        description=(
            "Sort the array x in place by absolute value, smallest "
            "magnitude first.  No two elements share a magnitude."
        ),
        params=(ParamSpec("x", "array<float>", "inout"),),
        ret=None,
        generate=lambda rng, n: {
            "x": _distinct_floats(rng, n) * rng.choice([-1.0, 1.0], n)
        },
        reference=lambda inp: {
            "x": np.asarray(inp["x"])[np.argsort(np.abs(inp["x"]))]
        },
        examples=(
            ("x = [-3, 1, 2]", "x becomes [1, 2, -3]"),
        ),
        work_scale=256.0,
    ),
    Problem(
        name="sort_subrange",
        ptype="sort",
        description=(
            "Sort the sub-array x[lo..hi) in place into ascending order, "
            "leaving the rest of x untouched.  0 <= lo <= hi <= len(x)."
        ),
        params=(
            ParamSpec("x", "array<float>", "inout"),
            ParamSpec("lo", "int", "in"),
            ParamSpec("hi", "int", "in"),
        ),
        ret=None,
        generate=lambda rng, n: {
            "x": floats(rng, n),
            "lo": n // 4,
            "hi": n - n // 4,
        },
        reference=lambda inp: {
            "x": np.concatenate([
                inp["x"][: inp["lo"]],
                np.sort(inp["x"][inp["lo"]:inp["hi"]]),
                inp["x"][inp["hi"]:],
            ])
        },
        examples=(
            ("x = [9, 5, 3, 4, 0], lo = 1, hi = 4", "x becomes [9, 3, 4, 5, 0]"),
        ),
        work_scale=256.0,
    ),
    Problem(
        name="rank_of_elements",
        ptype="sort",
        description=(
            "For each element of x write its rank into r: r[i] is the number "
            "of elements of x strictly smaller than x[i].  All elements of x "
            "are distinct."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("r", "array<int>", "out"),
        ),
        ret=None,
        generate=lambda rng, n: {
            "x": _distinct_floats(rng, n),
            "r": np.zeros(n, dtype=np.int64),
        },
        reference=_rank_reference,
        examples=(
            ("x = [10.5, 2.5, 7.5]", "r becomes [2, 0, 1]"),
        ),
        work_scale=256.0,
    ),
]
