"""Dense linear algebra problems (Table 1): BLAS levels 1-3."""

from __future__ import annotations

import numpy as np

from ..spec import ParamSpec, Problem
from .common import floats, side_for


def _gen_axpy(rng, n):
    return {"a": 2.5, "x": floats(rng, n, -3, 3), "y": floats(rng, n, -3, 3)}


def _gen_dot(rng, n):
    return {"x": floats(rng, n, -3, 3), "y": floats(rng, n, -3, 3)}


def _gen_gemv(rng, n):
    m = side_for(n)
    return {
        "A": np.round(rng.uniform(-2, 2, (m, m)), 3),
        "x": floats(rng, m, -2, 2),
        "y": np.zeros(m),
    }


def _gen_gemm(rng, n):
    m = max(4, int(round(n ** (1.0 / 3.0) * 2)))
    return {
        "A": np.round(rng.uniform(-2, 2, (m, m)), 3),
        "B": np.round(rng.uniform(-2, 2, (m, m)), 3),
        "C": np.zeros((m, m)),
    }


def _gen_outer(rng, n):
    m = side_for(n)
    return {
        "x": floats(rng, m, -2, 2),
        "y": floats(rng, m, -2, 2),
        "A": np.zeros((m, m)),
    }


PROBLEMS = [
    Problem(
        name="axpy",
        ptype="dense_la",
        description=(
            "Compute the BLAS-1 axpy update in place: y[i] = a * x[i] + y[i]."
        ),
        params=(
            ParamSpec("a", "float", "in"),
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("y", "array<float>", "inout"),
        ),
        ret=None,
        generate=_gen_axpy,
        reference=lambda inp: {"y": inp["a"] * inp["x"] + inp["y"]},
        examples=(
            ("a = 2, x = [1, 2], y = [10, 10]", "y becomes [12, 14]"),
        ),
    ),
    Problem(
        name="dot_product",
        ptype="dense_la",
        description="Return the dot product of x and y (BLAS-1 dot).",
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("y", "array<float>", "in"),
        ),
        ret="float",
        generate=_gen_dot,
        reference=lambda inp: {"return": float(np.dot(inp["x"], inp["y"]))},
        examples=(
            ("x = [1, 2, 3], y = [4, 5, 6]", "returns 32"),
        ),
        tol=1e-5,
    ),
    Problem(
        name="gemv",
        ptype="dense_la",
        description=(
            "Compute the BLAS-2 matrix-vector product y = A * x, where A is "
            "square and y is already allocated."
        ),
        params=(
            ParamSpec("A", "array2d<float>", "in"),
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("y", "array<float>", "out"),
        ),
        ret=None,
        generate=_gen_gemv,
        reference=lambda inp: {"y": np.asarray(inp["A"]) @ np.asarray(inp["x"])},
        examples=(
            ("A = [[1, 2], [3, 4]], x = [1, 1]", "y becomes [3, 7]"),
        ),
        correctness_size=196,
        timing_size=4096,     # 64x64 matrix
        work_scale=256.0,
        tol=1e-5,
    ),
    Problem(
        name="gemm",
        ptype="dense_la",
        description=(
            "Compute the BLAS-3 matrix-matrix product C = A * B for square "
            "matrices; C is already allocated and zeroed."
        ),
        params=(
            ParamSpec("A", "array2d<float>", "in"),
            ParamSpec("B", "array2d<float>", "in"),
            ParamSpec("C", "array2d<float>", "out"),
        ),
        ret=None,
        generate=_gen_gemm,
        reference=lambda inp: {"C": np.asarray(inp["A"]) @ np.asarray(inp["B"])},
        examples=(
            ("A = [[1, 0], [0, 2]], B = [[3, 4], [5, 6]]",
             "C becomes [[3, 4], [10, 12]]"),
        ),
        correctness_size=256,   # 12x12 or so after cube root scaling
        timing_size=8192,       # ~40x40
        work_scale=64.0,
        tol=1e-5,
        gpu_threads=lambda inp: inp["C"].size,
    ),
    Problem(
        name="outer_product",
        ptype="dense_la",
        description=(
            "Compute the BLAS-2 outer product A = x * y^T: "
            "A[i, j] = x[i] * y[j].  A is already allocated."
        ),
        params=(
            ParamSpec("x", "array<float>", "in"),
            ParamSpec("y", "array<float>", "in"),
            ParamSpec("A", "array2d<float>", "out"),
        ),
        ret=None,
        generate=_gen_outer,
        reference=lambda inp: {"A": np.outer(inp["x"], inp["y"])},
        examples=(
            ("x = [1, 2], y = [3, 4]", "A becomes [[3, 4], [6, 8]]"),
        ),
        correctness_size=196,
        timing_size=4096,
        work_scale=256.0,
        gpu_threads=lambda inp: inp["A"].size,
    ),
]
