"""Transform problems: map a constant function over an array (Table 1).

The simplest problem type — fully data parallel — which is why the paper
finds every LLM does best here (Fig. 3).
"""

from __future__ import annotations

import numpy as np

from ..spec import ParamSpec, Problem
from .common import floats

PROBLEMS = [
    Problem(
        name="relu",
        ptype="transform",
        description=(
            "Replace every element of the array x with max(x[i], 0), i.e. "
            "apply the rectified linear unit in place."
        ),
        params=(ParamSpec("x", "array<float>", "inout"),),
        ret=None,
        generate=lambda rng, n: {"x": floats(rng, n)},
        reference=lambda inp: {"x": np.maximum(inp["x"], 0.0)},
        examples=(
            ("x = [-1.5, 2, 0, -3]", "x becomes [0, 2, 0, 0]"),
            ("x = [4, -4]", "x becomes [4, 0]"),
        ),
    ),
    Problem(
        name="celsius_to_fahrenheit",
        ptype="transform",
        description=(
            "Convert every temperature in c from Celsius to Fahrenheit and "
            "store it in f: f[i] = c[i] * 9 / 5 + 32."
        ),
        params=(
            ParamSpec("c", "array<float>", "in"),
            ParamSpec("f", "array<float>", "out"),
        ),
        ret=None,
        generate=lambda rng, n: {
            "c": floats(rng, n, -40.0, 40.0),
            "f": np.zeros(n),
        },
        reference=lambda inp: {"f": inp["c"] * 9.0 / 5.0 + 32.0},
        examples=(
            ("c = [0, 100, -40]", "f becomes [32, 212, -40]"),
        ),
    ),
    Problem(
        name="clamp_range",
        ptype="transform",
        description=(
            "Clamp every element of x into the closed interval [lo, hi] "
            "in place: values below lo become lo, values above hi become hi."
        ),
        params=(
            ParamSpec("x", "array<float>", "inout"),
            ParamSpec("lo", "float", "in"),
            ParamSpec("hi", "float", "in"),
        ),
        ret=None,
        generate=lambda rng, n: {
            "x": floats(rng, n),
            "lo": -2.5,
            "hi": 2.5,
        },
        reference=lambda inp: {"x": np.clip(inp["x"], inp["lo"], inp["hi"])},
        examples=(
            ("x = [-5, 0, 7], lo = -1, hi = 3", "x becomes [-1, 0, 3]"),
        ),
    ),
    Problem(
        name="cube_elements",
        ptype="transform",
        description="Replace every element of x with its cube in place.",
        params=(ParamSpec("x", "array<float>", "inout"),),
        ret=None,
        generate=lambda rng, n: {"x": floats(rng, n, -4.0, 4.0)},
        reference=lambda inp: {"x": inp["x"] ** 3},
        examples=(
            ("x = [1, -2, 3]", "x becomes [1, -8, 27]"),
        ),
    ),
    Problem(
        name="halve_shifted",
        ptype="transform",
        description=(
            "Replace every element of x with (x[i] + 1) / 2 in place."
        ),
        params=(ParamSpec("x", "array<float>", "inout"),),
        ret=None,
        generate=lambda rng, n: {"x": floats(rng, n)},
        reference=lambda inp: {"x": (inp["x"] + 1.0) / 2.0},
        examples=(
            ("x = [1, 3, -1]", "x becomes [1, 2, 0]"),
        ),
    ),
]
