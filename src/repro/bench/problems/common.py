"""Shared input-generator helpers for the PCGBench problem modules."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def floats(rng: np.random.Generator, n: int, lo: float = -10.0,
           hi: float = 10.0) -> np.ndarray:
    """Uniform floats rounded to 3 decimals (keeps prompts and tolerance
    comparisons well-behaved)."""
    return np.round(rng.uniform(lo, hi, n), 3)


def ints(rng: np.random.Generator, n: int, lo: int = 0, hi: int = 100) -> np.ndarray:
    return rng.integers(lo, hi, n, dtype=np.int64)


def grid(rng: np.random.Generator, n: int, lo: float = -5.0,
         hi: float = 5.0) -> np.ndarray:
    """A square float grid whose side is derived from the 1-D size."""
    side = side_for(n)
    return np.round(rng.uniform(lo, hi, (side, side)), 3)


def side_for(n: int) -> int:
    """Square-grid side for a nominal 1-D problem size."""
    return max(4, int(round(n ** 0.5)))


def csr_matrix(rng: np.random.Generator, n: int, density: float = 0.05
               ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A random square CSR matrix (rowptr, colidx, vals) with ~density nnz
    per row; every row gets at least one entry so row ops are exercised."""
    rowptr = [0]
    colidx: list = []
    vals: list = []
    per_row = max(1, int(density * n))
    for _ in range(n):
        k = int(rng.integers(1, 2 * per_row + 1))
        cols = np.sort(rng.choice(n, size=min(k, n), replace=False))
        colidx.extend(int(c) for c in cols)
        vals.extend(float(v) for v in np.round(rng.uniform(-2, 2, len(cols)), 3))
        rowptr.append(len(colidx))
    return (
        np.asarray(rowptr, dtype=np.int64),
        np.asarray(colidx, dtype=np.int64),
        np.asarray(vals, dtype=np.float64),
    )


def csr_graph(rng: np.random.Generator, n: int, avg_degree: int = 6,
              n_components: int = 1) -> Tuple[np.ndarray, np.ndarray]:
    """An undirected graph in CSR form (rowptr, colidx), optionally split
    into ``n_components`` disjoint vertex blocks."""
    adj = [set() for _ in range(n)]
    bounds = np.linspace(0, n, n_components + 1).astype(int)
    for c in range(n_components):
        lo, hi = int(bounds[c]), int(bounds[c + 1])
        size = hi - lo
        if size <= 1:
            continue
        # spanning path keeps each block connected
        for v in range(lo + 1, hi):
            u = int(rng.integers(lo, v))
            adj[u].add(v)
            adj[v].add(u)
        extra = max(0, size * avg_degree // 2 - (size - 1))
        for _ in range(extra):
            u = int(rng.integers(lo, hi))
            v = int(rng.integers(lo, hi))
            if u != v:
                adj[u].add(v)
                adj[v].add(u)
    rowptr = [0]
    colidx: list = []
    for v in range(n):
        colidx.extend(sorted(adj[v]))
        rowptr.append(len(colidx))
    return np.asarray(rowptr, dtype=np.int64), np.asarray(colidx, dtype=np.int64)


def fmt_arr(a) -> str:
    """Render an array for prompt example text."""
    items = []
    for v in np.asarray(a).ravel():
        if isinstance(v, (np.integer, int)):
            items.append(str(int(v)))
        else:
            f = float(v)
            items.append(str(int(f)) if f.is_integer() else f"{f:g}")
    return "[" + ", ".join(items) + "]"
