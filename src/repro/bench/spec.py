"""Problem and prompt specifications for PCGBench.

Terminology follows the paper (§4):

* **task/prompt** — one text prompt for one (problem, execution model)
  pair; compiled, run and scored individually;
* **problem** — the computational job, with a prompt per execution model;
* **problem type** — a group of five related problems (``sort``,
  ``scan``, ...);
* **benchmark** — all 420 prompts together.

Every :class:`Problem` carries everything the harness needs: the natural
language description, the MiniPar signature, an input generator, a numpy
reference implementation, sizes for correctness/timing runs, the work
scale for the simulated-time model, and a tolerance-aware checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..runtime.values import Array

#: The seven execution models, in the paper's canonical order.
EXECUTION_MODELS = (
    "serial", "openmp", "kokkos", "mpi", "mpi+omp", "cuda", "hip",
)

#: The twelve problem types (Table 1).
PROBLEM_TYPES = (
    "sort", "scan", "dense_la", "sparse_la", "search", "reduce",
    "histogram", "stencil", "graph", "geometry", "fft", "transform",
)

PROBLEM_TYPE_DESCRIPTIONS = {
    "sort": "Sort an array or sub-array of values; in-place and out-of-place.",
    "scan": "Scan operations, such as prefix sum, over an array of values.",
    "dense_la": "Dense matrix algebra functions from all 3 levels of BLAS.",
    "sparse_la": "Sparse matrix algebra functions from all 3 levels of BLAS.",
    "search": "Search for an element or property in an array of values.",
    "reduce": "Reduction operation over an array dimension, such as computing a sum.",
    "histogram": "Binning values based on a property of the data.",
    "stencil": "1 iteration of 1D and 2D stencil problems, such as Jacobi stencil.",
    "graph": "Graph algorithms, such as component counting.",
    "geometry": "Compute geometric properties, such as convex hull.",
    "fft": "Compute standard and inverse Fourier transforms.",
    "transform": "Map a constant function to each element of an array.",
}


@dataclass(frozen=True)
class ParamSpec:
    """One kernel parameter: MiniPar type string plus a data-flow role.

    Roles: ``in`` (read-only), ``out`` (filled by the kernel; the driver
    checks it), ``inout`` (mutated in place; the driver checks it).
    """

    name: str
    type: str
    role: str = "in"

    def __post_init__(self):
        assert self.role in ("in", "out", "inout"), self.role


# generate(rng, size) -> {param name: numpy array | scalar}
GenerateFn = Callable[[np.random.Generator, int], Dict[str, object]]
# reference(inputs) -> {checked param name: expected} (+ "return" if any)
ReferenceFn = Callable[[Dict[str, object]], Dict[str, object]]


@dataclass
class Problem:
    """One PCGBench problem (one prompt per execution model)."""

    name: str
    ptype: str
    description: str
    params: Tuple[ParamSpec, ...]
    ret: Optional[str]                 # MiniPar return type or None
    generate: GenerateFn
    reference: ReferenceFn
    examples: Tuple[Tuple[str, str], ...] = ()   # (input line, output line)
    correctness_size: int = 256
    timing_size: int = 2048
    work_scale: float = 1024.0
    tol: float = 1e-6
    #: kernel threads for CUDA/HIP launches (defaults to the primary size)
    gpu_threads: Optional[Callable[[Dict[str, object]], int]] = None
    #: GPU kernels cannot return scalars, so for CUDA/HIP the driver appends
    #: a one-element ``result`` buffer (as the paper's CUDA drivers pass an
    #: output pointer).  ``gpu_result_init`` seeds it (value, or a function
    #: of the inputs, e.g. +inf for min-reductions); ``gpu_expected``
    #: overrides the expected result[0] when the buffer convention differs
    #: from the host return value (e.g. "len(x) means not found").
    gpu_result_init: object = 0
    gpu_expected: Optional[Callable[[Dict[str, object]], object]] = None
    notes: str = ""

    @property
    def entry(self) -> str:
        """The kernel name the LLM must implement."""
        return self.name

    def checked_params(self) -> List[ParamSpec]:
        return [p for p in self.params if p.role in ("out", "inout")]

    def input_arrays(self, inputs: Dict[str, object]) -> List[object]:
        return [inputs[p.name] for p in self.params]

    def default_gpu_threads(self, inputs: Dict[str, object]) -> int:
        if self.gpu_threads is not None:
            return self.gpu_threads(inputs)
        for p in self.params:
            v = inputs[p.name]
            if isinstance(v, np.ndarray):
                return int(v.shape[0] * (v.shape[1] if v.ndim == 2 else 1))
        return 1

    def to_minipar_args(self, inputs: Dict[str, object]) -> List[object]:
        """Convert generated numpy inputs to runtime values, in order."""
        args: List[object] = []
        for p in self.params:
            v = inputs[p.name]
            if isinstance(v, np.ndarray):
                elem = "int" if p.type in ("array<int>", "array2d<int>") else "float"
                args.append(Array.from_numpy(v, elem))
            elif p.type == "int":
                args.append(int(v))
            elif p.type == "float":
                args.append(float(v))
            else:
                args.append(v)
        return args

    def _check_arrays(self, expected: Dict[str, object],
                      out_args: Sequence[object]) -> bool:
        by_name = dict(zip((p.name for p in self.params), out_args))
        for p in self.checked_params():
            got = by_name[p.name]
            want = np.asarray(expected[p.name])
            if not isinstance(got, Array):
                return False
            got_np = got.to_numpy()
            if got_np.shape != want.shape:
                return False
            if p.type.endswith("<int>"):
                if not np.array_equal(got_np, want.astype(np.int64)):
                    return False
            else:
                if not np.allclose(got_np, want, rtol=self.tol,
                                   atol=self.tol * 10):
                    return False
        return True

    def _check_return(self, want_ret: object, ret: object) -> bool:
        if ret is None:
            return False
        if self.ret == "int":
            return isinstance(ret, int) and ret == int(want_ret)
        return bool(np.isclose(float(ret), float(want_ret), rtol=self.tol,
                               atol=self.tol * 10))

    def check(self, inputs: Dict[str, object], out_args: Sequence[object],
              ret: object) -> bool:
        """Compare a run's outputs against the numpy reference."""
        expected = self.reference(inputs)
        if not self._check_arrays(expected, out_args):
            return False
        if self.ret is not None:
            return self._check_return(expected["return"], ret)
        return True

    # -- the GPU result-buffer convention ---------------------------------

    def gpu_params(self) -> Tuple[ParamSpec, ...]:
        """Parameter list for CUDA/HIP prompts (adds ``result`` if the host
        signature returns a scalar)."""
        if self.ret is None:
            return self.params
        elem = "array<int>" if self.ret == "int" else "array<float>"
        return self.params + (ParamSpec("result", elem, "out"),)

    def gpu_result_seed(self, inputs: Dict[str, object]) -> object:
        init = self.gpu_result_init
        return init(inputs) if callable(init) else init

    def gpu_expected_result(self, inputs: Dict[str, object]) -> object:
        if self.gpu_expected is not None:
            return self.gpu_expected(inputs)
        return self.reference(inputs)["return"]

    def gpu_check(self, inputs: Dict[str, object],
                  out_args: Sequence[object]) -> bool:
        """Check a CUDA/HIP run: arrays as usual, result[0] for the scalar."""
        expected = self.reference(inputs)
        if self.ret is None:
            return self._check_arrays(expected, out_args)
        if not self._check_arrays(expected, out_args[:-1]):
            return False
        result = out_args[-1]
        if not isinstance(result, Array) or len(result.data) != 1:
            return False
        want = self.gpu_expected_result(inputs)
        got = result.data[0]
        if self.ret == "int":
            return isinstance(got, int) and got == int(want)
        return bool(np.isclose(float(got), float(want), rtol=self.tol,
                               atol=self.tol * 10))

    def signature(self, model: str = "serial") -> str:
        """The MiniPar kernel signature line shown in every prompt."""
        params = self.gpu_params() if model in ("cuda", "hip") else self.params
        ret = self.ret if model not in ("cuda", "hip") else None
        ps = ", ".join(f"{p.name}: {p.type}" for p in params)
        rs = f" -> {ret}" if ret else ""
        return f"kernel {self.name}({ps}){rs} {{"


@dataclass(frozen=True)
class Prompt:
    """One benchmark task: a problem rendered for one execution model."""

    problem: Problem = field(hash=False, compare=False)
    model: str = "serial"
    text: str = ""

    @property
    def uid(self) -> str:
        return f"{self.problem.ptype}/{self.problem.name}/{self.model}"
