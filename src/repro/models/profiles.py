"""Capability profiles for the seven LLMs the paper evaluates (Table 2).

Each profile factorises the probability that one generated sample is
correct as::

    p(correct | model, exec model, problem type)
        = serial_skill * exec_mult[exec] * ptype_mult[ptype]   (clamped)

The numbers are calibrated so the *shapes* of the paper's results hold
(DESIGN.md §4): GPT-3.5 best at parallel prompts (~40% pass@1), GPT-4 just
behind (bigger models repeat one confident answer — captured by
``confidence``), Phind-V2 the best open model (~32%), the rest 10-19%;
execution models order serial > OpenMP > Kokkos ≈ CUDA/HIP > MPI; problem
types order transform best, sparse worst; open models slightly prefer HIP
and closed models CUDA.

``perf_bias`` governs how often a model picks the *fast* variant of a
correct solution (exponent on variant quality), reproducing the paper's
finding that correctness leaders are not necessarily performance leaders
(GPT-4 tops speedup_n@1 despite GPT-3.5 topping pass@1; Phind-V2 is the
most MPI-efficient).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Model-card metadata (Table 2).  HumanEval/MBPP pass@1 are the numbers
#: the paper cites; "—" entries in the paper are None here.
MODEL_CARDS = {
    "CodeLlama-7B": dict(params="7B", open_weights=True, license="llama2",
                         humaneval=29.98, mbpp=41.4),
    "CodeLlama-13B": dict(params="13B", open_weights=True, license="llama2",
                          humaneval=35.07, mbpp=47.0),
    "StarCoderBase": dict(params="15.5B", open_weights=True,
                          license="BigCode OpenRAIL-M",
                          humaneval=30.35, mbpp=49.0),
    "CodeLlama-34B": dict(params="34B", open_weights=True, license="llama2",
                          humaneval=45.11, mbpp=55.0),
    "Phind-CodeLlama-V2": dict(params="34B", open_weights=True,
                               license="llama2", humaneval=71.95, mbpp=None),
    "GPT-3.5": dict(params=None, open_weights=False, license=None,
                    humaneval=61.50, mbpp=52.2),
    "GPT-4": dict(params=None, open_weights=False, license=None,
                  humaneval=84.10, mbpp=None),
}

MODEL_ORDER = tuple(MODEL_CARDS)


@dataclass(frozen=True)
class ModelProfile:
    name: str
    serial_skill: float
    exec_mult: Dict[str, float]
    ptype_mult: Dict[str, float]
    #: concentration of the output distribution: big models repeat one
    #: answer (paper §8.1: CodeLlama-34B / GPT-4 emit the same output for
    #: most of the 20 samples)
    confidence: float
    #: exponent on variant quality when picking among correct solutions
    perf_bias: float
    #: per-execution-model overrides of perf_bias — how the paper's Fig. 5
    #: quirk arises (Phind-V2 tunes MPI hard but emits sloppy OpenMP)
    perf_bias_overrides: Dict[str, float] = field(default_factory=dict)
    #: closed models are chat/instruction tuned (excluded from the
    #: 200-sample temperature-0.8 runs, §7.1)
    chat_only: bool = False

    def variant_bias(self, exec_model: str) -> float:
        return self.perf_bias_overrides.get(exec_model, self.perf_bias)

    def p_correct(self, exec_model: str, ptype: str) -> float:
        p = (
            self.serial_skill
            * self.exec_mult[exec_model]
            * self.ptype_mult[ptype]
        )
        return min(0.98, max(0.005, p))


_PTYPE_LARGE = {
    # larger models: structured/dense problems strong, sparse weakest
    "transform": 1.40, "reduce": 1.25, "search": 1.22, "histogram": 1.15,
    "stencil": 1.12, "dense_la": 1.10, "graph": 0.85, "sort": 0.68,
    "scan": 0.62, "geometry": 0.62, "fft": 0.58, "sparse_la": 0.45,
}

_PTYPE_SMALL = {
    # smaller models: same broad order but graph in their top tier
    # (paper §8.1) and a steeper drop on the hard tail
    "transform": 1.50, "reduce": 1.32, "search": 1.28, "graph": 1.12,
    "histogram": 1.08, "stencil": 1.02, "dense_la": 1.00, "sort": 0.52,
    "scan": 0.48, "geometry": 0.50, "fft": 0.44, "sparse_la": 0.34,
}


def _exec(serial=1.0, openmp=0.0, kokkos=0.0, mpi=0.0, hybrid=0.0,
          cuda=0.0, hip=0.0) -> Dict[str, float]:
    return {
        "serial": serial, "openmp": openmp, "kokkos": kokkos,
        "mpi": mpi, "mpi+omp": hybrid, "cuda": cuda, "hip": hip,
    }


PROFILES: Dict[str, ModelProfile] = {
    "CodeLlama-7B": ModelProfile(
        name="CodeLlama-7B", serial_skill=0.33,
        exec_mult=_exec(openmp=0.50, kokkos=0.17, mpi=0.21, hybrid=0.17,
                        cuda=0.32, hip=0.35),
        ptype_mult=_PTYPE_SMALL, confidence=1.1, perf_bias=0.8,
    ),
    "CodeLlama-13B": ModelProfile(
        name="CodeLlama-13B", serial_skill=0.45,
        exec_mult=_exec(openmp=0.62, kokkos=0.26, mpi=0.25, hybrid=0.21,
                        cuda=0.42, hip=0.45),
        ptype_mult=_PTYPE_SMALL, confidence=1.2, perf_bias=0.9,
    ),
    "StarCoderBase": ModelProfile(
        name="StarCoderBase", serial_skill=0.49,
        exec_mult=_exec(openmp=0.58, kokkos=0.24, mpi=0.21, hybrid=0.19,
                        cuda=0.37, hip=0.41),
        ptype_mult=_PTYPE_SMALL, confidence=1.2, perf_bias=0.9,
    ),
    "CodeLlama-34B": ModelProfile(
        name="CodeLlama-34B", serial_skill=0.53,
        exec_mult=_exec(openmp=0.47, kokkos=0.27, mpi=0.16, hybrid=0.14,
                        cuda=0.31, hip=0.34),
        ptype_mult=_PTYPE_SMALL, confidence=2.4, perf_bias=0.7,
    ),
    "Phind-CodeLlama-V2": ModelProfile(
        name="Phind-CodeLlama-V2", serial_skill=0.64,
        exec_mult=_exec(openmp=0.76, kokkos=0.57, mpi=0.35, hybrid=0.31,
                        cuda=0.54, hip=0.56),
        ptype_mult=_PTYPE_LARGE, confidence=1.6,
        perf_bias=1.2,
        # Fig. 5: most efficient on MPI prompts, least efficient on
        # OpenMP, near-least on Kokkos
        perf_bias_overrides={"mpi": 4.0, "mpi+omp": 3.0,
                             "openmp": 0.35, "kokkos": 0.5},
    ),
    "GPT-3.5": ModelProfile(
        name="GPT-3.5", serial_skill=0.80,
        exec_mult=_exec(openmp=0.71, kokkos=0.58, mpi=0.36, hybrid=0.33,
                        cuda=0.53, hip=0.50),
        ptype_mult=_PTYPE_LARGE, confidence=1.4, perf_bias=1.4,
        chat_only=True,
    ),
    "GPT-4": ModelProfile(
        name="GPT-4", serial_skill=0.87,
        exec_mult=_exec(openmp=0.61, kokkos=0.50, mpi=0.30, hybrid=0.28,
                        cuda=0.45, hip=0.43),
        ptype_mult=_PTYPE_LARGE, confidence=2.6,
        perf_bias=2.6,  # best speedup/efficiency despite lower pass@1
        perf_bias_overrides={"mpi": 2.2},
        chat_only=True,
    ),
}


def profile(name: str) -> ModelProfile:
    return PROFILES[name]


def all_profiles() -> Tuple[ModelProfile, ...]:
    return tuple(PROFILES[m] for m in MODEL_ORDER)
