"""The solution bank: correct MiniPar solutions for every PCGBench task.

``bank()`` lazily builds and caches the full table of
(problem, execution model) -> [Variant...].  Every variant is a complete
MiniPar program implementing the prompt; variants differ in performance
tier (``quality``), mirroring the spread of code shapes real LLMs emit.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

from ...bench.problems import all_problems
from ...bench.spec import EXECUTION_MODELS, Problem
from .builders import Variant, build_variants

__all__ = ["Variant", "bank", "variants_for", "build_variants"]


@lru_cache(maxsize=1)
def bank() -> Dict[Tuple[str, str], List[Variant]]:
    """The full bank: one entry per (problem name, execution model)."""
    table: Dict[Tuple[str, str], List[Variant]] = {}
    for problem in all_problems():
        for model in EXECUTION_MODELS:
            table[(problem.name, model)] = build_variants(problem, model)
    return table


def variants_for(problem: Problem, model: str) -> List[Variant]:
    return bank()[(problem.name, model)]
