"""Handwritten solution variants for problems whose parallel structure
does not fit a generic fragment shape: the sort family, argmin, the graph
traversals, and the four-way bounding-box reduction.

Each entry mirrors code shapes observed from real LLMs: chunked
sort-and-merge for OpenMP sorts, pull-based level-synchronous BFS,
min-label propagation for components, root-does-everything MPI programs
(with OpenMP inside rank 0 for the hybrid model), and
one-thread-does-everything GPU kernels.
"""

from __future__ import annotations

from typing import List, Tuple

from ...bench.baselines import baseline_source
from ...bench.spec import Problem
from .builders import (
    QUALITY_GOOD,
    QUALITY_OK,
    QUALITY_POOR,
    Variant,
    _gpu_thread0,
    _indent,
    _kernel,
    root_only_local,
)


def _baseline_body(problem_name: str) -> Tuple[str, str]:
    """(helper kernels, entry body) extracted from the baseline source."""
    src = baseline_source(problem_name).strip()
    marker = f"kernel {problem_name}("
    at = src.index(marker)
    helpers = src[:at].strip()
    entry = src[at:]
    open_brace = entry.index("{")
    body = entry[open_brace + 1:].rstrip()
    assert body.endswith("}")
    body = body[:-1].rstrip("\n")
    lines = [ln[4:] if ln.startswith("    ") else ln for ln in body.split("\n")]
    return helpers, "\n".join(lines).strip("\n")


def _serial_variant(problem: Problem, model: str) -> Variant:
    helpers, body = _baseline_body(problem.name)
    return Variant("serial-reference", _kernel(problem, model, body, helpers),
                   QUALITY_GOOD)


def _root_only_baseline(problem: Problem, model: str,
                        quality: float = QUALITY_POOR) -> Variant:
    """Root-only MPI variant running the serial baseline on rank 0 (plain
    MPI only; hybrid callers must supply an OpenMP-annotated body)."""
    helpers, body = _baseline_body(problem.name)
    return root_only_local(problem, model, body, helpers, quality)


def _gpu_thread0_variant(problem: Problem, model: str,
                         quality: float = 0.05) -> Variant:
    helpers, body = _baseline_body(problem.name)
    if problem.ret is not None:
        args = ", ".join(p.name for p in problem.params)
        params = ", ".join(f"{p.name}: {p.type}" for p in problem.params)
        helper = (
            f"{helpers}\n\n" if helpers else ""
        ) + (
            f"kernel {problem.name}_seq({params}) -> {problem.ret} {{\n"
            f"{_indent(body)}\n}}"
        )
        wrapped = _gpu_thread0(f"result[0] = {problem.name}_seq({args});")
        return Variant("gpu-thread0-serial",
                       _kernel(problem, model, wrapped, helper), quality)
    wrapped = _gpu_thread0(body)
    return Variant("gpu-thread0-serial",
                   _kernel(problem, model, wrapped, helpers), quality)


# ===========================================================================
# sort family
# ===========================================================================

_MERGE_HELPERS = """\
kernel msort_chunk(data: array<float>, clo: int, chi: int) {
    let m = chi - clo;
    if (m > 1) {
        let tmp = alloc_float(m);
        for (q in 0..m) {
            tmp[q] = data[clo + q];
        }
        sort(tmp);
        for (q in 0..m) {
            data[clo + q] = tmp[q];
        }
    }
}

kernel merge_range(data: array<float>, buf: array<float>, mlo: int, mmid: int, mhi: int) {
    let i = mlo;
    let j = mmid;
    let k = mlo;
    while (i < mmid && j < mhi) {
        if (data[i] <= data[j]) {
            buf[k] = data[i];
            i += 1;
        } else {
            buf[k] = data[j];
            j += 1;
        }
        k += 1;
    }
    while (i < mmid) {
        buf[k] = data[i];
        i += 1;
        k += 1;
    }
    while (j < mhi) {
        buf[k] = data[j];
        j += 1;
        k += 1;
    }
    for (t in mlo..mhi) {
        data[t] = buf[t];
    }
}"""


def _chunked_sort_omp(arr: str, n: str) -> str:
    return f"""\
let n_0 = {n};
let nc = 16;
let cs = (n_0 + nc - 1) / nc;
pragma omp parallel for
for (c in 0..nc) {{
    msort_chunk({arr}, min(c * cs, n_0), min((c + 1) * cs, n_0));
}}
let buf = alloc_float(n_0);
let width = cs;
while (width < n_0) {{
    let pairs = (n_0 + 2 * width - 1) / (2 * width);
    pragma omp parallel for
    for (c in 0..pairs) {{
        let mlo = c * 2 * width;
        merge_range({arr}, buf, mlo, min(mlo + width, n_0), min(mlo + 2 * width, n_0));
    }}
    width *= 2;
}}"""


def _chunked_sort_kokkos(arr: str, n: str) -> str:
    return f"""\
let n_0 = {n};
let nc = 16;
let cs = (n_0 + nc - 1) / nc;
parallel_for(nc, (c) => {{
    msort_chunk({arr}, min(c * cs, n_0), min((c + 1) * cs, n_0));
}});
let buf = alloc_float(n_0);
let width = cs;
while (width < n_0) {{
    let pairs = (n_0 + 2 * width - 1) / (2 * width);
    parallel_for(pairs, (c) => {{
        let mlo = c * 2 * width;
        merge_range({arr}, buf, mlo, min(mlo + width, n_0), min(mlo + 2 * width, n_0));
    }});
    width *= 2;
}}"""


def _sort_ascending(problem: Problem, model: str) -> List[Variant]:
    if model == "serial":
        return [_serial_variant(problem, model)]
    if model == "openmp":
        lazy = ("pragma omp parallel for\n"
                "for (c in 0..1) {\n    sort(x);\n}")
        return [
            Variant("omp-chunked-mergesort",
                    _kernel(problem, model, _chunked_sort_omp("x", "len(x)"),
                            _MERGE_HELPERS), QUALITY_OK),
            Variant("omp-sort-in-parallel-region",
                    _kernel(problem, model, lazy), QUALITY_POOR),
        ]
    if model == "kokkos":
        return [Variant("kokkos-chunked-mergesort",
                        _kernel(problem, model,
                                _chunked_sort_kokkos("x", "len(x)"),
                                _MERGE_HELPERS), QUALITY_OK)]
    if model in ("mpi", "mpi+omp"):
        pragma = "    pragma omp parallel for\n" if model == "mpi+omp" else ""
        scatter = f"""\
let chunk = mpi_scatter_array(x, 0);
sort(chunk);
let gathered = mpi_gather_array(chunk, 0);
if (mpi_rank() == 0) {{
{pragma}    for (i in 0..len(x)) {{
        x[i] = gathered[i];
    }}
    sort(x);
}}"""
        out = [Variant("mpi-scatter-local-sort",
                       _kernel(problem, model, scatter), QUALITY_OK)]
        if model == "mpi":
            out.append(_root_only_baseline(problem, model))
        return out
    return [_gpu_thread0_variant(problem, model)]


def _sort_descending(problem: Problem, model: str) -> List[Variant]:
    if model == "serial":
        return [_serial_variant(problem, model)]
    neg_omp = ("pragma omp parallel for\n"
               "for (i in 0..len(x)) {\n    x[i] = 0.0 - x[i];\n}")
    omp_body = f"{neg_omp}\n{_chunked_sort_omp('x', 'len(x)')}\n{neg_omp}"
    if model == "openmp":
        return [Variant("omp-negate-mergesort",
                        _kernel(problem, model, omp_body, _MERGE_HELPERS),
                        QUALITY_OK)]
    if model == "kokkos":
        neg = ("parallel_for(len(x), (i) => {\n"
               "    x[i] = 0.0 - x[i];\n});")
        body = f"{neg}\n{_chunked_sort_kokkos('x', 'len(x)')}\n{neg}"
        return [Variant("kokkos-negate-mergesort",
                        _kernel(problem, model, body, _MERGE_HELPERS),
                        QUALITY_OK)]
    if model == "mpi":
        return [_root_only_baseline(problem, model)]
    if model == "mpi+omp":
        return [root_only_local(problem, model, omp_body, _MERGE_HELPERS)]
    return [_gpu_thread0_variant(problem, model)]


_PLACE_BY_MAG = """\
let plo = 0;
let phi = n_0;
while (plo < phi) {
    let mid = (plo + phi) / 2;
    if (sorted_mags[mid] < mags[i]) {
        plo = mid + 1;
    } else {
        phi = mid;
    }
}
tmp[plo] = x[i];"""


def _mag_body(p1: str, p2: str, p3: str) -> str:
    return f"""\
let n_0 = len(x);
let mags = alloc_float(n_0);
{p1}
let sorted_mags = copy(mags);
sort(sorted_mags);
let tmp = alloc_float(n_0);
{p2}
{p3}"""


def _sort_by_magnitude(problem: Problem, model: str) -> List[Variant]:
    if model == "serial":
        return [_serial_variant(problem, model)]
    omp_body = _mag_body(
        "pragma omp parallel for\n"
        "for (i in 0..n_0) {\n    mags[i] = abs(x[i]);\n}",
        "pragma omp parallel for\n"
        f"for (i in 0..n_0) {{\n{_indent(_PLACE_BY_MAG)}\n}}",
        "pragma omp parallel for\n"
        "for (i in 0..n_0) {\n    x[i] = tmp[i];\n}",
    )
    if model == "openmp":
        return [Variant("omp-rank-placement", _kernel(problem, model, omp_body),
                        QUALITY_OK)]
    if model == "kokkos":
        body = _mag_body(
            "parallel_for(n_0, (i) => {\n    mags[i] = abs(x[i]);\n});",
            f"parallel_for(n_0, (i) => {{\n{_indent(_PLACE_BY_MAG)}\n}});",
            "parallel_for(n_0, (i) => {\n    x[i] = tmp[i];\n});",
        )
        return [Variant("kokkos-rank-placement", _kernel(problem, model, body),
                        QUALITY_OK)]
    if model == "mpi":
        return [_root_only_baseline(problem, model)]
    if model == "mpi+omp":
        return [root_only_local(problem, model, omp_body)]
    return [_gpu_thread0_variant(problem, model)]


def _sort_subrange(problem: Problem, model: str) -> List[Variant]:
    if model == "serial":
        return [_serial_variant(problem, model)]
    omp_body = (
        "let m = hi - lo;\n"
        "let tmp = alloc_float(m);\n"
        "pragma omp parallel for\n"
        "for (i in 0..m) {\n    tmp[i] = x[lo + i];\n}\n"
        "sort(tmp);\n"
        "pragma omp parallel for\n"
        "for (i in 0..m) {\n    x[lo + i] = tmp[i];\n}"
    )
    if model == "openmp":
        return [Variant("omp-parallel-copy-serial-sort",
                        _kernel(problem, model, omp_body), QUALITY_POOR * 2)]
    if model == "kokkos":
        body = (
            "let m = hi - lo;\n"
            "let tmp = alloc_float(m);\n"
            "parallel_for(m, (i) => {\n    tmp[i] = x[lo + i];\n});\n"
            "sort(tmp);\n"
            "parallel_for(m, (i) => {\n    x[lo + i] = tmp[i];\n});"
        )
        return [Variant("kokkos-parallel-copy-serial-sort",
                        _kernel(problem, model, body), QUALITY_POOR * 2)]
    if model == "mpi":
        return [_root_only_baseline(problem, model)]
    if model == "mpi+omp":
        return [root_only_local(problem, model, omp_body)]
    return [_gpu_thread0_variant(problem, model)]


_PLACE_RANK = """\
let plo = 0;
let phi = len(x);
while (plo < phi) {
    let mid = (plo + phi) / 2;
    if (sorted_x[mid] < x[i]) {
        plo = mid + 1;
    } else {
        phi = mid;
    }
}
{STORE}"""


def _rank_of_elements(problem: Problem, model: str) -> List[Variant]:
    if model == "serial":
        return [_serial_variant(problem, model)]
    place_r = _PLACE_RANK.replace("{STORE}", "r[i] = plo;")
    place_part = _PLACE_RANK.replace("{STORE}", "part[i] = plo;")
    if model == "openmp":
        body = (
            "let sorted_x = copy(x);\n"
            "sort(sorted_x);\n"
            "pragma omp parallel for\n"
            f"for (i in 0..len(x)) {{\n{_indent(place_r)}\n}}"
        )
        return [Variant("omp-binary-search-ranks",
                        _kernel(problem, model, body), QUALITY_GOOD)]
    if model == "kokkos":
        body = (
            "let sorted_x = copy(x);\n"
            "sort(sorted_x);\n"
            f"parallel_for(len(x), (i) => {{\n{_indent(place_r)}\n}});"
        )
        return [Variant("kokkos-binary-search-ranks",
                        _kernel(problem, model, body), QUALITY_GOOD)]
    if model in ("mpi", "mpi+omp"):
        pragma = "pragma omp parallel for\n" if model == "mpi+omp" else ""
        body = f"""\
let rank = mpi_rank();
let size = mpi_size();
let total = len(x);
let chunk = (total + size - 1) / size;
let lo = rank * chunk;
let hi = min(lo + chunk, total);
let sorted_x = copy(x);
sort(sorted_x);
let part = alloc_int(total);
{pragma}for (i in lo..hi) {{
{_indent(place_part)}
}}
mpi_allreduce_array(part, "sum");
for (i in 0..total) {{
    r[i] = part[i];
}}"""
        out = [Variant("mpi-block-ranks", _kernel(problem, model, body),
                       QUALITY_OK)]
        if model == "mpi":
            out.append(_root_only_baseline(problem, model))
        return out
    body = """\
let i = block_idx() * block_dim() + thread_idx();
if (i < len(x)) {
    let smaller = 0;
    for (j in 0..len(x)) {
        if (x[j] < x[i]) {
            smaller += 1;
        }
    }
    r[i] = smaller;
}"""
    return [
        Variant("gpu-count-smaller", _kernel(problem, model, body), QUALITY_OK),
        _gpu_thread0_variant(problem, model),
    ]


# ===========================================================================
# index_of_minimum — two-phase reduction
# ===========================================================================

_ARGMIN_OMP = """\
let m = 1e30;
pragma omp parallel for reduction(min: m)
for (i in 0..len(x)) {
    m = min(m, x[i]);
}
let idx = len(x);
pragma omp parallel for reduction(min: idx)
for (i in 0..len(x)) {
    idx = min(idx, select(x[i] == m, i, len(x)));
}
return idx;"""


def _index_of_minimum(problem: Problem, model: str) -> List[Variant]:
    if model == "serial":
        return [_serial_variant(problem, model)]
    if model == "openmp":
        return [Variant("omp-two-phase", _kernel(problem, model, _ARGMIN_OMP),
                        QUALITY_GOOD)]
    if model == "kokkos":
        body = """\
let m = parallel_reduce(len(x), "min", (i) => x[i]);
let idx = parallel_reduce(len(x), "min", (i) => select(x[i] == m, i, len(x)));
return idx;"""
        return [Variant("kokkos-two-phase", _kernel(problem, model, body),
                        QUALITY_GOOD)]
    if model in ("mpi", "mpi+omp"):
        pragma1 = ("pragma omp parallel for reduction(min: local_m)\n"
                   if model == "mpi+omp" else "")
        pragma2 = ("pragma omp parallel for reduction(min: local_idx)\n"
                   if model == "mpi+omp" else "")
        body = f"""\
let rank = mpi_rank();
let size = mpi_size();
let total = len(x);
let chunk = (total + size - 1) / size;
let lo = rank * chunk;
let hi = min(lo + chunk, total);
let local_m = 1e30;
{pragma1}for (i in lo..hi) {{
    local_m = min(local_m, x[i]);
}}
let m = mpi_allreduce_float(local_m, "min");
let local_idx = total;
{pragma2}for (i in lo..hi) {{
    local_idx = min(local_idx, select(x[i] == m, i, total));
}}
return mpi_allreduce_int(local_idx, "min");"""
        out = [Variant("mpi-two-phase", _kernel(problem, model, body),
                       QUALITY_GOOD)]
        if model == "mpi":
            out.append(_root_only_baseline(problem, model))
        return out
    return [_gpu_thread0_variant(problem, model, quality=0.08)]


# ===========================================================================
# graph traversals
# ===========================================================================

_CC_STEP = """\
kernel cc_step(rowptr: array<int>, colidx: array<int>, label: array<int>, nlabel: array<int>, v: int) -> int {
    let best = label[v];
    for (k in rowptr[v]..rowptr[v + 1]) {
        best = min(best, label[colidx[k]]);
    }
    nlabel[v] = best;
    return select(best != label[v], 1, 0);
}"""

_CC_OMP = """\
let n = len(rowptr) - 1;
let label = alloc_int(n);
let nlabel = alloc_int(n);
pragma omp parallel for
for (v in 0..n) {
    label[v] = v;
}
let changed = 1;
while (changed == 1) {
    changed = 0;
    pragma omp parallel for reduction(max: changed)
    for (v in 0..n) {
        changed = max(changed, cc_step(rowptr, colidx, label, nlabel, v));
    }
    pragma omp parallel for
    for (v in 0..n) {
        label[v] = nlabel[v];
    }
}
let count = 0;
pragma omp parallel for reduction(+: count)
for (v in 0..n) {
    count += select(label[v] == v, 1, 0);
}
return count;"""


def _count_components(problem: Problem, model: str) -> List[Variant]:
    if model == "serial":
        return [_serial_variant(problem, model)]
    if model == "openmp":
        return [Variant("omp-label-propagation",
                        _kernel(problem, model, _CC_OMP, _CC_STEP),
                        QUALITY_OK)]
    if model == "kokkos":
        body = """\
let n = len(rowptr) - 1;
let label = alloc_int(n);
let nlabel = alloc_int(n);
parallel_for(n, (v) => {
    label[v] = v;
});
let changed = 1;
while (changed == 1) {
    changed = parallel_reduce(n, "max", (v) => cc_step(rowptr, colidx, label, nlabel, v));
    parallel_for(n, (v) => {
        label[v] = nlabel[v];
    });
}
return parallel_reduce(n, "sum", (v) => select(label[v] == v, 1, 0));"""
        return [Variant("kokkos-label-propagation",
                        _kernel(problem, model, body, _CC_STEP), QUALITY_OK)]
    if model == "mpi":
        return [_root_only_baseline(problem, model)]
    if model == "mpi+omp":
        return [root_only_local(problem, model, _CC_OMP, _CC_STEP)]
    return [_gpu_thread0_variant(problem, model, quality=0.08)]


_BFS_OMP = """\
let n = len(rowptr) - 1;
pragma omp parallel for
for (v in 0..n) {
    dist[v] = 0 - 1;
}
dist[src] = 0;
let ndist = alloc_int(n);
let level = 0;
let changed = 1;
while (changed == 1) {
    changed = 0;
    pragma omp parallel for
    for (v in 0..n) {
        ndist[v] = dist[v];
    }
    pragma omp parallel for reduction(max: changed)
    for (v in 0..n) {
        if (dist[v] < 0) {
            let found = 0;
            for (k in rowptr[v]..rowptr[v + 1]) {
                if (dist[colidx[k]] == level) {
                    found = 1;
                }
            }
            if (found == 1) {
                ndist[v] = level + 1;
                changed = 1;
            }
        }
    }
    pragma omp parallel for
    for (v in 0..n) {
        dist[v] = ndist[v];
    }
    level += 1;
}"""


def _bfs_distances(problem: Problem, model: str) -> List[Variant]:
    if model == "serial":
        return [_serial_variant(problem, model)]
    if model == "openmp":
        return [Variant("omp-pull-bfs", _kernel(problem, model, _BFS_OMP),
                        QUALITY_OK)]
    if model == "kokkos":
        helper = """\
kernel bfs_probe(rowptr: array<int>, colidx: array<int>, dist: array<int>, ndist: array<int>, level: int, v: int) -> int {
    if (dist[v] >= 0) {
        return 0;
    }
    let found = 0;
    for (k in rowptr[v]..rowptr[v + 1]) {
        if (dist[colidx[k]] == level) {
            found = 1;
        }
    }
    if (found == 1) {
        ndist[v] = level + 1;
        return 1;
    }
    return 0;
}"""
        body = """\
let n = len(rowptr) - 1;
parallel_for(n, (v) => {
    dist[v] = 0 - 1;
});
dist[src] = 0;
let ndist = alloc_int(n);
let level = 0;
let changed = 1;
while (changed == 1) {
    parallel_for(n, (v) => {
        ndist[v] = dist[v];
    });
    changed = parallel_reduce(n, "max", (v) => bfs_probe(rowptr, colidx, dist, ndist, level, v));
    parallel_for(n, (v) => {
        dist[v] = ndist[v];
    });
    level += 1;
}"""
        return [Variant("kokkos-pull-bfs", _kernel(problem, model, body, helper),
                        QUALITY_OK)]
    if model == "mpi":
        return [_root_only_baseline(problem, model)]
    if model == "mpi+omp":
        return [root_only_local(problem, model, _BFS_OMP)]
    return [_gpu_thread0_variant(problem, model, quality=0.08)]


_COLOUR_SERIAL = """\
let n = len(rowptr) - 1;
let colour = alloc_int(n);
fill(colour, 0 - 1);
let queue = alloc_int(n);
for (s in 0..n) {
    if (colour[s] < 0) {
        colour[s] = 0;
        queue[0] = s;
        let head = 0;
        let tail = 1;
        while (head < tail) {
            let v = queue[head];
            head += 1;
            for (k in rowptr[v]..rowptr[v + 1]) {
                let u = colidx[k];
                if (colour[u] < 0) {
                    colour[u] = 1 - colour[v];
                    queue[tail] = u;
                    tail += 1;
                }
            }
        }
    }
}"""

_VALIDATE_OMP = """\
let ok = 1;
pragma omp parallel for reduction(min: ok)
for (v in 0..n) {
    for (k in rowptr[v]..rowptr[v + 1]) {
        if (colour[colidx[k]] == colour[v]) {
            ok = 0;
        }
    }
}
return ok;"""


def _is_bipartite(problem: Problem, model: str) -> List[Variant]:
    if model == "serial":
        return [_serial_variant(problem, model)]
    omp_body = _COLOUR_SERIAL + "\n" + _VALIDATE_OMP
    if model == "openmp":
        return [Variant("omp-colour-validate", _kernel(problem, model, omp_body),
                        QUALITY_POOR * 2)]
    if model == "kokkos":
        helper = """\
kernel edge_ok(rowptr: array<int>, colidx: array<int>, colour: array<int>, v: int) -> int {
    for (k in rowptr[v]..rowptr[v + 1]) {
        if (colour[colidx[k]] == colour[v]) {
            return 0;
        }
    }
    return 1;
}"""
        body = _COLOUR_SERIAL + """
return parallel_reduce(n, "min", (v) => edge_ok(rowptr, colidx, colour, v));"""
        return [Variant("kokkos-colour-validate",
                        _kernel(problem, model, body, helper),
                        QUALITY_POOR * 2)]
    if model == "mpi":
        return [_root_only_baseline(problem, model)]
    if model == "mpi+omp":
        return [root_only_local(problem, model, omp_body)]
    return [_gpu_thread0_variant(problem, model, quality=0.08)]


# ===========================================================================
# bounding box — four simultaneous reductions
# ===========================================================================


def _bounding_box(problem: Problem, model: str) -> List[Variant]:
    if model == "serial":
        return [_serial_variant(problem, model)]
    if model == "openmp":
        body = """\
let minx = x[0];
let maxx = x[0];
let miny = y[0];
let maxy = y[0];
pragma omp parallel for reduction(min: minx) reduction(max: maxx) reduction(min: miny) reduction(max: maxy)
for (i in 0..len(x)) {
    minx = min(minx, x[i]);
    maxx = max(maxx, x[i]);
    miny = min(miny, y[i]);
    maxy = max(maxy, y[i]);
}
out[0] = minx;
out[1] = maxx;
out[2] = miny;
out[3] = maxy;"""
        return [Variant("omp-four-reductions", _kernel(problem, model, body),
                        QUALITY_GOOD)]
    if model == "kokkos":
        body = """\
out[0] = parallel_reduce(len(x), "min", (i) => x[i]);
out[1] = parallel_reduce(len(x), "max", (i) => x[i]);
out[2] = parallel_reduce(len(y), "min", (i) => y[i]);
out[3] = parallel_reduce(len(y), "max", (i) => y[i]);"""
        return [Variant("kokkos-four-reductions",
                        _kernel(problem, model, body), QUALITY_GOOD)]
    if model in ("mpi", "mpi+omp"):
        pragma = (
            "pragma omp parallel for reduction(min: lminx) "
            "reduction(max: lmaxx) reduction(min: lminy) reduction(max: lmaxy)\n"
            if model == "mpi+omp" else ""
        )
        body = f"""\
let rank = mpi_rank();
let size = mpi_size();
let total = len(x);
let chunk = (total + size - 1) / size;
let lo = rank * chunk;
let hi = min(lo + chunk, total);
let lminx = 1e30;
let lmaxx = 0.0 - 1e30;
let lminy = 1e30;
let lmaxy = 0.0 - 1e30;
{pragma}for (i in lo..hi) {{
    lminx = min(lminx, x[i]);
    lmaxx = max(lmaxx, x[i]);
    lminy = min(lminy, y[i]);
    lmaxy = max(lmaxy, y[i]);
}}
out[0] = mpi_allreduce_float(lminx, "min");
out[1] = mpi_allreduce_float(lmaxx, "max");
out[2] = mpi_allreduce_float(lminy, "min");
out[3] = mpi_allreduce_float(lmaxy, "max");"""
        out = [Variant("mpi-four-allreduce", _kernel(problem, model, body),
                       QUALITY_GOOD)]
        if model == "mpi":
            out.append(_root_only_baseline(problem, model))
        return out
    body = """\
let i = block_idx() * block_dim() + thread_idx();
if (i < len(x)) {
    atomic_min(out, 0, x[i]);
    atomic_max(out, 1, x[i]);
    atomic_min(out, 2, y[i]);
    atomic_max(out, 3, y[i]);
}"""
    return [
        Variant("gpu-atomic-bbox", _kernel(problem, model, body), QUALITY_GOOD),
        _gpu_thread0_variant(problem, model),
    ]


_CUSTOM_BUILDERS = {
    "sort_ascending": _sort_ascending,
    "sort_descending": _sort_descending,
    "sort_by_magnitude": _sort_by_magnitude,
    "sort_subrange": _sort_subrange,
    "rank_of_elements": _rank_of_elements,
    "index_of_minimum": _index_of_minimum,
    "count_components": _count_components,
    "bfs_distances": _bfs_distances,
    "is_bipartite": _is_bipartite,
    "bounding_box": _bounding_box,
}


def variants(problem: Problem, model: str) -> List[Variant]:
    """Handwritten variants for a custom-shaped problem."""
    return _CUSTOM_BUILDERS[problem.name](problem, model)
