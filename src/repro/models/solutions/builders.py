"""Expand problem fragments into MiniPar sources per execution model.

For every (problem, execution model) pair this produces a small set of
*correct* solution variants at different performance tiers — the shapes
LLMs actually emit: a clean static parallel loop, a dynamic-schedule
version, an everything-in-a-critical-section version, a root-does-all MPI
program, a one-thread-does-all GPU kernel, and so on.  The simulated LLMs
sample from these (and then a bug injector decides whether the sample
survives intact).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...bench.spec import Problem
from .fragments import Custom, Map1D, Map2D, Reduce1D, Scan1D, Scatter1D

QUALITY_GOOD = 1.0
QUALITY_OK = 0.55
QUALITY_POOR = 0.18


@dataclass(frozen=True)
class Variant:
    """One correct solution at some performance tier."""

    name: str
    source: str
    quality: float


def _indent(code: str, by: int = 1) -> str:
    pad = "    " * by
    return "\n".join(pad + line if line.strip() else line
                     for line in code.strip("\n").split("\n"))


def _sig(problem: Problem, model: str) -> str:
    return problem.signature(model)


def _kernel(problem: Problem, model: str, body: str, helpers: str = "") -> str:
    head = helpers.strip() + "\n\n" if helpers.strip() else ""
    return f"{head}{_sig(problem, model)}\n{_indent(body)}\n}}\n"


def _alloc_for(param_type: str) -> Tuple[str, bool]:
    """(alloc builtin, is2d) matching a MiniPar array type string."""
    if param_type == "array<float>":
        return "alloc_float", False
    if param_type == "array<int>":
        return "alloc_int", False
    if param_type == "array2d<float>":
        return "alloc2d_float", True
    return "alloc2d_int", True


_WRITE_1D = re.compile(r"(\w+)\[i\] = ")
_WRITE_2D = re.compile(r"(\w+)\[i, j\] = ")


def _written_arrays(body: str, two_d: bool) -> List[str]:
    pat = _WRITE_2D if two_d else _WRITE_1D
    seen: List[str] = []
    for m in pat.finditer(body):
        if m.group(1) not in seen:
            seen.append(m.group(1))
    assert seen, f"fragment body writes nothing recognisable: {body!r}"
    return seen


def _redirect_writes(body: str, two_d: bool, rename: Dict[str, str]) -> str:
    """Rewrite write targets (only) to the rank-local shadow arrays."""
    pat = _WRITE_2D if two_d else _WRITE_1D

    def sub(m: re.Match) -> str:
        name = m.group(1)
        idx = "[i, j] = " if two_d else "[i] = "
        return rename.get(name, name) + idx

    return pat.sub(sub, body)


def _param_type(problem: Problem, name: str) -> str:
    for p in problem.params:
        if p.name == name:
            return p.type
    raise KeyError(name)


_MPI_RANGE = """\
let rank = mpi_rank();
let size = mpi_size();
let total = {n};
let chunk = (total + size - 1) / size;
let lo_r = rank * chunk;
let hi_r = min(lo_r + chunk, total);"""


def _combine_stmt(op: str, acc: str, expr: str) -> str:
    if op == "sum":
        return f"{acc} += {expr};"
    return f"{acc} = {op}({acc}, {expr});"


def _omp_reduction_op(op: str) -> str:
    return {"sum": "+", "min": "min", "max": "max"}[op]


# ===========================================================================
# Map1D
# ===========================================================================


def _map1d_serial_body(f: Map1D) -> str:
    setup = f.setup + "\n" if f.setup else ""
    return f"{setup}for (i in 0..{f.n}) {{\n{_indent(f.body)}\n}}"


def _map1d(problem: Problem, f: Map1D, model: str) -> List[Variant]:
    if model == "serial":
        return [Variant("serial-loop",
                        _kernel(problem, model, _map1d_serial_body(f)),
                        QUALITY_GOOD)]
    if model == "openmp":
        setup = f.setup + "\n" if f.setup else ""
        static = (f"{setup}pragma omp parallel for\n"
                  f"for (i in 0..{f.n}) {{\n{_indent(f.body)}\n}}")
        dynamic = (f"{setup}pragma omp parallel for schedule(dynamic)\n"
                   f"for (i in 0..{f.n}) {{\n{_indent(f.body)}\n}}")
        return [
            Variant("omp-static", _kernel(problem, model, static), QUALITY_GOOD),
            Variant("omp-dynamic", _kernel(problem, model, dynamic), 0.8),
        ]
    if model == "kokkos":
        setup = f.setup + "\n" if f.setup else ""
        body = (f"{setup}parallel_for({f.n}, (i) => {{\n{_indent(f.body)}\n}});")
        return [Variant("kokkos-for", _kernel(problem, model, body), QUALITY_GOOD)]
    if model in ("mpi", "mpi+omp"):
        if model == "mpi":
            inner = _map1d_serial_body(f)
        else:
            setup = f.setup + "\n" if f.setup else ""
            inner = (f"{setup}pragma omp parallel for\n"
                     f"for (i in 0..{f.n}) {{\n{_indent(f.body)}\n}}")
        return _map_mpi(problem, f.body, f.n, model, two_d=False,
                        setup=f.setup, root_inner=inner)
    # cuda / hip
    guard = (
        "let i = block_idx() * block_dim() + thread_idx();\n"
        f"if (i < {f.n}) {{\n{_indent(f.body)}\n}}"
    )
    t0 = _gpu_thread0(_map1d_serial_body(f))
    return [
        Variant("gpu-thread-per-elem", _kernel(problem, model, guard),
                QUALITY_GOOD),
        Variant("gpu-thread0-serial", _kernel(problem, model, t0),
                QUALITY_POOR * 0.3),
    ]


def _gpu_thread0(serial_body: str, result_write: Optional[str] = None) -> str:
    inner = serial_body
    if result_write is not None:
        inner += f"\n{result_write}"
    return ("if (block_idx() == 0 && thread_idx() == 0) {\n"
            f"{_indent(inner)}\n}}")


def _map_mpi(problem: Problem, body: str, n: str, model: str, two_d: bool,
             setup: str = "", rows: str = "", cols: str = "",
             root_inner: str = "") -> List[Variant]:
    """The replicate-compute-allreduce MPI pattern (robust at any P):
    each rank computes its row range into zeroed shadow arrays, the
    shadows are sum-all-reduced, then copied into the real outputs."""
    writes = _written_arrays(body, two_d)
    shadows = {w: f"{w}_part" for w in writes}
    local_body = _redirect_writes(body, two_d, shadows)
    omp = model == "mpi+omp"
    pragma = "pragma omp parallel for\n" if omp else ""

    lines = [_MPI_RANGE.format(n=rows if two_d else n)]
    if setup:
        lines.append(setup)
    for w, s in shadows.items():
        alloc, is2d = _alloc_for(_param_type(problem, w))
        if is2d:
            lines.append(f"let {s} = {alloc}(rows({w}), cols({w}));")
        else:
            lines.append(f"let {s} = {alloc}(len({w}));")
    if two_d:
        lines.append(
            f"{pragma}for (i in lo_r..hi_r) {{\n"
            f"    for (j in 0..{cols}) {{\n{_indent(local_body, 2)}\n    }}\n}}"
        )
    else:
        lines.append(
            f"{pragma}for (i in lo_r..hi_r) {{\n{_indent(local_body)}\n}}"
        )
    for w, s in shadows.items():
        lines.append(f'mpi_allreduce_array({s}, "sum");')
    if two_d:
        copy = "\n".join(
            f"{pragma}for (i in 0..{rows}) {{\n"
            f"    for (j in 0..{cols}) {{\n"
            f"        {w}[i, j] = {shadows[w]}[i, j];\n    }}\n}}"
            for w in writes
        )
    else:
        copy = "\n".join(
            f"{pragma}for (i in 0..{n}) {{\n"
            f"    {w}[i] = {shadows[w]}[i];\n}}"
            for w in writes
        )
    lines.append(copy)
    good = "\n".join(lines)

    if not root_inner:
        if two_d:
            root_inner = (f"{setup}\n" if setup else "") + (
                f"for (i in 0..{rows}) {{\n"
                f"    for (j in 0..{cols}) {{\n{_indent(body, 2)}\n    }}\n}}"
            )
        else:
            root_inner = (f"{setup}\n" if setup else "") + (
                f"for (i in 0..{n}) {{\n{_indent(body)}\n}}"
            )

    return [
        Variant("mpi-block-allreduce", _kernel(problem, model, good),
                QUALITY_GOOD),
        root_only_local(problem, model, root_inner),
    ]


def root_only_local(problem: Problem, model: str, inner_body: str,
                    helpers: str = "",
                    quality: float = QUALITY_POOR) -> Variant:
    """Rank 0 does everything (running ``inner_body`` — serial for plain
    MPI, OpenMP-annotated for the hybrid model so the usage check passes);
    peers idle at a barrier.  Correct, because outputs are only checked on
    rank 0, and a shape weak models genuinely emit."""
    params = ", ".join(f"{p.name}: {p.type}" for p in problem.params)
    args = ", ".join(p.name for p in problem.params)
    ret = f" -> {problem.ret}" if problem.ret else ""
    local = (
        (helpers.strip() + "\n\n" if helpers.strip() else "")
        + f"kernel {problem.name}_local({params}){ret} {{\n"
        + _indent(inner_body)
        + "\n}"
    )
    if problem.ret is not None:
        ident = "0" if problem.ret == "int" else "0.0"
        body = (
            "if (mpi_rank() == 0) {\n"
            f"    let res = {problem.name}_local({args});\n"
            "    mpi_barrier();\n"
            "    return res;\n"
            "}\n"
            "mpi_barrier();\n"
            f"return {ident};"
        )
    else:
        body = (
            "if (mpi_rank() == 0) {\n"
            f"    {problem.name}_local({args});\n"
            "}\n"
            "mpi_barrier();"
        )
    return Variant("mpi-root-only", _kernel(problem, model, body, local),
                   quality)


# ===========================================================================
# Map2D
# ===========================================================================


def _map2d_serial_body(f: Map2D) -> str:
    return (f"for (i in 0..{f.rows}) {{\n"
            f"    for (j in 0..{f.cols}) {{\n{_indent(f.body, 2)}\n    }}\n}}")


def _map2d(problem: Problem, f: Map2D, model: str) -> List[Variant]:
    if model == "serial":
        return [Variant("serial-loop",
                        _kernel(problem, model, _map2d_serial_body(f)),
                        QUALITY_GOOD)]
    if model == "openmp":
        body = (f"pragma omp parallel for\n"
                f"for (i in 0..{f.rows}) {{\n"
                f"    for (j in 0..{f.cols}) {{\n{_indent(f.body, 2)}\n    }}\n}}")
        dyn = body.replace("parallel for\n", "parallel for schedule(dynamic)\n")
        return [
            Variant("omp-static", _kernel(problem, model, body), QUALITY_GOOD),
            Variant("omp-dynamic", _kernel(problem, model, dyn), 0.8),
        ]
    if model == "kokkos":
        body = (f"parallel_for({f.rows}, (i) => {{\n"
                f"    for (j in 0..{f.cols}) {{\n{_indent(f.body, 2)}\n    }}\n}});")
        return [Variant("kokkos-for", _kernel(problem, model, body),
                        QUALITY_GOOD)]
    if model in ("mpi", "mpi+omp"):
        root_inner = ""
        if model == "mpi+omp":
            root_inner = (
                f"pragma omp parallel for\n"
                f"for (i in 0..{f.rows}) {{\n"
                f"    for (j in 0..{f.cols}) {{\n{_indent(f.body, 2)}\n    }}\n}}"
            )
        return _map_mpi(problem, f.body, "", model, two_d=True,
                        rows=f.rows, cols=f.cols, root_inner=root_inner)
    flat = (
        "let gid = block_idx() * block_dim() + thread_idx();\n"
        f"let r_total = {f.rows};\n"
        f"let c_total = {f.cols};\n"
        "if (gid < r_total * c_total) {\n"
        "    let i = gid / c_total;\n"
        "    let j = gid % c_total;\n"
        f"{_indent(f.body)}\n"
        "}"
    )
    t0 = _gpu_thread0(_map2d_serial_body(f))
    return [
        Variant("gpu-thread-per-cell", _kernel(problem, model, flat),
                QUALITY_GOOD),
        Variant("gpu-thread0-serial", _kernel(problem, model, t0),
                QUALITY_POOR * 0.3),
    ]


# ===========================================================================
# Reduce1D
# ===========================================================================


def _reduce_contrib(problem: Problem, f: Reduce1D) -> str:
    if f.expr:
        return f.expr
    args = ", ".join(p.name for p in problem.params)
    return f"{problem.name}_contrib({args}, i)"


def _reduce_serial_body(problem: Problem, f: Reduce1D,
                        with_return: bool = True) -> str:
    contrib = _reduce_contrib(problem, f)
    setup = f.setup + "\n" if f.setup else ""
    body = (
        f"{setup}let acc = {f.identity};\n"
        f"for (i in 0..{f.n}) {{\n"
        f"    {_combine_stmt(f.op, 'acc', contrib)}\n"
        f"}}"
    )
    if with_return:
        body += f"\nreturn {f.post.format('acc')};"
    return body


def _reduce(problem: Problem, f: Reduce1D, model: str) -> List[Variant]:
    contrib = _reduce_contrib(problem, f)
    helpers = f.helper
    setup = f.setup + "\n" if f.setup else ""
    post = f.post

    if model == "serial":
        return [Variant(
            "serial-fold",
            _kernel(problem, model, _reduce_serial_body(problem, f), helpers),
            QUALITY_GOOD,
        )]

    if model == "openmp":
        red = (
            f"{setup}let acc = {f.identity};\n"
            f"pragma omp parallel for reduction({_omp_reduction_op(f.op)}: acc)\n"
            f"for (i in 0..{f.n}) {{\n"
            f"    {_combine_stmt(f.op, 'acc', contrib)}\n"
            f"}}\n"
            f"return {post.format('acc')};"
        )
        out = [Variant("omp-reduction", _kernel(problem, model, red, helpers),
                       QUALITY_GOOD)]
        crit = (
            f"{setup}let acc = {f.identity};\n"
            f"pragma omp parallel for\n"
            f"for (i in 0..{f.n}) {{\n"
            f"    pragma omp critical\n"
            f"    {{\n"
            f"        {_combine_stmt(f.op, 'acc', contrib)}\n"
            f"    }}\n"
            f"}}\n"
            f"return {post.format('acc')};"
        )
        out.append(Variant("omp-critical", _kernel(problem, model, crit, helpers),
                           QUALITY_POOR))
        if f.op == "sum":
            atomic = (
                f"{setup}let acc = {f.identity};\n"
                f"pragma omp parallel for\n"
                f"for (i in 0..{f.n}) {{\n"
                f"    pragma omp atomic\n"
                f"    acc += {contrib};\n"
                f"}}\n"
                f"return {post.format('acc')};"
            )
            out.append(Variant("omp-atomic", _kernel(problem, model, atomic, helpers),
                               0.35))
        return out

    if model == "kokkos":
        body = (
            f"{setup}let acc = parallel_reduce({f.n}, \"{f.op}\", "
            f"(i) => {contrib});\n"
            f"return {post.format('acc')};"
        )
        return [Variant("kokkos-reduce", _kernel(problem, model, body, helpers),
                        QUALITY_GOOD)]

    if model in ("mpi", "mpi+omp"):
        allreduce = "mpi_allreduce_int" if f.elem == "int" else "mpi_allreduce_float"
        pragma = (
            f"pragma omp parallel for reduction({_omp_reduction_op(f.op)}: local)\n"
            if model == "mpi+omp" else ""
        )
        good = (
            f"{_MPI_RANGE.format(n=f.n)}\n"
            f"{setup}let local = {f.identity};\n"
            f"{pragma}for (i in lo_r..hi_r) {{\n"
            f"    {_combine_stmt(f.op, 'local', contrib)}\n"
            f"}}\n"
            f"let acc = {allreduce}(local, \"{f.op}\");\n"
            f"return {post.format('acc')};"
        )
        if model == "mpi":
            inner = _reduce_serial_body(problem, f)
        else:
            inner = (
                f"{setup}let acc = {f.identity};\n"
                f"pragma omp parallel for reduction({_omp_reduction_op(f.op)}: acc)\n"
                f"for (i in 0..{f.n}) {{\n"
                f"    {_combine_stmt(f.op, 'acc', contrib)}\n"
                f"}}\n"
                f"return {post.format('acc')};"
            )
        return [
            Variant("mpi-block-allreduce", _kernel(problem, model, good, helpers),
                    QUALITY_GOOD),
            root_only_local(problem, model, inner, helpers),
        ]

    # cuda / hip — accumulate into result[0] with atomics; no post transform
    atomic = {"sum": "atomic_add", "min": "atomic_min", "max": "atomic_max"}[f.op]
    guard = (
        "let i = block_idx() * block_dim() + thread_idx();\n"
        f"if (i < {f.n}) {{\n"
        f"    {atomic}(result, 0, {contrib});\n"
        f"}}"
    )
    serial = (
        f"{setup}let acc = {f.identity};\n"
        f"for (i in 0..{f.n}) {{\n"
        f"    {_combine_stmt(f.op, 'acc', contrib)}\n"
        f"}}"
    )
    # thread0 writes the raw accumulation (the buffer convention has no post)
    t0 = _gpu_thread0(serial, result_write="result[0] = acc;")
    return [
        Variant("gpu-atomic", _kernel(problem, model, guard, helpers),
                QUALITY_GOOD),
        Variant("gpu-thread0-serial", _kernel(problem, model, t0, helpers),
                QUALITY_POOR * 0.3),
    ]


# ===========================================================================
# Scatter1D
# ===========================================================================


def _scatter_update(f: Scatter1D, style: str) -> str:
    """The update statement in one of several synchronisation styles."""
    plain = f"{f.target}[{f.bin}] += {f.delta};"
    if style == "plain":
        return plain
    if style == "omp-atomic":
        return f"pragma omp atomic\n{plain}"
    if style == "omp-critical":
        return f"pragma omp critical\n{{\n    {plain}\n}}"
    if style == "atomic-builtin":
        return f"atomic_add({f.target}, {f.bin}, {f.delta});"
    raise AssertionError(style)


def _scatter_body(f: Scatter1D, style: str, target_override: str = "") -> str:
    tgt = f
    if target_override:
        tgt = Scatter1D(n=f.n, pre=f.pre, target=target_override, bin=f.bin,
                        delta=f.delta, update=f.update, inner=f.inner)
    update = _scatter_update(tgt, style)
    if f.inner:
        return tgt.inner.replace("{UPDATE}", _indent(update).lstrip())
    pre = tgt.pre + "\n" if tgt.pre else ""
    return f"{pre}{update}"


def _scatter(problem: Problem, f: Scatter1D, model: str) -> List[Variant]:
    serial_body = (
        f"for (i in 0..{f.n}) {{\n{_indent(_scatter_body(f, 'plain'))}\n}}"
    )
    if model == "serial":
        return [Variant("serial-loop", _kernel(problem, model, serial_body),
                        QUALITY_GOOD)]
    if model == "openmp":
        atomic = (f"pragma omp parallel for\n"
                  f"for (i in 0..{f.n}) {{\n"
                  f"{_indent(_scatter_body(f, 'omp-atomic'))}\n}}")
        crit = (f"pragma omp parallel for\n"
                f"for (i in 0..{f.n}) {{\n"
                f"{_indent(_scatter_body(f, 'omp-critical'))}\n}}")
        return [
            Variant("omp-atomic", _kernel(problem, model, atomic), QUALITY_GOOD),
            Variant("omp-critical", _kernel(problem, model, crit), QUALITY_POOR),
        ]
    if model == "kokkos":
        body = (f"parallel_for({f.n}, (i) => {{\n"
                f"{_indent(_scatter_body(f, 'atomic-builtin'))}\n}});")
        return [Variant("kokkos-atomic", _kernel(problem, model, body),
                        QUALITY_GOOD)]
    if model in ("mpi", "mpi+omp"):
        alloc, _ = _alloc_for(_param_type(problem, f.target))
        shadow = f"{f.target}_part"
        style = "omp-atomic" if model == "mpi+omp" else "plain"
        pragma = "pragma omp parallel for\n" if model == "mpi+omp" else ""
        local = _scatter_body(f, style, target_override=shadow)
        good = (
            f"{_MPI_RANGE.format(n=f.n)}\n"
            f"let {shadow} = {alloc}(len({f.target}));\n"
            f"{pragma}for (i in lo_r..hi_r) {{\n{_indent(local)}\n}}\n"
            f"mpi_allreduce_array({shadow}, \"sum\");\n"
            f"for (b in 0..len({f.target})) {{\n"
            f"    {f.target}[b] += {shadow}[b];\n}}"
        )
        if model == "mpi":
            inner = serial_body
        else:
            inner = (f"pragma omp parallel for\n"
                     f"for (i in 0..{f.n}) {{\n"
                     f"{_indent(_scatter_body(f, 'omp-atomic'))}\n}}")
        return [
            Variant("mpi-local-hist", _kernel(problem, model, good),
                    QUALITY_GOOD),
            root_only_local(problem, model, inner),
        ]
    guard = (
        "let i = block_idx() * block_dim() + thread_idx();\n"
        f"if (i < {f.n}) {{\n"
        f"{_indent(_scatter_body(f, 'atomic-builtin'))}\n}}"
    )
    t0 = _gpu_thread0(serial_body)
    return [
        Variant("gpu-atomic", _kernel(problem, model, guard), QUALITY_GOOD),
        Variant("gpu-thread0-serial", _kernel(problem, model, t0),
                QUALITY_POOR * 0.3),
    ]


# ===========================================================================
# Scan1D
# ===========================================================================


def _scan_serial_body(f: Scan1D) -> str:
    comb = f.combine
    n = f"len({f.src})"
    if not f.reverse:
        loop_idx = "i"
    else:
        loop_idx = f"({n} - 1 - i)"
    lines = [f"let acc = {f.identity};"]
    lines.append(f"for (i in 0..{n}) {{")
    lines.append(f"    let at = {loop_idx};")
    if f.inclusive:
        lines.append(f"    acc = {comb.format(a='acc', b=f.src + '[at]')};")
        lines.append(f"    {f.out}[at] = acc;")
    else:
        lines.append(f"    {f.out}[at] = acc;")
        lines.append(f"    acc = {comb.format(a='acc', b=f.src + '[at]')};")
    lines.append("}")
    return "\n".join(lines)


def _scan_naive_inner(f: Scan1D, src: str) -> str:
    """Per-output O(n) recomputation (so O(n^2) total) — a shape LLMs emit
    for parallel scans constantly; correct, embarrassingly parallel, slow."""
    n = f"len({f.src})"
    if f.reverse:
        rng = f"i..{n}"
    elif f.inclusive:
        rng = "0..i + 1"
    else:
        rng = "0..i"
    return (
        f"let acc = {f.identity};\n"
        f"for (k in {rng}) {{\n"
        f"    acc = {f.combine.format(a='acc', b=src + '[k]')};\n"
        f"}}\n"
        f"{f.out}[i] = acc;"
    )


def _scan(problem: Problem, f: Scan1D, model: str) -> List[Variant]:
    n = f"len({f.src})"
    in_place = f.src == f.out
    serial_body = _scan_serial_body(f)
    if model == "serial":
        return [Variant("serial-scan", _kernel(problem, model, serial_body),
                        QUALITY_GOOD)]

    if model == "openmp":
        # two-pass blocked scan
        elem_t = "alloc_float"
        comb = f.combine
        fwd = not f.reverse
        idx = "(b * bs + t)" if fwd else f"({n} - 1 - (b * bs + t))"
        blocked = f"""\
let n_0 = {n};
let nb = 32;
let bs = (n_0 + nb - 1) / nb;
let bsum = {elem_t}(nb);
pragma omp parallel for
for (b in 0..nb) {{
    let acc = {f.identity};
    for (t in 0..min(bs, n_0 - b * bs)) {{
        acc = {comb.format(a='acc', b=f.src + '[' + idx + ']')};
    }}
    bsum[b] = acc;
}}
let off = {elem_t}(nb);
let run = {f.identity};
for (b in 0..nb) {{
    off[b] = run;
    run = {comb.format(a='run', b='bsum[b]')};
}}
pragma omp parallel for
for (b in 0..nb) {{
    let acc = off[b];
    for (t in 0..min(bs, n_0 - b * bs)) {{
        let at = {idx};
        {"acc = " + comb.format(a='acc', b=f.src + '[at]') + ";" if f.inclusive else ""}
        {f.out}[at] = acc;
        {"" if f.inclusive else "acc = " + comb.format(a='acc', b=f.src + '[at]') + ";"}
    }}
}}"""
        variants = []
        if not in_place:
            variants.append(Variant("omp-blocked-scan",
                                    _kernel(problem, model, blocked),
                                    QUALITY_GOOD))
        snapshot = f"let orig = copy({f.src});\n"
        naive = (
            f"{snapshot if in_place else ''}"
            f"pragma omp parallel for\n"
            f"for (i in 0..{n}) {{\n"
            f"{_indent(_scan_naive_inner(f, 'orig' if in_place else f.src))}\n}}"
        )
        variants.append(Variant("omp-naive-quadratic",
                                _kernel(problem, model, naive), 0.25))
        return variants

    if model == "kokkos":
        kind = "parallel_scan_inclusive" if f.inclusive else "parallel_scan_exclusive"
        if not f.reverse:
            body = f'{kind}({n}, "{f.op}", (k) => {f.src}[k], {f.out});'
        else:
            body = (
                f"let tmp = alloc_float({n});\n"
                f'{kind}({n}, "{f.op}", (k) => {f.src}[{n} - 1 - k], tmp);\n'
                f"parallel_for({n}, (k) => {{\n"
                f"    {f.out}[{n} - 1 - k] = tmp[k];\n}});"
            )
        variants = [Variant("kokkos-scan", _kernel(problem, model, body),
                            QUALITY_GOOD)]
        snapshot = f"let orig = copy({f.src});\n" if in_place else ""
        naive = (
            f"{snapshot}parallel_for({n}, (i) => {{\n"
            f"{_indent(_scan_naive_inner(f, 'orig' if in_place else f.src))}\n}});"
        )
        variants.append(Variant("kokkos-naive-quadratic",
                                _kernel(problem, model, naive), 0.25))
        return variants

    if model in ("mpi", "mpi+omp"):
        comb = f.combine
        pragma = (
            f"pragma omp parallel for reduction({_omp_reduction_op(f.op)}: agg)\n"
            if model == "mpi+omp" else ""
        )
        fwd = not f.reverse
        at_agg = "i" if fwd else f"({n} - 1 - i)"
        # ranks process segments of the (possibly reversed) traversal in
        # rank order, so the offset always folds the aggregates of ranks
        # before this one
        off_range = "0..rank"
        good = f"""\
{_MPI_RANGE.format(n=n)}
let agg = {f.identity};
{pragma}for (i in lo_r..hi_r) {{
    agg = {comb.format(a='agg', b=f.src + '[' + at_agg + ']')};
}}
let mine = alloc_float(1);
mine[0] = agg;
let aggs = mpi_allgather_array(mine);
let offset = {f.identity};
for (rr in {off_range}) {{
    offset = {comb.format(a='offset', b='aggs[rr]')};
}}
let part = alloc_float({n});
let acc = offset;
for (i in lo_r..hi_r) {{
    let at = {at_agg};
    {"acc = " + comb.format(a='acc', b=f.src + '[at]') + ";" if f.inclusive else ""}
    part[at] = acc;
    {"" if f.inclusive else "acc = " + comb.format(a='acc', b=f.src + '[at]') + ";"}
}}
mpi_allreduce_array(part, "sum");
for (i in 0..{n}) {{
    {f.out}[i] = part[i];
}}"""
        out = [Variant("mpi-block-scan", _kernel(problem, model, good),
                       QUALITY_GOOD)]
        if model == "mpi":
            out.append(root_only_local(problem, model, serial_body))
        return out

    # cuda / hip
    variants = []
    if not in_place:
        naive = (
            "let i = block_idx() * block_dim() + thread_idx();\n"
            f"if (i < {n}) {{\n"
            f"{_indent(_scan_naive_inner(f, f.src))}\n}}"
        )
        variants.append(Variant("gpu-naive-quadratic",
                                _kernel(problem, model, naive), 0.5))
    t0 = _gpu_thread0(serial_body)
    variants.append(Variant("gpu-thread0-serial", _kernel(problem, model, t0),
                            QUALITY_POOR * 0.3))
    return variants


# ===========================================================================
# dispatch
# ===========================================================================


def build_variants(problem: Problem, model: str) -> List[Variant]:
    """All correct solution variants for one (problem, execution model)."""
    from .fragments import fragment_for
    from . import custom

    frag = fragment_for(problem.name)
    if isinstance(frag, Map1D):
        return _map1d(problem, frag, model)
    if isinstance(frag, Map2D):
        return _map2d(problem, frag, model)
    if isinstance(frag, Reduce1D):
        return _reduce(problem, frag, model)
    if isinstance(frag, Scatter1D):
        return _scatter(problem, frag, model)
    if isinstance(frag, Scan1D):
        return _scan(problem, frag, model)
    assert isinstance(frag, Custom)
    return custom.variants(problem, model)
