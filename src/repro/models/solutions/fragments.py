"""Structural fragments describing how each PCGBench problem parallelises.

Each problem is classified into one of a few *shapes*; the builders in
:mod:`builders` expand a shape into concrete MiniPar source for every
execution model (with several performance variants).  Problems whose
parallel structure is too irregular for a shape get handwritten sources in
:mod:`custom`.

Conventions inside fragment code strings:

* the parallel index variable is ``i`` (and ``j`` for the inner 2-D index);
* fragments may reference the problem's parameters by name;
* ``setup`` statements run once before the parallel region (e.g. taking a
  snapshot copy so an in-place scan does not race).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class Map1D:
    """Independent per-index work over ``[0, n)`` writing disjoint cells."""

    n: str
    body: str
    setup: str = ""


@dataclass(frozen=True)
class Map2D:
    """Independent per-cell work over a rows x cols space."""

    rows: str
    cols: str
    body: str                # uses i (row) and j (col)


@dataclass(frozen=True)
class Reduce1D:
    """A fold of per-index contributions: scalar-returning problems."""

    n: str
    expr: str = ""           # simple contribution expression in i
    helper: str = ""         # or: extra kernel(s); contribution kernel must
    #                          be named "<problem>_contrib(params..., i: int)"
    op: str = "sum"          # sum | min | max
    identity: str = "0.0"    # MiniPar literal/expr for the fold identity
    post: str = "{0}"        # final transform of the accumulated value
    elem: str = "float"      # contribution kind: float | int
    setup: str = ""


@dataclass(frozen=True)
class Scatter1D:
    """Per-index atomic update into a shared target array (histograms,
    scatter-axpy, transposed spmv)."""

    n: str
    pre: str                 # statements computing `bin` and `delta` from i
    target: str              # parameter name of the updated array
    bin: str = "bin"         # index expression (a local from `pre`)
    delta: str = "delta"     # value expression (a local from `pre`)
    update: str = "add"      # add | min | max
    inner: str = ""          # optional inner loop form: pre may emit several
    #                          updates itself when inner is non-empty


@dataclass(frozen=True)
class Scan1D:
    """A prefix operation out[i] = fold(op, x[0..i])."""

    op: str                  # sum | min | max
    combine: str             # e.g. "{a} + {b}" or "min({a}, {b})"
    identity: str
    src: str = "x"           # input array parameter
    out: str = "out"         # output array parameter ("x" for in-place)
    inclusive: bool = True
    reverse: bool = False


@dataclass(frozen=True)
class Custom:
    """Handwritten sources; see custom.py."""

    key: str = ""


Shape = object

#: problem name -> shape
FRAGMENTS: Dict[str, Shape] = {}


def _frag(name: str, shape: Shape) -> None:
    assert name not in FRAGMENTS, name
    FRAGMENTS[name] = shape


# -- transform ---------------------------------------------------------------

_frag("relu", Map1D(n="len(x)", body="x[i] = max(x[i], 0.0);"))
_frag("celsius_to_fahrenheit",
      Map1D(n="len(c)", body="f[i] = c[i] * 9.0 / 5.0 + 32.0;"))
_frag("clamp_range", Map1D(n="len(x)", body="x[i] = min(max(x[i], lo), hi);"))
_frag("cube_elements", Map1D(n="len(x)", body="x[i] = x[i] * x[i] * x[i];"))
_frag("halve_shifted", Map1D(n="len(x)", body="x[i] = (x[i] + 1.0) / 2.0;"))

# -- reduce --------------------------------------------------------------------

_frag("sum_of_elements", Reduce1D(n="len(x)", expr="x[i]"))
_frag("smallest_element",
      Reduce1D(n="len(x)", expr="x[i]", op="min", identity="1e30"))
_frag("sum_of_squares", Reduce1D(n="len(x)", expr="x[i] * x[i]"))
_frag("count_above_threshold",
      Reduce1D(n="len(x)", expr="select(x[i] > t, 1, 0)", elem="int",
               identity="0"))
_frag("max_adjacent_diff",
      Reduce1D(n="len(x) - 1", expr="abs(x[i + 1] - x[i])", op="max",
               identity="-1e30"))

# -- scan ---------------------------------------------------------------------------

_frag("prefix_sum",
      Scan1D(op="sum", combine="{a} + {b}", identity="0.0"))
_frag("reverse_prefix_sum",
      Scan1D(op="sum", combine="{a} + {b}", identity="0.0", reverse=True))
_frag("partial_minimums",
      Scan1D(op="min", combine="min({a}, {b})", identity="1e30",
             src="x", out="x"))
_frag("exclusive_prefix_sum",
      Scan1D(op="sum", combine="{a} + {b}", identity="0.0", inclusive=False))
_frag("running_maximums",
      Scan1D(op="max", combine="max({a}, {b})", identity="-1e30"))

# -- sort (custom: chunked merges, key transforms) ------------------------------------

_frag("sort_ascending", Custom())
_frag("sort_descending", Custom())
_frag("sort_by_magnitude", Custom())
_frag("sort_subrange", Custom())
_frag("rank_of_elements", Custom())

# -- search ------------------------------------------------------------------------------

_frag("index_of_first",
      Reduce1D(n="len(x)", expr="select(x[i] == v, i, len(x))", op="min",
               identity="len(x)", elem="int",
               post="select({0} == len(x), 0 - 1, {0})"))
_frag("contains_value",
      Reduce1D(n="len(x)", expr="select(x[i] == v, 1, 0)", op="max",
               identity="0", elem="int"))
_frag("index_of_minimum", Custom())   # two-phase reduce (min, then argmin)
_frag("binary_search_sorted",
      Reduce1D(n="len(x)", expr="select(x[i] == v, i, len(x))", op="min",
               identity="len(x)", elem="int",
               post="select({0} == len(x), 0 - 1, {0})"))
_frag("first_unsorted_position",
      Reduce1D(n="len(x) - 1", expr="select(x[i] > x[i + 1], i, len(x))",
               op="min", identity="len(x)", elem="int",
               post="select({0} == len(x), 0 - 1, {0})"))

# -- histogram -------------------------------------------------------------------------------

_frag("hist_unit_interval",
      Scatter1D(n="len(x)",
                pre="let bin = int(x[i] * 10.0);\nlet delta = 1;",
                target="h"))
_frag("hist_mod_k",
      Scatter1D(n="len(x)",
                pre="let bin = x[i] % k;\nlet delta = 1;",
                target="h"))
_frag("hist_deciles",
      Scatter1D(n="len(x)",
                pre=("let bin = min(max(int((x[i] - lo) / (hi - lo) * 10.0), "
                     "0), 9);\nlet delta = 1;"),
                target="h"))
_frag("hist_custom_edges",
      Scatter1D(n="len(x)",
                pre=("let elo = 0;\n"
                     "let ehi = len(edges) - 1;\n"
                     "while (elo + 1 < ehi) {\n"
                     "    let mid = (elo + ehi) / 2;\n"
                     "    if (edges[mid] <= x[i]) { elo = mid; } "
                     "else { ehi = mid; }\n"
                     "}\n"
                     "let bin = elo;\nlet delta = 1;"),
                target="h"))
_frag("hist_alphabet",
      Scatter1D(n="len(x)",
                pre="let bin = x[i];\nlet delta = 1;",
                target="h"))

# -- stencil -----------------------------------------------------------------------------------

_frag("jacobi_1d", Map1D(
    n="len(x)",
    body=("if (i == 0 || i == len(x) - 1) { y[i] = x[i]; } else { "
          "y[i] = (x[i - 1] + x[i] + x[i + 1]) / 3.0; }"),
))
_frag("jacobi_2d", Map2D(
    rows="rows(grid)", cols="cols(grid)",
    body=("if (i == 0 || i == rows(grid) - 1 || j == 0 || j == cols(grid) - 1) "
          "{ out[i, j] = grid[i, j]; } else { "
          "out[i, j] = (grid[i - 1, j] + grid[i + 1, j] + grid[i, j - 1] "
          "+ grid[i, j + 1] + grid[i, j]) / 5.0; }"),
))
_frag("heat_step_1d", Map1D(
    n="len(u)",
    body=("if (i == 0 || i == len(u) - 1) { unew[i] = u[i]; } else { "
          "unew[i] = u[i] + alpha * (u[i - 1] - 2.0 * u[i] + u[i + 1]); }"),
))
_frag("game_of_life_step", Map2D(
    rows="rows(board)", cols="cols(board)",
    body=(
        "let alive = 0;\n"
        "for (di in 0..3) {\n"
        "    for (dj in 0..3) {\n"
        "        let ni = i + di - 1;\n"
        "        let nj = j + dj - 1;\n"
        "        if ((di != 1 || dj != 1) && ni >= 0 && ni < rows(board) "
        "&& nj >= 0 && nj < cols(board)) { alive += board[ni, nj]; }\n"
        "    }\n"
        "}\n"
        "if (alive == 3 || (board[i, j] == 1 && alive == 2)) "
        "{ out[i, j] = 1; } else { out[i, j] = 0; }"
    ),
))
_frag("max_pool_3x3", Map2D(
    rows="rows(grid)", cols="cols(grid)",
    body=(
        "let best = grid[i, j];\n"
        "for (di in 0..3) {\n"
        "    for (dj in 0..3) {\n"
        "        let ni = i + di - 1;\n"
        "        let nj = j + dj - 1;\n"
        "        if (ni >= 0 && ni < rows(grid) && nj >= 0 && nj < cols(grid)) "
        "{ best = max(best, grid[ni, nj]); }\n"
        "    }\n"
        "}\n"
        "out[i, j] = best;"
    ),
))

# -- dense_la -----------------------------------------------------------------------------------

_frag("axpy", Map1D(n="len(x)", body="y[i] = a * x[i] + y[i];"))
_frag("dot_product", Reduce1D(n="len(x)", expr="x[i] * y[i]"))
_frag("gemv", Map1D(
    n="rows(A)",
    body=("let acc = 0.0;\n"
          "for (j in 0..cols(A)) { acc += A[i, j] * x[j]; }\n"
          "y[i] = acc;"),
))
_frag("gemm", Map2D(
    rows="rows(A)", cols="cols(B)",
    body=("let acc = 0.0;\n"
          "for (k in 0..cols(A)) { acc += A[i, k] * B[k, j]; }\n"
          "C[i, j] = acc;"),
))
_frag("outer_product", Map2D(
    rows="len(x)", cols="len(y)", body="A[i, j] = x[i] * y[j];",
))

# -- sparse_la -----------------------------------------------------------------------------------

_frag("spmv_csr", Map1D(
    n="len(rowptr) - 1",
    body=("let acc = 0.0;\n"
          "for (k in rowptr[i]..rowptr[i + 1]) "
          "{ acc += vals[k] * x[colidx[k]]; }\n"
          "y[i] = acc;"),
))
_frag("sparse_dot", Reduce1D(
    n="len(idx_a)",
    helper=(
        "kernel sparse_dot_contrib(idx_a: array<int>, val_a: array<float>, "
        "idx_b: array<int>, val_b: array<float>, i: int) -> float {\n"
        "    let target = idx_a[i];\n"
        "    let lo = 0;\n"
        "    let hi = len(idx_b);\n"
        "    while (lo < hi) {\n"
        "        let mid = (lo + hi) / 2;\n"
        "        if (idx_b[mid] == target) { return val_a[i] * val_b[mid]; }\n"
        "        if (idx_b[mid] < target) { lo = mid + 1; } else { hi = mid; }\n"
        "    }\n"
        "    return 0.0;\n"
        "}"
    ),
))
_frag("sparse_axpy", Scatter1D(
    n="len(idx)",
    pre="let bin = idx[i];\nlet delta = a * val[i];",
    target="y",
))
_frag("csr_row_sums", Map1D(
    n="len(rowptr) - 1",
    body=("let acc = 0.0;\n"
          "for (k in rowptr[i]..rowptr[i + 1]) { acc += vals[k]; }\n"
          "out[i] = acc;"),
))
_frag("spmv_transpose", Scatter1D(
    n="len(rowptr) - 1",
    pre="",
    target="y",
    inner=("for (k in rowptr[i]..rowptr[i + 1]) {\n"
           "    let bin = colidx[k];\n"
           "    let delta = vals[k] * x[i];\n"
           "    {UPDATE}\n"
           "}"),
))

# -- graph ----------------------------------------------------------------------------------------

_frag("count_components", Custom())
_frag("bfs_distances", Custom())
_frag("max_degree", Reduce1D(
    n="len(rowptr) - 1", expr="rowptr[i + 1] - rowptr[i]", op="max",
    identity="0", elem="int",
))
_frag("count_triangles", Reduce1D(
    n="len(rowptr) - 1",
    elem="int",
    identity="0",
    helper=(
        "kernel tri_has_edge(rowptr: array<int>, colidx: array<int>, "
        "u: int, w: int) -> int {\n"
        "    let lo = rowptr[u];\n"
        "    let hi = rowptr[u + 1];\n"
        "    while (lo < hi) {\n"
        "        let mid = (lo + hi) / 2;\n"
        "        if (colidx[mid] == w) { return 1; }\n"
        "        if (colidx[mid] < w) { lo = mid + 1; } else { hi = mid; }\n"
        "    }\n"
        "    return 0;\n"
        "}\n"
        "\n"
        "kernel count_triangles_contrib(rowptr: array<int>, "
        "colidx: array<int>, i: int) -> int {\n"
        "    let count = 0;\n"
        "    for (a in rowptr[i]..rowptr[i + 1]) {\n"
        "        let u = colidx[a];\n"
        "        if (u > i) {\n"
        "            for (b in rowptr[i]..rowptr[i + 1]) {\n"
        "                let w = colidx[b];\n"
        "                if (w > u && tri_has_edge(rowptr, colidx, u, w) == 1) "
        "{ count += 1; }\n"
        "            }\n"
        "        }\n"
        "    }\n"
        "    return count;\n"
        "}"
    ),
))
_frag("is_bipartite", Custom())

# -- geometry --------------------------------------------------------------------------------------

_frag("closest_pair_distance", Reduce1D(
    n="len(x)",
    op="min",
    identity="1e30",
    helper=(
        "kernel closest_pair_distance_contrib(x: array<float>, "
        "y: array<float>, i: int) -> float {\n"
        "    let best = 1e30;\n"
        "    for (j in i + 1..len(x)) {\n"
        "        let dx = x[j] - x[i];\n"
        "        let dy = y[j] - y[i];\n"
        "        best = min(best, sqrt(dx * dx + dy * dy));\n"
        "    }\n"
        "    return best;\n"
        "}"
    ),
))
_frag("polygon_area", Reduce1D(
    n="len(x)",
    helper=(
        "kernel polygon_area_contrib(x: array<float>, y: array<float>, "
        "i: int) -> float {\n"
        "    let j = (i + 1) % len(x);\n"
        "    return (x[i] * y[j] - x[j] * y[i]) / 2.0;\n"
        "}"
    ),
    post="abs({0})",
))
_frag("count_points_in_circle", Reduce1D(
    n="len(x)",
    expr=("select((x[i] - cx) * (x[i] - cx) + (y[i] - cy) * (y[i] - cy) "
          "<= r * r, 1, 0)"),
    elem="int",
    identity="0",
))
_frag("bounding_box", Custom())   # four reductions into one output array
_frag("farthest_pair_distance", Reduce1D(
    n="len(x)",
    op="max",
    identity="0.0",
    helper=(
        "kernel farthest_pair_distance_contrib(x: array<float>, "
        "y: array<float>, i: int) -> float {\n"
        "    let best = 0.0;\n"
        "    for (j in i + 1..len(x)) {\n"
        "        let dx = x[j] - x[i];\n"
        "        let dy = y[j] - y[i];\n"
        "        best = max(best, sqrt(dx * dx + dy * dy));\n"
        "    }\n"
        "    return best;\n"
        "}"
    ),
))

# -- fft ---------------------------------------------------------------------------------------------

_PI = "3.141592653589793"

_frag("dft", Map1D(
    n="len(re)",
    body=(
        "let acc_r = 0.0;\n"
        "let acc_i = 0.0;\n"
        "let n_1 = len(re);\n"
        f"let base = 0.0 - 2.0 * {_PI} * float(i) / float(n_1);\n"
        "for (t in 0..n_1) {\n"
        "    let ang = base * float(t);\n"
        "    let wr = cos(ang);\n"
        "    let wi = sin(ang);\n"
        "    acc_r += re[t] * wr - im[t] * wi;\n"
        "    acc_i += re[t] * wi + im[t] * wr;\n"
        "}\n"
        "out_re[i] = acc_r;\n"
        "out_im[i] = acc_i;"
    ),
))
_frag("inverse_dft", Map1D(
    n="len(re)",
    body=(
        "let acc_r = 0.0;\n"
        "let acc_i = 0.0;\n"
        "let n_1 = len(re);\n"
        f"let base = 2.0 * {_PI} * float(i) / float(n_1);\n"
        "for (t in 0..n_1) {\n"
        "    let ang = base * float(t);\n"
        "    let wr = cos(ang);\n"
        "    let wi = sin(ang);\n"
        "    acc_r += re[t] * wr - im[t] * wi;\n"
        "    acc_i += re[t] * wi + im[t] * wr;\n"
        "}\n"
        "out_re[i] = acc_r / float(n_1);\n"
        "out_im[i] = acc_i / float(n_1);"
    ),
))
_frag("power_spectrum", Map1D(
    n="len(re)",
    body=(
        "let acc_r = 0.0;\n"
        "let acc_i = 0.0;\n"
        "let n_1 = len(re);\n"
        f"let base = 0.0 - 2.0 * {_PI} * float(i) / float(n_1);\n"
        "for (t in 0..n_1) {\n"
        "    let ang = base * float(t);\n"
        "    let wr = cos(ang);\n"
        "    let wi = sin(ang);\n"
        "    acc_r += re[t] * wr - im[t] * wi;\n"
        "    acc_i += re[t] * wi + im[t] * wr;\n"
        "}\n"
        "power[i] = acc_r * acc_r + acc_i * acc_i;"
    ),
))
_frag("dft_real_signal", Map1D(
    n="len(x)",
    body=(
        "let acc_r = 0.0;\n"
        "let acc_i = 0.0;\n"
        "let n_1 = len(x);\n"
        f"let base = 0.0 - 2.0 * {_PI} * float(i) / float(n_1);\n"
        "for (t in 0..n_1) {\n"
        "    let ang = base * float(t);\n"
        "    acc_r += x[t] * cos(ang);\n"
        "    acc_i += x[t] * sin(ang);\n"
        "}\n"
        "out_re[i] = acc_r;\n"
        "out_im[i] = acc_i;"
    ),
))
_frag("cosine_transform", Map1D(
    n="len(x)",
    body=(
        "let acc = 0.0;\n"
        "let n_1 = len(x);\n"
        "for (t in 0..n_1) {\n"
        f"    acc += x[t] * cos({_PI} * float(i) * (float(t) + 0.5) "
        "/ float(n_1));\n"
        "}\n"
        "out[i] = acc;"
    ),
))


def fragment_for(problem_name: str) -> Shape:
    return FRAGMENTS[problem_name]
