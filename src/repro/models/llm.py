"""Simulated LLMs: deterministic, calibrated code generators.

For a given prompt, a model holds a finite latent pool of candidate
outputs (the way a real LLM at fixed weights has a small set of high-mass
completions).  Sampling draws candidates through a temperature-scaled
softmax over per-candidate logits — Equation (3) of the paper — whose
spread is the model's ``confidence``: at temperature 0.2 a confident model
emits its top candidate almost every time (which is exactly why the paper
sees CodeLlama-34B/GPT-4 repeat one output for most of 20 samples, hurting
pass@1 whenever that output is wrong), while temperature 0.8 spreads mass
across the pool, which is why pass@k grows with k and then plateaus
(Fig. 4): the pool is finite.

Every candidate materialises as *source text*: a solution-bank variant,
either intact (correct candidate), rewritten as a sequential fallback, or
passed through a real bug injector.  Nothing here decides correctness —
the harness does, by compiling and running the sample.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..bench.spec import Prompt
from .mutate import apply_bug, pessimize
from .profiles import ModelProfile, profile
from .solutions import Variant, variants_for

#: latent candidates per (model, prompt)
POOL = 12

#: pass@k plateau factor: real LLM completions are highly correlated, so
#: many attempts only modestly beat one attempt — the paper's Fig. 4 shows
#: Phind-V2 going from 32% pass@1 to 46% pass@20 (~1.45x).  A prompt is
#: "solvable" for a model with probability min(1, PLATEAU * p); within a
#: solvable prompt candidates are correct with probability p / solvable,
#: which preserves pass@1 = p exactly while capping pass@inf near the
#: plateau.
PLATEAU = 1.45

#: share of incorrect candidates that are sequential fallbacks (the
#: "ignored the parallel instruction" failure), vs injected bugs
P_SEQUENTIAL_FALLBACK = 0.22


@dataclass(frozen=True)
class Sample:
    """One generated completion."""

    source: str
    candidate: int           # latent pool index (diagnostics)
    intended: str            # "correct" | "fallback" | "bug"


def _prompt_seed(model_name: str, prompt_uid: str) -> int:
    digest = hashlib.sha256(f"{model_name}\x00{prompt_uid}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class SimulatedLLM:
    """A deterministic stand-in for one of the paper's seven models."""

    def __init__(self, name: str, profile_: Optional[ModelProfile] = None):
        self.name = name
        self.profile = profile_ if profile_ is not None else profile(name)

    # -- latent pool ---------------------------------------------------------------

    def _pool(self, prompt: Prompt) -> Tuple[List[Sample], np.ndarray]:
        """The candidate outputs this model 'knows' for this prompt, with
        their logits.  Both are a fixed property of (model, prompt) — a
        model at fixed weights has one output distribution; the sampling
        seed only chooses within it."""
        rng = np.random.default_rng(_prompt_seed(self.name, prompt.uid))
        p = self.profile.p_correct(prompt.model, prompt.problem.ptype)
        variants = variants_for(prompt.problem, prompt.model)
        qualities = np.array([v.quality for v in variants])
        weights = qualities ** self.profile.variant_bias(prompt.model)
        weights = weights / weights.sum()

        solvable_p = min(0.98, PLATEAU * p)
        solvable = rng.uniform() < solvable_p
        p_within = (p / solvable_p) if solvable else 0.0

        pool: List[Sample] = []
        for c in range(POOL):
            variant: Variant = variants[int(rng.choice(len(variants), p=weights))]
            if rng.uniform() < p_within:
                pool.append(Sample(variant.source, c, "correct"))
                continue
            if prompt.model != "serial" and rng.uniform() < P_SEQUENTIAL_FALLBACK:
                serial = variants_for(prompt.problem, "serial")[0]
                # re-render the serial body under this prompt's signature
                fallback = self._serial_fallback(prompt, serial)
                pool.append(Sample(fallback, c, "fallback"))
                continue
            mutated = apply_bug(variant.source, prompt.model, rng)
            if mutated is None:  # pragma: no cover - mutators cover all banks
                mutated = variant.source + "\nkernel __trailing_garbage("
            pool.append(Sample(mutated, c, "bug"))
        # correct-but-inefficient completions: low-discipline models pad
        # their (otherwise correct) code with redundant serial passes.
        # Drawn from an independent stream so earlier pools (and any cached
        # correctness results) are unaffected by this post-pass.
        if prompt.model not in ("cuda", "hip"):
            slop_rng = np.random.default_rng(
                _prompt_seed(self.name, prompt.uid) ^ 0x5105105105105105
            )
            bias = self.profile.variant_bias(prompt.model)
            p_slop = min(0.75, max(0.0, 0.55 - 0.17 * bias))
            for idx, sample in enumerate(pool):
                if sample.intended != "correct":
                    continue
                if slop_rng.uniform() < p_slop:
                    repeats = int(slop_rng.integers(1, 4))
                    slow = pessimize(sample.source, prompt.problem, repeats)
                    if slow is not None:
                        pool[idx] = Sample(slow, sample.candidate, "correct")
        logits = rng.normal(0.0, self.profile.confidence, size=len(pool))
        return pool, logits

    @staticmethod
    def _serial_fallback(prompt: Prompt, serial: Variant) -> str:
        """The serial solution re-signed for the prompt's execution model
        (GPU signatures carry the extra result buffer)."""
        src = serial.source
        old_sig = prompt.problem.signature("serial")
        new_sig = prompt.problem.signature(prompt.model)
        if old_sig in src and old_sig != new_sig:
            if prompt.model in ("cuda", "hip") and prompt.problem.ret is not None:
                # returns become writes into result[0] via a helper kernel
                name = prompt.problem.name
                params = ", ".join(f"{p.name}: {p.type}"
                                   for p in prompt.problem.params)
                args = ", ".join(p.name for p in prompt.problem.params)
                helper = src.replace(old_sig,
                                     f"kernel {name}_seq({params}) -> "
                                     f"{prompt.problem.ret} {{")
                return (helper + "\n" + new_sig
                        + f"\n    result[0] = {name}_seq({args});\n}}\n")
            return src.replace(old_sig, new_sig)
        return src

    # -- sampling -------------------------------------------------------------------

    def generate(self, prompt: Prompt, num_samples: int,
                 temperature: float = 0.2, seed: int = 0) -> List[Sample]:
        """Draw ``num_samples`` completions at the given temperature.

        Matches the paper's §7.1 configuration style: nucleus-style
        sampling is modelled by the finite pool (mass below the top-p
        cut-off never materialises); temperature rescales the candidate
        logits exactly as Equation (3) rescales token logits.
        """
        pool, logits = self._pool(prompt)
        rng = np.random.default_rng(
            (_prompt_seed(self.name, prompt.uid) ^ (seed * 0x9E3779B97F4A7C15))
            & 0xFFFFFFFFFFFFFFFF
        )
        scaled = logits / max(temperature, 1e-6)
        scaled -= scaled.max()
        probs = np.exp(scaled)
        probs /= probs.sum()
        picks = rng.choice(len(pool), size=num_samples, p=probs)
        return [pool[int(k)] for k in picks]


def load_model(name: str) -> SimulatedLLM:
    """Instantiate one of the paper's models by name (Table 2)."""
    return SimulatedLLM(name)


def all_models() -> Sequence[SimulatedLLM]:
    from .profiles import MODEL_ORDER

    return [SimulatedLLM(n) for n in MODEL_ORDER]
