"""Bug injection: turn a correct solution into the kinds of wrong code
LLMs actually emit.

Every mutator is a *real* source-to-source transformation — the resulting
text still goes through the full compile → link → usage-check → run →
validate pipeline, and whether the bug manifests as a build error, a data
race, a deadlock, a wrong answer or a timeout is decided by the harness,
not by the injector.  A mutator returns None when its pattern does not
occur in the given source, and the sampler falls back to another one.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional

import numpy as np

MutateFn = Callable[[str, np.random.Generator], Optional[str]]

_MUTATORS: Dict[str, MutateFn] = {}


def _mutator(name: str):
    def deco(fn: MutateFn) -> MutateFn:
        _MUTATORS[name] = fn
        return fn
    return deco


def _pick(matches: List, rng: np.random.Generator):
    return matches[int(rng.integers(0, len(matches)))]


# -- build-breaking bugs --------------------------------------------------------


@_mutator("syntax_drop_semicolon")
def _drop_semicolon(src: str, rng) -> Optional[str]:
    spots = [m.start() for m in re.finditer(r";", src)]
    if not spots:
        return None
    at = _pick(spots, rng)
    return src[:at] + src[at + 1:]


@_mutator("syntax_drop_brace")
def _drop_brace(src: str, rng) -> Optional[str]:
    spots = [m.start() for m in re.finditer(r"\}", src)]
    if not spots:
        return None
    at = _pick(spots, rng)
    return src[:at] + src[at + 1:]


@_mutator("type_confusion")
def _type_confusion(src: str, rng) -> Optional[str]:
    at = src.find("{")
    if at < 0:
        return None
    return src[:at + 1] + "\n    let mistake: int = 0.5;" + src[at + 1:]


@_mutator("unknown_api")
def _unknown_api(src: str, rng) -> Optional[str]:
    # hallucinated calls, a classic LLM failure on niche APIs
    calls = ["device_synchronize();", "omp_set_dynamic_teams(4);",
             "mpi_wait_all_requests();", "kokkos_fence_all();"]
    at = src.find("{")
    if at < 0:
        return None
    call = calls[int(rng.integers(0, len(calls)))]
    return src[:at + 1] + f"\n    {call}" + src[at + 1:]


@_mutator("undeclared_name")
def _undeclared_name(src: str, rng) -> Optional[str]:
    m = re.search(r"return (.+);", src)
    if m is None:
        at = src.rfind("}")
        return src[:at] + "    undefined_helper(0);\n" + src[at:]
    return src[:m.start(1)] + "answer_value" + src[m.end(1):]


# -- usage bugs -------------------------------------------------------------------


def make_sequential_fallback(serial_source: str) -> str:
    """The model ignored the parallel instruction and wrote serial code.

    The caller passes the serial variant's source re-rendered with the
    *target* model's signature; the sample builds and runs correctly but
    fails the parallel-usage check (paper §7.2), as GCC-compiled serial
    code would.
    """
    return serial_source


# -- synchronisation bugs -------------------------------------------------------------


@_mutator("drop_reduction_clause")
def _drop_reduction(src: str, rng) -> Optional[str]:
    out, n = re.subn(r" reduction\((?:\+|\*|min|max): \w+\)", "", src, count=1)
    return out if n else None


@_mutator("drop_atomic_pragma")
def _drop_atomic_pragma(src: str, rng) -> Optional[str]:
    out, n = re.subn(r"[ \t]*pragma omp atomic\n", "", src, count=1)
    return out if n else None


@_mutator("drop_critical")
def _drop_critical(src: str, rng) -> Optional[str]:
    out, n = re.subn(r"[ \t]*pragma omp critical\n", "", src, count=1)
    return out if n else None


@_mutator("atomic_to_plain")
def _atomic_to_plain(src: str, rng) -> Optional[str]:
    pat = re.compile(r"atomic_(add|min|max)\((\w+), ([^,]+), (.+?)\);")

    def repl(m: re.Match) -> str:
        op, arr, idx, val = m.groups()
        if op == "add":
            return f"{arr}[{idx}] += {val};"
        return f"{arr}[{idx}] = {op}({arr}[{idx}], {val});"

    out, n = pat.subn(repl, src)
    return out if n else None


@_mutator("inplace_stencil")
def _inplace_update(src: str, rng) -> Optional[str]:
    # write results back into the input array — the in-place-update race
    pairs = [("y[i] =", "x[i] ="), ("unew[i] =", "u[i] ="),
             ("out[i] =", "x[i] ="), ("ndist[v] =", "dist[v] =")]
    for old, new in pairs:
        if old in src:
            return src.replace(old, new)
    return None


# -- indexing / logic bugs ----------------------------------------------------------------


@_mutator("off_by_one_start")
def _off_by_one_start(src: str, rng) -> Optional[str]:
    out, n = re.subn(r"in 0\.\.", "in 1..", src, count=1)
    return out if n else None


@_mutator("off_by_one_end")
def _off_by_one_end(src: str, rng) -> Optional[str]:
    out, n = re.subn(r"\.\.len\((\w+)\)\)", r"..len(\1) - 1)", src, count=1)
    return out if n else None


@_mutator("flip_operator")
def _flip_operator(src: str, rng) -> Optional[str]:
    swaps = [(" + ", " - "), (" < ", " <= "), (" * ", " + "),
             ("min(", "max(")]
    candidates = [(a, b) for a, b in swaps if a in src]
    if not candidates:
        return None
    a, b = _pick(candidates, rng)
    spots = [m.start() for m in re.finditer(re.escape(a), src)]
    at = _pick(spots, rng)
    return src[:at] + b + src[at + len(a):]


@_mutator("drop_gpu_guard")
def _drop_gpu_guard(src: str, rng) -> Optional[str]:
    pat = re.compile(
        r"if \(i < [^\n{]+\) \{\n(.*?)\n(    )\}", re.DOTALL
    )
    m = pat.search(src)
    if m is None:
        return None
    inner = "\n".join(
        ln[4:] if ln.startswith("    ") else ln
        for ln in m.group(1).split("\n")
    )
    return src[:m.start()] + inner + src[m.end():]


@_mutator("wrong_identity")
def _wrong_identity(src: str, rng) -> Optional[str]:
    for lit in ("1e30", "-1e30", "0.0 - 1e30"):
        if f"= {lit};" in src:
            return src.replace(f"= {lit};", "= 0.0;", 1)
    return None


# -- MPI bugs ----------------------------------------------------------------------------------


@_mutator("mpi_rank_skew")
def _mpi_rank_skew(src: str, rng) -> Optional[str]:
    out, n = re.subn(r"let lo_r = rank \* chunk;",
                     "let lo_r = rank * chunk + 1;", src, count=1)
    return out if n else None


@_mutator("mpi_wrong_root")
def _mpi_wrong_root(src: str, rng) -> Optional[str]:
    pat = re.compile(r"(mpi_(?:reduce_float|reduce_int|reduce_array|"
                     r"gather_array|bcast_float|bcast_int|bcast_array|"
                     r"scatter_array)\([^;]*?), 0\)")
    out, n = pat.subn(r"\1, 1)", src, count=1)
    return out if n else None


@_mutator("mpi_collective_skew")
def _mpi_collective_skew(src: str, rng) -> Optional[str]:
    if "mpi_" not in src:
        return None
    at = src.find("{")
    return (src[:at + 1]
            + "\n    if (mpi_rank() == 0) {\n        mpi_barrier();\n    }"
            + src[at + 1:])


@_mutator("mpi_recv_deadlock")
def _mpi_recv_deadlock(src: str, rng) -> Optional[str]:
    if "mpi_" not in src:
        return None
    at = src.find("{")
    return (src[:at + 1]
            + "\n    let handshake = mpi_recv_float((mpi_rank() + 1) % mpi_size(), 99);"
            + src[at + 1:])


# -- pathological performance ---------------------------------------------------------------------


@_mutator("runaway_loop")
def _runaway_loop(src: str, rng) -> Optional[str]:
    at = src.find("{")
    return (src[:at + 1]
            + "\n    let spin = 0;\n    while (spin >= 0) {\n"
            "        spin += 1;\n    }"
            + src[at + 1:])


#: which mutators make sense for which execution model (beyond the
#: universal build/logic bugs)
_UNIVERSAL = [
    "syntax_drop_semicolon", "syntax_drop_brace", "type_confusion",
    "unknown_api", "undeclared_name", "off_by_one_start", "off_by_one_end",
    "flip_operator", "wrong_identity", "runaway_loop", "inplace_stencil",
]

_PER_MODEL = {
    "serial": [],
    "openmp": ["drop_reduction_clause", "drop_atomic_pragma", "drop_critical",
               "atomic_to_plain"],
    "kokkos": ["atomic_to_plain"],
    "mpi": ["mpi_rank_skew", "mpi_wrong_root", "mpi_collective_skew",
            "mpi_recv_deadlock"],
    "mpi+omp": ["mpi_rank_skew", "mpi_wrong_root", "mpi_collective_skew",
                "mpi_recv_deadlock", "drop_reduction_clause",
                "drop_atomic_pragma"],
    "cuda": ["drop_gpu_guard", "atomic_to_plain"],
    "hip": ["drop_gpu_guard", "atomic_to_plain"],
}

#: rare bugs get lower weight (timeouts are expensive to simulate, and
#: runaway generations are a small minority of real failures)
_WEIGHTS = {
    "runaway_loop": 0.15,
    "syntax_drop_brace": 0.5,
    "type_confusion": 0.7,
}


def mutator_names(exec_model: str) -> List[str]:
    return _UNIVERSAL + _PER_MODEL[exec_model]


def apply_bug(source: str, exec_model: str,
              rng: np.random.Generator) -> Optional[str]:
    """Apply one randomly chosen applicable bug; None if nothing applies."""
    names = list(mutator_names(exec_model))
    weights = np.array([_WEIGHTS.get(n, 1.0) for n in names])
    order = list(rng.choice(len(names), size=len(names), replace=False,
                            p=weights / weights.sum()))
    for k in order:
        mutated = _MUTATORS[names[k]](source, rng)
        if mutated is not None and mutated != source:
            return mutated
    return None


# ---------------------------------------------------------------------------
# pessimisation: correct-but-slow code (paper §8 RQ3)
# ---------------------------------------------------------------------------

def pessimize(source: str, problem, repeats: int = 1) -> Optional[str]:
    """Insert a redundant serial pass over the first array parameter at the
    top of the entry kernel.

    The result is still *correct* — it recomputes nothing and clobbers
    nothing — but adds O(n) sequential work before the parallel region,
    which Amdahl's law turns into a large efficiency loss.  This is the
    "correct yet inefficient" code shape behind the paper's finding that
    pass@1 leaders are not speedup leaders.  Not applied to GPU kernels
    (each thread would repeat the pass; the banks' thread0-serial variants
    already play that role there).
    """
    arr = next((q for q in problem.params if q.type.startswith("array")), None)
    if arr is None:
        return None
    marker = f"kernel {problem.name}("
    at = source.find(marker)
    if at < 0:
        return None
    brace = source.find("{", at)
    if brace < 0:
        return None
    if arr.type.startswith("array2d"):
        prelude = (
            f"\n    let warmup_pass = copy({arr.name});\n"
            f"    for (wr in 0..{repeats}) {{\n"
            f"        for (wi in 0..rows(warmup_pass)) {{\n"
            f"            for (wj in 0..cols(warmup_pass)) {{\n"
            f"                warmup_pass[wi, wj] = {arr.name}[wi, wj];\n"
            f"            }}\n"
            f"        }}\n"
            f"    }}"
        )
    else:
        prelude = (
            f"\n    let warmup_pass = copy({arr.name});\n"
            f"    for (wr in 0..{repeats}) {{\n"
            f"        for (wi in 0..len(warmup_pass)) {{\n"
            f"            warmup_pass[wi] = {arr.name}[wi];\n"
            f"        }}\n"
            f"    }}"
        )
    return source[:brace + 1] + prelude + source[brace + 1:]
