"""Simulated LLMs, their capability profiles, solution banks and bug
injectors (the stand-in for the paper's A100/OpenAI-API inference —
see DESIGN.md §2 for why the substitution preserves the harness)."""

from .llm import Sample, SimulatedLLM, all_models, load_model
from .profiles import MODEL_CARDS, MODEL_ORDER, PROFILES, ModelProfile, profile
from .solutions import Variant, bank, variants_for

__all__ = [
    "SimulatedLLM",
    "Sample",
    "load_model",
    "all_models",
    "ModelProfile",
    "profile",
    "PROFILES",
    "MODEL_CARDS",
    "MODEL_ORDER",
    "Variant",
    "bank",
    "variants_for",
]
