"""Shard execution: one worker pool + one journal per shard, with resume.

A shard runs the subset of a batch's merged task set that hashes to it
(:func:`repro.sched.plan.shard_for`), on its own
:class:`~repro.sched.pool.WorkerPool`, journaling every finished task to
a per-shard JSONL file *before* the corresponding event fires
(journal-then-notify, inherited from the pool).  If the shard's pool loop
dies — an injected ``serve.shard.die`` abort, a worker-init failure, any
unexpected exception — the runner reloads the journal and re-executes
only the remainder: the same resume path an interrupted CLI run uses,
now exercised per-shard inside a live service.

This function runs in an executor thread; everything it touches is
either thread-private (pool, journal, telemetry) or lock-protected
(the service metrics the caller merges into afterwards).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..faults import inject
from ..guard.health import GuardPolicy
from ..harness.runner import Runner
from ..sched.events import (
    EmitFn,
    SOURCE_CACHE,
    SOURCE_JOURNAL,
    SchedulerAbort,
    TaskFinished,
    Telemetry,
    chain,
)
from ..sched.journal import Journal, SampleCache
from ..sched.plan import TaskSpec
from ..sched.pool import WorkerPool
from ..sched.scheduler import TRANSIENT_STATUSES
from ..sched.worker import (
    execute_task,
    init_harness,
    quarantine_payload,
    valid_result,
)


@dataclass
class ShardResult:
    """Everything one shard run reports back to the batch."""

    shard: int
    results: Dict[str, dict] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)
    telemetry: Telemetry = field(default_factory=Telemetry)
    restarts: int = 0
    error: str = ""


def _death_probe(shard_id: int) -> EmitFn:
    """Event sink that consults the ``serve.shard.die`` injection point
    after a task finishes; a matching rule aborts the shard's pool loop
    (the journal already holds the task — journal-then-notify)."""
    key = f"shard{shard_id}"

    def probe(event: object) -> None:
        if isinstance(event, TaskFinished) and inject.ACTIVE is not None:
            rule = inject.ACTIVE.fire("serve.shard.die", key)
            if rule is not None:
                raise SchedulerAbort(f"injected shard death on {key}")

    return probe


def run_shard(shard_id: int,
              batch_key: str,
              specs: Dict[str, TaskSpec],
              journal_path: Path,
              runner: Runner,
              ptypes: Tuple[str, ...],
              models: Tuple[str, ...],
              jobs: int = 1,
              cache_dir: Optional[Path] = None,
              task_timeout: Optional[float] = 120.0,
              max_retries: int = 2,
              max_restarts: int = 2,
              emit: Optional[EmitFn] = None,
              guard: Optional[GuardPolicy] = None) -> ShardResult:
    """Execute one shard's tasks; survives pool-loop deaths via resume.

    Attempt 0 starts a fresh journal for ``batch_key``; every restart
    replays the journal first and executes only the remainder, so a
    shard death costs at most the tasks in flight when it died — never
    the work already committed.
    """
    out = ShardResult(shard=shard_id)
    telemetry = out.telemetry
    sink = chain(telemetry, emit)
    pool_sink = chain(sink, _death_probe(shard_id))
    cache = SampleCache(cache_dir) if cache_dir is not None else None
    journal = Journal(journal_path)
    try:
        for attempt in range(max_restarts + 1):
            if attempt:
                out.restarts += 1
                for task_id, payload in journal.load(batch_key).items():
                    if (task_id not in specs or task_id in out.results
                            or str(payload.get("status", ""))
                            in TRANSIENT_STATUSES):
                        continue
                    out.results[task_id] = payload
                    sink(TaskFinished(
                        task_id=task_id, kind=specs[task_id].kind,
                        source=SOURCE_JOURNAL,
                        status=str(payload.get("status", "")),
                        diagnostics=len(payload.get("diagnostics") or ())))
            journal.start(batch_key, fresh=(attempt == 0))

            for task_id, spec in specs.items():
                if task_id in out.results or cache is None:
                    continue
                hit = cache.get(task_id)
                if hit is not None:
                    out.results[task_id] = hit
                    journal.append(task_id, hit)
                    sink(TaskFinished(
                        task_id=task_id, kind=spec.kind, source=SOURCE_CACHE,
                        status=str(hit.get("status", "")),
                        diagnostics=len(hit.get("diagnostics") or ())))

            remaining = [t for t in specs if t not in out.results]
            if not remaining:
                out.error = ""
                return out

            def on_result(task_id: str, payload: dict) -> None:
                if str(payload.get("status", "")) in TRANSIENT_STATUSES:
                    return              # never persist infra failures
                journal.append(task_id, payload)
                if cache is not None:
                    cache.put(task_id, payload)

            pool = WorkerPool(
                jobs=jobs, work_fn=execute_task, init_fn=init_harness,
                init_args=(runner, tuple(ptypes), tuple(models)),
                task_timeout=task_timeout, max_retries=max_retries,
                emit=pool_sink, validate=valid_result,
                guard=guard, quarantine=quarantine_payload)
            try:
                executed, failed = pool.run(
                    [(t, specs[t].payload()) for t in remaining],
                    on_result=on_result)
            except Exception as exc:    # noqa: BLE001 - shard loop death
                out.error = f"{type(exc).__name__}: {exc}"
                journal.close()         # next attempt reloads + reopens
                continue
            out.results.update(executed)
            out.failures.update(failed)
            out.error = ""
            return out
        # restarts exhausted: salvage whatever the journal committed so
        # the batch loses only the genuinely unfinished tasks
        for task_id, payload in journal.load(batch_key).items():
            if (task_id in specs and task_id not in out.results
                    and str(payload.get("status", ""))
                    not in TRANSIENT_STATUSES):
                out.results[task_id] = payload
        return out
    finally:
        journal.close()


__all__ = ["ShardResult", "run_shard"]
