"""Shard execution: one worker pool + one journal per shard, with resume.

A shard runs the subset of a batch's merged task set that hashes to it
(:func:`repro.sched.plan.shard_for`), on its own
:class:`~repro.sched.pool.WorkerPool`, journaling every finished task to
a per-shard JSONL file *before* the corresponding event fires
(journal-then-notify, inherited from the pool).  If the shard's pool loop
dies — an injected ``serve.shard.die`` abort, a worker-init failure, any
unexpected exception — the runner reloads the journal and re-executes
only the remainder: the same resume path an interrupted CLI run uses,
now exercised per-shard inside a live service.

This function runs in an executor thread; everything it touches is
either thread-private (pool, journal, telemetry) or lock-protected
(the service metrics the caller merges into afterwards).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, Optional, Sequence, Set, Tuple

from ..faults import inject
from ..guard.health import GuardPolicy
from ..harness.runner import Runner
from ..sched.events import (
    EmitFn,
    SOURCE_CACHE,
    SOURCE_JOURNAL,
    SchedulerAbort,
    TaskFinished,
    Telemetry,
    chain,
)
from ..sched.journal import Journal, SampleCache
from ..sched.plan import TaskSpec
from ..sched.pool import WorkerPool
from ..sched.scheduler import TRANSIENT_STATUSES
from ..sched.worker import (
    execute_task,
    init_harness,
    quarantine_payload,
    valid_result,
)


class TaskBoard:
    """Shared work-stealing board over one batch's shard partition.

    Each shard owns a queue (its LPT-packed partition, longest-first)
    and *claims* tasks one at a time through its pool's feed callback.
    A shard whose own queue drains steals from the **deepest** surviving
    queue (ties broken by lowest shard id), front-first — the front
    holds the longest remaining task, so a steal moves the most load.
    Only queued, not-yet-started work moves; a task in flight on another
    shard is never duplicated by the board (hedging stays the pool's
    job, within a shard).

    Stealing is byte-identical by the same argument as dispatch order:
    every copy of a task computes identical judged content, and
    ``assemble`` rebuilds each run in plan order, so *where* a task ran
    is unobservable in the output.  :meth:`release` returns a dead
    shard's claimed-but-unsettled tasks to its queue so a restart (or a
    stealing sibling) can pick them up.
    """

    def __init__(self, parts: Dict[int, Dict[str, TaskSpec]]):
        self._lock = threading.Lock()
        #: merged task id -> spec over every queue (journal replay on a
        #: restart must accept stolen tasks, not just home ones)
        self.specs: Dict[str, TaskSpec] = {}
        self._queues: Dict[int, Deque[str]] = {}
        self._claimed: Dict[int, Set[str]] = {}
        self.steals = 0
        for shard_id, part in parts.items():
            self.specs.update(part)
            self._queues[shard_id] = deque(part)
            self._claimed[shard_id] = set()

    def claim(self, shard_id: int) -> Optional[Tuple[str, TaskSpec]]:
        """Pop one task for ``shard_id`` (own queue, else steal), or
        None when every queue is empty."""
        with self._lock:
            queue = self._queues.get(shard_id)
            if queue is None:               # unknown claimant: steal-only
                queue = self._queues.setdefault(shard_id, deque())
                self._claimed.setdefault(shard_id, set())
            if not queue:
                victim = max(self._queues,
                             key=lambda s: (len(self._queues[s]), -s))
                if not self._queues[victim]:
                    return None
                queue = self._queues[victim]
                self.steals += 1
            task_id = queue.popleft()
            self._claimed[shard_id].add(task_id)
            return task_id, self.specs[task_id]

    def release(self, shard_id: int, settled: Set[str]) -> None:
        """Return ``shard_id``'s claimed-but-unsettled tasks to its own
        queue (front, sorted — deterministic) after a pool-loop death."""
        with self._lock:
            claimed = self._claimed.get(shard_id, set())
            back = sorted(tid for tid in claimed if tid not in settled)
            for tid in reversed(back):
                self._queues[shard_id].appendleft(tid)
            claimed.clear()

    def depth(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._queues.values())


@dataclass
class ShardResult:
    """Everything one shard run reports back to the batch."""

    shard: int
    results: Dict[str, dict] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)
    telemetry: Telemetry = field(default_factory=Telemetry)
    restarts: int = 0
    error: str = ""


def _death_probe(shard_id: int) -> EmitFn:
    """Event sink that consults the ``serve.shard.die`` injection point
    after a task finishes; a matching rule aborts the shard's pool loop
    (the journal already holds the task — journal-then-notify)."""
    key = f"shard{shard_id}"

    def probe(event: object) -> None:
        if isinstance(event, TaskFinished) and inject.ACTIVE is not None:
            rule = inject.ACTIVE.fire("serve.shard.die", key)
            if rule is not None:
                raise SchedulerAbort(f"injected shard death on {key}")

    return probe


def run_shard(shard_id: int,
              batch_key: str,
              specs: Dict[str, TaskSpec],
              journal_path: Path,
              runner: Runner,
              ptypes: Tuple[str, ...],
              models: Tuple[str, ...],
              jobs: int = 1,
              cache_dir: Optional[Path] = None,
              task_timeout: Optional[float] = 120.0,
              max_retries: int = 2,
              max_restarts: int = 2,
              emit: Optional[EmitFn] = None,
              guard: Optional[GuardPolicy] = None,
              board: Optional[TaskBoard] = None,
              predictions: Optional[Dict[str, Tuple[float, str]]] = None,
              hedge_seed: Sequence[float] = ()) -> ShardResult:
    """Execute one shard's tasks; survives pool-loop deaths via resume.

    Attempt 0 starts a fresh journal for ``batch_key``; every restart
    replays the journal first and executes only the remainder, so a
    shard death costs at most the tasks in flight when it died — never
    the work already committed.

    With a :class:`TaskBoard`, ``specs`` is only the shard's *home*
    partition: tasks are pulled one at a time through the pool's feed
    callback (own queue first, then stolen from the deepest sibling),
    so a shard that drains early keeps working instead of idling behind
    a skewed partition.  ``predictions`` and ``hedge_seed`` thread the
    cost-predictive dispatch state (:mod:`repro.sched.predict`) into
    the shard's pool.
    """
    out = ShardResult(shard=shard_id)
    telemetry = out.telemetry
    sink = chain(telemetry, emit)
    pool_sink = chain(sink, _death_probe(shard_id))
    cache = SampleCache(cache_dir) if cache_dir is not None else None
    journal = Journal(journal_path)
    #: replay must accept every task this shard *may* have run — with a
    #: board that includes stolen tasks, not just the home partition
    known = board.specs if board is not None else specs
    try:
        for attempt in range(max_restarts + 1):
            if attempt:
                out.restarts += 1
                for task_id, payload in journal.load(batch_key).items():
                    if (task_id not in known or task_id in out.results
                            or str(payload.get("status", ""))
                            in TRANSIENT_STATUSES):
                        continue
                    out.results[task_id] = payload
                    sink(TaskFinished(
                        task_id=task_id, kind=known[task_id].kind,
                        source=SOURCE_JOURNAL,
                        status=str(payload.get("status", "")),
                        diagnostics=len(payload.get("diagnostics") or ())))
                if board is not None:
                    # claimed-but-unsettled tasks go back on the queue
                    board.release(shard_id, set(out.results))
            journal.start(batch_key, fresh=(attempt == 0))

            if board is None:
                for task_id, spec in specs.items():
                    if task_id in out.results or cache is None:
                        continue
                    hit = cache.get(task_id)
                    if hit is not None:
                        out.results[task_id] = hit
                        journal.append(task_id, hit)
                        sink(TaskFinished(
                            task_id=task_id, kind=spec.kind,
                            source=SOURCE_CACHE,
                            status=str(hit.get("status", "")),
                            diagnostics=len(hit.get("diagnostics") or ())))

                remaining = [t for t in specs if t not in out.results]
                if not remaining:
                    out.error = ""
                    return out

            def on_result(task_id: str, payload: dict) -> None:
                if str(payload.get("status", "")) in TRANSIENT_STATUSES:
                    return              # never persist infra failures
                journal.append(task_id, payload)
                if cache is not None:
                    cache.put(task_id, payload)

            def feed() -> Optional[Tuple[str, dict]]:
                """Claim the next task (cache hits settle in-line)."""
                while True:
                    claimed = board.claim(shard_id)
                    if claimed is None:
                        return None
                    task_id, spec = claimed
                    if task_id in out.results:
                        continue        # settled by an earlier attempt
                    if cache is not None:
                        hit = cache.get(task_id)
                        if hit is not None:
                            out.results[task_id] = hit
                            journal.append(task_id, hit)
                            sink(TaskFinished(
                                task_id=task_id, kind=spec.kind,
                                source=SOURCE_CACHE,
                                status=str(hit.get("status", "")),
                                diagnostics=len(
                                    hit.get("diagnostics") or ())))
                            continue
                    return task_id, spec.payload()

            pool = WorkerPool(
                jobs=jobs, work_fn=execute_task, init_fn=init_harness,
                init_args=(runner, tuple(ptypes), tuple(models)),
                task_timeout=task_timeout, max_retries=max_retries,
                emit=pool_sink, validate=valid_result,
                guard=guard, quarantine=quarantine_payload)
            try:
                if board is not None:
                    executed, failed = pool.run(
                        [], on_result=on_result, feed=feed,
                        predictions=predictions, hedge_seed=hedge_seed,
                        on_drain=journal.commit)
                else:
                    executed, failed = pool.run(
                        [(t, specs[t].payload()) for t in remaining],
                        on_result=on_result,
                        predictions=predictions, hedge_seed=hedge_seed,
                        on_drain=journal.commit)
            except Exception as exc:    # noqa: BLE001 - shard loop death
                out.error = f"{type(exc).__name__}: {exc}"
                journal.close()         # next attempt reloads + reopens
                continue
            out.results.update(executed)
            out.failures.update(failed)
            if board is not None:
                board.release(shard_id,
                              set(out.results) | set(out.failures))
            out.error = ""
            return out
        # restarts exhausted: salvage whatever the journal committed so
        # the batch loses only the genuinely unfinished tasks
        for task_id, payload in journal.load(batch_key).items():
            if (task_id in known and task_id not in out.results
                    and str(payload.get("status", ""))
                    not in TRANSIENT_STATUSES):
                out.results[task_id] = payload
        if board is not None:
            board.release(shard_id, set(out.results) | set(out.failures))
        return out
    finally:
        journal.close()


__all__ = ["ShardResult", "TaskBoard", "run_shard"]
