"""Clients for the evaluation service.

Two flavours, one protocol:

* :class:`ServiceClient` talks to an in-process :class:`EvalService`
  directly — no sockets, no serialisation of the run payload.  The load
  and differential tests use it because it removes HTTP from the
  equation while exercising the identical admission/batching path.
* :func:`http_request` is a tiny asyncio-streams HTTP/1.1 helper (again:
  no new dependencies) that the HTTP tests and the smoke command use to
  drive a live server; :class:`HttpClient` wraps it with the service's
  route shapes.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from ..harness.evaluate import EvalRun
from .service import DONE, EvalRequest, EvalService, RequestTicket


class RequestFailed(Exception):
    """The service retired the request without a result."""

    def __init__(self, ticket: RequestTicket):
        super().__init__(f"{ticket.id} {ticket.status}: {ticket.error}")
        self.ticket = ticket


class ServiceClient:
    """Direct in-process client for an :class:`EvalService`."""

    def __init__(self, service: EvalService):
        self.service = service

    def submit(self, request: EvalRequest) -> str:
        """Admit a request; returns its id.  Raises what submit raises
        (:class:`Overloaded`, :class:`ServiceClosed`)."""
        return self.service.submit(request).id

    async def wait(self, request_id: str) -> RequestTicket:
        return await self.service.wait(request_id)

    async def result(self, request_id: str) -> EvalRun:
        """Wait for the request and return its run; raises
        :class:`RequestFailed` on expiry/failure."""
        ticket = await self.wait(request_id)
        if ticket.status != DONE or ticket.run is None:
            raise RequestFailed(ticket)
        return ticket.run

    async def evaluate(self, request: EvalRequest) -> EvalRun:
        """Submit and wait — one round trip."""
        return await self.result(self.submit(request))


async def http_request(host: str, port: int, method: str, path: str,
                       body: Optional[bytes] = None,
                       timeout: float = 60.0
                       ) -> Tuple[int, Dict[str, str], bytes]:
    """One HTTP/1.1 exchange over asyncio streams.

    Returns ``(status, headers, body)`` with header names lower-cased.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = body or b""
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode("ascii") + payload)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    header_blob, _, body_out = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body_out


class HttpClient:
    """Convenience wrapper speaking the service's HTTP routes."""

    def __init__(self, host: str, port: int, poll_interval: float = 0.05):
        self.host = host
        self.port = port
        self.poll_interval = poll_interval

    async def submit(self, request_body: Dict[str, object]
                     ) -> Tuple[int, Dict[str, str], Dict[str, object]]:
        status, headers, body = await http_request(
            self.host, self.port, "POST", "/v1/eval",
            json.dumps(request_body).encode("utf-8"))
        return status, headers, json.loads(body or b"{}")

    async def status(self, request_id: str) -> Dict[str, object]:
        _, _, body = await http_request(
            self.host, self.port, "GET", f"/v1/requests/{request_id}")
        return json.loads(body)

    async def poll_until_done(self, request_id: str,
                              timeout: float = 300.0) -> Dict[str, object]:
        async def _poll():
            while True:
                snap = await self.status(request_id)
                if snap.get("status") in ("done", "failed", "expired"):
                    return snap
                await asyncio.sleep(self.poll_interval)
        return await asyncio.wait_for(_poll(), timeout=timeout)

    async def result(self, request_id: str
                     ) -> Tuple[int, Dict[str, str], bytes]:
        return await http_request(
            self.host, self.port, "GET",
            f"/v1/requests/{request_id}/result")

    async def metrics(self) -> Dict[str, object]:
        _, _, body = await http_request(self.host, self.port, "GET",
                                        "/metrics")
        return json.loads(body)


__all__ = ["HttpClient", "RequestFailed", "ServiceClient", "http_request"]
