"""The asynchronous evaluation service: admission, batching, shard fan-out.

:class:`EvalService` is the in-process core the HTTP front end
(:mod:`repro.serve.http`) wraps.  Lifecycle of one request:

1. **Admission** (:meth:`EvalService.submit`, synchronous): validate,
   reject with :class:`Overloaded` when the bounded queue is full (the
   HTTP layer turns that into ``429`` + ``Retry-After``), otherwise
   enqueue a :class:`RequestTicket`.
2. **Batching** (:meth:`EvalService._batch_loop`): the loop takes the
   oldest queued ticket, then keeps collecting until ``batch_window``
   seconds pass or ``max_batch`` requests are in hand.
3. **Execution** (:meth:`EvalService._run_batch`): expired-while-queued
   tickets are retired; the rest are planned, their task sets merged by
   content hash (:mod:`repro.serve.batcher`), partitioned across shards,
   and executed on per-shard worker pools with per-shard resume journals
   (:mod:`repro.serve.shards`) in executor threads — the event loop stays
   responsive for status polls throughout.
4. **Demultiplexing**: each ticket's :class:`~repro.harness.evaluate.EvalRun`
   is reassembled from the shared result map through its own plan, so a
   served run is byte-identical to a direct ``evaluate_model`` call.

Graceful shutdown (:meth:`EvalService.shutdown` with ``drain=True``)
closes admission, finishes every accepted request, then stops; nothing
accepted is ever dropped.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..bench.spec import EXECUTION_MODELS, PROBLEM_TYPES
from ..guard import BreakerBoard, GuardPolicy
from ..harness.evaluate import EvalRun
from ..harness.runner import Runner
from ..models import MODEL_ORDER
from ..prof import run_cost_totals
from ..sched.events import SOURCE_EXECUTED, TaskFinished, Telemetry
from ..sched.plan import Plan, assemble
from ..sched.predict import DurationLedger, plan_keys, predict_plan
from ..sched.worker import failure_payload
from .batcher import batch_key, partition_tasks, plan_batch, union_tasks
from .metrics import ServiceMetrics
from .shards import TaskBoard, run_shard

#: ledger key tracking whole-batch wall time across service restarts —
#: warm-starts the Retry-After EMA before the first batch completes
BATCH_EMA_KEY = "serve|batch||wall"

#: ticket lifecycle states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
EXPIRED = "expired"
TERMINAL = frozenset({DONE, FAILED, EXPIRED})


class Overloaded(Exception):
    """Admission rejected: the queue is full.  Carries the back-off hint
    the HTTP layer surfaces as ``Retry-After``."""

    def __init__(self, retry_after: int):
        super().__init__(f"service overloaded; retry after {retry_after}s")
        self.retry_after = retry_after


class ServiceClosed(Exception):
    """Admission rejected: the service is shutting down."""


@dataclass(frozen=True)
class EvalRequest:
    """One validated evaluation request."""

    model: str
    ptypes: Tuple[str, ...] = ()
    exec_models: Tuple[str, ...] = ()
    samples: int = 1
    temperature: float = 0.2
    with_timing: bool = False
    seed: int = 1234
    profile: bool = False
    #: seconds the client is willing to wait in the queue; a request
    #: still queued past its deadline is retired as ``expired`` without
    #: ever executing (a *running* request always finishes)
    deadline: Optional[float] = None

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "EvalRequest":
        """Validate a JSON request body; raises ``ValueError`` (HTTP 400)."""
        if not isinstance(raw, dict):
            raise ValueError("request body must be a JSON object")
        known = {"model", "ptypes", "exec", "exec_models", "samples",
                 "temperature", "timing", "with_timing", "seed", "profile",
                 "deadline"}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ValueError(f"unknown request fields: {unknown}")
        model = raw.get("model")
        if not isinstance(model, str) or model not in MODEL_ORDER:
            raise ValueError(f"model must be one of {list(MODEL_ORDER)}")
        ptypes = tuple(raw.get("ptypes") or ())
        for pt in ptypes:
            if pt not in PROBLEM_TYPES:
                raise ValueError(f"unknown problem type {pt!r}; "
                                 f"known: {list(PROBLEM_TYPES)}")
        exec_models = tuple(raw.get("exec_models") or raw.get("exec") or ())
        for m in exec_models:
            if m not in EXECUTION_MODELS:
                raise ValueError(f"unknown execution model {m!r}; "
                                 f"known: {list(EXECUTION_MODELS)}")
        samples = raw.get("samples", 1)
        if not isinstance(samples, int) or isinstance(samples, bool) \
                or samples < 1:
            raise ValueError("samples must be a positive integer")
        with_timing = bool(raw.get("with_timing", raw.get("timing", False)))
        profile = bool(raw.get("profile", False))
        if profile and not with_timing:
            raise ValueError("profile requires timing")
        deadline = raw.get("deadline")
        if deadline is not None:
            deadline = float(deadline)
            if deadline <= 0:
                raise ValueError("deadline must be positive seconds")
        return cls(model=model, ptypes=ptypes, exec_models=exec_models,
                   samples=samples,
                   temperature=float(raw.get("temperature", 0.2)),
                   with_timing=with_timing,
                   seed=int(raw.get("seed", 1234)),
                   profile=profile, deadline=deadline)


@dataclass
class RequestTicket:
    """One admitted request's mutable lifecycle record."""

    id: str
    request: EvalRequest
    status: str = QUEUED
    created: float = 0.0            # monotonic admission time
    started: float = 0.0            # monotonic execution start
    finished: float = 0.0
    error: str = ""
    run: Optional[EvalRun] = None
    plan: Optional[Plan] = None
    done: asyncio.Event = field(default_factory=asyncio.Event)

    def expired_deadline(self, now: float) -> bool:
        d = self.request.deadline
        return d is not None and (now - self.created) > d

    def snapshot(self) -> Dict[str, object]:
        """JSON-able status view (``GET /v1/requests/{id}``)."""
        out: Dict[str, object] = {
            "id": self.id,
            "status": self.status,
            "model": self.request.model,
            "samples": self.request.samples,
        }
        if self.status in TERMINAL:
            out["wait_seconds"] = ((self.started or self.finished)
                                   - self.created)
            if self.started:
                out["run_seconds"] = self.finished - self.started
        if self.error:
            out["error"] = self.error
        if self.run is not None:
            out["digest"] = self.run.digest()
        return out


class EvalService:
    """Async batched evaluation service over sharded worker pools."""

    def __init__(self,
                 workdir: Path,
                 runner: Optional[Runner] = None,
                 shards: int = 2,
                 jobs_per_shard: int = 1,
                 max_queue: int = 64,
                 batch_window: float = 0.05,
                 max_batch: int = 16,
                 batching: bool = True,
                 sample_cache: bool = True,
                 task_timeout: Optional[float] = 120.0,
                 max_retries: int = 2,
                 max_shard_restarts: int = 2,
                 vectorize: bool = True,
                 hedging: bool = True,
                 breaker_threshold: int = 2,
                 breaker_cooldown: int = 2,
                 retry_after_cap: float = 60.0,
                 dispatch: str = "lpt"):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if dispatch not in ("lpt", "fifo"):
            raise ValueError(
                f"dispatch must be 'lpt' or 'fifo', got {dispatch!r}")
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        # an explicit runner wins; otherwise the vectorize toggle picks
        # the execution tier for the default runner (results identical
        # either way — the tier only changes interpreter throughput)
        self.runner = (runner if runner is not None
                       else Runner(vectorize=vectorize))
        self.vectorize = self.runner.vectorize
        self.shards = shards
        self.jobs_per_shard = jobs_per_shard
        self.max_queue = max_queue
        self.batch_window = batch_window
        self.max_batch = max_batch if batching else 1
        self.batching = batching
        self.cache_dir = (self.workdir / "cache") if sample_cache else None
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.max_shard_restarts = max_shard_restarts
        #: supervision policy for the shard pools (quarantine always on;
        #: hedging is the observable-throughput toggle)
        self.guard = GuardPolicy(hedge=hedging)
        #: per-shard circuit breakers: a shard that exhausts its restart
        #: budget twice in a row stops receiving work until a half-open
        #: probe (after ``breaker_cooldown`` batches) succeeds
        self.breakers = BreakerBoard(shards,
                                     failure_threshold=breaker_threshold,
                                     cooldown=breaker_cooldown)
        #: ``"lpt"`` (default): cost-balanced shard partitions + the
        #: work-stealing TaskBoard + longest-first pool dispatch;
        #: ``"fifo"``: the legacy hash partition, no board — the
        #: differential-testing foil (results byte-identical either way)
        self.dispatch = dispatch
        #: durable wall-time history shared by every batch; feeds shard
        #: balancing, pool dispatch, hedge warm-start, and Retry-After
        self.ledger = DurationLedger(self.workdir / "durations.jsonl")
        self.metrics = ServiceMetrics(shards, retry_after_cap=retry_after_cap)
        warm = self.ledger.predict(BATCH_EMA_KEY)
        if warm is not None:
            self.metrics.seed_ema(warm)
        #: run-level telemetry aggregate, folded from per-shard sinks
        self.telemetry = Telemetry()
        self.tickets: Dict[str, RequestTicket] = {}
        self._ids = itertools.count(1)
        self._queue: asyncio.Queue = asyncio.Queue()
        self._inflight = 0              # admitted, not yet terminal
        self._running = 0               # tickets currently executing
        self._closed = False
        self._gate = asyncio.Event()    # cleared by pause()
        self._gate.set()
        self._loop_task: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self._loop_task is not None:
            raise RuntimeError("service already started")
        # +1 thread so batch planning never waits behind shard execution
        self._executor = ThreadPoolExecutor(
            max_workers=self.shards + 1, thread_name_prefix="repro-serve")
        self._loop_task = asyncio.get_running_loop().create_task(
            self._batch_loop())

    async def shutdown(self, drain: bool = True) -> None:
        """Close admission; with ``drain`` finish every accepted request
        first, otherwise retire still-queued tickets as failed."""
        self._closed = True
        if drain:
            self._gate.set()            # a paused service still drains
            for ticket in list(self.tickets.values()):
                await ticket.done.wait()
        if self._loop_task is not None:
            self._loop_task.cancel()
            try:
                await self._loop_task
            except asyncio.CancelledError:
                pass
            self._loop_task = None
        while not self._queue.empty():  # drain=False leftovers
            ticket = self._queue.get_nowait()
            if ticket.status == QUEUED:
                self._finish(ticket, FAILED, error="service shut down")
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.ledger.close()

    def pause(self) -> None:
        """Stop dispatching batches (admission stays open; for tests)."""
        self._gate.clear()

    def resume(self) -> None:
        self._gate.set()

    @property
    def state(self) -> str:
        if self._closed:
            return "closing"
        if not self._gate.is_set():
            return "paused"
        return "running"

    # -- admission -----------------------------------------------------------

    def submit(self, request: EvalRequest) -> RequestTicket:
        """Admit a request (synchronous, called from the event loop).

        Raises :class:`ServiceClosed` after shutdown began and
        :class:`Overloaded` when ``max_queue`` requests are in flight.
        """
        if self._closed:
            self.metrics.record_admission(False)
            raise ServiceClosed("service is shutting down")
        if self._inflight >= self.max_queue:
            self.metrics.record_admission(False)
            raise Overloaded(self.metrics.retry_after(
                self._inflight, open_breakers=self.breakers.open_count()))
        ticket = RequestTicket(id=f"req-{next(self._ids):06d}",
                               request=request, created=time.monotonic())
        self.tickets[ticket.id] = ticket
        self._inflight += 1
        self.metrics.record_admission(True)
        self._queue.put_nowait(ticket)
        return ticket

    def get(self, request_id: str) -> Optional[RequestTicket]:
        return self.tickets.get(request_id)

    async def wait(self, request_id: str) -> RequestTicket:
        ticket = self.tickets[request_id]
        await ticket.done.wait()
        return ticket

    def metrics_snapshot(self) -> Dict[str, object]:
        return self.metrics.snapshot(queue_depth=self._queue.qsize(),
                                     running=self._running,
                                     state=self.state,
                                     breakers=self.breakers.states())

    # -- batching loop -------------------------------------------------------

    async def _batch_loop(self) -> None:
        while True:
            await self._gate.wait()
            first = await self._queue.get()
            if not self._gate.is_set():
                # paused between get() and dispatch: requeue and wait
                self._queue.put_nowait(first)
                continue
            batch = [first]
            deadline = time.monotonic() + self.batch_window
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(
                        self._queue.get(), timeout=remaining))
                except asyncio.TimeoutError:
                    break
            try:
                await self._run_batch(batch)
            except Exception as exc:    # noqa: BLE001 - keep the loop alive
                for ticket in batch:
                    if ticket.status not in TERMINAL:
                        self._finish(ticket, FAILED,
                                     error=f"{type(exc).__name__}: {exc}")

    async def _run_batch(self, batch: List[RequestTicket]) -> None:
        now = time.monotonic()
        live: List[RequestTicket] = []
        for ticket in batch:
            if ticket.expired_deadline(now):
                self._finish(ticket, EXPIRED,
                             error="deadline expired while queued")
            else:
                ticket.status = RUNNING
                ticket.started = now
                self._running += 1
                live.append(ticket)
        if not live:
            return
        try:
            await self._execute(live)
        finally:
            self._running -= len(live)

    async def _execute(self, live: List[RequestTicket]) -> None:
        loop = asyncio.get_running_loop()
        t0 = time.monotonic()
        plans, ptypes, models = await loop.run_in_executor(
            self._executor, plan_batch,
            [t.request for t in live], self.runner)
        for ticket, plan in zip(live, plans):
            ticket.plan = plan
        union = union_tasks(plans)
        key = batch_key(union)
        # cost predictions: ledger EMA where warm, static estimate where
        # cold — drive shard balancing, pool dispatch, hedge warm-start
        task_keys: Dict[str, str] = {}
        predictions: Dict[str, Tuple[float, str]] = {}
        for plan in plans:
            task_keys.update(plan_keys(plan))
            predictions.update(predict_plan(plan, self.runner, self.ledger))
        balanced = self.dispatch == "lpt"
        parts = partition_tasks(union, self.shards,
                                predictions if balanced else None)
        # breaker clock: one tick per batch — a count, not a wall clock,
        # so the open -> half-open schedule replays deterministically
        self.breakers.tick()
        routed: Dict[int, dict] = {}
        for home, specs in enumerate(parts):
            if not specs:
                continue
            routed.setdefault(self.breakers.route(home), {}).update(specs)
        board = TaskBoard(routed) if balanced else None
        hedge_seed = (self.ledger.seed_durations(task_keys.values())
                      if balanced else ())

        def observe(event: object) -> None:
            # executor threads report here; the ledger locks internally
            if (isinstance(event, TaskFinished)
                    and event.source == SOURCE_EXECUTED
                    and event.task_id in task_keys):
                self.ledger.observe(task_keys[event.task_id],
                                    event.duration)

        shard_runs = [
            loop.run_in_executor(
                self._executor, self._run_one_shard, shard, key, specs,
                ptypes, models, board, predictions, hedge_seed, observe)
            for shard, specs in sorted(routed.items())
        ]
        results: Dict[str, dict] = {}
        failures: Dict[str, str] = {}
        for shard_result in await asyncio.gather(*shard_runs):
            self.breakers.record(shard_result.shard,
                                 shard_result.error == "")
            results.update(shard_result.results)
            failures.update(shard_result.failures)
            self.metrics.record_shard(shard_result.shard,
                                      shard_result.telemetry,
                                      restarts=shard_result.restarts)
            self.telemetry.merge(shard_result.telemetry)
        for task_id, spec in union.items():
            if task_id not in results:
                detail = failures.get(
                    task_id, "shard lost the task (restarts exhausted)")
                results[task_id] = failure_payload(spec.kind, detail)
        wall = time.monotonic() - t0
        self.metrics.record_batch(
            requests=len(live),
            planned=sum(len(p.tasks) for p in plans),
            unique=len(union),
            wall_seconds=wall)
        if board is not None:
            self.metrics.record_steals(board.steals)
        self.ledger.observe(BATCH_EMA_KEY, wall)
        self.ledger.flush()
        for ticket in live:
            try:
                run = assemble(ticket.plan, results)
            except Exception as exc:    # noqa: BLE001 - per-ticket isolation
                self._finish(ticket, FAILED,
                             error=f"assemble: {type(exc).__name__}: {exc}")
                continue
            ticket.run = run
            if ticket.request.profile:
                self.metrics.record_profile(run_cost_totals(run))
            self._finish(ticket, DONE)

    def _run_one_shard(self, shard_id: int, key: str, specs,
                       ptypes: Tuple[str, ...], models: Tuple[str, ...],
                       board=None, predictions=None, hedge_seed=(),
                       emit=None):
        return run_shard(
            shard_id, key, specs,
            journal_path=self.workdir / f"shard-{shard_id}.journal.jsonl",
            runner=self.runner, ptypes=ptypes, models=models,
            jobs=self.jobs_per_shard, cache_dir=self.cache_dir,
            task_timeout=self.task_timeout, max_retries=self.max_retries,
            max_restarts=self.max_shard_restarts, guard=self.guard,
            emit=emit, board=board, predictions=predictions,
            hedge_seed=hedge_seed)

    def _finish(self, ticket: RequestTicket, status: str,
                error: str = "") -> None:
        ticket.status = status
        ticket.error = error
        ticket.finished = time.monotonic()
        self._inflight -= 1
        wait_s = (ticket.started or ticket.finished) - ticket.created
        run_s = (ticket.finished - ticket.started) if ticket.started else None
        self.metrics.record_terminal(status, wait_s=wait_s, run_s=run_s)
        ticket.done.set()


__all__ = ["DONE", "EXPIRED", "EvalRequest", "EvalService", "FAILED",
           "Overloaded", "QUEUED", "RUNNING", "RequestTicket",
           "ServiceClosed", "TERMINAL"]
