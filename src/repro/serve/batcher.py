"""Micro-batching: coalesce concurrent requests into one shared job graph.

The planner (:func:`repro.sched.plan.build_plan`) keys every task by a
content hash of ``(kind, source, prompt uid, runner fingerprint, mode)``,
so coalescing *across* requests is set union: two requests that generate
a byte-identical sample for the same prompt under the same runner share
one task, exactly as two samples within one run already do.  The batch
executes the union once, and each request's :class:`EvalRun` is
reassembled from the shared result map through its *own* plan
(:func:`repro.sched.plan.assemble`), which is what keeps a served result
byte-identical to a direct ``evaluate_model`` call — the demultiplexing
step cannot perturb science outputs because it never touches payloads,
only routes them.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

from ..bench.registry import PCGBench
from ..harness.evaluate import effective_samples
from ..harness.runner import Runner
from ..models import load_model
from ..sched.plan import Plan, TaskSpec, build_plan, shard_for


def plan_request(request, runner: Runner) -> Plan:
    """Expand one admitted request into its deterministic job graph."""
    llm = load_model(request.model)
    bench = PCGBench(
        problem_types=list(request.ptypes) if request.ptypes else None,
        models=list(request.exec_models) if request.exec_models else None)
    return build_plan(llm, bench, effective_samples(request.samples),
                      request.temperature, request.with_timing, runner,
                      request.seed, profile=request.profile)


def plan_batch(requests: Sequence, runner: Runner
               ) -> Tuple[List[Plan], Tuple[str, ...], Tuple[str, ...]]:
    """Plans for every request plus the union bench slice.

    Workers are initialised with the *union* of problem types and
    execution models across the batch, so one pool can resolve every
    prompt uid in the merged task set regardless of which request
    contributed it.
    """
    plans = [plan_request(req, runner) for req in requests]
    ptypes = tuple(dict.fromkeys(
        pt for plan in plans for pt in plan.bench_ptypes))
    models = tuple(dict.fromkeys(
        m for plan in plans for m in plan.bench_models))
    return plans, ptypes, models


def union_tasks(plans: Sequence[Plan]) -> Dict[str, TaskSpec]:
    """Content-deduplicated union of every plan's tasks, in first-use
    order (deterministic: plan order, then each plan's task order)."""
    union: Dict[str, TaskSpec] = {}
    for plan in plans:
        for task_id, spec in plan.tasks.items():
            union.setdefault(task_id, spec)
    return union


def partition_tasks(union: Dict[str, TaskSpec], shards: int,
                    predictions: Optional[Dict[str, Tuple[float, str]]] = None
                    ) -> List[Dict[str, TaskSpec]]:
    """Split the merged task set across shards.

    Without ``predictions`` this is the legacy hash partition — uniform
    in *count* but oblivious to cost, so one shard can draw every timed
    sweep while its siblings drain trivial compile failures.  With
    ``predictions`` (task id → ``(cost, provenance)``, from
    :func:`repro.sched.predict.predict_plan`) it becomes LPT bin
    packing: tasks are placed longest-first onto the least-loaded bin
    (ties broken by lowest shard id), the classic 4/3-approximation to
    minimum makespan.  Both partitions are pure functions of their
    inputs — deterministic, and irrelevant to result bytes since every
    task computes identical content on any shard.

    Each returned part is ordered longest-first, which is exactly the
    queue order :class:`repro.serve.shards.TaskBoard` serves and steals
    from."""
    parts: List[Dict[str, TaskSpec]] = [{} for _ in range(shards)]
    if predictions is None:
        for task_id, spec in union.items():
            parts[shard_for(task_id, shards)][task_id] = spec
        return parts
    index = {tid: i for i, tid in enumerate(union)}

    def lpt_key(tid: str) -> Tuple[float, int]:
        return (-predictions.get(tid, (0.0, ""))[0], index[tid])

    loads = [0.0] * shards
    for tid in sorted(union, key=lpt_key):
        target = min(range(shards), key=lambda s: (loads[s], s))
        parts[target][tid] = union[tid]
        # the epsilon keeps zero-cost tasks spreading round-robin
        # instead of piling onto shard 0
        loads[target] += predictions.get(tid, (0.0, ""))[0] + 1e-9
    return parts


def batch_key(union: Dict[str, TaskSpec]) -> str:
    """Digest identifying one batch's merged task set — the run key of
    the per-shard journals, stable across shard restarts within the
    batch (sorted, so shard partitioning cannot change it)."""
    digest = hashlib.sha256()
    for task_id in sorted(union):
        digest.update(task_id.encode())
        digest.update(b"\x00")
    return digest.hexdigest()[:24]


__all__ = ["plan_request", "plan_batch", "union_tasks", "partition_tasks",
           "batch_key"]
