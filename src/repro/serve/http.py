"""Minimal JSON-over-HTTP/1.1 front end for :class:`EvalService`.

Hand-rolled on ``asyncio.start_server`` — the stdlib has no async HTTP
server and this repo adds no dependencies.  The subset implemented is
exactly what the service API needs: one request per connection
(``Connection: close``), a parsed request line, headers, and a
``Content-Length``-delimited body.

Routes::

    POST /v1/eval                submit; 202 + ticket, 400 invalid,
                                 429 + Retry-After overloaded, 503 closing
    GET  /v1/requests/{id}       status snapshot (404 unknown)
    GET  /v1/requests/{id}/result    full EvalRun JSON + X-Run-Digest
                                     (409 until terminal, 410 if expired/failed)
    GET  /v1/requests/{id}/csv       aggregate CSV of the result
    GET  /v1/requests/{id}/profile   profile CSV of the result
    GET  /metrics                service metrics JSON
    GET  /metrics.csv            same, flat CSV (analysis/export)
    GET  /healthz                liveness + state
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from ..analysis.export import profile_csv, service_metrics_csv, to_csv
from .service import (
    DONE,
    EvalRequest,
    EvalService,
    Overloaded,
    ServiceClosed,
    TERMINAL,
)

MAX_BODY = 1 << 20              # 1 MiB request-body cap
REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
           405: "Method Not Allowed", 409: "Conflict", 410: "Gone",
           413: "Payload Too Large", 429: "Too Many Requests",
           500: "Internal Server Error", 503: "Service Unavailable"}


class HttpError(Exception):
    """Terminate the request with a status and a JSON error body."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


def _response(status: int, body: bytes, content_type: str,
              headers: Optional[Dict[str, str]] = None) -> bytes:
    lines = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def json_response(status: int, payload: object,
                  headers: Optional[Dict[str, str]] = None) -> bytes:
    body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
    return _response(status, body, "application/json", headers)


def text_response(status: int, text: str, content_type: str = "text/csv",
                  headers: Optional[Dict[str, str]] = None) -> bytes:
    return _response(status, text.encode("utf-8"), content_type, headers)


async def _read_request(reader: asyncio.StreamReader
                        ) -> Tuple[str, str, Dict[str, str], bytes]:
    request_line = (await reader.readline()).decode("latin-1").strip()
    if not request_line:
        raise HttpError(400, "empty request")
    parts = request_line.split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {request_line!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    while True:
        line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
        if not line:
            break
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY:
        raise HttpError(413, f"body exceeds {MAX_BODY} bytes")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


class HttpServer:
    """The service's HTTP face; owns nothing but routing."""

    def __init__(self, service: EvalService, host: str = "127.0.0.1",
                 port: int = 8752):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        """Actual bound (host, port) — resolves ``port=0`` ephemerals."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, _headers, body = await _read_request(reader)
                payload = self._route(method, path, body)
            except HttpError as err:
                payload = json_response(err.status, {"error": err.message},
                                        headers=err.headers)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as exc:    # noqa: BLE001 - malformed input
                payload = json_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"})
            writer.write(payload)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    # -- routing -------------------------------------------------------------

    def _route(self, method: str, path: str, body: bytes) -> bytes:
        path = path.split("?", 1)[0]
        if path == "/v1/eval":
            if method != "POST":
                raise HttpError(405, "POST only")
            return self._submit(body)
        if path.startswith("/v1/requests/"):
            if method != "GET":
                raise HttpError(405, "GET only")
            return self._request_view(path[len("/v1/requests/"):])
        if method != "GET":
            raise HttpError(405, "GET only")
        if path == "/metrics":
            return json_response(200, self.service.metrics_snapshot())
        if path == "/metrics.csv":
            return text_response(
                200, service_metrics_csv(self.service.metrics_snapshot()))
        if path == "/healthz":
            return json_response(200, {"ok": True,
                                       "state": self.service.state})
        raise HttpError(404, f"no route for {path}")

    def _submit(self, body: bytes) -> bytes:
        try:
            raw = json.loads(body.decode("utf-8") or "null")
            request = EvalRequest.from_dict(raw)
        except ValueError as err:
            raise HttpError(400, str(err)) from err
        try:
            ticket = self.service.submit(request)
        except Overloaded as err:
            raise HttpError(429, str(err), headers={
                "Retry-After": str(err.retry_after)}) from err
        except ServiceClosed as err:
            raise HttpError(503, str(err)) from err
        return json_response(202, ticket.snapshot())

    def _request_view(self, tail: str) -> bytes:
        request_id, _, view = tail.partition("/")
        ticket = self.service.get(request_id)
        if ticket is None:
            raise HttpError(404, f"unknown request {request_id!r}")
        if view == "":
            return json_response(200, ticket.snapshot())
        if view not in ("result", "csv", "profile"):
            raise HttpError(404, f"unknown view {view!r}")
        if ticket.status not in TERMINAL:
            raise HttpError(409, f"request is {ticket.status}; "
                                 "poll until done")
        if ticket.status != DONE or ticket.run is None:
            raise HttpError(410, f"request {ticket.status}: "
                                 f"{ticket.error or 'no result'}")
        if view == "result":
            return text_response(
                200, ticket.run.to_json(), content_type="application/json",
                headers={"X-Run-Digest": ticket.run.digest()})
        if view == "csv":
            return text_response(200, to_csv(ticket.run))
        return text_response(200, profile_csv(ticket.run))


async def serve_forever(service: EvalService, host: str, port: int) -> None:
    """Run the HTTP server until cancelled (the CLI entry point)."""
    server = HttpServer(service, host, port)
    await service.start()
    await server.start()
    try:
        await asyncio.Event().wait()
    finally:
        await server.stop()
        await service.shutdown(drain=True)


__all__ = ["HttpError", "HttpServer", "json_response", "serve_forever",
           "text_response"]
