"""repro.serve — async batched evaluation service over sharded pools.

The serving layer turns the batch evaluation pipeline into a long-lived
service: clients submit evaluation requests (model, benchmark slice,
samples, seed), concurrent requests are micro-batched into one shared
job graph with cross-request content deduplication, the merged task set
is sharded across worker pools with per-shard resume journals, and each
request's result is reassembled byte-identical to what a direct
``evaluate_model`` call would have produced.  See ``docs/serving.md``.
"""

from .batcher import (
    batch_key,
    partition_tasks,
    plan_batch,
    plan_request,
    union_tasks,
)
from .client import HttpClient, RequestFailed, ServiceClient, http_request
from .http import HttpServer, serve_forever
from .metrics import Histogram, ServiceMetrics
from .service import (
    EvalRequest,
    EvalService,
    Overloaded,
    RequestTicket,
    ServiceClosed,
)
from .shards import ShardResult, TaskBoard, run_shard

__all__ = [
    "EvalRequest",
    "EvalService",
    "Histogram",
    "HttpClient",
    "HttpServer",
    "Overloaded",
    "RequestFailed",
    "RequestTicket",
    "ServiceClient",
    "ServiceClosed",
    "ServiceMetrics",
    "ShardResult",
    "TaskBoard",
    "batch_key",
    "http_request",
    "partition_tasks",
    "plan_batch",
    "plan_request",
    "run_shard",
    "serve_forever",
    "union_tasks",
]
