"""Service observability: counters, latency histograms, shard accounting.

One :class:`ServiceMetrics` instance aggregates everything the
``/metrics`` endpoint exposes — admission counters, queue depth, wait/run
latency histograms, batching effectiveness (tasks planned vs unique vs
executed), per-shard utilisation folded in from the scheduler's
:class:`~repro.sched.events.Telemetry`, and the cost-category totals of
profiled requests (:func:`repro.prof.run_cost_totals`).

Everything is guarded by one lock: shard runners report from executor
threads while the HTTP handlers read from the event loop.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from ..sched.events import Telemetry

#: histogram bucket upper bounds, seconds (log-ish spacing; the last
#: bucket is open-ended)
LATENCY_BUCKETS = (0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0,
                   30.0, 60.0)


class Histogram:
    """Fixed-bucket latency histogram (callers hold the metrics lock)."""

    def __init__(self, bounds=LATENCY_BUCKETS):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.n = 0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.n += 1
        self.total += value
        self.max = max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def to_dict(self) -> Dict[str, object]:
        buckets = {f"le_{b:g}": c for b, c in zip(self.bounds, self.counts)}
        buckets["inf"] = self.counts[-1]
        return {
            "count": self.n,
            "sum_seconds": self.total,
            "max_seconds": self.max,
            "mean_seconds": (self.total / self.n) if self.n else 0.0,
            "buckets": buckets,
        }


class ServiceMetrics:
    """Thread-safe aggregate of everything ``/metrics`` reports."""

    def __init__(self, shards: int, retry_after_cap: float = 60.0):
        self._lock = threading.Lock()
        self.shards = shards
        #: ceiling on the Retry-After estimate, seconds — a pathological
        #: EMA after one stalled batch must not tell clients to go away
        #: for hours
        self.retry_after_cap = max(1.0, float(retry_after_cap))
        # admission / lifecycle counters
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.expired = 0
        # batching effectiveness
        self.batches = 0
        self.batched_requests = 0
        self.tasks_planned = 0      # naive sum over per-request plans
        self.tasks_unique = 0       # after cross-request content dedup
        self.tasks_executed = 0
        self.tasks_from_cache = 0
        self.tasks_from_journal = 0
        self.tasks_failed = 0
        self.tasks_quarantined = 0
        self.shard_restarts = 0
        #: queued tasks moved between shards by the work-stealing board
        self.tasks_stolen = 0
        # guard supervision (repro.guard): straggler hedging traffic
        self.hedges = 0
        self.hedge_wins = 0
        # cost-predictive dispatch (repro.sched.predict): how often the
        # duration ledger had history vs falling back to the static
        # estimator, and how far ledger predictions missed (seconds)
        self.ledger_predictions = 0
        self.estimator_predictions = 0
        self.pred_samples = 0
        self.pred_abs_err_seconds = 0.0
        # tier-2 vectorized execution + compile-cache traffic (folded
        # from per-shard Telemetry; see repro.runtime.vectorize)
        self.vec_bulk_loops = 0
        self.vec_bulk_iters = 0
        self.vec_fallbacks = 0
        self.compile_cache_hits = 0
        self.compile_cache_misses = 0
        # latency
        self.wait_seconds = Histogram()
        self.run_seconds = Histogram()
        #: exponential moving average of per-batch wall seconds — feeds
        #: the Retry-After estimate on overload rejections
        self.ema_batch_seconds = 0.0
        # per-shard accounting (telemetry merges)
        self.shard_busy: Dict[int, float] = {k: 0.0 for k in range(shards)}
        self.shard_tasks: Dict[int, int] = {k: 0 for k in range(shards)}
        self.shard_crashes: Dict[int, int] = {k: 0 for k in range(shards)}
        # cost-category totals of profiled completed requests
        self.profile_totals: Dict[str, float] = {}

    # -- recording ----------------------------------------------------------

    def record_admission(self, accepted: bool) -> None:
        with self._lock:
            if accepted:
                self.accepted += 1
            else:
                self.rejected += 1

    def record_terminal(self, status: str, wait_s: Optional[float] = None,
                        run_s: Optional[float] = None) -> None:
        with self._lock:
            if status == "done":
                self.completed += 1
            elif status == "expired":
                self.expired += 1
            else:
                self.failed += 1
            if wait_s is not None:
                self.wait_seconds.observe(wait_s)
            if run_s is not None:
                self.run_seconds.observe(run_s)

    def seed_ema(self, batch_seconds: float) -> None:
        """Warm-start the Retry-After EMA from ledger history, so the
        very first overload rejection after a restart quotes a real
        back-off instead of the 1-second floor.  A no-op once any batch
        has been recorded."""
        with self._lock:
            if self.ema_batch_seconds == 0.0 and batch_seconds > 0.0:
                self.ema_batch_seconds = batch_seconds

    def record_steals(self, steals: int) -> None:
        with self._lock:
            self.tasks_stolen += steals

    def record_batch(self, requests: int, planned: int, unique: int,
                     wall_seconds: float) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += requests
            self.tasks_planned += planned
            self.tasks_unique += unique
            alpha = 0.3
            if self.ema_batch_seconds == 0.0:
                self.ema_batch_seconds = wall_seconds
            else:
                self.ema_batch_seconds = (alpha * wall_seconds
                                          + (1 - alpha) * self.ema_batch_seconds)

    def record_shard(self, shard: int, telemetry: Telemetry,
                     restarts: int = 0) -> None:
        """Fold one shard run's Telemetry into the service aggregate."""
        with self._lock:
            self.tasks_executed += telemetry.executed
            self.tasks_from_cache += telemetry.from_cache
            self.tasks_from_journal += telemetry.from_journal
            self.tasks_failed += telemetry.failed
            self.tasks_quarantined += telemetry.quarantined
            self.shard_restarts += restarts
            self.hedges += telemetry.hedges
            self.hedge_wins += telemetry.hedge_wins
            self.ledger_predictions += telemetry.ledger_predictions
            self.estimator_predictions += telemetry.estimator_predictions
            self.pred_samples += telemetry.pred_samples
            self.pred_abs_err_seconds += telemetry.pred_abs_err_seconds
            self.vec_bulk_loops += telemetry.vec_bulk_loops
            self.vec_bulk_iters += telemetry.vec_bulk_iters
            self.vec_fallbacks += telemetry.vec_fallbacks
            self.compile_cache_hits += telemetry.compile_cache_hits
            self.compile_cache_misses += telemetry.compile_cache_misses
            self.shard_busy[shard] = (self.shard_busy.get(shard, 0.0)
                                      + telemetry.busy_seconds)
            self.shard_tasks[shard] = (self.shard_tasks.get(shard, 0)
                                       + telemetry.total)
            self.shard_crashes[shard] = (self.shard_crashes.get(shard, 0)
                                         + telemetry.crashes)

    def record_profile(self, totals: Dict[str, float]) -> None:
        with self._lock:
            for cat, v in totals.items():
                self.profile_totals[cat] = self.profile_totals.get(cat, 0.0) + v

    # -- reading ------------------------------------------------------------

    def dedup_saved(self) -> int:
        """Tasks that cross-request batching removed before execution."""
        with self._lock:
            return self.tasks_planned - self.tasks_unique

    def retry_after(self, inflight: int, open_breakers: int = 0) -> int:
        """Integer seconds a rejected client should back off — queue depth
        times the smoothed batch cost over the *surviving* shards, never
        less than one second and never more than ``retry_after_cap``.

        ``open_breakers`` shards are tripped and take no work, so the
        same queue drains that much slower; the hint scales up while any
        breaker is open (and sticks at the cap when none survive)."""
        with self._lock:
            per_batch = self.ema_batch_seconds or 1.0
            cap = self.retry_after_cap
        surviving = self.shards - max(0, open_breakers)
        if surviving <= 0:
            return int(cap + 0.999)
        estimate = max(1.0, inflight * per_batch / surviving)
        return min(int(cap + 0.999), int(estimate + 0.999))

    def snapshot(self, queue_depth: int = 0, running: int = 0,
                 state: str = "",
                 breakers: Optional[Dict[str, Dict[str, object]]] = None
                 ) -> Dict[str, object]:
        """One JSON-able dict: the body of ``GET /metrics``."""
        with self._lock:
            return {
                "state": state,
                "queue_depth": queue_depth,
                "running": running,
                "accepted": self.accepted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "expired": self.expired,
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "tasks_planned": self.tasks_planned,
                "tasks_unique": self.tasks_unique,
                "tasks_deduped": self.tasks_planned - self.tasks_unique,
                "tasks_executed": self.tasks_executed,
                "tasks_from_cache": self.tasks_from_cache,
                "tasks_from_journal": self.tasks_from_journal,
                "tasks_failed": self.tasks_failed,
                "tasks_quarantined": self.tasks_quarantined,
                "shard_restarts": self.shard_restarts,
                "tasks_stolen": self.tasks_stolen,
                "hedges": self.hedges,
                "hedge_wins": self.hedge_wins,
                "ledger_predictions": self.ledger_predictions,
                "estimator_predictions": self.estimator_predictions,
                "ledger_hit_rate": (
                    self.ledger_predictions
                    / (self.ledger_predictions + self.estimator_predictions)
                    if (self.ledger_predictions
                        + self.estimator_predictions) else 0.0),
                "pred_mae_seconds": (
                    self.pred_abs_err_seconds / self.pred_samples
                    if self.pred_samples else 0.0),
                "vec_bulk_loops": self.vec_bulk_loops,
                "vec_bulk_iters": self.vec_bulk_iters,
                "vec_fallbacks": self.vec_fallbacks,
                "compile_cache_hits": self.compile_cache_hits,
                "compile_cache_misses": self.compile_cache_misses,
                "ema_batch_seconds": self.ema_batch_seconds,
                "wait_seconds": self.wait_seconds.to_dict(),
                "run_seconds": self.run_seconds.to_dict(),
                "shards": {
                    str(k): {
                        "busy_seconds": self.shard_busy.get(k, 0.0),
                        "tasks": self.shard_tasks.get(k, 0),
                        "crashes": self.shard_crashes.get(k, 0),
                    }
                    for k in sorted(self.shard_busy)
                },
                "profile_totals": dict(self.profile_totals),
                "breakers": dict(breakers or {}),
                "breakers_open": sum(
                    1 for b in (breakers or {}).values()
                    if b.get("state") == "open"),
            }


__all__ = ["Histogram", "LATENCY_BUCKETS", "ServiceMetrics"]
