"""The end-to-end evaluation pipeline (paper §7): generate N samples per
prompt from a (simulated) LLM, push every sample through the harness, and
record statuses and simulated times in a JSON-serialisable results store.

Full-benchmark runs are cached on disk keyed by their configuration, so
the per-figure benchmarks share one generation+evaluation pass the way the
paper's figures all read one set of measurement logs.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..bench.registry import PCGBench
from ..bench.spec import Prompt
from ..models.llm import SimulatedLLM
from .runner import Runner

#: environment knob: scale down sample counts for quick runs
ENV_SAMPLES = "REPRO_SAMPLES"


@dataclass
class SampleRecord:
    status: str
    intended: str = ""
    detail: str = ""
    #: simulated seconds keyed by processor count (timing runs only)
    times: Dict[int, float] = field(default_factory=dict)


@dataclass
class PromptRecord:
    uid: str
    ptype: str
    exec_model: str
    samples: List[SampleRecord] = field(default_factory=list)
    baseline: Optional[float] = None

    def statuses(self) -> List[str]:
        return [s.status for s in self.samples]

    def times_at(self, n: int) -> List[Optional[float]]:
        return [s.times.get(n) for s in self.samples]

    def measured_ns(self) -> List[int]:
        ns = set()
        for s in self.samples:
            ns.update(s.times)
        return sorted(ns)


@dataclass
class EvalRun:
    """All results for one (LLM, configuration) pair."""

    llm: str
    temperature: float
    num_samples: int
    with_timing: bool
    seed: int
    prompts: Dict[str, PromptRecord] = field(default_factory=dict)

    # -- persistence --------------------------------------------------------

    def to_json(self) -> str:
        payload = asdict(self)
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "EvalRun":
        raw = json.loads(text)
        prompts = {}
        for uid, pr in raw.pop("prompts").items():
            samples = [
                SampleRecord(
                    status=s["status"], intended=s.get("intended", ""),
                    detail=s.get("detail", ""),
                    times={int(k): v for k, v in s.get("times", {}).items()},
                )
                for s in pr.pop("samples")
            ]
            prompts[uid] = PromptRecord(samples=samples, **pr)
        return cls(prompts=prompts, **raw)

    # -- views ----------------------------------------------------------------

    def by_exec_model(self, exec_model: str) -> List[PromptRecord]:
        return [p for p in self.prompts.values() if p.exec_model == exec_model]

    def by_ptype(self, ptype: str) -> List[PromptRecord]:
        return [p for p in self.prompts.values() if p.ptype == ptype]

    def parallel_prompts(self) -> List[PromptRecord]:
        return [p for p in self.prompts.values() if p.exec_model != "serial"]


def effective_samples(requested: int) -> int:
    """Apply the REPRO_SAMPLES env cap (for fast benchmark runs)."""
    cap = os.environ.get(ENV_SAMPLES)
    if cap:
        return max(2, min(requested, int(cap)))
    return requested


def evaluate_model(
    llm: SimulatedLLM,
    bench: PCGBench,
    num_samples: int = 8,
    temperature: float = 0.2,
    with_timing: bool = False,
    runner: Optional[Runner] = None,
    seed: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> EvalRun:
    """Run the full §7 pipeline for one model over ``bench``."""
    runner = runner or Runner()
    num_samples = effective_samples(num_samples)
    run = EvalRun(llm=llm.name, temperature=temperature,
                  num_samples=num_samples, with_timing=with_timing, seed=seed)
    for prompt in bench.prompts:
        record = PromptRecord(uid=prompt.uid, ptype=prompt.problem.ptype,
                              exec_model=prompt.model)
        if with_timing:
            record.baseline = runner.baseline_time(prompt.problem)
        for sample in llm.generate(prompt, num_samples, temperature, seed):
            res = runner.evaluate_sample(sample.source, prompt,
                                         with_timing=with_timing)
            record.samples.append(SampleRecord(
                status=res.status, intended=sample.intended,
                detail=res.detail[:160], times=dict(res.times),
            ))
        run.prompts[prompt.uid] = record
        if progress is not None:
            progress(prompt.uid)
    return run


class EvalCache:
    """Disk cache of EvalRuns keyed by configuration."""

    def __init__(self, cache_dir: Optional[str] = None):
        root = cache_dir or os.environ.get("REPRO_CACHE", ".repro_cache")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, llm_name: str, num_samples: int, temperature: float,
              with_timing: bool, seed: int, tag: str = "full") -> Path:
        fname = (
            f"{llm_name}_{tag}_s{num_samples}_t{temperature:g}"
            f"_{'timed' if with_timing else 'plain'}_r{seed}.json"
        )
        return self.root / fname.replace("/", "-")

    def get_or_run(
        self,
        llm: SimulatedLLM,
        bench: PCGBench,
        num_samples: int,
        temperature: float,
        with_timing: bool = False,
        seed: int = 1,
        tag: str = "full",
        runner: Optional[Runner] = None,
    ) -> EvalRun:
        num_samples = effective_samples(num_samples)
        path = self._path(llm.name, num_samples, temperature, with_timing,
                          seed, tag)
        if path.exists():
            return EvalRun.from_json(path.read_text())
        run = evaluate_model(llm, bench, num_samples, temperature,
                             with_timing, runner, seed)
        path.write_text(run.to_json())
        return run
