"""The end-to-end evaluation pipeline (paper §7): generate N samples per
prompt from a (simulated) LLM, push every sample through the harness, and
record statuses and simulated times in a JSON-serialisable results store.

Full-benchmark runs are cached on disk keyed by their configuration, so
the per-figure benchmarks share one generation+evaluation pass the way the
paper's figures all read one set of measurement logs.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from ..bench.registry import PCGBench
from ..bench.spec import Prompt
from ..models.llm import SimulatedLLM
from .runner import Runner

#: environment knob: scale down sample counts for quick runs
ENV_SAMPLES = "REPRO_SAMPLES"

#: bump when the EvalRun JSON layout changes; cached files from other
#: versions (or with no version at all) are regenerated, never crashed on
#: (2: SampleRecord gained MiniParSan ``diagnostics``;
#:  3: SampleRecord gained the optional cost-decomposed ``profile``)
FORMAT_VERSION = 3


class ConfigurationError(ValueError):
    """A user-facing configuration problem (bad env var, bad flag)."""


class CacheFormatError(ValueError):
    """A cached EvalRun is from another format version or is malformed."""


@dataclass
class SampleRecord:
    #: terminal status (see the repro.harness.runner docstring matrix):
    #: correct / wrong_answer / runtime_error / timeout / not_parallel /
    #: static_fail / build_error, plus the three resilience lanes —
    #: system_error (infrastructure failed; excluded from every metric
    #: denominator, never journaled, resampled on --resume), quarantined
    #: (the sample killed multiple distinct workers and the guard pulled
    #: it permanently: journaled, replayed on resume, excluded from every
    #: denominator; detail starts with "guard:"), and degraded
    #: (correct but the timing sweep was fault-perturbed; counts for
    #: pass@k / build@k, excluded from speedup).  A timeout is the
    #: *sample* hanging (fuel / simulated-time cap, see detail); an infra
    #: wall-clock kill by the scheduler is a system_error whose detail
    #: starts with "scheduler:".
    status: str
    intended: str = ""
    detail: str = ""
    #: simulated seconds keyed by processor count (timing runs only)
    times: Dict[int, float] = field(default_factory=dict)
    #: MiniParSan findings as plain dicts (see repro.lint.Diagnostic)
    diagnostics: List[Dict] = field(default_factory=list)
    #: cost-decomposed profile as a plain dict (repro.prof.Profile.to_dict;
    #: present only on profiled timing runs)
    profile: Optional[Dict] = None
    #: vectorized-tier telemetry (tier, bulk_loops, bulk_iters, fallbacks;
    #: see ``repro.runtime.vectorize.VecStats``).  In-memory observability
    #: only: ``to_json`` strips it so a run's digest is byte-identical
    #: whether the numpy tier was on or off — the tier changes how fast
    #: the interpreter runs, never what it computes.
    vec: Optional[Dict] = None


@dataclass
class PromptRecord:
    uid: str
    ptype: str
    exec_model: str
    samples: List[SampleRecord] = field(default_factory=list)
    baseline: Optional[float] = None

    def statuses(self) -> List[str]:
        return [s.status for s in self.samples]

    def times_at(self, n: int) -> List[Optional[float]]:
        return [s.times.get(n) for s in self.samples]

    def measured_ns(self) -> List[int]:
        ns = set()
        for s in self.samples:
            ns.update(s.times)
        return sorted(ns)


@dataclass
class EvalRun:
    """All results for one (LLM, configuration) pair."""

    llm: str
    temperature: float
    num_samples: int
    with_timing: bool
    seed: int
    prompts: Dict[str, PromptRecord] = field(default_factory=dict)
    format_version: int = FORMAT_VERSION

    # -- persistence --------------------------------------------------------

    def to_json(self) -> str:
        payload = asdict(self)
        # the vec telemetry is per-process observability, not part of the
        # run's identity: stripping it keeps digests byte-identical across
        # execution tiers (and across cache round-trips, which never saw it)
        for pr in payload["prompts"].values():
            for s in pr["samples"]:
                s.pop("vec", None)
        return json.dumps(payload)

    def digest(self) -> str:
        """SHA-256 of the serialised run — the identity the differential
        tests (and the service's ``X-Run-Digest`` header) compare, so
        "byte-identical" is checkable without shipping both payloads."""
        import hashlib

        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "EvalRun":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CacheFormatError(f"corrupt EvalRun JSON: {exc}") from exc
        if not isinstance(raw, dict) or "prompts" not in raw:
            raise CacheFormatError("EvalRun JSON missing 'prompts'")
        version = raw.get("format_version", 0)
        if version != FORMAT_VERSION:
            raise CacheFormatError(
                f"EvalRun format version {version} != {FORMAT_VERSION}")
        prompts = {}
        try:
            for uid, pr in raw.pop("prompts").items():
                samples = [
                    SampleRecord(
                        status=s["status"], intended=s.get("intended", ""),
                        detail=s.get("detail", ""),
                        times={int(k): v
                               for k, v in s.get("times", {}).items()},
                        diagnostics=list(s.get("diagnostics", [])),
                        profile=s.get("profile"),
                        vec=s.get("vec"),
                    )
                    for s in pr.pop("samples")
                ]
                prompts[uid] = PromptRecord(samples=samples, **pr)
            return cls(prompts=prompts, **raw)
        except (AttributeError, KeyError, TypeError, ValueError) as exc:
            raise CacheFormatError(f"malformed EvalRun JSON: {exc}") from exc

    # -- views ----------------------------------------------------------------

    def by_exec_model(self, exec_model: str) -> List[PromptRecord]:
        return [p for p in self.prompts.values() if p.exec_model == exec_model]

    def by_ptype(self, ptype: str) -> List[PromptRecord]:
        return [p for p in self.prompts.values() if p.ptype == ptype]

    def parallel_prompts(self) -> List[PromptRecord]:
        return [p for p in self.prompts.values() if p.exec_model != "serial"]


def effective_samples(requested: int) -> int:
    """Apply the REPRO_SAMPLES env cap (for fast benchmark runs)."""
    cap_raw = os.environ.get(ENV_SAMPLES)
    if not cap_raw:
        return requested
    try:
        cap = int(cap_raw)
    except ValueError:
        raise ConfigurationError(
            f"{ENV_SAMPLES} must be a positive integer, "
            f"got {cap_raw!r}") from None
    if cap <= 0:
        raise ConfigurationError(
            f"{ENV_SAMPLES} must be a positive integer, got {cap}")
    return max(2, min(requested, cap))


def evaluate_model(
    llm: SimulatedLLM,
    bench: PCGBench,
    num_samples: int = 8,
    temperature: float = 0.2,
    with_timing: bool = False,
    runner: Optional[Runner] = None,
    seed: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    journal: Optional[str] = None,
    resume: bool = False,
    sample_cache: Optional[str] = None,
    events: Optional[Callable[[object], None]] = None,
    profile: bool = False,
    guard: Optional[object] = None,
    dispatch: Optional[str] = None,
) -> EvalRun:
    """Run the full §7 pipeline for one model over ``bench``.

    ``jobs=1`` (default) keeps the original serial loop.  ``jobs>1`` —
    or any of ``journal``/``resume``/``sample_cache``/``events``/
    ``guard`` — routes through :mod:`repro.sched`: the same pipeline
    decomposed into ``(prompt, sample)`` tasks on a fault-isolated
    worker pool, with JSONL checkpointing (``journal`` +
    ``resume=True``) and a content-addressed cross-run sample cache.
    Both paths assemble byte-identical :class:`EvalRun` objects.

    ``guard`` is a :class:`repro.guard.GuardPolicy` tuning the
    self-healing supervision (poison-task quarantine, straggler
    hedging); ``None`` uses the defaults.  Guard mechanisms never
    change the assembled run's bytes — only how it survives faults.

    ``profile=True`` (timing runs only) additionally records a
    cost-decomposed :mod:`repro.prof` profile on every timed sample.

    ``dispatch`` selects the scheduler's ready-queue policy (``"lpt"``,
    ``"fifo"``, ``"random"`` — see :mod:`repro.sched.predict`); setting
    it routes through the scheduler even at ``jobs=1``.  ``None`` leaves
    the scheduler default (``"lpt"``) in effect.  Dispatch order is
    throughput policy only: the assembled run is byte-identical under
    every policy.
    """
    if profile and not with_timing:
        raise ConfigurationError("profile=True requires with_timing=True")
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if resume and journal is None:
        raise ConfigurationError("resume=True requires a journal path")
    if (jobs > 1 or journal is not None or sample_cache is not None
            or events is not None or guard is not None
            or dispatch is not None):
        from ..sched.scheduler import run_scheduled

        run, _ = run_scheduled(
            llm, bench, num_samples=num_samples, temperature=temperature,
            with_timing=with_timing, runner=runner, seed=seed, jobs=jobs,
            journal_path=journal, resume=resume,
            sample_cache_dir=sample_cache, emit=events, progress=progress,
            profile=profile, guard=guard,
            dispatch=dispatch if dispatch is not None else "lpt")
        return run
    runner = runner or Runner()
    num_samples = effective_samples(num_samples)
    run = EvalRun(llm=llm.name, temperature=temperature,
                  num_samples=num_samples, with_timing=with_timing, seed=seed)
    for prompt in bench.prompts:
        record = PromptRecord(uid=prompt.uid, ptype=prompt.problem.ptype,
                              exec_model=prompt.model)
        if with_timing:
            record.baseline = runner.baseline_time(prompt.problem)
        for sample in llm.generate(prompt, num_samples, temperature, seed):
            res = runner.evaluate_sample(sample.source, prompt,
                                         with_timing=with_timing,
                                         profile=profile)
            record.samples.append(SampleRecord(
                status=res.status, intended=sample.intended,
                detail=res.detail[:160], times=dict(res.times),
                diagnostics=[d.to_dict() for d in res.diagnostics],
                profile=res.profile.to_dict() if res.profile is not None
                else None,
                vec=res.vec,
            ))
        run.prompts[prompt.uid] = record
        if progress is not None:
            progress(prompt.uid)
    return run


class EvalCache:
    """Disk cache of EvalRuns keyed by configuration."""

    def __init__(self, cache_dir: Optional[str] = None):
        root = cache_dir or os.environ.get("REPRO_CACHE", ".repro_cache")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, llm_name: str, num_samples: int, temperature: float,
              with_timing: bool, seed: int, tag: str = "full",
              profile: bool = False) -> Path:
        mode = "timed" if with_timing else "plain"
        if profile:
            mode += "-prof"     # profiled runs never alias unprofiled ones
        fname = (
            f"{llm_name}_{tag}_s{num_samples}_t{temperature:g}"
            f"_{mode}_r{seed}.json"
        )
        return self.root / fname.replace("/", "-")

    def get_or_run(
        self,
        llm: SimulatedLLM,
        bench: PCGBench,
        num_samples: int,
        temperature: float,
        with_timing: bool = False,
        seed: int = 1,
        tag: str = "full",
        runner: Optional[Runner] = None,
        jobs: int = 1,
        resume: bool = False,
        events: Optional[Callable[[object], None]] = None,
        profile: bool = False,
    ) -> EvalRun:
        """Load a cached run, or compute (serially, or on the scheduler
        with ``jobs>1``) and cache it.

        Version-mismatched or corrupt cache files are treated as misses
        and regenerated.  Scheduled runs journal under the cache root, so
        ``resume=True`` continues an interrupted pass; the journal is
        discarded once the full run is persisted.
        """
        num_samples = effective_samples(num_samples)
        path = self._path(llm.name, num_samples, temperature, with_timing,
                          seed, tag, profile=profile)
        if path.exists():
            try:
                return EvalRun.from_json(path.read_text())
            except CacheFormatError:
                path.unlink(missing_ok=True)    # stale format: regenerate
        if jobs > 1 or resume:
            from ..sched.journal import journal_path_for

            journal = journal_path_for(self.root, llm.name, num_samples,
                                       temperature, with_timing, seed, tag)
            run = evaluate_model(
                llm, bench, num_samples, temperature, with_timing, runner,
                seed, jobs=jobs, journal=str(journal), resume=resume,
                sample_cache=str(self.root / "samples"), events=events,
                profile=profile)
            path.write_text(run.to_json())
            journal.unlink(missing_ok=True)     # checkpoint superseded
            return run
        run = evaluate_model(llm, bench, num_samples, temperature,
                             with_timing, runner, seed, profile=profile)
        path.write_text(run.to_json())
        return run
