"""Link compatibility and parallel-model usage checks (paper §7.2).

Two distinct checks, both mirroring the paper's harness:

* **link check** — a program that calls into a runtime that is not linked
  under the current execution model (e.g. Kokkos patterns in a serial
  build) fails to build.  OpenMP pragmas compile everywhere (they are
  ignored without ``-fopenmp``), exactly as with GCC.

* **usage check** — "a code is marked incorrect if it does not use its
  respective parallel programming model".  The primary oracle is now the
  AST-based check in :mod:`repro.lint.usage` (the parser's pragma flag
  plus the typechecker's resolved-builtin set), which a comment or string
  literal cannot fool.  The paper's string-matching check is kept as the
  documented fallback for sources that do not compile — and even then the
  patterns run over *lexed token text*, not raw source, so ``mpi_send``
  in a comment no longer counts as using MPI.  Raw source is matched only
  when the program cannot even be lexed.
"""

from __future__ import annotations

import re
from typing import Optional, Set

from ..lang import CompileError, compile_source, lex
from ..lang.typecheck import CheckedProgram

#: builtin categories linkable under each execution model
LINKABLE = {
    "serial": {"core", "atomic"},
    "openmp": {"core", "atomic"},
    "kokkos": {"core", "atomic", "kokkos"},
    "mpi": {"core", "atomic", "mpi"},
    "mpi+omp": {"core", "atomic", "mpi"},
    "cuda": {"core", "atomic", "gpu"},
    "hip": {"core", "atomic", "gpu"},
}

_USAGE_PATTERNS = {
    "openmp": [re.compile(r"pragma\s+omp")],
    "kokkos": [re.compile(r"\bparallel_(for|reduce|scan_inclusive|scan_exclusive)\s*\(")],
    "mpi": [re.compile(r"\bmpi_\w+\s*\(")],
    "cuda": [re.compile(r"\b(thread_idx|block_idx|block_dim|grid_dim|sync_threads)\s*\(")],
    "hip": [re.compile(r"\b(thread_idx|block_idx|block_dim|grid_dim|sync_threads)\s*\(")],
}


def link_error(checked: CheckedProgram, model: str) -> Optional[str]:
    """None if the program links under ``model``, else a message."""
    allowed: Set[str] = LINKABLE[model]
    bad = checked.builtin_categories - allowed
    if bad:
        names = sorted(
            n for n in checked.builtins_used
            if _category_of(n) in bad
        )
        return (
            f"undefined reference under the {model!r} execution model: "
            + ", ".join(names)
        )
    return None


def _category_of(name: str) -> str:
    from ..lang import builtins as bi

    sig = bi.get(name)
    return sig.category if sig else "core"


def _lexed_text(source: str) -> str:
    """Source reduced to its token text — comments and layout dropped."""
    try:
        return " ".join(t.text for t in lex(source))
    except CompileError:
        return source


def uses_parallel_model_text(source: str, model: str) -> bool:
    """String-matching usage check over lexed token text (the fallback
    oracle, and the reference the parity test compares against)."""
    if model == "serial":
        return True
    text = _lexed_text(source)
    if model == "mpi+omp":
        return (
            any(p.search(text) for p in _USAGE_PATTERNS["mpi"])
            and any(p.search(text) for p in _USAGE_PATTERNS["openmp"])
        )
    return any(p.search(text) for p in _USAGE_PATTERNS[model])


def uses_parallel_model(source: str, model: str,
                        checked: Optional[CheckedProgram] = None) -> bool:
    """Did the generated code actually use the prompt's parallel model?

    Prefers the AST oracle; falls back to token-text matching when the
    source does not compile (callers screen build errors first, so that
    path only runs for direct API use on broken sources).
    """
    if model == "serial":
        return True
    if checked is None:
        try:
            checked = compile_source(source)
        except CompileError:
            return uses_parallel_model_text(source, model)
    from ..lint.usage import model_is_used

    return model_is_used(checked, model)
