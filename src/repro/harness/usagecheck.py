"""Link compatibility and parallel-model usage checks (paper §7.2).

Two distinct checks, both mirroring the paper's harness:

* **link check** — a program that calls into a runtime that is not linked
  under the current execution model (e.g. Kokkos patterns in a serial
  build) fails to build.  OpenMP pragmas compile everywhere (they are
  ignored without ``-fopenmp``), exactly as with GCC.

* **usage check** — "a code is marked incorrect if it does not use its
  respective parallel programming model".  Implemented, as in the paper,
  with string matching against the source text.
"""

from __future__ import annotations

import re
from typing import Optional, Set

from ..lang.typecheck import CheckedProgram

#: builtin categories linkable under each execution model
LINKABLE = {
    "serial": {"core", "atomic"},
    "openmp": {"core", "atomic"},
    "kokkos": {"core", "atomic", "kokkos"},
    "mpi": {"core", "atomic", "mpi"},
    "mpi+omp": {"core", "atomic", "mpi"},
    "cuda": {"core", "atomic", "gpu"},
    "hip": {"core", "atomic", "gpu"},
}

_USAGE_PATTERNS = {
    "openmp": [re.compile(r"pragma\s+omp")],
    "kokkos": [re.compile(r"\bparallel_(for|reduce|scan_inclusive|scan_exclusive)\s*\(")],
    "mpi": [re.compile(r"\bmpi_\w+\s*\(")],
    "cuda": [re.compile(r"\b(thread_idx|block_idx|block_dim|grid_dim|sync_threads)\s*\(")],
    "hip": [re.compile(r"\b(thread_idx|block_idx|block_dim|grid_dim|sync_threads)\s*\(")],
}


def link_error(checked: CheckedProgram, model: str) -> Optional[str]:
    """None if the program links under ``model``, else a message."""
    allowed: Set[str] = LINKABLE[model]
    bad = checked.builtin_categories - allowed
    if bad:
        names = sorted(
            n for n in checked.builtins_used
            if _category_of(n) in bad
        )
        return (
            f"undefined reference under the {model!r} execution model: "
            + ", ".join(names)
        )
    return None


def _category_of(name: str) -> str:
    from ..lang import builtins as bi

    sig = bi.get(name)
    return sig.category if sig else "core"


def uses_parallel_model(source: str, model: str) -> bool:
    """The paper's string-matching check: did the generated code actually
    use the prompt's parallel programming model?"""
    if model == "serial":
        return True
    if model == "mpi+omp":
        return (
            any(p.search(source) for p in _USAGE_PATTERNS["mpi"])
            and any(p.search(source) for p in _USAGE_PATTERNS["openmp"])
        )
    return any(p.search(source) for p in _USAGE_PATTERNS[model])
