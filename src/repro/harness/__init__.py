"""The PCGBench test harness: compile, link/usage checks, drivers,
timing, and the end-to-end evaluation pipeline (paper §7)."""

from .evaluate import (
    FORMAT_VERSION,
    CacheFormatError,
    ConfigurationError,
    EvalCache,
    EvalRun,
    PromptRecord,
    SampleRecord,
    evaluate_model,
)
from .runner import RunResult, Runner, compile_sample
from .usagecheck import (LINKABLE, link_error, uses_parallel_model,
                         uses_parallel_model_text)

__all__ = [
    "Runner",
    "RunResult",
    "compile_sample",
    "link_error",
    "uses_parallel_model",
    "uses_parallel_model_text",
    "LINKABLE",
    "evaluate_model",
    "EvalRun",
    "EvalCache",
    "PromptRecord",
    "SampleRecord",
    "FORMAT_VERSION",
    "CacheFormatError",
    "ConfigurationError",
]
