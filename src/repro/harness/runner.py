"""The PCGBench test harness runner (paper §7.2).

For one generated sample this module implements the full pipeline the
paper describes: compile, link-check, usage-check, run against the test
driver, validate against the numpy reference, and time against the
handwritten sequential baseline at each processor count.

Statuses mirror the paper's bookkeeping:

* ``build_error``   — lexing/parsing/type errors or link failures;
* ``not_parallel``  — built, but failed the parallel-model usage check;
* ``static_fail``   — MiniParSan proved a race or deadlock before any
  execution (``repro.lint``); skipped dynamically.  Disable with
  ``Runner(static_screen=False)`` / ``--no-static-screen``;
* ``runtime_error`` — trap / race / deadlock / MPI misuse;
* ``timeout``       — exceeded the fuel budget or simulated 3-minute cap
  (the *sample* hung — a model failure, unlike the scheduler's wall-clock
  ``task_timeout`` which is infrastructure and becomes ``system_error``);
* ``wrong_answer``  — ran but the outputs disagree with the reference;
* ``correct``       — everything above passed;
* ``system_error``  — the *harness*, not the sample, failed: an injected
  or real infrastructure fault survived the bounded retry budget.  Never
  attributed to the model — excluded from every metric denominator and
  resampled on ``--resume``;
* ``degraded``      — correctness passed but the timing sweep was
  fault-perturbed; the record keeps its correctness verdict (it counts
  for pass@k / build@k) but reports no times and is excluded from
  speedup estimates.

"Possible" (unprovable) lint findings never change a status; they ride
along on :attr:`RunResult.diagnostics` for reporting.

Resilience: when a :class:`~repro.faults.inject.FaultInjector` is
installed, ``evaluate_sample`` runs under a per-sample fault scope and
classifies failures as *transient* (fault-influenced — the injector fired
during the attempt — or an explicit :class:`FaultInjected` with
``transient=True``) or *deterministic* (the sample's own fault).
Transient failures are retried with bounded exponential backoff
(``transient_retries`` attempts, ``retry_backoff`` initial delay);
deterministic failures are returned immediately.  Without an injector the
pipeline is byte-for-byte the pre-resilience fast path.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bench.spec import Problem, Prompt
from ..faults import inject
from ..faults.inject import FaultInjected
from ..lang import CompileError, compile_source
from ..lang.errors import (
    DataRaceError,
    DeadlockError,
    FuelExhausted,
    MiniParError,
    MPIUsageError,
    RuntimeFailure,
    SimTimeLimitExceeded,
    TrapError,
)
from ..runtime import (
    Array,
    CompiledProgram,
    ExecCtx,
    KokkosRuntime,
    Machine,
    OpenMPRuntime,
    SerialRuntime,
    compile_program,
    launch,
    run_mpi,
)
from ..lint import Diagnostic, blocking, lint_checked
from ..prof.record import ProfBuilder, Profile
from ..runtime.machine import CPU_THREAD_COUNTS, DEFAULT_MACHINE
from ..runtime.vectorize import VecStats
from .usagecheck import link_error, uses_parallel_model

#: canonical processor counts used for correctness runs per model
CORRECTNESS_PROCS = {"mpi": 4, "mpi+omp": (2, 4)}

#: fuel budgets (interpreter op units) per run kind
CORRECTNESS_FUEL = 3_000_000
TIMING_FUEL = 40_000_000

#: process-wide memo of sequential-baseline times.  Keyed by the machine
#: *value* (a frozen dataclass tree of cost constants), never ``id()`` —
#: ids are reused after GC and would alias distinct machines.  Values are
#: deterministic functions of the key, so forked scheduler workers each
#: warming their own copy stay mutually consistent.
_BASELINE_CACHE: Dict[tuple, float] = {}


@dataclass
class RunResult:
    """Outcome of evaluating one sample of generated code."""

    status: str                       # see module docstring
    detail: str = ""
    #: simulated seconds per processor count (timing runs only)
    times: Dict[int, float] = field(default_factory=dict)
    baseline_time: Optional[float] = None
    #: MiniParSan findings (definite and possible) for this sample
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: cost-decomposed timing profile (``repro.prof``; timing runs with
    #: profiling requested only)
    profile: Optional[Profile] = None
    #: vectorized-tier telemetry (``VecStats.as_dict``): which tier ran
    #: and how many loops/iterations the numpy tier absorbed.  Pure
    #: observability — excluded from the serialised EvalRun so digests
    #: stay byte-identical with the tier on or off.
    vec: Optional[Dict] = None


#: process-wide content-addressed compile cache.  Keyed by
#: ``(sha256(source), model)`` — the two inputs that fully determine the
#: compile/link outcome — and LRU-bounded so long sweeps cannot grow it
#: without limit.  Compiled programs are reentrant (closures take the
#: ExecCtx and argument list per call and hold no mutable state), so one
#: cached program can serve any number of runs; the same reuse already
#: happens inside a single sample between correctness and timing phases.
_COMPILE_CACHE_MAX = 256
_COMPILE_CACHE: "OrderedDict[Tuple[str, str], tuple]" = OrderedDict()
_COMPILE_CACHE_LOCK = threading.Lock()
_COMPILE_CACHE_STATS = {"hits": 0, "misses": 0}


def compile_cache_stats() -> Dict[str, int]:
    """Snapshot of the process-wide compile-cache hit/miss counters."""
    with _COMPILE_CACHE_LOCK:
        return dict(_COMPILE_CACHE_STATS)


def clear_compile_cache() -> None:
    """Drop every cached program and zero the counters (test isolation)."""
    with _COMPILE_CACHE_LOCK:
        _COMPILE_CACHE.clear()
        _COMPILE_CACHE_STATS["hits"] = 0
        _COMPILE_CACHE_STATS["misses"] = 0


def _compile_checked(source: str, model: str):
    """Compile + link, keeping the type-checked AST for the linter.
    Returns (program, checked, None) or (None, None, reason)."""
    key = (hashlib.sha256(source.encode()).hexdigest(), model)
    with _COMPILE_CACHE_LOCK:
        cached = _COMPILE_CACHE.get(key)
        if cached is not None:
            _COMPILE_CACHE.move_to_end(key)
            _COMPILE_CACHE_STATS["hits"] += 1
            return cached
        _COMPILE_CACHE_STATS["misses"] += 1
    entry = _compile_checked_uncached(source, model)
    with _COMPILE_CACHE_LOCK:
        _COMPILE_CACHE[key] = entry
        while len(_COMPILE_CACHE) > _COMPILE_CACHE_MAX:
            _COMPILE_CACHE.popitem(last=False)
    return entry


def _compile_checked_uncached(source: str, model: str):
    try:
        checked = compile_source(source)
    except CompileError as exc:
        return None, None, f"compile error: {exc}"
    err = link_error(checked, model)
    if err is not None:
        return None, None, f"link error: {err}"
    try:
        program = compile_program(checked)
    except MiniParError as exc:  # pragma: no cover - defensive
        return None, None, f"codegen error: {exc}"
    return program, checked, None


def compile_sample(source: str, model: str):
    """Compile + link a generated sample.  Returns (program, None) or
    (None, reason)."""
    program, _, reason = _compile_checked(source, model)
    return program, reason


def _classify(exc: BaseException) -> str:
    if isinstance(exc, FuelExhausted) or isinstance(exc, SimTimeLimitExceeded):
        return "timeout"
    if isinstance(exc, (DataRaceError, DeadlockError, MPIUsageError,
                        TrapError, RuntimeFailure)):
        return "runtime_error"
    if isinstance(exc, MiniParError):
        return "runtime_error"
    # anything else (including an injected FaultInjected escaping a
    # runtime layer) propagates to the resilience wrapper
    raise exc


class Runner:
    """Compiles, checks, runs and times generated samples.

    ``transient_retries`` / ``retry_backoff`` govern the resilience
    wrapper (active only with a fault injector installed); they do not
    affect results and are deliberately excluded from the scheduler's
    runner fingerprint.
    """

    def __init__(self, machine: Machine = DEFAULT_MACHINE,
                 thread_counts: Sequence[int] = CPU_THREAD_COUNTS,
                 mpi_rank_counts: Sequence[int] = (1, 4, 16, 64, 256, 512),
                 hybrid_config: Sequence[int] = (4, 64),
                 correctness_trials: int = 2,
                 seed: int = 20240603,
                 static_screen: bool = True,
                 vectorize: bool = True,
                 transient_retries: int = 2,
                 retry_backoff: float = 0.05):
        self.machine = machine
        self.thread_counts = tuple(thread_counts)
        self.mpi_rank_counts = tuple(mpi_rank_counts)
        self.hybrid_config = tuple(hybrid_config)
        self.correctness_trials = correctness_trials
        self.seed = seed
        self.static_screen = static_screen
        # tier-2 numpy execution (repro.runtime.vectorize).  Bit-identical
        # to the scalar tier by contract, so — like the retry knobs — it
        # is deliberately excluded from the scheduler runner fingerprint.
        self.vectorize = bool(vectorize)
        self.transient_retries = int(transient_retries)
        self.retry_backoff = float(retry_backoff)

    # -- single executions -------------------------------------------------------

    def _run_shared(self, program: CompiledProgram, problem: Problem,
                    inputs: Dict, model: str, fuel: int, work_scale: float,
                    profile: bool = False, vec_stats: Optional[VecStats] = None):
        """serial / openmp / kokkos execution; returns (args, ret, ctx)."""
        if model == "serial":
            rt = SerialRuntime()
        elif model == "openmp":
            rt = OpenMPRuntime(self.thread_counts)
        else:
            rt = KokkosRuntime(self.thread_counts)
        ctx = ExecCtx(self.machine, rt, fuel=fuel, work_scale=work_scale,
                      vectorize=self.vectorize, vec_stats=vec_stats)
        if profile:
            ctx.prof = ProfBuilder()
        args = problem.to_minipar_args(inputs)
        ret = program.run_kernel(problem.entry, ctx, args)
        return args, ret, ctx

    def _gpu_args(self, problem: Problem, inputs: Dict, model: str):
        args = problem.to_minipar_args(inputs)
        if problem.ret is not None:
            elem = "int" if problem.ret == "int" else "float"
            seed_val = problem.gpu_result_seed(inputs)
            result = Array([int(seed_val) if elem == "int" else float(seed_val)],
                           elem, (1,))
            args = list(args) + [result]
        return args

    # -- correctness --------------------------------------------------------------

    def check_correct(self, program: CompiledProgram, source: str,
                      prompt: Prompt, checked=None,
                      vec_stats: Optional[VecStats] = None) -> RunResult:
        """Run the correctness driver: usage check + reference trials."""
        problem, model = prompt.problem, prompt.model
        if not uses_parallel_model(source, model, checked=checked):
            return RunResult("not_parallel",
                             f"generated code does not use {model}")
        rng = np.random.default_rng(self.seed)
        for trial in range(self.correctness_trials):
            inputs = problem.generate(rng, problem.correctness_size)
            try:
                ok = self._correct_once(program, problem, model, inputs,
                                        vec_stats)
            except BaseException as exc:  # noqa: BLE001
                return RunResult(_classify(exc), f"{type(exc).__name__}: {exc}")
            if not ok:
                return RunResult("wrong_answer", f"trial {trial} mismatch")
        return RunResult("correct")

    def _correct_once(self, program, problem: Problem, model: str,
                      inputs: Dict,
                      vec_stats: Optional[VecStats] = None) -> bool:
        if model in ("serial", "openmp", "kokkos"):
            args, ret, _ = self._run_shared(
                program, problem, inputs, model,
                fuel=CORRECTNESS_FUEL, work_scale=1.0, vec_stats=vec_stats,
            )
            return problem.check(inputs, args, ret)
        if model in ("mpi", "mpi+omp"):
            if model == "mpi":
                nranks, tpr = CORRECTNESS_PROCS["mpi"], 0
            else:
                nranks, tpr = CORRECTNESS_PROCS["mpi+omp"]
            res = run_mpi(program, problem.entry,
                          problem.to_minipar_args(inputs), nranks,
                          self.machine, fuel=CORRECTNESS_FUEL,
                          threads_per_rank=tpr,
                          vectorize=self.vectorize, vec_stats=vec_stats)
            if res.error is not None:
                raise res.error
            return problem.check(inputs, res.args, res.ret)
        # cuda / hip
        args = self._gpu_args(problem, inputs, model)
        res = launch(program, problem.entry, args,
                     problem.default_gpu_threads(inputs), self.machine,
                     dialect=model, fuel=CORRECTNESS_FUEL,
                     vectorize=self.vectorize, vec_stats=vec_stats)
        if res.error is not None:
            raise res.error
        return problem.gpu_check(inputs, args)

    # -- timing ----------------------------------------------------------------------

    def baseline_time(self, problem: Problem) -> float:
        """Simulated time of the handwritten sequential baseline at the
        timing size (T* in the metrics).  Deterministic, so cached
        process-wide per (problem, seed)."""
        key = (problem.name, self.seed, self.machine)
        cached = _BASELINE_CACHE.get(key)
        if cached is not None:
            return cached
        from ..bench.baselines import baseline_source

        program = compile_program(compile_source(baseline_source(problem.name)))
        rng = np.random.default_rng(self.seed + 1)
        inputs = problem.generate(rng, problem.timing_size)
        args = problem.to_minipar_args(inputs)
        # vectorize follows the runner switch; either tier produces the
        # bit-identical time, so the cache key need not mention the tier
        ctx = ExecCtx(self.machine, SerialRuntime(), fuel=TIMING_FUEL,
                      work_scale=problem.work_scale,
                      vectorize=self.vectorize)
        program.run_kernel(problem.entry, ctx, args)
        _BASELINE_CACHE[key] = ctx.sim_seconds()
        return _BASELINE_CACHE[key]

    def measure(self, program: CompiledProgram, prompt: Prompt,
                vec_stats: Optional[VecStats] = None) -> Dict[int, float]:
        """Simulated time per processor count at the timing size.

        Configurations where the sample fails (e.g. a scatter that needs
        divisibility at some rank count) are simply absent from the dict,
        as a crashed run would be absent from the paper's measurements.
        """
        times, _ = self.measure_profiled(program, prompt, profile=False,
                                         vec_stats=vec_stats)
        return times

    def measure_profiled(self, program: CompiledProgram, prompt: Prompt,
                         profile: bool = True,
                         vec_stats: Optional[VecStats] = None
                         ) -> Tuple[Dict[int, float], Optional[Profile]]:
        """:meth:`measure` plus an optional cost-decomposed profile.

        With ``profile=False`` this *is* ``measure`` — profiling is off at
        every instrumentation site (``ctx.prof is None``) and the times
        are bit-identical.  With ``profile=True`` every configuration also
        attributes its machine-model charges into a :class:`Profile`
        whose category sums equal the returned times exactly.  For models
        that run one job per configuration (MPI, hybrid, GPU) the profile
        counters are those of the largest successfully measured
        configuration.
        """
        problem, model = prompt.problem, prompt.model
        rng = np.random.default_rng(self.seed + 1)
        inputs = problem.generate(rng, problem.timing_size)
        scale = problem.work_scale
        times: Dict[int, float] = {}
        prof = Profile(model=model) if profile else None
        if model == "serial":
            try:
                _, _, ctx = self._run_shared(program, problem, inputs, model,
                                             TIMING_FUEL, scale,
                                             profile=profile,
                                             vec_stats=vec_stats)
                times[1] = ctx.sim_seconds()
                if prof is not None:
                    prof.categories[1] = ctx.prof.categories_for(ctx, 1)
                    prof.counters = dict(ctx.prof.counters)
            except MiniParError:
                pass
            return times, prof
        if model in ("openmp", "kokkos"):
            try:
                _, _, ctx = self._run_shared(program, problem, inputs, model,
                                             TIMING_FUEL, scale,
                                             profile=profile,
                                             vec_stats=vec_stats)
            except MiniParError:
                return times, prof
            for t in self.thread_counts:
                times[t] = ctx.sim_seconds(t)
                if prof is not None:
                    prof.categories[t] = ctx.prof.categories_for(ctx, t)
            if prof is not None:
                prof.counters = dict(ctx.prof.counters)
            return times, prof
        if model == "mpi":
            for p in self.mpi_rank_counts:
                res = run_mpi(program, problem.entry,
                              problem.to_minipar_args(inputs), p, self.machine,
                              work_scale=scale, fuel=TIMING_FUEL,
                              profile=profile, vectorize=self.vectorize,
                              vec_stats=vec_stats)
                if res.error is None:
                    times[p] = res.sim_seconds
                    if prof is not None and res.profile is not None:
                        prof.categories[p] = res.profile.categories
                        prof.counters = dict(res.profile.counters)
            return times, prof
        if model == "mpi+omp":
            ranks, tpr = self.hybrid_config
            res = run_mpi(program, problem.entry,
                          problem.to_minipar_args(inputs), ranks, self.machine,
                          work_scale=scale, fuel=TIMING_FUEL,
                          threads_per_rank=tpr, profile=profile,
                          vectorize=self.vectorize, vec_stats=vec_stats)
            if res.error is None:
                times[ranks * tpr] = res.sim_seconds
                if prof is not None and res.profile is not None:
                    prof.categories[ranks * tpr] = res.profile.categories
                    prof.counters = dict(res.profile.counters)
            return times, prof
        # cuda / hip
        args = self._gpu_args(problem, inputs, model)
        res = launch(program, problem.entry, args,
                     problem.default_gpu_threads(inputs), self.machine,
                     dialect=model, work_scale=scale, fuel=TIMING_FUEL,
                     profile=profile, vectorize=self.vectorize,
                     vec_stats=vec_stats)
        if res.error is None:
            times[res.total_threads] = res.sim_seconds
            if prof is not None and res.profile is not None:
                prof.categories[res.total_threads] = res.profile.categories
                prof.counters = dict(res.profile.counters)
        return times, prof

    # -- the full per-sample pipeline ----------------------------------------------------

    def _correct_phase(self, source: str, prompt: Prompt,
                       vec_stats: Optional[VecStats] = None
                       ) -> Tuple[RunResult, Optional[CompiledProgram]]:
        """Compile → static screen → correctness.  Returns the result and
        the compiled program (for the timing phase), or ``None`` when the
        pipeline stopped before execution."""
        program, checked, reason = _compile_checked(source, prompt.model)
        if program is None:
            return RunResult("build_error", reason or "build failed"), None
        diagnostics: List[Diagnostic] = []
        if self.static_screen:
            diagnostics = lint_checked(checked, prompt.model)
            fatal = blocking(diagnostics)
            if fatal:
                return RunResult("static_fail",
                                 f"static: {fatal[0].message}",
                                 diagnostics=diagnostics), program
        result = self.check_correct(program, source, prompt, checked=checked,
                                    vec_stats=vec_stats)
        result.diagnostics = diagnostics
        return result, program

    def evaluate_sample(self, source: str, prompt: Prompt,
                        with_timing: bool = False,
                        profile: bool = False) -> RunResult:
        if inject.ACTIVE is None:
            # the fast path: identical to the pre-resilience pipeline
            stats = VecStats()
            result, program = self._correct_phase(source, prompt,
                                                  vec_stats=stats)
            if result.status == "correct" and with_timing:
                if profile:
                    result.times, result.profile = self.measure_profiled(
                        program, prompt, vec_stats=stats)
                else:
                    result.times = self.measure(program, prompt,
                                                vec_stats=stats)
            result.vec = stats.as_dict(self.vectorize)
            return result
        return self._evaluate_resilient(source, prompt, with_timing, profile)

    def _evaluate_resilient(self, source: str, prompt: Prompt,
                            with_timing: bool,
                            profile: bool = False) -> RunResult:
        """``evaluate_sample`` under an installed fault injector.

        Each attempt runs in a fault scope named after the *sample* (not
        the attempt), so occurrence counters persist across retries: a
        single-occurrence fault consumed by attempt 0 will not re-fire on
        attempt 1, which is exactly how a transient infrastructure fault
        behaves.  Failures are retried (with bounded exponential backoff)
        only when the injector actually fired during the attempt or the
        fault announced itself as transient; a clean failure is the
        sample's own and is returned immediately.
        """
        inj = inject.ACTIVE
        digest = hashlib.sha256(source.encode()).hexdigest()[:12]
        scope_name = f"{prompt.uid}/{digest}"
        delay = self.retry_backoff
        last_detail = ""
        for attempt in range(self.transient_retries + 1):
            # fresh counters per attempt: a retried attempt re-runs every
            # loop, and the record should describe the attempt it kept
            stats = VecStats()
            with inj.scope(scope_name):
                fired_before = inj.scope_fired()
                try:
                    rule = inj.fire("harness.flake", "attempt")
                    if rule is not None:
                        raise FaultInjected(
                            "harness.flake",
                            "injected harness infrastructure flake")
                    result, program = self._correct_phase(source, prompt,
                                                          vec_stats=stats)
                except FaultInjected as exc:
                    last_detail = f"infra: {exc}"
                    if exc.transient and attempt < self.transient_retries:
                        time.sleep(min(delay, 1.0))
                        delay *= 2
                        continue
                    break
                fired = inj.scope_fired() - fired_before
                if fired and result.status not in ("correct", "build_error",
                                                   "static_fail"):
                    # the attempt was fault-perturbed and failed: treat
                    # the failure as transient infrastructure, not the
                    # sample's own defect
                    last_detail = (f"infra: fault-perturbed attempt ended in "
                                   f"{result.status} ({result.detail})")
                    if attempt < self.transient_retries:
                        time.sleep(min(delay, 1.0))
                        delay *= 2
                        continue
                    break
                if result.status != "correct" or not with_timing:
                    result.vec = stats.as_dict(self.vectorize)
                    return result
                # timing phase: faults here degrade rather than discard
                timing_fired = inj.scope_fired()
                sweep_prof: Optional[Profile] = None
                try:
                    rule = inj.fire("harness.timing", "sweep")
                    if rule is not None:
                        times: Optional[Dict[int, float]] = {}
                    elif profile:
                        times, sweep_prof = self.measure_profiled(
                            program, prompt, vec_stats=stats)
                    else:
                        times = self.measure(program, prompt,
                                             vec_stats=stats)
                except FaultInjected:
                    rule, times = None, None
                if rule is not None or times is None \
                        or inj.scope_fired() > timing_fired:
                    result.status = "degraded"
                    result.detail = ("timing sweep fault-perturbed; "
                                     "correctness-only record")
                    result.times = {}
                    result.vec = stats.as_dict(self.vectorize)
                    return result
                result.times = times
                result.profile = sweep_prof
                result.vec = stats.as_dict(self.vectorize)
                return result
        detail = last_detail or "infrastructure fault"
        return RunResult(
            "system_error",
            f"{detail} (retry budget of {self.transient_retries} exhausted)")
