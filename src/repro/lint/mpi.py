"""MPI deadlock and collective-mismatch detection.

The analyzer works per kernel, on the set of kernels that make MPI
communication calls.  For each such kernel it enumerates control-flow
paths, forking at ``if`` statements and tracking whether each fork
condition is *rank-dependent* (its condition transitively reads
``mpi_rank()``).  Every path accumulates a symbolic sequence of
communication tokens — collectives by name, plus anonymous ``send`` and
``recv`` markers.

Findings:

* Two paths separated by a rank-dependent fork whose collective
  sequences differ → **definite** ``collective-mismatch``: some ranks
  enter a collective the others never post, which hangs every execution
  with more than one rank.  (A rank-dependent ``return`` before a later
  collective is the same defect and is caught the same way.)
* Paths separated only by data-dependent forks with differing
  collective sequences → **possible** ``collective-divergence`` (ranks
  may branch differently on their local data).
* ``mpi_recv_*`` used by a program with no ``mpi_send`` anywhere →
  **definite** ``recv-without-send``.
* Every path through a kernel posts more point-to-point receives than
  *any* path posts sends → **definite** ``more-recvs-than-sends``
  (total receives exceed total sends across ranks, so some receive can
  never complete).
* Sends with no receives anywhere → **possible** ``send-without-recv``
  (the runtime's eager sends may still complete, but nothing drains
  them).

Loops are handled conservatively: communication in ``for``-loop bounds
is evaluated exactly once and extends every path like a straight-line
statement; a loop whose bounds are rank-invariant and whose body has a
single possible communication sequence contributes one composite token
(identical on all ranks, so it can never cause a mismatch by itself);
anything else — rank-dependent bounds, ``while`` loops with
communication, ``break``/``continue`` around communication — degrades
to a **possible** diagnostic and an opaque token.  Kernels with
more than ``_PATH_CAP`` paths skip mismatch reporting rather than risk a
spurious *definite*.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from ..lang import ast as A
from ..lang import builtins as B
from ..lang.typecheck import CheckedProgram
from .diagnostics import (ANALYZER_MPI, DEFINITE, POSSIBLE, Diagnostic)

_PATH_CAP = 128

_RANK_SOURCES = {"mpi_rank"}
_SEND = {"mpi_send"}
_RECV = {name for name in B.names_in_category("mpi")
         if name.startswith("mpi_recv_")}
#: collectives = every MPI builtin that all ranks must post together
_COLLECTIVES = {
    name for name in B.names_in_category("mpi")
    if name not in _SEND | _RECV | {"mpi_rank", "mpi_size"}
}

_INF = 10 ** 9


@dataclass(frozen=True)
class _Path:
    seq: Tuple[object, ...] = ()
    sends: int = 0
    recvs: int = 0
    counts_known: bool = True
    rank_forked: bool = False
    data_forked: bool = False
    returned: bool = False


class _MPIAnalyzer:
    def __init__(self, checked: CheckedProgram):
        self.checked = checked
        self.program = checked.program
        self.diagnostics: List[Diagnostic] = []
        self._kernel = ""
        self._tainted: Set[str] = set()
        self._capped = False

    # -- entry -------------------------------------------------------------

    def run(self) -> List[Diagnostic]:
        uses_recv = bool(self.checked.builtins_used & _RECV)
        uses_send = bool(self.checked.builtins_used & _SEND)
        if uses_recv and not uses_send:
            node = self._first_call(_RECV)
            self._emit("recv-without-send", DEFINITE,
                       "program posts blocking receives but never sends; "
                       "every receive waits forever", node)
        elif uses_send and not uses_recv:
            node = self._first_call(_SEND)
            self._emit("send-without-recv", POSSIBLE,
                       "program sends but never receives; messages are "
                       "never drained", node)
        for kernel in self.program.kernels:
            if self._kernel_uses_mpi(kernel):
                self._analyze_kernel(kernel)
        return self.diagnostics

    def _kernel_uses_mpi(self, kernel: A.Kernel) -> bool:
        for node in A.walk(kernel.body):
            if isinstance(node, A.Call) and \
                    node.func in _COLLECTIVES | _SEND | _RECV:
                return True
        return False

    def _first_call(self, names: Set[str]):
        for kernel in self.program.kernels:
            for node in A.walk(kernel.body):
                if isinstance(node, A.Call) and node.func in names:
                    return node
        return None

    # -- rank taint --------------------------------------------------------

    def _collect_taint(self, kernel: A.Kernel) -> Set[str]:
        """Names that (transitively) hold a value derived from the rank."""
        tainted: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for node in A.walk(kernel.body):
                if isinstance(node, A.Let):
                    if node.name not in tainted and \
                            self._expr_tainted(node.init, tainted):
                        tainted.add(node.name)
                        changed = True
                elif isinstance(node, A.Assign) and \
                        isinstance(node.target, A.Name):
                    if node.target.ident not in tainted and \
                            self._expr_tainted(node.value, tainted):
                        tainted.add(node.target.ident)
                        changed = True
        return tainted

    def _expr_tainted(self, expr: Optional[A.Expr],
                      tainted: Set[str]) -> bool:
        if expr is None:
            return False
        for node in A.walk(expr):
            if isinstance(node, A.Call) and node.func in _RANK_SOURCES:
                return True
            if isinstance(node, A.Name) and node.ident in tainted:
                return True
        return False

    # -- path enumeration --------------------------------------------------

    def _analyze_kernel(self, kernel: A.Kernel):
        self._kernel = kernel.name
        self._tainted = self._collect_taint(kernel)
        self._capped = False
        paths = self._paths_through_block(kernel.body, [_Path()])
        if self._capped:
            return

        # collective-sequence mismatch across forks
        seqs = {p.seq for p in paths}
        if len(seqs) > 1:
            if any(p.rank_forked for p in paths):
                node = self._first_comm(kernel)
                self._emit(
                    "collective-mismatch", DEFINITE,
                    "ranks take different branches and post different "
                    "collective sequences; the collectives can never "
                    "match up", node)
            elif any(p.data_forked for p in paths):
                node = self._first_comm(kernel)
                self._emit(
                    "collective-divergence", POSSIBLE,
                    "collective sequence depends on a data-dependent "
                    "branch; ranks may diverge", node)

        # point-to-point balance: every path recvs more than any path sends
        if all(p.counts_known for p in paths) and paths:
            min_recvs = min(p.recvs for p in paths)
            max_sends = max(p.sends for p in paths)
            if min_recvs > max_sends:
                node = self._first_comm(kernel, _RECV)
                self._emit(
                    "more-recvs-than-sends", DEFINITE,
                    f"every path posts at least {min_recvs} receive(s) "
                    f"but no path posts more than {max_sends} send(s); "
                    "some receive can never complete", node)

    def _first_comm(self, kernel: A.Kernel, names: Optional[Set[str]] = None):
        wanted = names or (_COLLECTIVES | _SEND | _RECV)
        for node in A.walk(kernel.body):
            if isinstance(node, A.Call) and node.func in wanted:
                return node
        return kernel

    def _paths_through_block(self, block: A.Block,
                             paths: List[_Path]) -> List[_Path]:
        for stmt in block.stmts:
            paths = self._paths_through_stmt(stmt, paths)
            if self._capped:
                return paths
        return paths

    def _paths_through_stmt(self, stmt, paths: List[_Path]) -> List[_Path]:
        live = [p for p in paths if not p.returned]
        done = [p for p in paths if p.returned]
        if not live:
            return done

        if isinstance(stmt, A.Block):
            return done + self._paths_through_block(stmt, live)

        if isinstance(stmt, A.ExprStmt) or isinstance(stmt, A.Let) or \
                isinstance(stmt, A.Assign):
            tokens = self._comm_tokens_in_expr(stmt)
            if tokens:
                live = [self._extend(p, tokens) for p in live]
            return done + live

        if isinstance(stmt, A.Return):
            tokens = self._comm_tokens_in_expr(stmt)
            if tokens:
                live = [self._extend(p, tokens) for p in live]
            return done + [replace(p, returned=True) for p in live]

        if isinstance(stmt, A.If):
            cond_tokens = self._comm_tokens_in_expr(stmt.cond)
            if cond_tokens:
                live = [self._extend(p, cond_tokens) for p in live]
            rank_dep = self._expr_tainted(stmt.cond, self._tainted)
            then_paths = self._paths_through_stmt(stmt.then, list(live))
            if stmt.orelse is not None:
                else_paths = self._paths_through_stmt(stmt.orelse,
                                                      list(live))
            else:
                else_paths = list(live)
            flag = (dict(rank_forked=True) if rank_dep
                    else dict(data_forked=True))
            merged = [replace(p, **flag) for p in then_paths + else_paths]
            if len(merged) > _PATH_CAP:
                self._capped = True
                merged = merged[:_PATH_CAP]
            return done + merged

        if isinstance(stmt, A.For):
            return done + self._loop(stmt, stmt.body, live,
                                     bounds=(stmt.lo, stmt.hi, stmt.step))

        if isinstance(stmt, A.While):
            return done + self._loop(stmt, stmt.body, live,
                                     bounds=(stmt.cond,))

        if isinstance(stmt, A.OmpParallelFor):
            return done + self._loop(stmt, stmt.loop.body, live,
                                     bounds=(stmt.loop.lo, stmt.loop.hi,
                                             stmt.loop.step))

        if isinstance(stmt, A.OmpCritical):
            return done + self._paths_through_block(stmt.body, live)

        if isinstance(stmt, A.OmpAtomic):
            return done + live

        return done + live

    def _loop(self, node, body: A.Block, live: List[_Path],
              bounds: tuple) -> List[_Path]:
        is_while = isinstance(node, A.While)
        # For-loop bounds are evaluated exactly once, before the first
        # iteration, so their communication extends every path like a
        # straight-line statement.  A while condition re-evaluates per
        # iteration and falls through to the opaque handling below.
        if not is_while:
            bounds_tokens: List[object] = []
            for b in bounds:
                if b is not None:
                    bounds_tokens.extend(self._comm_tokens_in_expr_raw(b))
            if bounds_tokens:
                live = [self._extend(p, bounds_tokens) for p in live]
        cond_comm = is_while and any(
            self._comm_tokens_in_expr_raw(b) for b in bounds
            if b is not None)
        if not self._block_has_comm(body) and not cond_comm:
            return live

        bounds_tainted = any(
            self._expr_tainted(b, self._tainted) for b in bounds
            if b is not None)
        body_paths = self._paths_through_block(body, [_Path()])
        body_seqs = {p.seq for p in body_paths}
        breaks = any(isinstance(n, (A.Break, A.Continue))
                     for n in A.walk(body))
        uniform = (len(body_seqs) == 1 and not breaks
                   and not any(p.rank_forked or p.data_forked or p.returned
                               for p in body_paths))

        if bounds_tainted:
            self._emit(
                "collective-in-rank-dependent-loop", POSSIBLE,
                "communication inside a loop whose trip count depends on "
                "the rank; ranks may post different sequences", node)
            return [self._extend_opaque(p, ("opaque-loop", 0))
                    for p in live]
        if not uniform or is_while:
            self._emit(
                "variable-communication-in-loop", POSSIBLE,
                "communication inside a loop whose per-iteration "
                "sequence is not fixed; ranks may diverge", node)
            token = ("opaque-loop", 0)
            return [self._extend_opaque(p, token) for p in live]

        inner = next(iter(body_seqs))
        token = ("loop", inner)
        counts_known = all(p.counts_known and p.sends == 0 and p.recvs == 0
                           for p in body_paths)
        out = []
        for p in live:
            q = replace(p, seq=p.seq + (token,))
            if not counts_known:
                q = replace(q, counts_known=False)
            out.append(q)
        return out

    def _extend(self, path: _Path, tokens: List[object]) -> _Path:
        seq = path.seq
        sends, recvs = path.sends, path.recvs
        for tok in tokens:
            if tok == "send":
                sends += 1
            elif tok == "recv":
                recvs += 1
            seq = seq + (tok,)
        return replace(path, seq=seq, sends=sends, recvs=recvs)

    @staticmethod
    def _extend_opaque(path: _Path, token) -> _Path:
        return replace(path, seq=path.seq + (token,), counts_known=False)

    # -- token extraction --------------------------------------------------

    def _comm_tokens_in_expr_raw(self, root) -> List[object]:
        tokens = []
        for node in A.walk(root):
            if isinstance(node, A.Call):
                if node.func in _COLLECTIVES:
                    tokens.append(("coll", node.func))
                elif node.func in _SEND:
                    tokens.append("send")
                elif node.func in _RECV:
                    tokens.append("recv")
        return tokens

    def _comm_tokens_in_expr(self, stmt) -> List[object]:
        # walk the statement but not into nested statements (handled by
        # the path walker); Let/Assign/ExprStmt/Return have no nested
        # statements, so a full walk is safe here.
        return self._comm_tokens_in_expr_raw(stmt)

    def _block_has_comm(self, block: A.Block) -> bool:
        return bool(self._comm_tokens_in_expr_raw(block))

    # -- reporting ---------------------------------------------------------

    def _emit(self, kind: str, certainty: str, message: str, node):
        self.diagnostics.append(Diagnostic(
            analyzer=ANALYZER_MPI, kind=kind, certainty=certainty,
            message=message, line=getattr(node, "line", 0),
            col=getattr(node, "col", 0), kernel=self._kernel))


def check_mpi(checked: CheckedProgram, model: str) -> List[Diagnostic]:
    """Run the MPI analyzer; a no-op for non-MPI execution models."""
    if model not in ("mpi", "mpi+omp"):
        return []
    if not (checked.builtins_used & (_COLLECTIVES | _SEND | _RECV)):
        return []
    return _MPIAnalyzer(checked).run()
