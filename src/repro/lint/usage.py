"""AST-based parallel-model usage check.

Replaces the regex scan in :mod:`repro.harness.usagecheck` as the
primary oracle: instead of pattern-matching source text (which sees
comments and string literals), this inspects the *type-checked* program
— the ``pragma omp`` flag the parser recorded and the set of builtins
the checker resolved.  A call appearing only in a comment therefore no
longer counts as "using" a model.

The regex check is kept as a documented fallback for sources that do
not parse (see ``harness/usagecheck.py``), and a parity test pins the
two oracles to identical answers over the whole handwritten corpus.
"""

from __future__ import annotations

from typing import List

from ..lang.typecheck import CheckedProgram
from .diagnostics import ANALYZER_USAGE, DEFINITE, Diagnostic

#: what each execution model must exhibit, as (description, predicate)
_REQUIREMENTS = {
    "serial": None,
    "openmp": "an 'omp parallel for' pragma",
    "kokkos": "a Kokkos parallel_* pattern call",
    "mpi": "an mpi_* communication builtin",
    "mpi+omp": "both an mpi_* builtin and an omp pragma",
    "cuda": "a GPU intrinsic (thread_idx/block_idx/...)",
    "hip": "a GPU intrinsic (thread_idx/block_idx/...)",
}


def model_is_used(checked: CheckedProgram, model: str) -> bool:
    """AST oracle: does the program exercise ``model`` at all?"""
    cats = checked.builtin_categories
    if model == "serial":
        return True
    if model == "openmp":
        return checked.uses_omp_pragmas
    if model == "kokkos":
        return "kokkos" in cats
    if model == "mpi":
        return "mpi" in cats
    if model == "mpi+omp":
        return "mpi" in cats and checked.uses_omp_pragmas
    if model in ("cuda", "hip"):
        return "gpu" in cats
    return True


def check_usage(checked: CheckedProgram, model: str) -> List[Diagnostic]:
    """One ``definite`` diagnostic when the sample ignores its model.

    Usage findings are non-blocking by construction (see
    :meth:`Diagnostic.blocking`): the harness maps them to the
    pre-existing ``not_parallel`` status rather than ``static_fail``.
    """
    if model_is_used(checked, model):
        return []
    need = _REQUIREMENTS.get(model, "")
    return [Diagnostic(
        analyzer=ANALYZER_USAGE, kind="model-not-used", certainty=DEFINITE,
        message=f"execution model {model!r} requires {need}, but the "
                "program never uses it",
        line=getattr(checked.program, "line", 0),
        col=getattr(checked.program, "col", 0))]
