"""Structured diagnostics emitted by the MiniParSan analyzers.

A :class:`Diagnostic` is the unit every analyzer produces and every
consumer (the harness pre-execution screen, the scheduler events, the CSV
export, the ``repro lint`` CLI) understands.  The two *certainty* levels
carry the contract the differential tests enforce:

* ``definite`` — the analyzer can prove the program misbehaves on every
  execution (e.g. an unprotected shared-scalar accumulation inside an
  ``omp parallel for``).  The harness short-circuits these to the
  ``static_fail`` status without running the sample.
* ``possible`` — the access pattern cannot be proven safe (e.g. a write
  at a data-dependent index), but concrete inputs may never collide.
  These are attached to the result for reporting and never block
  execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

#: certainty levels
DEFINITE = "definite"
POSSIBLE = "possible"

#: analyzer identifiers
ANALYZER_RACE = "race"
ANALYZER_MPI = "mpi"
ANALYZER_USAGE = "usage"
ANALYZER_BUILD = "build"

#: severity per certainty — definite findings are errors, possible ones
#: warnings; build/usage findings are always errors
_SEVERITY = {DEFINITE: "error", POSSIBLE: "warning"}


@dataclass(frozen=True)
class Diagnostic:
    """One finding, anchored to a source span."""

    analyzer: str           # ANALYZER_* above
    kind: str               # machine-readable finding id, e.g. "shared-scalar-write"
    certainty: str          # DEFINITE | POSSIBLE
    message: str
    line: int = 0
    col: int = 0
    kernel: str = ""        # enclosing kernel name, "" if unknown

    @property
    def severity(self) -> str:
        return _SEVERITY.get(self.certainty, "error")

    @property
    def blocking(self) -> bool:
        """Should the harness screen skip dynamic execution for this?

        Only provably-wrong race/deadlock findings block; usage findings
        map to the pre-existing ``not_parallel`` status instead.
        """
        return (self.certainty == DEFINITE
                and self.analyzer in (ANALYZER_RACE, ANALYZER_MPI))

    def to_dict(self) -> Dict[str, object]:
        """JSON-stable payload (insertion order is the wire order)."""
        return {
            "analyzer": self.analyzer,
            "kind": self.kind,
            "certainty": self.certainty,
            "severity": self.severity,
            "message": self.message,
            "line": self.line,
            "col": self.col,
            "kernel": self.kernel,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "Diagnostic":
        return cls(
            analyzer=str(raw.get("analyzer", "")),
            kind=str(raw.get("kind", "")),
            certainty=str(raw.get("certainty", POSSIBLE)),
            message=str(raw.get("message", "")),
            line=int(raw.get("line", 0) or 0),
            col=int(raw.get("col", 0) or 0),
            kernel=str(raw.get("kernel", "")),
        )

    def render(self) -> str:
        """One human-readable line, ``file:line:col`` style."""
        where = f"{self.line}:{self.col}" if self.line else "-"
        head = f"{where}: {self.severity}[{self.analyzer}/{self.kind}]"
        if self.kernel:
            head += f" in kernel {self.kernel!r}"
        return f"{head}: {self.message}"


def sort_key(diag: Diagnostic):
    """Stable report order: position, then analyzer/kind."""
    return (diag.line, diag.col, diag.analyzer, diag.kind, diag.message)


def definite(diags: List[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diags if d.certainty == DEFINITE]


def blocking(diags: List[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diags if d.blocking]
