"""Shared-memory race detection for ``omp parallel for`` bodies and
Kokkos functors.

The analyzer walks each parallel region and classifies every array index
expression relative to the region's parallel induction variable:

``INV``
    Loop-invariant — every iteration addresses the same cell.  An
    unprotected write here races on every execution.
``INJ``
    Injective affine form ``c*var + off`` with a nonzero literal
    coefficient ``c`` and a loop-invariant offset — distinct iterations
    address distinct cells, so a single such write is private to its
    iteration.
``DEP``
    Anything else (reads memory, uses mutated locals or nested loop
    variables, non-literal coefficients) — collisions cannot be ruled
    out.

Diagnostics then follow from pairing accesses to the same *shared*
array (kernel parameters or pre-region locals; arrays allocated inside
the region are iteration-private):

* unprotected INV write → **definite** ``loop-invariant-write``
* unprotected write to a shared scalar → **definite**
  ``shared-scalar-write``
* INJ write plus a read of the same array at a *different* offset under
  the *same* coefficients → **definite** ``inplace-stencil`` (iteration
  ``i`` reads a cell another iteration writes)
* whole-array builtin mutation (``sort``/``fill``/``swap``) of a shared
  array → **definite** ``whole-array-write``
* DEP writes, differing INJ write pairs, and INJ-write/DEP-read pairs →
  **possible** (cannot be proven disjoint)

Protection that silences a finding: ``pragma omp atomic`` /
``pragma omp critical``, ``reduction`` clause variables, and the
``atomic_add``/``atomic_min``/``atomic_max`` builtins.

Regions with a provable trip count of 0 or 1 are skipped (a single
iteration cannot race with itself), and accesses under any branch whose
condition is not the literal ``true`` are demoted from definite to
possible: the branch may serialize them (``if (i == 0)``) or skip them
entirely (``if (flag)``), so the write is not provably executed on
every run — which is what ``definite`` promises.

A one-level interprocedural summary handles the corpus idiom of
delegating the loop body to a helper: a callee that only writes an
array parameter at the value of one of its scalar parameters is
``PARAM_IDX`` — at a call site passing the parallel variable there, the
write is injective; any other callee write is DEP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..lang import ast as A
from ..lang.typecheck import CheckedProgram
from .diagnostics import (ANALYZER_RACE, DEFINITE, POSSIBLE, Diagnostic)

#: builtins that mutate their first (array) argument wholesale
_WHOLE_ARRAY_WRITERS = {"sort", "fill", "swap"}
#: builtins that atomically update array cells — protected by definition
_ATOMIC_WRITERS = {"atomic_add", "atomic_min", "atomic_max"}
#: builtins whose results are loop-invariant when their arguments are
_PURE_INVARIANT = {"len", "rows", "cols"}
#: kokkos entry points carrying a functor: name -> lambda argument slot
_KOKKOS_FUNCTORS = {
    "parallel_for": 1,
    "parallel_reduce": 2,
    "parallel_scan_inclusive": 2,
    "parallel_scan_exclusive": 2,
}
#: GPU intrinsics; a kernel calling any of these runs once per thread
_GPU_INTRINSICS = {"thread_idx", "block_idx", "block_dim", "grid_dim",
                   "sync_threads"}
#: GPU intrinsics whose value is the same on every thread
_GPU_INVARIANT = {"block_dim", "grid_dim"}


def _is_global_tid(expr) -> bool:
    """Match the canonical ``block_idx() * block_dim() + thread_idx()``
    global-thread-index idiom (in any commutative arrangement)."""
    if not (isinstance(expr, A.Binary) and expr.op == "+"):
        return False

    def is_call(e, name):
        return isinstance(e, A.Call) and e.func == name

    def is_block_offset(e):
        return (isinstance(e, A.Binary) and e.op == "*"
                and ((is_call(e.left, "block_idx")
                      and is_call(e.right, "block_dim"))
                     or (is_call(e.left, "block_dim")
                         and is_call(e.right, "block_idx"))))

    return ((is_call(expr.left, "thread_idx")
             and is_block_offset(expr.right))
            or (is_call(expr.right, "thread_idx")
                and is_block_offset(expr.left)))

# -- index forms ------------------------------------------------------------

#: a linear form is (coeff, offset-key); coeff 0 means loop-invariant.
#: offset keys are canonical hashable trees built from folded literals
#: and invariant names; DEP is represented as None.
LinForm = Tuple[int, object]


def _off_add(a, b):
    if isinstance(a, int) and isinstance(b, int):
        return a + b
    if a == 0:
        return b
    if b == 0:
        return a
    return ("+", a, b)


def _off_neg(a):
    if isinstance(a, int):
        return -a
    return ("neg", a)


def _off_mul(k: int, a):
    if isinstance(a, int):
        return k * a
    if k == 1:
        return a
    return ("*", k, a)


@dataclass
class _Region:
    """One parallel region being analyzed."""

    var: str                      # parallel induction variable
    kernel: str
    kind: str                     # "omp" | "kokkos"
    reduction_vars: Set[str] = field(default_factory=set)
    locals: Set[str] = field(default_factory=set)       # names bound inside
    mutated: Set[str] = field(default_factory=set)      # reassigned inside
    dep_vars: Set[str] = field(default_factory=set)     # nested loop vars etc.
    private_arrays: Set[str] = field(default_factory=set)  # alloc'd inside
    let_inits: Dict[str, A.Expr] = field(default_factory=dict)
    #: (array, form, node, protected, guarded)
    writes: List[tuple] = field(default_factory=list)
    #: (array, form, node)
    reads: List[tuple] = field(default_factory=list)
    scalar_writes: List[tuple] = field(default_factory=list)  # (name, node, guarded)


class _RaceAnalyzer:
    def __init__(self, checked: CheckedProgram):
        self.checked = checked
        self.program = checked.program
        self.kernels = {k.name: k for k in self.program.kernels}
        self._summaries: Dict[str, Dict[str, Set[object]]] = {}
        self._in_progress: Set[str] = set()
        self.diagnostics: List[Diagnostic] = []

    # -- entry points ------------------------------------------------------

    def run(self, model: str) -> List[Diagnostic]:
        analyze_omp = model in ("openmp", "mpi+omp")
        analyze_kokkos = model == "kokkos"
        analyze_gpu = model in ("cuda", "hip")
        if not (analyze_omp or analyze_kokkos or analyze_gpu):
            return []
        for kernel in self.program.kernels:
            if analyze_gpu and self._kernel_uses_gpu(kernel):
                self._analyze_gpu_region(kernel)
            for node in A.walk(kernel.body):
                if analyze_omp and isinstance(node, A.OmpParallelFor):
                    self._analyze_omp_region(kernel, node)
                elif analyze_kokkos and isinstance(node, A.Call):
                    slot = _KOKKOS_FUNCTORS.get(node.func)
                    if slot is not None and slot < len(node.args):
                        fn = node.args[slot]
                        if isinstance(fn, A.Lambda):
                            self._analyze_kokkos_region(kernel, node, fn)
        return self.diagnostics

    @staticmethod
    def _kernel_uses_gpu(kernel: A.Kernel) -> bool:
        return any(isinstance(n, A.Call) and n.func in _GPU_INTRINSICS
                   for n in A.walk(kernel.body))

    # -- region setup ------------------------------------------------------

    def _analyze_omp_region(self, kernel: A.Kernel, pf: A.OmpParallelFor):
        loop = pf.loop
        if self._trip_count_at_most_one(loop.lo, loop.hi, loop.step):
            return
        region = _Region(var=loop.var, kernel=kernel.name, kind="omp")
        for clause in pf.clauses:
            if clause.kind == "reduction" and clause.var:
                region.reduction_vars.add(clause.var)
        self._collect_bindings(loop.body, region)
        self._scan_block(loop.body, region, protected=False, guarded=False)
        self._report(region, pf)

    def _analyze_kokkos_region(self, kernel: A.Kernel, call: A.Call,
                               fn: A.Lambda):
        n = call.args[0] if call.args else None
        if isinstance(n, A.IntLit) and n.value <= 1:
            return
        if not fn.params:
            return
        region = _Region(var=fn.params[0], kernel=kernel.name, kind="kokkos")
        region.dep_vars.update(fn.params[1:])
        body = fn.body_block
        if body is not None:
            self._collect_bindings(body, region)
            self._scan_block(body, region, protected=False, guarded=False)
        elif fn.body_expr is not None:
            self._scan_expr(fn.body_expr, region, guarded=False)
        self._report(region, call)

    def _analyze_gpu_region(self, kernel: A.Kernel):
        """The whole kernel body runs once per GPU thread; the induction
        variable is the global-thread-index idiom rather than a name."""
        region = _Region(var="", kernel=kernel.name, kind="gpu")
        self._collect_bindings(kernel.body, region)
        self._scan_block(kernel.body, region, protected=False, guarded=False)
        self._report(region, kernel)

    def _trip_count_at_most_one(self, lo, hi, step) -> bool:
        if not (isinstance(lo, A.IntLit) and isinstance(hi, A.IntLit)):
            return False
        stride = 1
        if step is not None:
            if not isinstance(step, A.IntLit) or step.value <= 0:
                return False
            stride = step.value
        span = hi.value - lo.value
        return span <= stride

    def _collect_bindings(self, block: A.Block, region: _Region):
        """Names bound or reassigned anywhere inside the region.

        ``let_inits`` is keyed by name, so a name ``let``-bound in more
        than one (sibling or nested) scope is ambiguous — uses in one
        scope must not resolve through another scope's initializer.
        Such names stay in ``locals`` but are dropped from
        ``let_inits``, which makes ``_lin`` classify them as DEP.
        """
        let_bound: Set[str] = set()
        for node in A.walk(block):
            if isinstance(node, A.Let):
                region.locals.add(node.name)
                if node.name in let_bound:
                    region.let_inits.pop(node.name, None)
                else:
                    let_bound.add(node.name)
                    region.let_inits[node.name] = node.init
                if isinstance(node.init, A.Call) and \
                        node.init.func.startswith("alloc"):
                    region.private_arrays.add(node.name)
            elif isinstance(node, A.Assign) and \
                    isinstance(node.target, A.Name):
                region.mutated.add(node.target.ident)
            elif isinstance(node, A.For):
                region.dep_vars.add(node.var)
                region.locals.add(node.var)
            elif isinstance(node, A.Lambda):
                region.dep_vars.update(node.params)
                region.locals.update(node.params)

    # -- index classification ---------------------------------------------

    def _lin(self, expr: A.Expr, region: _Region,
             depth: int = 0) -> Optional[LinForm]:
        """Affine form of ``expr`` w.r.t. the parallel variable, or None."""
        if depth > 8:
            return None
        if region.kind == "gpu" and _is_global_tid(expr):
            return (1, 0)
        if isinstance(expr, A.IntLit):
            return (0, expr.value)
        if isinstance(expr, (A.FloatLit, A.BoolLit, A.StrLit)):
            return (0, ("lit", repr(getattr(expr, "value", None))))
        if isinstance(expr, A.Name):
            name = expr.ident
            if name == region.var:
                return (1, 0)
            if name in region.dep_vars or name in region.mutated:
                return None
            if name in region.let_inits:
                return self._lin(region.let_inits[name], region, depth + 1)
            if name in region.locals:
                return None
            return (0, ("sym", name))          # invariant outer name
        if isinstance(expr, A.Unary):
            if expr.op == "-":
                inner = self._lin(expr.operand, region, depth + 1)
                if inner is None:
                    return None
                return (-inner[0], _off_neg(inner[1]))
            return None
        if isinstance(expr, A.Binary):
            left = self._lin(expr.left, region, depth + 1)
            right = self._lin(expr.right, region, depth + 1)
            if left is None or right is None:
                return None
            if expr.op == "+":
                return (left[0] + right[0], _off_add(left[1], right[1]))
            if expr.op == "-":
                return (left[0] - right[0],
                        _off_add(left[1], _off_neg(right[1])))
            if expr.op == "*":
                if left[0] == 0 and isinstance(left[1], int):
                    return (left[1] * right[0], _off_mul(left[1], right[1]))
                if right[0] == 0 and isinstance(right[1], int):
                    return (right[1] * left[0], _off_mul(right[1], left[1]))
                if left[0] == 0 and right[0] == 0:
                    return (0, ("*sym", left[1], right[1]))
                return None
            if left[0] == 0 and right[0] == 0:
                return (0, (expr.op, left[1], right[1]))
            return None
        if isinstance(expr, A.Call) and expr.func in _GPU_INVARIANT:
            return (0, ("call", expr.func, ()))
        if isinstance(expr, A.Call) and expr.func in _PURE_INVARIANT:
            keys = []
            for arg in expr.args:
                form = self._lin(arg, region, depth + 1)
                if form is None or form[0] != 0:
                    return None
                keys.append(form[1])
            return (0, ("call", expr.func, tuple(keys)))
        return None                            # Index reads, other calls, ...

    def _index_form(self, indices, region: _Region):
        """Tuple of per-dimension linear forms; None where DEP."""
        return tuple(self._lin(ix, region) for ix in indices)

    @staticmethod
    def _is_injective(form) -> bool:
        """At least one dimension varies injectively with the iteration."""
        return any(d is not None and d[0] != 0 for d in form)

    @staticmethod
    def _is_invariant(form) -> bool:
        return all(d is not None and d[0] == 0 for d in form)

    @staticmethod
    def _is_affine(form) -> bool:
        return all(d is not None for d in form)

    # -- statement / expression scan ---------------------------------------

    def _is_shared_array(self, name: str, region: _Region) -> bool:
        return name not in region.private_arrays and name not in region.locals

    @staticmethod
    def _cond_trivially_true(cond: A.Expr) -> bool:
        return isinstance(cond, A.BoolLit) and cond.value is True

    def _scan_block(self, block: A.Block, region: _Region,
                    protected: bool, guarded: bool):
        for stmt in block.stmts:
            self._scan_stmt(stmt, region, protected, guarded)

    def _scan_stmt(self, stmt, region: _Region, protected: bool,
                   guarded: bool):
        if isinstance(stmt, A.Block):
            self._scan_block(stmt, region, protected, guarded)
        elif isinstance(stmt, A.Let):
            self._scan_expr(stmt.init, region, guarded)
        elif isinstance(stmt, A.Assign):
            self._scan_assign(stmt, region, protected, guarded)
        elif isinstance(stmt, A.If):
            self._scan_expr(stmt.cond, region, guarded)
            branch_guarded = guarded or \
                not self._cond_trivially_true(stmt.cond)
            self._scan_stmt(stmt.then, region, protected, branch_guarded)
            if stmt.orelse is not None:
                self._scan_stmt(stmt.orelse, region, protected,
                                branch_guarded)
        elif isinstance(stmt, A.For):
            self._scan_expr(stmt.lo, region, guarded)
            self._scan_expr(stmt.hi, region, guarded)
            if stmt.step is not None:
                self._scan_expr(stmt.step, region, guarded)
            self._scan_block(stmt.body, region, protected, guarded)
        elif isinstance(stmt, A.While):
            self._scan_expr(stmt.cond, region, guarded)
            self._scan_block(stmt.body, region, protected, guarded)
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                self._scan_expr(stmt.value, region, guarded)
        elif isinstance(stmt, A.ExprStmt):
            self._scan_expr(stmt.expr, region, guarded)
        elif isinstance(stmt, A.OmpParallelFor):
            # nested pragma: the inner loop still runs inside this region
            self._scan_stmt(stmt.loop, region, protected, guarded)
        elif isinstance(stmt, A.OmpCritical):
            self._scan_block(stmt.body, region, protected=True,
                             guarded=guarded)
        elif isinstance(stmt, A.OmpAtomic):
            self._scan_assign(stmt.update, region, protected=True,
                              guarded=guarded)

    def _scan_assign(self, stmt: A.Assign, region: _Region, protected: bool,
                     guarded: bool):
        target = stmt.target
        if isinstance(target, A.Name):
            name = target.ident
            if name not in region.locals and \
                    name not in region.reduction_vars and not protected:
                region.scalar_writes.append((name, stmt, guarded))
        elif isinstance(target, A.Index) and isinstance(target.base, A.Name):
            array = target.base.ident
            if self._is_shared_array(array, region):
                form = self._index_form(target.indices, region)
                region.writes.append((array, form, stmt, protected, guarded))
                if stmt.op != "=":
                    # compound update also reads the cell, same index
                    region.reads.append((array, form, stmt))
            for ix in target.indices:
                self._scan_expr(ix, region, guarded)
        self._scan_expr(stmt.value, region, guarded)

    def _scan_expr(self, expr: A.Expr, region: _Region, guarded: bool):
        if expr is None:
            return
        if isinstance(expr, A.Index):
            if isinstance(expr.base, A.Name) and \
                    self._is_shared_array(expr.base.ident, region):
                form = self._index_form(expr.indices, region)
                region.reads.append((expr.base.ident, form, expr))
            for ix in expr.indices:
                self._scan_expr(ix, region, guarded)
            if not isinstance(expr.base, A.Name):
                self._scan_expr(expr.base, region, guarded)
            return
        if isinstance(expr, A.Call):
            self._scan_call(expr, region, guarded)
            return
        if isinstance(expr, A.Lambda):
            if expr.body_block is not None:
                self._scan_block(expr.body_block, region, protected=False,
                                 guarded=guarded)
            elif expr.body_expr is not None:
                self._scan_expr(expr.body_expr, region, guarded)
            return
        if isinstance(expr, A.Unary):
            self._scan_expr(expr.operand, region, guarded)
        elif isinstance(expr, A.Binary):
            self._scan_expr(expr.left, region, guarded)
            self._scan_expr(expr.right, region, guarded)

    def _scan_call(self, call: A.Call, region: _Region, guarded: bool):
        for arg in call.args:
            self._scan_expr(arg, region, guarded)
        first = call.args[0] if call.args else None
        first_name = first.ident if isinstance(first, A.Name) else None
        shared_first = (first_name is not None and
                        self._is_shared_array(first_name, region))
        if call.func in _ATOMIC_WRITERS:
            if shared_first and len(call.args) >= 2:
                form = self._index_form((call.args[1],), region)
                region.writes.append((first_name, form, call, True, guarded))
            return
        if call.func in _WHOLE_ARRAY_WRITERS:
            if shared_first:
                self._emit(
                    "whole-array-write",
                    POSSIBLE if guarded else DEFINITE,
                    f"{call.func}() mutates shared array "
                    f"'{first_name}' wholesale inside a parallel region",
                    call, region)
            return
        if call.func in self.kernels:
            self._apply_summary(call, region, guarded)

    # -- interprocedural summaries ----------------------------------------

    def _summary(self, name: str):
        """Per-kernel effect summary: ``(writes, reads)``.

        ``writes`` maps a written array-param name to a set of forms —
        ``("pidx", j)`` when every write indexes it with the (never
        reassigned) value of scalar parameter ``j``, else ``"other"``.
        ``reads`` is the set of array-param names the kernel reads
        elements of (index form not tracked).
        """
        if name in self._summaries:
            return self._summaries[name]
        if name in self._in_progress:            # recursion: assume worst
            kernel = self.kernels[name]
            return ({p.name: {"other"} for p in kernel.params},
                    {p.name for p in kernel.params})
        self._in_progress.add(name)
        kernel = self.kernels[name]
        param_pos = {p.name: i for i, p in enumerate(kernel.params)}
        reassigned = {
            n.target.ident
            for n in A.walk(kernel.body)
            if isinstance(n, A.Assign) and isinstance(n.target, A.Name)
        }
        local = {n.name for n in A.walk(kernel.body) if isinstance(n, A.Let)}
        local.update(n.var for n in A.walk(kernel.body)
                     if isinstance(n, A.For))
        writes: Dict[str, Set[object]] = {}
        reads: Set[str] = set()

        def is_param(array: str) -> bool:
            return array in param_pos and array not in local

        def note(array: str, form: object):
            if is_param(array):
                writes.setdefault(array, set()).add(form)

        def note_read(array: str):
            if is_param(array):
                reads.add(array)

        def classify_index(indices) -> object:
            if len(indices) == 1 and isinstance(indices[0], A.Name):
                ix = indices[0].ident
                if ix in param_pos and ix not in reassigned:
                    return ("pidx", param_pos[ix])
            if len(indices) == 1 and isinstance(indices[0], A.IntLit):
                return ("const", indices[0].value)
            return "other"

        for node in A.walk(kernel.body):
            if isinstance(node, A.Index) and isinstance(node.base, A.Name):
                note_read(node.base.ident)
            if isinstance(node, A.Assign) and \
                    isinstance(node.target, A.Index) and \
                    isinstance(node.target.base, A.Name):
                note(node.target.base.ident,
                     classify_index(node.target.indices))
            elif isinstance(node, A.Call):
                if node.func in _ATOMIC_WRITERS or \
                        node.func in _WHOLE_ARRAY_WRITERS:
                    arr = node.args[0] if node.args else None
                    if isinstance(arr, A.Name):
                        note(arr.ident, "other")
                        if node.func != "fill":
                            note_read(arr.ident)
                elif node.func == "copy":
                    arr = node.args[0] if node.args else None
                    if isinstance(arr, A.Name):
                        note_read(arr.ident)
                elif node.func in self.kernels and node.func != name:
                    cwrites, creads = self._summary(node.func)
                    callee_params = self.kernels[node.func].params
                    cpos = {p.name: i for i, p in enumerate(callee_params)}
                    for pname in creads:
                        pos = cpos.get(pname)
                        if pos is not None and pos < len(node.args) and \
                                isinstance(node.args[pos], A.Name):
                            note_read(node.args[pos].ident)
                    for pname, forms in cwrites.items():
                        pos = cpos.get(pname)
                        if pos is None or pos >= len(node.args):
                            continue
                        arg = node.args[pos]
                        if isinstance(arg, A.Name):
                            for form in forms:
                                if isinstance(form, tuple) and \
                                        form[0] == "pidx" and \
                                        form[1] < len(node.args) and \
                                        isinstance(node.args[form[1]],
                                                   A.Name):
                                    ident = node.args[form[1]].ident
                                    if ident in param_pos and \
                                            ident not in reassigned:
                                        note(arg.ident,
                                             ("pidx", param_pos[ident]))
                                        continue
                                    note(arg.ident, "other")
                                elif isinstance(form, tuple) and \
                                        form[0] == "const":
                                    note(arg.ident, form)
                                else:
                                    note(arg.ident, "other")
        self._in_progress.discard(name)
        self._summaries[name] = (writes, reads)
        return self._summaries[name]

    def _apply_summary(self, call: A.Call, region: _Region, guarded: bool):
        kernel = self.kernels[call.func]
        writes, reads = self._summary(call.func)
        param_pos = {p.name: i for i, p in enumerate(kernel.params)}
        for pname in reads:
            pos = param_pos[pname]
            if pos < len(call.args) and isinstance(call.args[pos], A.Name):
                array = call.args[pos].ident
                if self._is_shared_array(array, region):
                    region.reads.append((array, (None,), call))
        for pname, forms in writes.items():
            pos = param_pos[pname]
            if pos >= len(call.args):
                continue
            arg = call.args[pos]
            if not isinstance(arg, A.Name):
                continue
            array = arg.ident
            if not self._is_shared_array(array, region):
                continue
            for form in forms:
                if isinstance(form, tuple) and form[0] == "pidx" and \
                        form[1] < len(call.args):
                    index_form = self._index_form((call.args[form[1]],),
                                                  region)
                elif isinstance(form, tuple) and form[0] == "const":
                    index_form = ((0, form[1]),)
                else:
                    index_form = (None,)
                region.writes.append((array, index_form, call, False,
                                      guarded))

    # -- reporting ---------------------------------------------------------

    def _emit(self, kind: str, certainty: str, message: str, node,
              region: _Region):
        self.diagnostics.append(Diagnostic(
            analyzer=ANALYZER_RACE, kind=kind, certainty=certainty,
            message=message, line=getattr(node, "line", 0),
            col=getattr(node, "col", 0), kernel=region.kernel))

    def _report(self, region: _Region, region_node):
        for name, node, guarded in region.scalar_writes:
            self._emit(
                "shared-scalar-write",
                POSSIBLE if guarded else DEFINITE,
                f"every iteration writes shared scalar '{name}' without "
                "atomic/critical/reduction protection", node, region)

        by_array: Dict[str, List[tuple]] = {}
        for entry in region.writes:
            by_array.setdefault(entry[0], []).append(entry)
        reads_by_array: Dict[str, List[tuple]] = {}
        for entry in region.reads:
            reads_by_array.setdefault(entry[0], []).append(entry)

        for array, writes in sorted(by_array.items()):
            unprotected = [w for w in writes if not w[3]]
            if not unprotected:
                continue
            reported_possible = False
            for _, form, node, _, guarded in unprotected:
                if self._is_invariant(form):
                    self._emit(
                        "loop-invariant-write",
                        POSSIBLE if guarded else DEFINITE,
                        f"every iteration writes the same cell of shared "
                        f"array '{array}'", node, region)
                elif not self._is_injective(form):
                    if not reported_possible:
                        self._emit(
                            "unprovable-write-index", POSSIBLE,
                            f"write index into shared array '{array}' is "
                            "iteration-dependent but not provably "
                            "collision-free", node, region)
                        reported_possible = True

            # distinct injective write forms may still overlap
            inj_forms = {}
            for _, form, node, _, guarded in unprotected:
                if self._is_affine(form) and self._is_injective(form):
                    inj_forms.setdefault(form, (node, guarded))
            if len(inj_forms) > 1:
                node = next(iter(inj_forms.values()))[0]
                self._emit(
                    "overlapping-write-forms", POSSIBLE,
                    f"shared array '{array}' is written at more than one "
                    "affine index form; iterations may collide", node,
                    region)

            # in-place stencil: injective write + shifted read, same coeffs
            for _, wform, wnode, _, wguarded in unprotected:
                if not (self._is_affine(wform)
                        and self._is_injective(wform)):
                    continue
                for _, rform, rnode in reads_by_array.get(array, ()):
                    if not self._is_affine(rform) or len(rform) != \
                            len(wform):
                        if not self._is_affine(rform):
                            self._emit(
                                "write-read-overlap", POSSIBLE,
                                f"shared array '{array}' is written "
                                "injectively but also read at an "
                                "unprovable index", rnode, region)
                        continue
                    same_coeffs = all(w[0] == r[0]
                                      for w, r in zip(wform, rform))
                    if same_coeffs and wform != rform:
                        self._emit(
                            "inplace-stencil",
                            POSSIBLE if wguarded else DEFINITE,
                            f"iterations write shared array '{array}' "
                            "in place while reading neighbouring cells "
                            "written by other iterations", wnode, region)
                    elif not same_coeffs:
                        self._emit(
                            "write-read-overlap", POSSIBLE,
                            f"shared array '{array}' write and read "
                            "index forms differ; iterations may "
                            "overlap", wnode, region)


def dedupe(diags: List[Diagnostic]) -> List[Diagnostic]:
    seen: Set[tuple] = set()
    out: List[Diagnostic] = []
    for d in diags:
        key = (d.analyzer, d.kind, d.certainty, d.line, d.col, d.kernel,
               d.message)
        if key not in seen:
            seen.add(key)
            out.append(d)
    return out


def check_races(checked: CheckedProgram, model: str) -> List[Diagnostic]:
    """Run the shared-memory race analyzer for one execution model.

    Only models whose runtime actually executes the construct in
    parallel are analyzed: ``omp parallel for`` under ``openmp`` and
    ``mpi+omp``, Kokkos functors under ``kokkos``.  Serial and GPU
    models run these constructs sequentially (or not at all), so a
    pragma in a serial sample is a usage problem, not a race.
    """
    return dedupe(_RaceAnalyzer(checked).run(model))
