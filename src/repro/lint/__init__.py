"""MiniParSan: static race / deadlock / usage analysis for MiniPar.

The package exposes one high-level entry point per input shape:

``lint_checked(checked, model)``
    Run all analyzers over an already type-checked program.
``lint_source(source, model)``
    Compile then lint; a source that fails to compile yields a single
    ``build`` diagnostic instead of raising.

Both return a list of :class:`Diagnostic` records sorted in stable
report order.  ``certainty="definite"`` race/MPI findings are
*blocking*: the harness pre-execution screen short-circuits them to the
``static_fail`` status without running the sample (see
``docs/lint.md``).
"""

from __future__ import annotations

from typing import List

from ..lang import CompileError, compile_source
from ..lang.typecheck import CheckedProgram
from .diagnostics import (ANALYZER_BUILD, ANALYZER_MPI, ANALYZER_RACE,
                          ANALYZER_USAGE, DEFINITE, POSSIBLE, Diagnostic,
                          blocking, definite, sort_key)
from .mpi import check_mpi
from .races import check_races
from .usage import check_usage

__all__ = [
    "ANALYZER_BUILD", "ANALYZER_MPI", "ANALYZER_RACE", "ANALYZER_USAGE",
    "DEFINITE", "POSSIBLE", "Diagnostic", "blocking", "definite", "sort_key",
    "check_mpi", "check_races", "check_usage",
    "lint_checked", "lint_source",
]


def lint_checked(checked: CheckedProgram, model: str) -> List[Diagnostic]:
    """All analyzers over a type-checked program, stable order."""
    diags: List[Diagnostic] = []
    diags.extend(check_usage(checked, model))
    diags.extend(check_races(checked, model))
    diags.extend(check_mpi(checked, model))
    return sorted(diags, key=sort_key)


def lint_source(source: str, model: str) -> List[Diagnostic]:
    """Compile then lint; never raises on bad input."""
    try:
        checked = compile_source(source)
    except CompileError as exc:
        return [Diagnostic(
            analyzer=ANALYZER_BUILD, kind="compile-error", certainty=DEFINITE,
            message=str(exc), line=getattr(exc, "line", 0) or 0,
            col=getattr(exc, "col", 0) or 0)]
    except RecursionError:
        return [Diagnostic(
            analyzer=ANALYZER_BUILD, kind="compile-error", certainty=DEFINITE,
            message="program too deeply nested to analyze")]
    return lint_checked(checked, model)
