"""Closure compiler: lower a type-checked MiniPar AST to Python closures.

A tree-walking interpreter re-dispatches on node types every execution; we
instead compile each node once into a closure (``fn(env, ctx) -> value``),
the standard fast-interpreter technique.  Each *statement* closure also
adds a statically pre-computed op-unit weight to the context's cost
counter, so simulated time falls out of execution with one float add per
statement rather than per-node instrumentation.

Statement closures return a control signal:

* ``None``      — fall through
* ``_BREAK``    — break innermost loop
* ``_CONT``     — continue innermost loop
* ``(value,)``  — return from the kernel (1-tuple so ``None`` returns work)

Parallel constructs (OpenMP pragmas, Kokkos patterns, MPI/GPU builtins)
dispatch through ``ctx.rt`` so the same compiled program runs under every
execution model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..lang import ast
from ..lang import builtins as bi
from ..lang import types as T
from ..lang.errors import RuntimeFailure, TrapError
from ..lang.typecheck import CheckedProgram
from .context import ExecCtx
from .tracer import ATOMIC
from .values import Array
from . import vectorize as _vec

_BREAK = object()
_CONT = object()

ExprFn = Callable[[dict, ExecCtx], object]
StmtFn = Callable[[dict, ExecCtx], object]

# Static op-unit weights (see machine.py for the unit scale).
W_NAME = 0.5
W_LIT = 0.25
W_BIN = 1.0
W_UN = 0.5
W_LOAD = 2.0
W_STORE = 2.0
W_LOAD2D = 2.5
W_CALL = 5.0
W_MATH = 4.0
W_LOOP_ITER = 1.5


@dataclass
class LamClosure:
    """A compiled lambda (Kokkos functor)."""

    params: Tuple[str, ...]
    body: Callable          # expr fn or block fn
    is_expr: bool
    weight: float           # static per-call weight
    vec_plan: Optional["_vec.VecPlan"] = None   # bulk tier, when eligible

    def call1(self, env: dict, ctx: ExecCtx, i: int):
        """Invoke with a single int argument (the pattern index)."""
        env[self.params[0]] = i
        if self.is_expr:
            return self.body(env, ctx)
        sig = self.body(env, ctx)
        if sig is not None and type(sig) is not tuple and sig is not _CONT:
            raise RuntimeFailure("illegal control flow escaping a lambda")
        return None


@dataclass
class PForInfo:
    """Everything a runtime needs to execute one OpenMP parallel for."""

    var: str
    lo: ExprFn
    hi: ExprFn
    step: Optional[ExprFn]
    body: StmtFn
    reductions: Tuple[Tuple[str, str], ...]   # (op, var)
    schedule: str
    num_threads: Optional[ExprFn]
    outer_writes: Tuple[str, ...]             # unprotected shared-scalar writes
    iter_weight: float
    where: str
    vec_plan: Optional["_vec.VecPlan"] = None  # bulk tier, when eligible


@dataclass
class CompiledKernel:
    name: str
    param_names: Tuple[str, ...]
    fn: Callable[[ExecCtx, Sequence[object]], object]


class CompiledProgram:
    """A fully compiled MiniPar program, executable under any runtime."""

    def __init__(self, checked: CheckedProgram):
        self.checked = checked
        self.kernels: Dict[str, CompiledKernel] = {}

    def run_kernel(self, name: str, ctx: ExecCtx, args: Sequence[object]):
        return self.kernels[name].fn(ctx, args)


# --------------------------------------------------------------------------
# helpers shared by generated closures
# --------------------------------------------------------------------------


def _idiv(a: int, b: int) -> int:
    """C-style truncating integer division."""
    if b == 0:
        raise TrapError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _imod(a: int, b: int) -> int:
    """C-style remainder (sign of dividend)."""
    if b == 0:
        raise TrapError("integer modulo by zero")
    return a - _idiv(a, b) * b


def _fdiv(a: float, b: float) -> float:
    if b == 0:
        raise TrapError("float division by zero")
    return a / b


def _bounds1(arr: Array, i: int) -> int:
    if type(i) is not int:
        i = int(i)
    if 0 <= i < arr.shape[0]:
        return i
    raise TrapError(f"index {i} out of bounds for array of length {arr.shape[0]}")


def _flat2(arr: Array, i: int, j: int) -> int:
    r, c = arr.shape
    if 0 <= i < r and 0 <= j < c:
        return i * c + j
    raise TrapError(f"index ({i}, {j}) out of bounds for array2d{arr.shape}")


def _touch_whole_array(ctx: ExecCtx, arr: Array, write: bool) -> None:
    """Record a bulk array operation with the tracer (first 64 elements)."""
    t = ctx.trace
    if t is None:
        return
    t.touch_block(arr, min(64, len(arr.data)), write, ctx.protection)


# --------------------------------------------------------------------------
# the compiler
# --------------------------------------------------------------------------


class Compiler:
    def __init__(self, checked: CheckedProgram):
        self.checked = checked
        self.program = CompiledProgram(checked)
        # closures look kernels up through this dict so definition order
        # and mutual recursion don't matter
        self._kernel_fns: Dict[str, Callable] = {}

    def compile(self) -> CompiledProgram:
        for k in self.checked.program.kernels:
            ck = self._compile_kernel(k)
            self.program.kernels[k.name] = ck
            self._kernel_fns[k.name] = ck.fn
        return self.program

    # -- kernels ------------------------------------------------------------

    def _compile_kernel(self, k: ast.Kernel) -> CompiledKernel:
        body = self._compile_block(k.body)
        names = tuple(p.name for p in k.params)
        nparams = len(names)

        def fn(ctx: ExecCtx, args: Sequence[object]):
            if len(args) != nparams:
                raise RuntimeFailure(
                    f"kernel {k.name!r} called with {len(args)} args, "
                    f"expected {nparams}"
                )
            env = dict(zip(names, args))
            ctx.cost += W_CALL
            sig = body(env, ctx)
            if type(sig) is tuple:
                return sig[0]
            return None

        return CompiledKernel(name=k.name, param_names=names, fn=fn)

    # -- statements -----------------------------------------------------------

    def _compile_block(self, b: ast.Block) -> StmtFn:
        fns = [self._compile_stmt(s) for s in b.stmts]
        if len(fns) == 1:
            return fns[0]

        def run(env: dict, ctx: ExecCtx):
            for f in fns:
                sig = f(env, ctx)
                if sig is not None:
                    return sig
            return None

        return run

    def _compile_stmt(self, s: ast.Stmt) -> StmtFn:
        if isinstance(s, ast.Block):
            return self._compile_block(s)
        if isinstance(s, ast.Let):
            return self._compile_let(s)
        if isinstance(s, ast.Assign):
            return self._compile_assign(s)
        if isinstance(s, ast.If):
            return self._compile_if(s)
        if isinstance(s, ast.For):
            return self._compile_for(s)
        if isinstance(s, ast.While):
            return self._compile_while(s)
        if isinstance(s, ast.Return):
            return self._compile_return(s)
        if isinstance(s, ast.Break):
            return lambda env, ctx: _BREAK
        if isinstance(s, ast.Continue):
            return lambda env, ctx: _CONT
        if isinstance(s, ast.ExprStmt):
            f, w = self._compile_expr(s.expr)
            weight = w

            def run_expr(env: dict, ctx: ExecCtx):
                ctx.cost += weight
                f(env, ctx)
                return None

            return run_expr
        if isinstance(s, ast.OmpParallelFor):
            return self._compile_omp_parallel_for(s)
        if isinstance(s, ast.OmpCritical):
            body = self._compile_block(s.body)
            return lambda env, ctx: ctx.rt.omp_critical(env, ctx, body)
        if isinstance(s, ast.OmpAtomic):
            return self._compile_omp_atomic(s)
        raise AssertionError(f"unknown statement {type(s).__name__}")

    def _compile_let(self, s: ast.Let) -> StmtFn:
        init, w = self._compile_expr(s.init)
        name = s.name
        weight = w + W_NAME
        # materialise the declared numeric kind (let x: float = 1 stores 1.0)
        to_float = s.declared is T.FLOAT and self.checked.type_of(s.init) is T.INT

        if to_float:
            def run(env: dict, ctx: ExecCtx):
                ctx.cost += weight
                env[name] = float(init(env, ctx))
                return None
        else:
            def run(env: dict, ctx: ExecCtx):
                ctx.cost += weight
                env[name] = init(env, ctx)
                return None

        return run

    def _compile_assign(self, s: ast.Assign) -> StmtFn:
        value, wv = self._compile_expr(s.value)
        op = s.op
        if isinstance(s.target, ast.Name):
            name = s.target.ident
            target_t = self.checked.expr_types.get(id(s.target))
            to_float = target_t is T.FLOAT and self.checked.type_of(s.value) is T.INT
            weight = wv + W_NAME

            if op == "=":
                if to_float:
                    def run(env: dict, ctx: ExecCtx):
                        ctx.cost += weight
                        env[name] = float(value(env, ctx))
                        return None
                else:
                    def run(env: dict, ctx: ExecCtx):
                        ctx.cost += weight
                        env[name] = value(env, ctx)
                        return None
                return run

            apply = _COMPOUND[op]
            is_int_target = target_t is T.INT

            def run(env: dict, ctx: ExecCtx):
                ctx.cost += weight + W_BIN
                result = apply(env[name], value(env, ctx))
                env[name] = int(result) if is_int_target else result
                return None

            return run

        # indexed store
        assert isinstance(s.target, ast.Index)
        base, wb = self._compile_expr(s.target.base)
        elem_t = self.checked.type_of(s.target)
        to_float = elem_t is T.FLOAT and self.checked.type_of(s.value) is T.INT
        is_int_elem = elem_t is T.INT

        if len(s.target.indices) == 1:
            idx, wi = self._compile_expr(s.target.indices[0])
            weight = wv + wb + wi + W_STORE

            if op == "=":
                def run(env: dict, ctx: ExecCtx):
                    ctx.cost += weight
                    a = base(env, ctx)
                    i = _bounds1(a, idx(env, ctx))
                    v = value(env, ctx)
                    t = ctx.trace
                    if t is not None:
                        t.write(a, i, ctx.protection)
                    a.data[i] = float(v) if to_float else v
                    return None
                return run

            apply = _COMPOUND[op]

            def run(env: dict, ctx: ExecCtx):
                ctx.cost += weight + W_BIN + W_LOAD
                a = base(env, ctx)
                i = _bounds1(a, idx(env, ctx))
                t = ctx.trace
                if t is not None:
                    prot = ctx.protection
                    t.read(a, i, prot)
                    t.write(a, i, prot)
                result = apply(a.data[i], value(env, ctx))
                a.data[i] = int(result) if is_int_elem else result
                return None

            return run

        # 2-D store
        i0, w0 = self._compile_expr(s.target.indices[0])
        i1, w1 = self._compile_expr(s.target.indices[1])
        weight = wv + wb + w0 + w1 + W_LOAD2D

        if op == "=":
            def run(env: dict, ctx: ExecCtx):
                ctx.cost += weight
                a = base(env, ctx)
                flat = _flat2(a, i0(env, ctx), i1(env, ctx))
                v = value(env, ctx)
                t = ctx.trace
                if t is not None:
                    t.write(a, flat, ctx.protection)
                a.data[flat] = float(v) if to_float else v
                return None
            return run

        apply = _COMPOUND[op]

        def run(env: dict, ctx: ExecCtx):
            ctx.cost += weight + W_BIN + W_LOAD2D
            a = base(env, ctx)
            flat = _flat2(a, i0(env, ctx), i1(env, ctx))
            t = ctx.trace
            if t is not None:
                prot = ctx.protection
                t.read(a, flat, prot)
                t.write(a, flat, prot)
            result = apply(a.data[flat], value(env, ctx))
            a.data[flat] = int(result) if is_int_elem else result
            return None

        return run

    def _compile_if(self, s: ast.If) -> StmtFn:
        cond, wc = self._compile_expr(s.cond)
        then = self._compile_block(s.then)
        orelse = self._compile_stmt(s.orelse) if s.orelse is not None else None
        weight = wc + W_UN

        if orelse is None:
            def run(env: dict, ctx: ExecCtx):
                ctx.cost += weight
                if cond(env, ctx):
                    return then(env, ctx)
                return None
            return run

        def run(env: dict, ctx: ExecCtx):
            ctx.cost += weight
            if cond(env, ctx):
                return then(env, ctx)
            return orelse(env, ctx)

        return run

    def _compile_for(self, s: ast.For) -> StmtFn:
        lo, wl = self._compile_expr(s.lo)
        hi, wh = self._compile_expr(s.hi)
        step = self._compile_expr(s.step)[0] if s.step is not None else None
        body = self._compile_block(s.body)
        var = s.var
        header = wl + wh + W_LOOP_ITER
        vec_plan = _vec.build_stmt_plan(self, var, s.body.stmts)

        def run(env: dict, ctx: ExecCtx):
            ctx.cost += header
            start = lo(env, ctx)
            stop = hi(env, ctx)
            inc = step(env, ctx) if step is not None else 1
            if inc <= 0:
                raise TrapError(f"for-loop step must be positive, got {inc}")
            if vec_plan is not None and _vec.run_serial(
                vec_plan, env, ctx, start, stop, inc, W_LOOP_ITER
            ):
                return None
            i = start
            fuel = ctx.fuel
            while i < stop:
                ctx.cost += W_LOOP_ITER
                if ctx.cost > fuel:
                    ctx.check_fuel()
                env[var] = i
                sig = body(env, ctx)
                if sig is not None:
                    if sig is _BREAK:
                        return None
                    if sig is not _CONT:
                        return sig  # a return tuple
                i += inc
            return None

        return run

    def _compile_while(self, s: ast.While) -> StmtFn:
        cond, wc = self._compile_expr(s.cond)
        body = self._compile_block(s.body)
        per_iter = wc + W_LOOP_ITER

        def run(env: dict, ctx: ExecCtx):
            fuel = ctx.fuel
            while True:
                ctx.cost += per_iter
                if ctx.cost > fuel:
                    ctx.check_fuel()
                if not cond(env, ctx):
                    return None
                sig = body(env, ctx)
                if sig is not None:
                    if sig is _BREAK:
                        return None
                    if sig is not _CONT:
                        return sig

        return run

    def _compile_return(self, s: ast.Return) -> StmtFn:
        if s.value is None:
            return lambda env, ctx: (None,)
        value, wv = self._compile_expr(s.value)
        weight = wv

        def run(env: dict, ctx: ExecCtx):
            ctx.cost += weight
            return (value(env, ctx),)

        return run

    # -- OpenMP constructs -------------------------------------------------------

    def _compile_omp_parallel_for(self, s: ast.OmpParallelFor) -> StmtFn:
        loop = s.loop
        lo, _ = self._compile_expr(loop.lo)
        hi, _ = self._compile_expr(loop.hi)
        step = self._compile_expr(loop.step)[0] if loop.step is not None else None
        body = self._compile_block(loop.body)

        reductions: List[Tuple[str, str]] = []
        schedule = "static"
        num_threads: Optional[ExprFn] = None
        for c in s.clauses:
            if c.kind == "reduction":
                reductions.append((c.op, c.var))
            elif c.kind == "schedule":
                schedule = c.schedule
            elif c.kind == "num_threads" and c.value is not None:
                num_threads = self._compile_expr(c.value)[0]

        outer = _collect_outer_writes(loop)
        reduction_vars = {v for _, v in reductions}
        outer_writes = tuple(sorted(outer - reduction_vars - {loop.var}))

        info = PForInfo(
            var=loop.var, lo=lo, hi=hi, step=step, body=body,
            reductions=tuple(reductions), schedule=schedule,
            num_threads=num_threads, outer_writes=outer_writes,
            iter_weight=W_LOOP_ITER,
            where=f"omp parallel for at line {s.line}",
            vec_plan=_vec.build_stmt_plan(self, loop.var, loop.body.stmts),
        )

        def run(env: dict, ctx: ExecCtx):
            ctx.rt.omp_parallel_for(env, ctx, info)
            return None

        return run

    def _compile_omp_atomic(self, s: ast.OmpAtomic) -> StmtFn:
        update = self._compile_assign(s.update)
        scalar_key = None
        if isinstance(s.update.target, ast.Name):
            scalar_key = ("scalar", s.update.target.ident)

        def run(env: dict, ctx: ExecCtx):
            ctx.rt.omp_atomic(env, ctx, update, scalar_key)
            return None

        return run

    # -- expressions --------------------------------------------------------------

    def _compile_expr(self, e: ast.Expr) -> Tuple[ExprFn, float]:
        if isinstance(e, ast.IntLit):
            v = e.value
            return (lambda env, ctx: v), W_LIT
        if isinstance(e, ast.FloatLit):
            v = e.value
            return (lambda env, ctx: v), W_LIT
        if isinstance(e, ast.BoolLit):
            v = e.value
            return (lambda env, ctx: v), W_LIT
        if isinstance(e, ast.StrLit):
            v = e.value
            return (lambda env, ctx: v), 0.0
        if isinstance(e, ast.Name):
            ident = e.ident
            return (lambda env, ctx: env[ident]), W_NAME
        if isinstance(e, ast.Unary):
            f, w = self._compile_expr(e.operand)
            if e.op == "-":
                return (lambda env, ctx: -f(env, ctx)), w + W_UN
            return (lambda env, ctx: not f(env, ctx)), w + W_UN
        if isinstance(e, ast.Binary):
            return self._compile_binary(e)
        if isinstance(e, ast.Index):
            return self._compile_index_load(e)
        if isinstance(e, ast.Call):
            return self._compile_call(e)
        raise AssertionError(f"unexpected expression {type(e).__name__}")

    def _compile_binary(self, e: ast.Binary) -> Tuple[ExprFn, float]:
        lf, wl = self._compile_expr(e.left)
        rf, wr = self._compile_expr(e.right)
        w = wl + wr + W_BIN
        op = e.op
        if op == "&&":
            return (lambda env, ctx: lf(env, ctx) and rf(env, ctx)), w
        if op == "||":
            return (lambda env, ctx: lf(env, ctx) or rf(env, ctx)), w
        if op == "/":
            both_int = (
                self.checked.type_of(e.left) is T.INT
                and self.checked.type_of(e.right) is T.INT
            )
            if both_int:
                return (lambda env, ctx: _idiv(lf(env, ctx), rf(env, ctx))), w + 3
            return (lambda env, ctx: _fdiv(lf(env, ctx), rf(env, ctx))), w + 3
        if op == "%":
            return (lambda env, ctx: _imod(lf(env, ctx), rf(env, ctx))), w + 3
        fn = _BINOPS[op]
        return (lambda env, ctx: fn(lf(env, ctx), rf(env, ctx))), w

    def _compile_index_load(self, e: ast.Index) -> Tuple[ExprFn, float]:
        base, wb = self._compile_expr(e.base)
        if len(e.indices) == 1:
            idx, wi = self._compile_expr(e.indices[0])

            def load(env: dict, ctx: ExecCtx):
                a = base(env, ctx)
                i = _bounds1(a, idx(env, ctx))
                t = ctx.trace
                if t is not None:
                    t.read(a, i, ctx.protection)
                return a.data[i]

            return load, wb + wi + W_LOAD

        i0, w0 = self._compile_expr(e.indices[0])
        i1, w1 = self._compile_expr(e.indices[1])

        def load2(env: dict, ctx: ExecCtx):
            a = base(env, ctx)
            flat = _flat2(a, i0(env, ctx), i1(env, ctx))
            t = ctx.trace
            if t is not None:
                t.read(a, flat, ctx.protection)
            return a.data[flat]

        return load2, wb + w0 + w1 + W_LOAD2D

    # -- calls -------------------------------------------------------------------

    def _compile_call(self, e: ast.Call) -> Tuple[ExprFn, float]:
        sig = bi.get(e.func)
        if sig is None:
            return self._compile_user_call(e)
        factory = _BUILTIN_COMPILERS.get(e.func)
        if factory is None:  # pragma: no cover - catalog/compiler mismatch
            raise AssertionError(f"builtin {e.func!r} has no compiler")
        return factory(self, e)

    def _compile_user_call(self, e: ast.Call) -> Tuple[ExprFn, float]:
        arg_fns: List[ExprFn] = []
        w = W_CALL
        for a in e.args:
            f, wa = self._compile_expr(a)
            arg_fns.append(f)
            w += wa
        table = self._kernel_fns
        name = e.func

        def call(env: dict, ctx: ExecCtx):
            args = [f(env, ctx) for f in arg_fns]
            return table[name](ctx, args)

        return call, w

    def _compile_args(self, e: ast.Call) -> Tuple[List[ExprFn], float]:
        fns: List[ExprFn] = []
        w = 0.0
        for a in e.args:
            if isinstance(a, ast.Lambda):
                fns.append(self._compile_lambda(a))  # type: ignore[arg-type]
                continue
            f, wa = self._compile_expr(a)
            fns.append(f)
            w += wa
        return fns, w

    def _compile_lambda(self, lam: ast.Lambda) -> LamClosure:
        plan = None
        if lam.body_expr is not None:
            f, w = self._compile_expr(lam.body_expr)
            if len(lam.params) == 1:
                plan = _vec.build_expr_plan(self, lam.params[0], lam.body_expr)
            return LamClosure(params=lam.params, body=f, is_expr=True,
                              weight=w, vec_plan=plan)
        assert lam.body_block is not None
        f = self._compile_block(lam.body_block)
        if len(lam.params) == 1:
            plan = _vec.build_stmt_plan(self, lam.params[0],
                                        lam.body_block.stmts)
        return LamClosure(params=lam.params, body=f, is_expr=False,
                          weight=0.0, vec_plan=plan)


_BINOPS: Dict[str, Callable] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_COMPOUND: Dict[str, Callable] = {
    "+=": lambda a, b: a + b,
    "-=": lambda a, b: a - b,
    "*=": lambda a, b: a * b,
    "/=": lambda a, b: _fdiv(a, b) if isinstance(a, float) or isinstance(b, float)
    else _idiv(a, b),
}


def _collect_outer_writes(loop: ast.For) -> Set[str]:
    """Names assigned (as scalars) in a parallel loop body but declared
    outside it, excluding assignments protected by critical/atomic.

    In OpenMP such variables are shared by default, so unprotected writes
    are a data race — this is the static half of race detection (the
    dynamic half, for arrays, lives in the tracer).
    """
    declared: Set[str] = {loop.var}
    assigned: Set[str] = set()

    def visit(node: ast.Node, protected: bool) -> None:
        if isinstance(node, ast.Let):
            declared.add(node.name)
            visit(node.init, protected)
            return
        if isinstance(node, ast.For):
            declared.add(node.var)
        if isinstance(node, ast.Lambda):
            declared.update(node.params)
        if isinstance(node, (ast.OmpCritical, ast.OmpAtomic)):
            protected = True
        if isinstance(node, ast.Assign) and isinstance(node.target, ast.Name):
            if not protected:
                assigned.add(node.target.ident)
            visit(node.value, protected)
            return
        for slot in node.__dataclass_fields__:
            v = getattr(node, slot)
            if isinstance(v, ast.Node):
                visit(v, protected)
            elif isinstance(v, tuple):
                for item in v:
                    if isinstance(item, ast.Node):
                        visit(item, protected)

    visit(loop.body, False)
    return assigned - declared


# --------------------------------------------------------------------------
# builtin compilers
# --------------------------------------------------------------------------

BuiltinCompiler = Callable[[Compiler, ast.Call], Tuple[ExprFn, float]]
_BUILTIN_COMPILERS: Dict[str, BuiltinCompiler] = {}


def _builtin(name: str):
    def deco(fn: BuiltinCompiler) -> BuiltinCompiler:
        _BUILTIN_COMPILERS[name] = fn
        return fn
    return deco


def _simple(name: str, weight: float, impl: Callable):
    """Register a builtin whose implementation is a pure function of its
    evaluated arguments."""

    def factory(c: Compiler, e: ast.Call) -> Tuple[ExprFn, float]:
        fns, w = c._compile_args(e)
        if len(fns) == 0:
            return (lambda env, ctx: impl()), weight
        if len(fns) == 1:
            f0 = fns[0]
            return (lambda env, ctx: impl(f0(env, ctx))), w + weight
        if len(fns) == 2:
            f0, f1 = fns
            return (lambda env, ctx: impl(f0(env, ctx), f1(env, ctx))), w + weight
        f0, f1, f2 = fns
        return (
            lambda env, ctx: impl(f0(env, ctx), f1(env, ctx), f2(env, ctx))
        ), w + weight

    _BUILTIN_COMPILERS[name] = factory


def _safe_sqrt(x):
    if x < 0:
        raise TrapError(f"sqrt of negative value {x}")
    return math.sqrt(x)


def _safe_log(x):
    if x <= 0:
        raise TrapError(f"log of non-positive value {x}")
    return math.log(x)


def _safe_pow(x, y):
    try:
        r = math.pow(x, y)
    except (ValueError, OverflowError) as exc:
        raise TrapError(f"pow({x}, {y}) failed: {exc}") from exc
    return r


def _safe_exp(x):
    if x > 700.0:
        raise TrapError(f"exp overflow ({x})")
    return math.exp(x)


_simple("len", 1.0, lambda a: a.shape[0])
_simple("rows", 1.0, lambda a: a.shape[0])
_simple("cols", 1.0, lambda a: a.shape[1])
_simple("min", 1.0, lambda a, b: a if a < b else b)
_simple("max", 1.0, lambda a, b: a if a > b else b)
_simple("abs", 1.0, lambda a: -a if a < 0 else a)
_simple("sqrt", W_MATH, _safe_sqrt)
_simple("sin", W_MATH, math.sin)
_simple("cos", W_MATH, math.cos)
_simple("exp", W_MATH, _safe_exp)
_simple("log", W_MATH, _safe_log)
_simple("floor", 2.0, lambda x: float(math.floor(x)))
_simple("ceil", 2.0, lambda x: float(math.ceil(x)))
_simple("pow", W_MATH * 2, _safe_pow)
_simple("int", 1.0, lambda x: int(x))
_simple("float", 1.0, lambda x: float(x))


@_builtin("select")
def _c_select(c: Compiler, e: ast.Call) -> Tuple[ExprFn, float]:
    cond, wc = c._compile_expr(e.args[0])
    a, wa = c._compile_expr(e.args[1])
    b, wb = c._compile_expr(e.args[2])
    w = wc + max(wa, wb) + W_BIN
    return (lambda env, ctx: a(env, ctx) if cond(env, ctx) else b(env, ctx)), w


def _alloc_guard(n: int) -> int:
    if n < 0:
        raise TrapError(f"allocation of negative size {n}")
    if n > 50_000_000:
        raise TrapError(f"allocation too large ({n} elements)")
    return n


@_builtin("alloc_float")
def _c_alloc_f(c: Compiler, e: ast.Call):
    f, w = c._compile_expr(e.args[0])

    def run(env, ctx):
        n = _alloc_guard(f(env, ctx))
        ctx.charge_alloc(8.0 * n)
        ctx.cost += 0.5 * n
        return Array.zeros(n, "float")

    return run, w + 2.0


@_builtin("alloc_int")
def _c_alloc_i(c: Compiler, e: ast.Call):
    f, w = c._compile_expr(e.args[0])

    def run(env, ctx):
        n = _alloc_guard(f(env, ctx))
        ctx.charge_alloc(8.0 * n)
        ctx.cost += 0.5 * n
        return Array.zeros(n, "int")

    return run, w + 2.0


@_builtin("alloc2d_float")
def _c_alloc2f(c: Compiler, e: ast.Call):
    f0, w0 = c._compile_expr(e.args[0])
    f1, w1 = c._compile_expr(e.args[1])

    def run(env, ctx):
        r = _alloc_guard(f0(env, ctx))
        cc = _alloc_guard(f1(env, ctx))
        _alloc_guard(r * cc)
        ctx.charge_alloc(8.0 * r * cc)
        ctx.cost += 0.5 * r * cc
        return Array.zeros2d(r, cc, "float")

    return run, w0 + w1 + 2.0


@_builtin("alloc2d_int")
def _c_alloc2i(c: Compiler, e: ast.Call):
    f0, w0 = c._compile_expr(e.args[0])
    f1, w1 = c._compile_expr(e.args[1])

    def run(env, ctx):
        r = _alloc_guard(f0(env, ctx))
        cc = _alloc_guard(f1(env, ctx))
        _alloc_guard(r * cc)
        ctx.charge_alloc(8.0 * r * cc)
        ctx.cost += 0.5 * r * cc
        return Array.zeros2d(r, cc, "int")

    return run, w0 + w1 + 2.0


@_builtin("copy")
def _c_copy(c: Compiler, e: ast.Call):
    f, w = c._compile_expr(e.args[0])

    def run(env, ctx):
        a = f(env, ctx)
        ctx.charge_alloc(8.0 * len(a.data))
        ctx.cost += 1.0 * len(a.data)
        _touch_whole_array(ctx, a, write=False)
        return a.copy()

    return run, w + 2.0


@_builtin("fill")
def _c_fill(c: Compiler, e: ast.Call):
    f, w = c._compile_expr(e.args[0])
    fv, wv = c._compile_expr(e.args[1])
    to_float = (
        c.checked.type_of(e.args[0]).elem is T.FLOAT  # type: ignore[union-attr]
        and c.checked.type_of(e.args[1]) is T.INT
    )

    def run(env, ctx):
        a = f(env, ctx)
        v = fv(env, ctx)
        if to_float:
            v = float(v)
        ctx.cost += 1.0 * len(a.data)
        _touch_whole_array(ctx, a, write=True)
        a.data[:] = [v] * len(a.data)
        return None

    return run, w + wv + 2.0


@_builtin("sort")
def _c_sort(c: Compiler, e: ast.Call):
    f, w = c._compile_expr(e.args[0])

    def run(env, ctx):
        a = f(env, ctx)
        n = len(a.data)
        ctx.cost += 6.0 * n * max(1.0, math.log2(max(2, n)))
        _touch_whole_array(ctx, a, write=True)
        a.data.sort()
        return None

    return run, w + 2.0


@_builtin("swap")
def _c_swap(c: Compiler, e: ast.Call):
    f, w = c._compile_expr(e.args[0])
    fi, wi = c._compile_expr(e.args[1])
    fj, wj = c._compile_expr(e.args[2])

    def run(env, ctx):
        a = f(env, ctx)
        i = _bounds1(a, fi(env, ctx))
        j = _bounds1(a, fj(env, ctx))
        t = ctx.trace
        if t is not None:
            prot = ctx.protection
            t.read(a, i, prot)
            t.read(a, j, prot)
            t.write(a, i, prot)
            t.write(a, j, prot)
        d = a.data
        d[i], d[j] = d[j], d[i]
        return None

    return run, w + wi + wj + 4 * W_LOAD


# -- kokkos patterns ---------------------------------------------------------


@_builtin("parallel_for")
def _c_kk_for(c: Compiler, e: ast.Call):
    n_f, wn = c._compile_expr(e.args[0])
    lam = c._compile_lambda(e.args[1])  # type: ignore[arg-type]
    where = f"parallel_for at line {e.line}"

    def run(env, ctx):
        ctx.rt.kokkos_for(env, ctx, n_f(env, ctx), lam, where)
        return None

    return run, wn + W_CALL


@_builtin("parallel_reduce")
def _c_kk_reduce(c: Compiler, e: ast.Call):
    n_f, wn = c._compile_expr(e.args[0])
    op = e.args[1].value  # type: ignore[union-attr]
    lam = c._compile_lambda(e.args[2])  # type: ignore[arg-type]
    where = f"parallel_reduce at line {e.line}"

    def run(env, ctx):
        return ctx.rt.kokkos_reduce(env, ctx, n_f(env, ctx), op, lam, where)

    return run, wn + W_CALL


def _kk_scan(c: Compiler, e: ast.Call, inclusive: bool):
    n_f, wn = c._compile_expr(e.args[0])
    op = e.args[1].value  # type: ignore[union-attr]
    lam = c._compile_lambda(e.args[2])  # type: ignore[arg-type]
    out_f, wo = c._compile_expr(e.args[3])
    where = f"parallel_scan at line {e.line}"

    def run(env, ctx):
        ctx.rt.kokkos_scan(
            env, ctx, n_f(env, ctx), op, lam, out_f(env, ctx), inclusive, where
        )
        return None

    return run, wn + wo + W_CALL


@_builtin("parallel_scan_inclusive")
def _c_kk_scan_inc(c: Compiler, e: ast.Call):
    return _kk_scan(c, e, inclusive=True)


@_builtin("parallel_scan_exclusive")
def _c_kk_scan_exc(c: Compiler, e: ast.Call):
    return _kk_scan(c, e, inclusive=False)


# -- MPI ----------------------------------------------------------------------


def _mpi_dispatch(method: str, str_arg_indices: Tuple[int, ...] = ()):
    """Builtin compiler that forwards evaluated args to ctx.rt.<method>."""

    def factory(c: Compiler, e: ast.Call) -> Tuple[ExprFn, float]:
        fns: List[ExprFn] = []
        w = W_CALL
        for idx, a in enumerate(e.args):
            if idx in str_arg_indices:
                val = a.value  # type: ignore[union-attr]
                fns.append(lambda env, ctx, _v=val: _v)
                continue
            f, wa = c._compile_expr(a)
            fns.append(f)
            w += wa

        if len(fns) == 0:
            def run(env, ctx):
                return getattr(ctx.rt, method)(ctx)
        elif len(fns) == 1:
            f0 = fns[0]

            def run(env, ctx):
                return getattr(ctx.rt, method)(ctx, f0(env, ctx))
        elif len(fns) == 2:
            f0, f1 = fns

            def run(env, ctx):
                return getattr(ctx.rt, method)(ctx, f0(env, ctx), f1(env, ctx))
        else:
            f0, f1, f2 = fns

            def run(env, ctx):
                return getattr(ctx.rt, method)(
                    ctx, f0(env, ctx), f1(env, ctx), f2(env, ctx)
                )

        return run, w

    return factory


for _mpi_name, _method, _str_idx in [
    ("mpi_rank", "mpi_rank", ()),
    ("mpi_size", "mpi_size", ()),
    ("mpi_send", "mpi_send", ()),
    ("mpi_recv_float", "mpi_recv_float", ()),
    ("mpi_recv_int", "mpi_recv_int", ()),
    ("mpi_recv_array_float", "mpi_recv_array_float", ()),
    ("mpi_recv_array_int", "mpi_recv_array_int", ()),
    ("mpi_bcast_float", "mpi_bcast_scalar", ()),
    ("mpi_bcast_int", "mpi_bcast_scalar", ()),
    ("mpi_bcast_array", "mpi_bcast_array", ()),
    ("mpi_reduce_float", "mpi_reduce_scalar", (1,)),
    ("mpi_reduce_int", "mpi_reduce_scalar", (1,)),
    ("mpi_allreduce_float", "mpi_allreduce_scalar", (1,)),
    ("mpi_allreduce_int", "mpi_allreduce_scalar", (1,)),
    ("mpi_reduce_array", "mpi_reduce_array", (1,)),
    ("mpi_allreduce_array", "mpi_allreduce_array", (1,)),
    ("mpi_scatter_array", "mpi_scatter_array", ()),
    ("mpi_gather_array", "mpi_gather_array", ()),
    ("mpi_allgather_array", "mpi_allgather_array", ()),
    ("mpi_scan_float", "mpi_scan_scalar", (1,)),
    ("mpi_scan_int", "mpi_scan_scalar", (1,)),
    ("mpi_barrier", "mpi_barrier", ()),
]:
    _BUILTIN_COMPILERS[_mpi_name] = _mpi_dispatch(_method, _str_idx)


# -- GPU ------------------------------------------------------------------------


@_builtin("thread_idx")
def _c_tid(c: Compiler, e: ast.Call):
    return (lambda env, ctx: ctx.gpu_thread), W_NAME


@_builtin("block_idx")
def _c_bid(c: Compiler, e: ast.Call):
    return (lambda env, ctx: ctx.gpu_block), W_NAME


@_builtin("block_dim")
def _c_bdim(c: Compiler, e: ast.Call):
    return (lambda env, ctx: ctx.gpu_block_dim), W_NAME


@_builtin("grid_dim")
def _c_gdim(c: Compiler, e: ast.Call):
    return (lambda env, ctx: ctx.gpu_grid_dim), W_NAME


@_builtin("sync_threads")
def _c_sync(c: Compiler, e: ast.Call):
    def run(env, ctx):
        ctx.rt.gpu_sync_threads(ctx)
        return None

    return run, 1.0


def _atomic_builtin(name: str, combine: Callable):
    def factory(c: Compiler, e: ast.Call) -> Tuple[ExprFn, float]:
        fa, wa = c._compile_expr(e.args[0])
        fi, wi = c._compile_expr(e.args[1])
        fv, wv = c._compile_expr(e.args[2])
        is_int = c.checked.type_of(e.args[0]).elem is T.INT  # type: ignore[union-attr]

        def run(env, ctx):
            a = fa(env, ctx)
            i = _bounds1(a, fi(env, ctx))
            v = fv(env, ctx)
            t = ctx.trace
            if t is not None:
                t.read(a, i, ATOMIC)
                t.write(a, i, ATOMIC)
            result = combine(a.data[i], v)
            a.data[i] = int(result) if is_int else result
            ctx.cost += ctx.machine.cpu.atomic_op
            return None

        return run, wa + wi + wv + W_LOAD + W_STORE

    _BUILTIN_COMPILERS[name] = factory


_atomic_builtin("atomic_add", lambda a, b: a + b)
_atomic_builtin("atomic_min", lambda a, b: a if a < b else b)
_atomic_builtin("atomic_max", lambda a, b: a if a > b else b)


def compile_program(checked: CheckedProgram) -> CompiledProgram:
    """Compile a checked program into executable closures."""
    missing = [
        n for n in checked.builtins_used if n not in _BUILTIN_COMPILERS
    ]
    if missing:  # pragma: no cover - catalog/compiler mismatch
        raise AssertionError(f"builtins without compilers: {missing}")
    return Compiler(checked).compile()
