"""Machine models: the simulated hardware that PCGBench runs are timed on.

The paper timed CPU runs on a 64-core AMD EPYC 7763, MPI runs across
multiple such nodes (1 rank per core, up to 512 ranks), CUDA on an NVIDIA
A100-80GB and HIP on an AMD MI50.  We model each as a set of cost constants
consumed by the runtimes:

* compute is counted in abstract *op units* by the compiled program
  (1 unit ~ one scalar operation); ``cycle`` converts units to seconds;
* shared-memory parallel constructs pay fork/join or pattern-dispatch
  overheads (OpenMP's grows linearly with thread count — fork/join —
  while Kokkos' persistent pool pays only a logarithmic term, which is
  what makes Figure 5's OpenMP-decays / Kokkos-flat contrast emerge);
* MPI messages follow the classic alpha-beta (latency/bandwidth) model
  with log-based collective trees;
* GPUs follow a warp/SM throughput model with kernel-launch overhead and
  an atomic-contention term.

The constants are synthetic (see DESIGN.md §6): the goal is that relative
behaviour — speedup shapes, efficiency decay, crossovers — matches the
paper, not absolute milliseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CPUSpec:
    """Cost constants for a multicore CPU node."""

    name: str = "epyc7763-sim"
    cores: int = 64
    cycle: float = 1.0e-9          # seconds per op unit
    omp_fork_base: float = 900.0   # op units per parallel region
    omp_fork_per_thread: float = 220.0
    omp_barrier_log: float = 120.0
    omp_dispatch_dynamic: float = 9.0   # per-chunk dispatch cost (dynamic)
    critical_lock: float = 150.0        # lock acquire/release per entry
    atomic_op: float = 24.0             # one atomic RMW
    atomic_conflict: float = 30.0       # extra serialization per conflicting op
    kokkos_dispatch_base: float = 1500.0
    kokkos_barrier_log: float = 140.0
    kokkos_per_element: float = 0.6     # functor dispatch overhead per index
    mem_frac: float = 0.5               # fraction of loop work that is memory traffic
    mem_sat: float = 11.0               # threads at which memory bandwidth saturates

    def omp_region_overhead(self, threads: int) -> float:
        """Fork/join cost of one OpenMP parallel region, in op units."""
        if threads <= 1:
            return 0.0
        return (
            self.omp_fork_base
            + self.omp_fork_per_thread * threads
            + self.omp_barrier_log * math.log2(threads)
        )

    def kokkos_pattern_overhead(self, threads: int) -> float:
        """Dispatch cost of one Kokkos pattern (persistent thread pool)."""
        if threads <= 1:
            return self.kokkos_dispatch_base * 0.25
        return self.kokkos_dispatch_base + self.kokkos_barrier_log * math.log2(threads)


@dataclass(frozen=True)
class InterconnectSpec:
    """Alpha-beta model for the cluster network (plus intra-node discount)."""

    alpha: float = 1.6e-6          # per-message latency, seconds
    beta: float = 8.0e-11          # per-byte cost, seconds (~12.5 GB/s)
    intra_node_factor: float = 0.35
    cores_per_node: int = 64

    def point_to_point(self, nbytes: int, src: int, dst: int) -> float:
        t = self.alpha + self.beta * nbytes
        if src // self.cores_per_node == dst // self.cores_per_node:
            t *= self.intra_node_factor
        return t

    def collective(self, kind: str, nbytes: int, nranks: int) -> float:
        """Completion time of a collective once all ranks have arrived."""
        if nranks <= 1:
            return 0.0
        lg = math.log2(nranks)
        base = self.alpha + self.beta * nbytes
        if kind in ("bcast", "reduce", "scan", "barrier"):
            return lg * base
        if kind in ("allreduce",):
            return 2.0 * lg * base
        if kind in ("scatter", "gather"):
            # pipelined tree moving ~nbytes total payload
            return lg * self.alpha + self.beta * nbytes
        if kind in ("allgather",):
            return lg * self.alpha + 2.0 * self.beta * nbytes
        raise ValueError(f"unknown collective {kind!r}")


@dataclass(frozen=True)
class GPUSpec:
    """Cost constants for a SIMT accelerator."""

    name: str = "a100-sim"
    warp_size: int = 32
    concurrent_warps: int = 432     # SMs x warps resident at full throughput
    thread_cycle: float = 2.2e-10   # seconds per op unit at full occupancy
    serial_cycle: float = 5.0e-9    # seconds per op unit on ONE thread
    #                                 (a lone GPU thread is ~5x slower than
    #                                 a CPU core at 1e-9 s/unit)
    kernel_launch: float = 7.0e-6   # seconds
    atomic_op: float = 8.0          # op units per atomic
    atomic_conflict: float = 48.0   # serialization per conflicting atomic
    sync_cost: float = 12.0         # block barrier, op units


#: The MI50 used for HIP runs: fewer SMs, slower clock, slightly cheaper
#: launch (no independent measurements claimed — shape-only, see DESIGN.md).
MI50 = GPUSpec(
    name="mi50-sim",
    warp_size=64,
    concurrent_warps=160,
    thread_cycle=4.0e-10,
    serial_cycle=8.0e-9,
    kernel_launch=9.0e-6,
    atomic_op=10.0,
    atomic_conflict=64.0,
    sync_cost=14.0,
)

A100 = GPUSpec()


@dataclass(frozen=True)
class Machine:
    """The full simulated testbed from the paper's §7.2."""

    cpu: CPUSpec = field(default_factory=CPUSpec)
    net: InterconnectSpec = field(default_factory=InterconnectSpec)
    cuda: GPUSpec = A100
    hip: GPUSpec = MI50
    time_limit: float = 180.0        # harness kill-timer: 3 simulated minutes
    fuel: int = 60_000_000           # interpreter steps before declaring a hang

    def with_overrides(self, **kwargs) -> "Machine":
        return replace(self, **kwargs)


DEFAULT_MACHINE = Machine()

#: Thread counts used for OpenMP/Kokkos scaling runs (paper §7.2).
CPU_THREAD_COUNTS = (1, 2, 4, 8, 16, 32)
#: Rank counts used for MPI scaling runs (paper §7.2: 1..512).
MPI_RANK_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)
#: (ranks, threads) grid for MPI+OpenMP (paper: 1-4 nodes x 1..64 threads).
HYBRID_CONFIGS = tuple((r, t) for r in (1, 2, 3, 4) for t in (1, 2, 4, 8, 16, 32, 64))
