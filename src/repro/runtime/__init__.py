"""Simulated parallel execution substrate for MiniPar programs.

Seven execution models, matching PCGBench (paper §4):

==============  =============================================================
Model           Runtime
==============  =============================================================
serial          :class:`~repro.runtime.runtimes.SerialRuntime`
openmp          :class:`~repro.runtime.runtimes.OpenMPRuntime`
kokkos          :class:`~repro.runtime.runtimes.KokkosRuntime`
mpi             :func:`~repro.runtime.mpi.run_mpi`
mpi+omp         :func:`~repro.runtime.mpi.run_mpi` with ``threads_per_rank``
cuda / hip      :func:`~repro.runtime.gpu.launch`
==============  =============================================================
"""

from .compile import CompiledProgram, compile_program
from .context import ExecCtx
from .gpu import GPURunResult, GPURuntime, launch
from .machine import (
    A100,
    CPU_THREAD_COUNTS,
    DEFAULT_MACHINE,
    HYBRID_CONFIGS,
    MI50,
    MPI_RANK_COUNTS,
    CPUSpec,
    GPUSpec,
    InterconnectSpec,
    Machine,
)
from .mpi import MPIRunResult, run_mpi
from .runtimes import (
    BaseRuntime,
    KokkosRuntime,
    OpenMPRuntime,
    SerialRuntime,
    dynamic_chunk_time,
    fold,
    reduce_identity,
    static_chunk_time,
)
from .tracer import Tracer
from .values import Array, nbytes

__all__ = [
    "Array",
    "nbytes",
    "compile_program",
    "CompiledProgram",
    "ExecCtx",
    "Machine",
    "CPUSpec",
    "GPUSpec",
    "InterconnectSpec",
    "DEFAULT_MACHINE",
    "A100",
    "MI50",
    "CPU_THREAD_COUNTS",
    "MPI_RANK_COUNTS",
    "HYBRID_CONFIGS",
    "BaseRuntime",
    "SerialRuntime",
    "OpenMPRuntime",
    "KokkosRuntime",
    "GPURuntime",
    "Tracer",
    "run_mpi",
    "MPIRunResult",
    "launch",
    "GPURunResult",
    "fold",
    "reduce_identity",
    "static_chunk_time",
    "dynamic_chunk_time",
]
