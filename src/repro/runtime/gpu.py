"""SIMT GPU runtime for the CUDA and HIP execution models.

The driver launches the prompt's kernel over a 1-D grid: the kernel body
runs once per thread with ``thread_idx()``/``block_idx()``/``block_dim()``/
``grid_dim()`` giving the SIMT identity (the CUDA and HIP dialects share
these intrinsics — the models themselves are near-identical, which is why
the paper observes near-identical pass@1 for the two).

Execution model: threads run to completion one at a time while per-thread
cost is recorded.  ``sync_threads()`` is priced but is not a scheduling
point — the solution banks therefore avoid cross-thread shared-memory
phase protocols (block-tree reductions use global atomics instead, the
style LLMs overwhelmingly emit anyway); a kernel that *does* depend on
another thread's write is flagged by the cross-thread race detector, which
is exactly how such a kernel would misbehave on real hardware.

Time model:  per-warp cost = max over member threads (divergence);
busy time = total warp cost / concurrent warps, floored by the critical
path; plus kernel-launch overhead and an atomic-contention term.  Work
scaling multiplies the warp population, not per-thread cost (a bigger
problem launches more threads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..faults import inject
from ..faults.inject import FaultInjected
from ..lang.errors import GPUFault
from .compile import CompiledProgram
from .context import ExecCtx
from .machine import GPUSpec, Machine
from .runtimes import BaseRuntime
from .tracer import Tracer


class GPURuntime(BaseRuntime):
    """Runtime for device code; instantiated per launch."""

    def __init__(self, spec: GPUSpec, dialect: str = "cuda"):
        self.spec = spec
        self.model = dialect

    def gpu_sync_threads(self, ctx: ExecCtx) -> None:
        ctx.cost += self.spec.sync_cost


@dataclass
class GPURunResult:
    """Outcome of one kernel launch."""

    ret: object
    args: Sequence[object]
    sim_seconds: float
    total_threads: int           # simulated kernel threads (after work scaling)
    error: Optional[BaseException] = None
    profile: Optional["RunProfile"] = None  # launch breakdown (opt-in)


def launch(
    program: CompiledProgram,
    kernel: str,
    args: Sequence[object],
    total_threads: int,
    machine: Machine,
    spec: Optional[GPUSpec] = None,
    dialect: str = "cuda",
    block_size: int = 256,
    work_scale: float = 1.0,
    fuel: Optional[int] = None,
    profile: bool = False,
    vectorize: bool = True,
    vec_stats=None,
) -> GPURunResult:
    """Launch ``kernel`` over ``ceil(total_threads / block_size)`` blocks.

    Arguments are shared device memory: every thread sees the same arrays
    (exactly as on hardware), so output arrays are mutated in place.
    """
    if spec is None:
        spec = machine.cuda if dialect == "cuda" else machine.hip
    if total_threads <= 0:
        return GPURunResult(
            ret=None, args=args, sim_seconds=0.0, total_threads=0,
            error=GPUFault(f"invalid launch: {total_threads} threads"),
        )
    grid_dim = (total_threads + block_size - 1) // block_size
    n_threads = grid_dim * block_size

    rt = GPURuntime(spec, dialect)
    ctx = ExecCtx(machine, rt, fuel=fuel, work_scale=work_scale,
                  vectorize=vectorize, vec_stats=vec_stats)
    ctx.gpu_block_dim = block_size
    ctx.gpu_grid_dim = grid_dim
    tracer = Tracer(n_threads)
    ctx.trace = tracer

    costs = np.zeros(n_threads)
    ret = None
    try:
        if inject.ACTIVE is not None:
            rule = inject.ACTIVE.fire("runtime.gpu.abort",
                                      f"{dialect}:{kernel}")
            if rule is not None:
                raise FaultInjected(
                    "runtime.gpu.abort",
                    f"injected {dialect} kernel abort in {kernel!r}")
        for tid in range(n_threads):
            tracer.begin_iteration(tid)
            ctx.gpu_block = tid // block_size
            ctx.gpu_thread = tid % block_size
            c0 = ctx.cost
            r = program.run_kernel(kernel, ctx, args)
            if tid == 0:
                ret = r
            costs[tid] = ctx.cost - c0
        tracer.check(f"{dialect} kernel {kernel!r}")
    except BaseException as exc:  # noqa: BLE001 - harness records any failure
        return GPURunResult(ret=None, args=args, sim_seconds=0.0,
                            total_threads=n_threads, error=exc)

    breakdown: Optional[dict] = {} if profile else None
    sim = _launch_time(costs, tracer, spec, work_scale, breakdown=breakdown)
    run_profile = None
    if breakdown is not None:
        from ..prof.record import RunProfile
        counters = {"kernel_launches": 1.0,
                    "gpu_threads": float(int(n_threads * work_scale))}
        total_atomics, distinct = tracer.contention_stats()
        if total_atomics:
            counters["atomic_ops"] = float(total_atomics)
            counters["atomic_targets"] = float(distinct)
        run_profile = RunProfile(categories=breakdown, counters=counters)
    return GPURunResult(
        ret=ret, args=args, sim_seconds=sim,
        total_threads=int(n_threads * work_scale),
        profile=run_profile,
    )


def _launch_time(costs: np.ndarray, tracer: Tracer, spec: GPUSpec,
                 scale: float, breakdown: Optional[dict] = None) -> float:
    """Price one kernel launch from the per-thread cost profile.

    Two regimes compete:

    * throughput — total warp work spread over the resident warps at the
      full-occupancy per-op rate (work scaling multiplies the warp
      population: a bigger problem launches more threads);
    * critical path — the single slowest thread, at the much slower
      one-thread rate.  The portion of the slowest thread's cost above
      the median is data-dependent work (e.g. a kernel where thread 0
      does the whole problem serially) and therefore grows with the work
      scale; the uniform part does not.
    """
    n = len(costs)
    warp = spec.warp_size
    pad = (-n) % warp
    if pad:
        costs = np.concatenate([costs, np.zeros(pad)])
    warp_costs = costs.reshape(-1, warp).max(axis=1)
    total_warp_units = float(warp_costs.sum()) * scale
    throughput = total_warp_units / spec.concurrent_warps * spec.thread_cycle

    median = float(np.median(costs)) if n else 0.0
    worst = float(costs.max()) if n else 0.0
    critical_units = median + (worst - median) * scale
    critical = critical_units * spec.serial_cycle

    base = max(throughput, critical)
    busy = base

    atomic = 0.0
    total_atomics, distinct = tracer.contention_stats()
    if total_atomics:
        if distinct >= 0.5 * total_atomics:
            distinct_scaled = distinct * scale
        else:
            distinct_scaled = float(distinct)
        # conflicting atomics serialize at the memory system, not per-SM
        conflicts = max(0.0, total_atomics * scale - distinct_scaled)
        atomic = spec.atomic_conflict * conflicts * spec.thread_cycle
        busy += atomic

    if breakdown is not None:
        # throughput is the useful-work floor; anything the critical path
        # adds on top is divergence / serialized-thread imbalance
        breakdown["compute"] = throughput
        breakdown["kernel_launch"] = spec.kernel_launch
        if base > throughput:
            breakdown["imbalance"] = base - throughput
        if atomic:
            breakdown["atomic"] = atomic
    return spec.kernel_launch + busy
