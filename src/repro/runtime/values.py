"""Runtime values for MiniPar programs.

Scalars are plain Python ``int``/``float``/``bool`` (fastest for a tree
interpreter).  Arrays are list-backed — element access on Python lists is
considerably faster than boxing/unboxing numpy scalars in a per-element
interpreter loop — with numpy conversion at the driver boundary, where the
reference checks are vectorised (per the hpc-parallel guide: vectorise the
bulk comparisons, keep scalar hot paths unboxed).
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Tuple, Union

import numpy as np

Scalar = Union[int, float, bool]

_DTYPES = {"float": np.float64, "int": np.int64, "bool": np.bool_}
_DEFAULTS = {"float": 0.0, "int": 0, "bool": False}


_next_uid = itertools.count(1)


class Array:
    """A 1-D or 2-D MiniPar array.

    2-D arrays are stored flat in row-major order, matching how the cost
    model thinks about memory traffic.  ``uid`` is a process-unique id for
    the race detector — unlike ``id()`` it is never reused, so a temp
    array freed in one loop iteration cannot alias the next iteration's.
    """

    __slots__ = ("data", "elem", "shape", "uid")

    def __init__(self, data: List[Scalar], elem: str, shape: Tuple[int, ...]):
        self.data = data
        self.elem = elem
        self.shape = shape
        self.uid = next(_next_uid)

    # -- constructors -------------------------------------------------------

    @classmethod
    def zeros(cls, n: int, elem: str) -> "Array":
        return cls([_DEFAULTS[elem]] * n, elem, (n,))

    @classmethod
    def zeros2d(cls, r: int, c: int, elem: str) -> "Array":
        return cls([_DEFAULTS[elem]] * (r * c), elem, (r, c))

    @classmethod
    def from_numpy(cls, arr: np.ndarray, elem: str | None = None) -> "Array":
        a = np.asarray(arr)
        if elem is None:
            if np.issubdtype(a.dtype, np.floating):
                elem = "float"
            elif np.issubdtype(a.dtype, np.integer):
                elem = "int"
            elif a.dtype == np.bool_:
                elem = "bool"
            else:
                raise TypeError(f"unsupported dtype {a.dtype}")
        if a.ndim == 1:
            return cls(a.tolist(), elem, (a.shape[0],))
        if a.ndim == 2:
            return cls(a.reshape(-1).tolist(), elem, (a.shape[0], a.shape[1]))
        raise ValueError(f"unsupported ndim {a.ndim}")

    @classmethod
    def from_list(cls, values: Sequence[Scalar], elem: str) -> "Array":
        return cls(list(values), elem, (len(values),))

    # -- views ---------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def __len__(self) -> int:
        return self.shape[0]

    @property
    def size(self) -> int:
        return len(self.data)

    def to_numpy(self) -> np.ndarray:
        a = np.array(self.data, dtype=_DTYPES[self.elem])
        return a.reshape(self.shape) if self.ndim == 2 else a

    def copy(self) -> "Array":
        return Array(list(self.data), self.elem, self.shape)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Array({self.elem}, shape={self.shape})"


#: simulated bytes per array element — shared by the communication cost
#: model (`nbytes`) and the per-ExecCtx allocation budget (`charge_alloc`)
BYTES_PER_ELEM = 8


def nbytes(value: Union[Scalar, Array]) -> int:
    """Approximate wire size of a value, for the communication cost model."""
    if isinstance(value, Array):
        return BYTES_PER_ELEM * len(value.data)
    return BYTES_PER_ELEM


def deep_copy_value(value: Union[Scalar, Array]) -> Union[Scalar, Array]:
    """Copy semantics for message passing: arrays are copied, scalars as-is."""
    if isinstance(value, Array):
        return value.copy()
    return value
