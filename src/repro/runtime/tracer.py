"""Sampled dynamic data-race detection for parallel loops.

The shared-memory runtimes execute parallel iterations sequentially while
attributing costs per iteration.  For race detection we record, for a
*window* of iterations, every (array, flat-index) read and write together
with its protection level, then flag:

* write/write to the same location from two different iterations, unless
  both accesses are protected (atomic/critical);
* read/write to the same location from two different iterations (e.g. an
  in-place stencil reading neighbours that other iterations write).

Windows are contiguous (a prefix and a middle block) because the races
LLM-generated code exhibits are systematic — neighbour dependencies,
shared accumulators, low-cardinality histogram bins — and contiguous
samples catch exactly those.  This mirrors dynamic tools like Archer/TSan
which also sample synchronisation-free regions rather than prove absence.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..lang.errors import DataRaceError
from .values import Array

#: Protection levels attached to accesses.
PLAIN = 0
ATOMIC = 1
CRITICAL = 2

_WINDOW = 48  # iterations traced per window


class Tracer:
    """Records accesses for one parallel loop execution."""

    __slots__ = (
        "accesses", "iteration", "active", "race", "atomic_ops",
        "atomic_targets", "windows",
    )

    def __init__(self, total_iters: int):
        # (array id, index) -> (iteration, was_write, protection)
        self.accesses: Dict[Tuple[int, int], Tuple[int, bool, int]] = {}
        self.iteration = -1
        self.active = False
        self.race: Optional[str] = None
        self.atomic_ops = 0
        self.atomic_targets: set = set()
        lo2 = total_iters // 2
        self.windows = ((0, min(_WINDOW, total_iters)),
                        (max(lo2, _WINDOW), min(lo2 + _WINDOW, total_iters)))

    def begin_iteration(self, i: int) -> None:
        self.iteration = i
        self.active = any(lo <= i < hi for lo, hi in self.windows)

    def read(self, arr: Array, idx: int, protection: int = PLAIN) -> None:
        if not self.active or self.race is not None:
            return
        key = (arr.uid, idx)
        prev = self.accesses.get(key)
        if prev is None:
            self.accesses[key] = (self.iteration, False, protection)
            return
        prev_iter, prev_write, prev_prot = prev
        if prev_write and prev_iter != self.iteration:
            if not (prev_prot and protection):
                self.race = (
                    f"iteration {self.iteration} reads index {idx} written by "
                    f"iteration {prev_iter}"
                )

    def write(self, arr: Array, idx: int, protection: int = PLAIN) -> None:
        self.atomic_ops += protection == ATOMIC
        if protection == ATOMIC:
            self.atomic_targets.add((arr.uid, idx))
        if not self.active or self.race is not None:
            return
        key = (arr.uid, idx)
        prev = self.accesses.get(key)
        if prev is not None:
            prev_iter, prev_write, prev_prot = prev
            if prev_iter != self.iteration and not (prev_prot and protection):
                kind = "written" if prev_write else "read"
                self.race = (
                    f"iteration {self.iteration} writes index {idx} {kind} by "
                    f"iteration {prev_iter}"
                )
        self.accesses[key] = (self.iteration, True, protection)

    def touch_block(self, arr: Array, count: int, write: bool,
                    protection: int = PLAIN) -> None:
        """Record a bulk operation touching ``arr[0:count]``.

        Semantically identical to ``count`` individual :meth:`write` (or
        :meth:`read`) calls, but O(1) outside trace windows — the common
        case for whole-array builtins (``fill``/``copy``/``sort``), which
        previously paid a per-element Python loop even when inactive.
        """
        if not self.active or self.race is not None:
            # off-window / post-race: write() still does its atomic
            # bookkeeping before the active check — replicate it in bulk
            if write and protection == ATOMIC:
                self.atomic_ops += count
                uid = arr.uid
                self.atomic_targets.update((uid, k) for k in range(count))
            return
        if write:
            w = self.write
            for k in range(count):
                w(arr, k, protection)
        else:
            r = self.read
            for k in range(count):
                r(arr, k, protection)

    def check(self, where: str) -> None:
        """Raise if a race was observed during the traced loop."""
        if self.race is not None:
            raise DataRaceError(f"data race in {where}: {self.race}", where)

    def contention_stats(self) -> Tuple[int, int]:
        """(total atomic ops observed, distinct atomic targets observed)."""
        return self.atomic_ops, len(self.atomic_targets)
