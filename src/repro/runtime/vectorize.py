"""Tier-2 vectorized execution: affine loop idioms lowered to numpy.

The closure compiler (:mod:`repro.runtime.compile`) executes one Python
closure per statement per iteration.  For the affine, element-wise loop
bodies that dominate the PCGBench corpus (``y[i] = a * x[i] + y[i]``,
``acc += x[i]``, …) that per-iteration dispatch is pure overhead: the
loop's effect on memory, on the simulated clock, and on the tracer is
statically predictable.  This module recognizes such bodies at compile
time and executes them in bulk with numpy, while the scalar closure tier
remains the semantic oracle.

The contract is **observational identity**, not approximation:

* **Cost.**  The scalar tier folds one float add per statement per
  iteration into ``ctx.cost``.  Floating-point addition is not
  associative, so the bulk tier never uses a closed form; it replays the
  identical add sequence with ``np.add.accumulate`` (strictly sequential,
  bitwise equal to the Python fold) and assigns the resulting boundary
  values.  Per-iteration cost profiles are differences of those
  boundaries — again bitwise equal.
* **Values.**  Element-wise float64/int64 ``+ - *`` and int→float
  conversion are bitwise identical between numpy and CPython.  Reductions
  replay the scalar left fold with ``ufunc.accumulate`` (sequential), so
  float reduction *ordering* is preserved exactly.  Int64 overflow (where
  numpy wraps but Python promotes to bignum) is excluded up front by
  interval analysis over the loop body.
* **Traps and fuel.**  The recognized grammar contains no trapping
  operations (no division, no calls, no float→int stores), so the only
  runtime hazards — out-of-bounds indices, aliased write forms, int64
  overflow, fuel exhaustion — are all decidable *before* mutating
  anything.  Any hazard triggers a clean fall back to the scalar tier,
  which then raises (or runs) exactly as it always did.
* **Tracer.**  Race-detection windows (a prefix and a middle block of
  iterations) fall back to the scalar tier for exactly the sampled
  iterations, so the tracer observes byte-identical access sequences.
  Bulk-eligible loops write through a single injective affine form per
  array, so the interleaved segments commute with iteration order.

See ``docs/vectorize.md`` for the full grammar and the exactness
argument.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..lang import ast
from ..lang import types as T
from .tracer import ATOMIC, Tracer
from .values import Array

__all__ = [
    "VecStats", "VecPlan", "build_stmt_plan", "build_expr_plan",
    "run_serial", "run_windowed",
]

# Magnitude bounds: all int64 intermediates are kept well below 2**63 so
# numpy arithmetic can never wrap where Python would promote to bignum.
_INT_LIMIT = 2 ** 62
_BOUND_LIMIT = 2 ** 60

#: Minimum trip counts before bulk execution pays for its prechecks.
MIN_SERIAL_ITERS = 48
MIN_WINDOWED_ITERS = 160

# Statement-site weights replicated from the closure compiler.  Imported
# lazily (function level) to avoid a module cycle: compile.py imports this
# module from inside its hook methods only.


class VecStats:
    """Process/run-level idiom-hit counters (thread-safe).

    One instance is shared by every ``ExecCtx`` of a sample evaluation
    (including the per-rank contexts of the MPI models) and surfaces in
    ``SampleRecord.vec`` / Telemetry / the serve ``/metrics`` endpoint.
    """

    __slots__ = ("_lock", "bulk_loops", "bulk_iters", "fallbacks")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.bulk_loops = 0
        self.bulk_iters = 0
        self.fallbacks = 0

    def hit(self, iters: int) -> None:
        with self._lock:
            self.bulk_loops += 1
            self.bulk_iters += iters

    def miss(self) -> None:
        with self._lock:
            self.fallbacks += 1

    def as_dict(self, vectorize: bool = True) -> Dict[str, object]:
        with self._lock:
            return {
                "tier": "numpy" if (vectorize and self.bulk_loops) else "scalar",
                "vectorize": vectorize,
                "bulk_loops": self.bulk_loops,
                "bulk_iters": self.bulk_iters,
                "fallbacks": self.fallbacks,
            }


# --------------------------------------------------------------------------
# IR: expressions of the vectorizable grammar
# --------------------------------------------------------------------------


class VNode:
    """One expression node: literal, loop var, invariant name, affine 1-D
    load, binary ``+ - *``, or unary minus."""

    __slots__ = ("kind", "a", "b", "op", "ident", "value",
                 "coeff", "off", "is_int", "has_ivar")

    def __init__(self, kind: str, *, a=None, b=None, op=None, ident=None,
                 value=None, coeff=0, off=None, is_int=False,
                 has_ivar=False):
        self.kind = kind      # "lit" | "ivar" | "name" | "load" | "bin" | "neg"
        self.a = a
        self.b = b
        self.op = op
        self.ident = ident
        self.value = value
        self.coeff = coeff    # loads: static index coefficient on the loop var
        self.off = off        # loads: invariant VNode for the index offset
        self.is_int = is_int
        self.has_ivar = has_ivar


class VStore:
    """``base[c*i + off] <op> value`` with op in ``= += -= *=``."""

    __slots__ = ("ident", "coeff", "off", "value", "op", "to_float",
                 "is_int_elem")

    def __init__(self, ident, coeff, off, value, op, to_float, is_int_elem):
        self.ident = ident
        self.coeff = coeff
        self.off = off
        self.value = value
        self.op = op
        self.to_float = to_float
        self.is_int_elem = is_int_elem


class VReduce:
    """``name <op>= value`` where ``name`` is loop-invariant and appears
    nowhere else in the body (a scalar reduction)."""

    __slots__ = ("name", "op", "value", "is_int_target")

    def __init__(self, name, op, value, is_int_target):
        self.name = name
        self.op = op
        self.value = value
        self.is_int_target = is_int_target


class VecPlan:
    """A compiled bulk-execution plan for one loop body (or Kokkos
    lambda).  ``sites`` replays the scalar tier's per-statement cost adds;
    the per-iteration loop-header weight is supplied by the executing
    runtime (1.5 for ``for``/pfor, ``kokkos_per_element`` for patterns).
    """

    __slots__ = ("var", "stmts", "sites", "value", "names", "loads",
                 "stores", "reds")

    def __init__(self, var: str, stmts: List[object], sites: List[float],
                 value: Optional[VNode] = None):
        self.var = var
        self.stmts = stmts              # ordered VStore / VReduce
        self.sites = sites              # one float per statement
        self.value = value              # expr-lambda plans only
        # flattened metadata, filled by _index_plan()
        self.names: Tuple[str, ...] = ()
        self.loads: Tuple[VNode, ...] = ()
        self.stores: Tuple[VStore, ...] = ()
        self.reds: Tuple[VReduce, ...] = ()


# --------------------------------------------------------------------------
# plan construction (compile time)
# --------------------------------------------------------------------------

_LIT0 = VNode("lit", value=0, is_int=True)
_ALLOWED_BIN = ("+", "-", "*")
_ALLOWED_COMPOUND = ("+=", "-=", "*=")


def _static_int(node: VNode) -> Optional[int]:
    """Constant-fold a literal-only int subtree (for index coefficients)."""
    if node.has_ivar or not node.is_int:
        return None
    if node.kind == "lit":
        return node.value
    if node.kind == "neg":
        v = _static_int(node.a)
        return None if v is None else -v
    if node.kind == "bin":
        a = _static_int(node.a)
        b = _static_int(node.b)
        if a is None or b is None:
            return None
        if node.op == "+":
            return a + b
        if node.op == "-":
            return a - b
        return a * b
    return None


class _Builder:
    """Walks a loop body, building the VNode IR or bailing out."""

    def __init__(self, compiler, var: str):
        self.c = compiler
        self.var = var

    def type_of(self, e: ast.Expr):
        return self.c.checked.type_of(e)

    def expr(self, e: ast.Expr) -> Optional[VNode]:
        if isinstance(e, ast.IntLit):
            return VNode("lit", value=e.value, is_int=True)
        if isinstance(e, ast.FloatLit):
            return VNode("lit", value=e.value, is_int=False)
        if isinstance(e, ast.Name):
            t = self.type_of(e)
            if e.ident == self.var:
                if t is not T.INT:
                    return None
                return VNode("ivar", is_int=True, has_ivar=True)
            if t is T.INT or t is T.FLOAT:
                return VNode("name", ident=e.ident, is_int=t is T.INT)
            return None
        if isinstance(e, ast.Unary):
            if e.op != "-":
                return None
            a = self.expr(e.operand)
            if a is None:
                return None
            return VNode("neg", a=a, is_int=a.is_int, has_ivar=a.has_ivar)
        if isinstance(e, ast.Binary):
            if e.op not in _ALLOWED_BIN:
                return None
            a = self.expr(e.left)
            b = self.expr(e.right)
            if a is None or b is None:
                return None
            return VNode("bin", op=e.op, a=a, b=b,
                         is_int=a.is_int and b.is_int,
                         has_ivar=a.has_ivar or b.has_ivar)
        if isinstance(e, ast.Index):
            return self.load(e)
        return None

    def load(self, e: ast.Index) -> Optional[VNode]:
        if len(e.indices) != 1 or not isinstance(e.base, ast.Name):
            return None
        if e.base.ident == self.var:
            return None
        affine = self.affine(e.indices[0])
        if affine is None:
            return None
        coeff, off = affine
        elem = self.type_of(e)
        if elem is not T.INT and elem is not T.FLOAT:
            return None
        return VNode("load", ident=e.base.ident, coeff=coeff, off=off,
                     is_int=elem is T.INT, has_ivar=True)

    def affine(self, e: ast.Expr) -> Optional[Tuple[int, VNode]]:
        """Decompose an int index expression into ``coeff * var + offset``
        with a statically constant ``coeff`` and a loop-invariant,
        load-free ``offset``."""
        node = self._index_expr(e)
        if node is None:
            return None
        return self._decompose(node)

    def _index_expr(self, e: ast.Expr) -> Optional[VNode]:
        node = self.expr(e)
        if node is None or not node.is_int:
            return None
        if self._contains_load(node):
            return None
        return node

    @staticmethod
    def _contains_load(node: VNode) -> bool:
        if node.kind == "load":
            return True
        for child in (node.a, node.b):
            if child is not None and _Builder._contains_load(child):
                return True
        return False

    def _decompose(self, node: VNode) -> Optional[Tuple[int, VNode]]:
        if not node.has_ivar:
            return 0, node
        if node.kind == "ivar":
            return 1, _LIT0
        if node.kind == "neg":
            inner = self._decompose(node.a)
            if inner is None:
                return None
            c, off = inner
            return -c, VNode("neg", a=off, is_int=True)
        if node.kind == "bin":
            if node.op == "*":
                # exactly one side carries the loop var; the other must be
                # a literal-constant int so the coefficient stays static
                if node.a.has_ivar and not node.b.has_ivar:
                    var_side, const_side = node.a, node.b
                elif node.b.has_ivar and not node.a.has_ivar:
                    var_side, const_side = node.b, node.a
                else:
                    return None
                k = _static_int(const_side)
                if k is None:
                    return None
                inner = self._decompose(var_side)
                if inner is None:
                    return None
                c, off = inner
                return c * k, VNode("bin", op="*", a=const_side, b=off,
                                    is_int=True)
            da = self._decompose(node.a)
            db = self._decompose(node.b)
            if da is None or db is None:
                return None
            ca, offa = da
            cb, offb = db
            off = VNode("bin", op=node.op, a=offa, b=offb, is_int=True)
            return (ca + cb if node.op == "+" else ca - cb), off
        return None


def _walk(node: VNode, fn: Callable[[VNode], None]) -> None:
    fn(node)
    for child in (node.a, node.b, node.off):
        if isinstance(child, VNode):
            _walk(child, fn)


def _index_plan(plan: VecPlan) -> Optional[VecPlan]:
    """Flatten node metadata and enforce the reduction isolation rule."""
    names: List[str] = []
    loads: List[VNode] = []

    roots: List[VNode] = []
    if plan.value is not None:
        roots.append(plan.value)
    for s in plan.stmts:
        roots.append(s.value)
        if isinstance(s, VStore):
            roots.append(s.off)

    def visit(n: VNode) -> None:
        if n.kind == "name":
            names.append(n.ident)
        elif n.kind == "load":
            loads.append(n)

    for r in roots:
        _walk(r, visit)

    stores = tuple(s for s in plan.stmts if isinstance(s, VStore))
    reds = tuple(s for s in plan.stmts if isinstance(s, VReduce))

    # a reduction variable may appear exactly once in the body: as its own
    # compound target (otherwise iteration-order dataflow reappears)
    red_names = [r.name for r in reds]
    if len(set(red_names)) != len(red_names):
        return None
    read_names = set(names)
    store_idents = {s.ident for s in stores} | {ld.ident for ld in loads}
    for r in reds:
        if r.name in read_names or r.name in store_idents:
            return None

    plan.names = tuple(sorted(read_names))
    plan.loads = tuple(loads)
    plan.stores = stores
    plan.reds = reds
    return plan


def build_stmt_plan(compiler, var: str, stmts) -> Optional[VecPlan]:
    """Try to build a bulk plan for a loop body (``for``/pfor/Kokkos
    block lambda).  Returns None when any statement falls outside the
    affine element-wise grammar."""
    from .compile import W_BIN, W_LOAD, W_NAME, W_STORE

    b = _Builder(compiler, var)
    plan_stmts: List[object] = []
    sites: List[float] = []
    checked = compiler.checked

    for s in stmts:
        if not isinstance(s, ast.Assign):
            return None
        value = b.expr(s.value)
        if value is None:
            return None
        _, wv = compiler._compile_expr(s.value)

        if isinstance(s.target, ast.Name):
            if s.op not in _ALLOWED_COMPOUND:
                return None
            name = s.target.ident
            if name == var:
                return None
            target_t = checked.expr_types.get(id(s.target))
            if target_t is not T.INT and target_t is not T.FLOAT:
                return None
            is_int_target = target_t is T.INT
            if is_int_target and not value.is_int:
                return None           # float→int truncation can trap
            if is_int_target and s.op == "*=":
                return None           # unbounded int products overflow
            plan_stmts.append(VReduce(name, s.op, value, is_int_target))
            sites.append((wv + W_NAME) + W_BIN)
            continue

        if not isinstance(s.target, ast.Index):
            return None
        if len(s.target.indices) != 1 or not isinstance(s.target.base, ast.Name):
            return None
        if s.op not in ("=",) + _ALLOWED_COMPOUND:
            return None
        affine = b.affine(s.target.indices[0])
        if affine is None:
            return None
        coeff, off = affine
        if coeff == 0:
            return None               # loop-invariant write target
        elem_t = checked.type_of(s.target)
        if elem_t is not T.INT and elem_t is not T.FLOAT:
            return None
        is_int_elem = elem_t is T.INT
        value_t = checked.type_of(s.value)
        to_float = elem_t is T.FLOAT and value_t is T.INT
        if is_int_elem and not value.is_int:
            return None               # float→int truncation can trap
        _, wb = compiler._compile_expr(s.target.base)
        _, wi = compiler._compile_expr(s.target.indices[0])
        weight = wv + wb + wi + W_STORE
        plan_stmts.append(VStore(s.target.base.ident, coeff, off, value,
                                 s.op, to_float, is_int_elem))
        sites.append(weight if s.op == "=" else weight + W_BIN + W_LOAD)

    if not plan_stmts:
        return None
    return _index_plan(VecPlan(var, plan_stmts, sites))


def build_expr_plan(compiler, var: str, body_expr: ast.Expr) -> Optional[VecPlan]:
    """Plan for a side-effect-free expression lambda (Kokkos reduce/scan
    contributions): all lane values are computed in bulk; the pattern
    runtime folds or scans them."""
    b = _Builder(compiler, var)
    value = b.expr(body_expr)
    if value is None:
        return None
    return _index_plan(VecPlan(var, [], [], value=value))


# --------------------------------------------------------------------------
# runtime prechecks + bulk execution
# --------------------------------------------------------------------------

_DTYPES = {True: np.int64, False: np.float64}


class _Prep:
    """Everything the executor needs, established before any mutation."""

    __slots__ = ("arrays", "offsets", "forms", "scal", "n", "start", "step")

    def __init__(self):
        self.arrays: Dict[str, Array] = {}
        self.offsets: Dict[int, int] = {}     # id(off VNode) -> value
        self.forms: Dict[str, Tuple[int, int]] = {}   # ident -> (p0, dp)
        self.scal: Dict[str, object] = {}     # invariant name -> value


def _eval_inv(node: VNode, env: dict):
    """Evaluate a loop-invariant (load-free) subtree with plain Python
    arithmetic — bitwise identical to the scalar tier."""
    k = node.kind
    if k == "lit":
        return node.value
    if k == "name":
        return env[node.ident]
    if k == "neg":
        return -_eval_inv(node.a, env)
    a = _eval_inv(node.a, env)
    b = _eval_inv(node.b, env)
    if node.op == "+":
        return a + b
    if node.op == "-":
        return a - b
    return a * b


def _slice_for(p0: int, dp: int, a: int, cnt: int) -> slice:
    """List slice covering lane positions ``p0 + (a+k)*dp`` for k<cnt."""
    first = p0 + a * dp
    stop = first + cnt * dp
    if dp < 0 and stop < 0:
        stop = None
    return slice(first, stop, dp)


class _IntervalState:
    """Abstract int-range interpretation of one loop body pass.

    Written arrays use a single injective affine form, so no value flows
    between iterations through memory; a single in-order pass over the
    statements therefore bounds every int64 intermediate the bulk tier
    will compute.
    """

    def __init__(self, prep: _Prep, i_lo: int, i_hi: int):
        self.prep = prep
        self.i_range = (min(i_lo, i_hi), max(i_lo, i_hi))
        # (uid, p0, dp) -> interval; written arrays have a single form, so
        # a form key tracks store updates while keeping distinct read-only
        # forms of the same array apart
        self.mem: Dict[Tuple[int, int, int], Tuple[int, int]] = {}

    def _form_key(self, ident: str, coeff: int, off: VNode):
        arr = self.prep.arrays[ident]
        offv = self.prep.offsets[id(off)]
        p0 = coeff * self.prep.start + offv
        return arr, (arr.uid, p0, coeff * self.prep.step)

    def form_interval(self, ident: str, coeff: int, off: VNode,
                      n: int) -> Tuple[int, int]:
        arr, key = self._form_key(ident, coeff, off)
        cur = self.mem.get(key)
        if cur is not None:
            return cur
        _, p0, dp = key
        seg = arr.data[_slice_for(p0, dp, 0, n)] if dp else [arr.data[p0]]
        lanes = np.array(seg, dtype=np.int64)   # OverflowError -> fallback
        iv = (int(lanes.min()), int(lanes.max()))
        self.mem[key] = iv
        return iv

    def interval(self, node: VNode, n: int) -> Optional[Tuple[int, int]]:
        """Interval of an int node; None for float nodes.  Raises
        _Ineligible when a bound escapes the int64 safety margin."""
        if not node.is_int:
            # still bound any int subtrees feeding this float node
            for child in (node.a, node.b):
                if isinstance(child, VNode):
                    self.interval(child, n)
            return None
        k = node.kind
        if k == "lit":
            iv = (node.value, node.value)
        elif k == "ivar":
            iv = self.i_range
        elif k == "name":
            v = self.prep.scal[node.ident]
            iv = (v, v)
        elif k == "load":
            iv = self.form_interval(node.ident, node.coeff, node.off, n)
        elif k == "neg":
            a = self.interval(node.a, n)
            iv = (-a[1], -a[0])
        else:
            a = self.interval(node.a, n)
            b = self.interval(node.b, n)
            if node.op == "+":
                iv = (a[0] + b[0], a[1] + b[1])
            elif node.op == "-":
                iv = (a[0] - b[1], a[1] - b[0])
            else:
                corners = (a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1])
                iv = (min(corners), max(corners))
        if abs(iv[0]) >= _INT_LIMIT or abs(iv[1]) >= _INT_LIMIT:
            raise _Ineligible
        return iv

    def store(self, st: VStore, n: int) -> None:
        val = self.interval(st.value, n)
        if not st.is_int_elem:
            return
        _, key = self._form_key(st.ident, st.coeff, st.off)
        if st.op == "=":
            self.mem[key] = val
            return
        cur = self.form_interval(st.ident, st.coeff, st.off, n)
        if st.op == "+=":
            iv = (cur[0] + val[0], cur[1] + val[1])
        elif st.op == "-=":
            iv = (cur[0] - val[1], cur[1] - val[0])
        else:
            corners = (cur[0] * val[0], cur[0] * val[1],
                       cur[1] * val[0], cur[1] * val[1])
            iv = (min(corners), max(corners))
        if abs(iv[0]) >= _INT_LIMIT or abs(iv[1]) >= _INT_LIMIT:
            raise _Ineligible
        self.mem[key] = iv

    def reduce_guard(self, red: VReduce, acc0, n: int) -> None:
        val = self.interval(red.value, n)
        if not red.is_int_target:
            return
        bound = abs(acc0) + n * max(abs(val[0]), abs(val[1]))
        if bound >= _INT_LIMIT:
            raise _Ineligible


class _Ineligible(Exception):
    """Raised during prechecks: fall back to the scalar tier."""


def _prepare(plan: VecPlan, env: dict, ctx, start: int, stop: int,
             step: int, n: int) -> Optional[_Prep]:
    """Run every precheck; on success the bulk executor cannot trap,
    wrap, run out of fuel mid-loop, or disagree with the scalar tier."""
    try:
        if not (abs(start) < _BOUND_LIMIT and abs(stop) < _BOUND_LIMIT
                and abs(step) < _BOUND_LIMIT):
            raise _Ineligible
        prep = _Prep()
        prep.n = n
        prep.start = start
        prep.step = step

        for ident in plan.names:
            v = env[ident]
            tv = type(v)
            if tv is not int and tv is not float:
                raise _Ineligible
            if tv is int and abs(v) >= _INT_LIMIT:
                raise _Ineligible
            prep.scal[ident] = v

        accesses: List[Tuple[str, int, VNode]] = []
        for ld in plan.loads:
            accesses.append((ld.ident, ld.coeff, ld.off))
        for st in plan.stores:
            accesses.append((st.ident, st.coeff, st.off))

        for ident, _, _ in accesses:
            if ident in prep.arrays:
                continue
            a = env.get(ident)
            if not isinstance(a, Array) or len(a.shape) != 1:
                raise _Ineligible
            prep.arrays[ident] = a

        # resolve offsets and bounds-check every access form
        forms_by_uid: Dict[int, set] = {}
        for ident, coeff, off in accesses:
            if id(off) not in prep.offsets:
                v = _eval_inv(off, env)
                if type(v) is not int or abs(v) >= _BOUND_LIMIT:
                    raise _Ineligible
                prep.offsets[id(off)] = v
            offv = prep.offsets[id(off)]
            arr = prep.arrays[ident]
            p0 = coeff * start + offv
            dp = coeff * step
            length = arr.shape[0]
            last = p0 + (n - 1) * dp
            if not (0 <= p0 < length and 0 <= last < length):
                raise _Ineligible
            forms_by_uid.setdefault(arr.uid, set()).add((p0, dp))

        # aliasing: every access to a written array must share one
        # injective form (uid-level, so aliased names are caught too)
        for s in plan.stores:
            arr = prep.arrays[s.ident]
            offv = prep.offsets[id(s.off)]
            p0 = s.coeff * start + offv
            dp = s.coeff * step
            prep.forms[s.ident] = (p0, dp)
            if dp == 0:
                raise _Ineligible
            if forms_by_uid[arr.uid] != {(p0, dp)}:
                raise _Ineligible

        # int64 interval analysis over one in-order body pass
        state = _IntervalState(prep, start, start + (n - 1) * step)
        if plan.value is not None:
            state.interval(plan.value, n)
        for s in plan.stmts:
            if isinstance(s, VStore):
                state.store(s, n)
            else:
                acc0 = prep.scal.get(s.name, env.get(s.name))
                tv = type(acc0)
                if tv is not int and tv is not float:
                    raise _Ineligible
                if tv is int and abs(acc0) >= _INT_LIMIT:
                    raise _Ineligible
                state.reduce_guard(s, acc0, n)
        return prep
    except (_Ineligible, OverflowError, KeyError, TypeError):
        if ctx.vec_stats is not None:
            ctx.vec_stats.miss()
        return None


# -- cost replication --------------------------------------------------------

_COST_CHUNK = 1 << 16


def _iter_sites(iter_weight: float, sites: List[float]) -> np.ndarray:
    return np.asarray([iter_weight] + list(sites), dtype=np.float64)


def _final_cost(c0: float, site_seq: np.ndarray, n: int) -> float:
    """Final ``ctx.cost`` after n iterations — the exact sequential fold,
    evaluated in bounded-memory chunks."""
    m = len(site_seq)
    c = c0
    done = 0
    while done < n:
        cnt = min(_COST_CHUNK, n - done)
        arr = np.empty(cnt * m + 1, dtype=np.float64)
        arr[0] = c
        arr[1:] = np.tile(site_seq, cnt)
        np.add.accumulate(arr, out=arr)
        c = float(arr[-1])
        done += cnt
    return c


def _cost_bounds(c0: float, site_seq: np.ndarray, n: int) -> np.ndarray:
    """``bounds[k]`` = ctx.cost after k complete iterations (bitwise equal
    to the scalar tier's sequential adds); length n+1."""
    m = len(site_seq)
    bounds = np.empty(n + 1, dtype=np.float64)
    bounds[0] = c0
    c = c0
    done = 0
    while done < n:
        cnt = min(_COST_CHUNK, n - done)
        arr = np.empty(cnt * m + 1, dtype=np.float64)
        arr[0] = c
        arr[1:] = np.tile(site_seq, cnt)
        np.add.accumulate(arr, out=arr)
        bounds[done + 1:done + cnt + 1] = arr[m::m]
        c = float(arr[-1])
        done += cnt
    return bounds


# -- bulk segment execution --------------------------------------------------


class _SegState:
    __slots__ = ("prep", "env", "a", "b", "cache", "dirty", "i_lanes")

    def __init__(self, prep: _Prep, env: dict, a: int, b: int):
        self.prep = prep
        self.env = env
        self.a = a
        self.b = b
        self.cache: Dict[Tuple[int, int, int], object] = {}
        self.dirty: Dict[Tuple[int, int, int], Tuple[Array, slice, int]] = {}
        self.i_lanes = None

    def lanes_i(self):
        if self.i_lanes is None:
            self.i_lanes = (self.prep.start
                            + self.prep.step * np.arange(self.a, self.b,
                                                         dtype=np.int64))
        return self.i_lanes


def _eval_seg(node: VNode, st: _SegState):
    k = node.kind
    if k == "lit":
        return node.value
    if k == "name":
        return st.prep.scal[node.ident]
    if k == "ivar":
        return st.lanes_i()
    if k == "neg":
        return -_eval_seg(node.a, st)
    if k == "load":
        return _load_seg(node.ident, node.coeff, node.off, node.is_int, st)
    a = _eval_seg(node.a, st)
    b = _eval_seg(node.b, st)
    if node.op == "+":
        return a + b
    if node.op == "-":
        return a - b
    return a * b


def _load_seg(ident: str, coeff: int, off: VNode, is_int: bool,
              st: _SegState):
    prep = st.prep
    arr = prep.arrays[ident]
    offv = prep.offsets[id(off)]
    p0 = coeff * prep.start + offv
    dp = coeff * prep.step
    if dp == 0:
        return arr.data[p0]
    key = (arr.uid, p0, dp)
    lanes = st.cache.get(key)
    if lanes is None:
        sl = _slice_for(p0, dp, st.a, st.b - st.a)
        lanes = np.array(arr.data[sl], dtype=_DTYPES[is_int])
        st.cache[key] = lanes
    return lanes


_RED_IDENT = {"+=": "add", "-=": "add", "*=": "multiply"}


def _exec_segment(plan: VecPlan, prep: _Prep, env: dict, a: int, b: int,
                  collect: Optional[list] = None) -> None:
    """Execute lanes [a, b) of the loop in bulk: statements in order,
    store-to-load forwarding per array form, write-back at the end."""
    st = _SegState(prep, env, a, b)
    cnt = b - a
    with np.errstate(over="ignore", invalid="ignore", under="ignore"):
        if plan.value is not None and collect is not None:
            val = _eval_seg(plan.value, st)
            if isinstance(val, np.ndarray):
                collect.extend(val.tolist())
            else:
                collect.extend([val] * cnt)
        for s in plan.stmts:
            if isinstance(s, VStore):
                _exec_store(s, st, cnt)
            else:
                _exec_reduce(s, st, env, cnt)
    for key, (arr, sl, seg_cnt) in st.dirty.items():
        lanes = st.cache[key]
        if isinstance(lanes, np.ndarray):
            arr.data[sl] = lanes.tolist()
        else:
            arr.data[sl] = [lanes] * seg_cnt


def _exec_store(s: VStore, st: _SegState, cnt: int) -> None:
    prep = st.prep
    arr = prep.arrays[s.ident]
    p0, dp = prep.forms[s.ident]
    key = (arr.uid, p0, dp)
    val = _eval_seg(s.value, st)
    if s.op == "=":
        if s.to_float:
            val = (val.astype(np.float64)
                   if isinstance(val, np.ndarray) else float(val))
        new = val
    else:
        old = _load_seg(s.ident, s.coeff, s.off, s.is_int_elem, st)
        if s.op == "+=":
            new = old + val
        elif s.op == "-=":
            new = old - val
        else:
            new = old * val
    st.cache[key] = new
    st.dirty[key] = (arr, _slice_for(p0, dp, st.a, cnt), cnt)


def _exec_reduce(s: VReduce, st: _SegState, env: dict, cnt: int) -> None:
    val = _eval_seg(s.value, st)
    acc0 = env[s.name]
    dtype = _DTYPES[s.is_int_target]
    arr = np.empty(cnt + 1, dtype=dtype)
    arr[0] = acc0
    arr[1:] = val
    ufunc = np.add if s.op in ("+=", "-=") else np.multiply
    if s.op == "-=":
        np.negative(arr[1:], out=arr[1:])
    ufunc.accumulate(arr, out=arr)
    result = arr[-1].item()
    env[s.name] = int(result) if s.is_int_target else result


# --------------------------------------------------------------------------
# executors
# --------------------------------------------------------------------------


def _bulk_ok(ctx) -> bool:
    """Bulk execution is transparent only when the tracer cannot observe
    the skipped per-element accesses."""
    if not ctx.vectorize:
        return False
    if ctx.protection == ATOMIC:
        return False
    t = ctx.trace
    return t is None or not t.active


def run_serial(plan: VecPlan, env: dict, ctx, start: int, stop: int,
               step: int, iter_weight: float) -> bool:
    """Bulk path for a serial ``for`` loop (or a pfor executed serially).
    Returns False when the loop must run on the scalar tier."""
    if not _bulk_ok(ctx):
        return False
    n = len(range(start, stop, step))
    if n < MIN_SERIAL_ITERS:
        return False
    prep = _prepare(plan, env, ctx, start, stop, step, n)
    if prep is None:
        return False
    site_seq = _iter_sites(iter_weight, plan.sites)
    final = _final_cost(ctx.cost, site_seq, n)
    if final > ctx.fuel:
        # the scalar tier raises FuelExhausted at the exact back-edge
        if ctx.vec_stats is not None:
            ctx.vec_stats.miss()
        return False
    _exec_segment(plan, prep, env, 0, n)
    ctx.cost = final
    env[plan.var] = start + (n - 1) * step
    if ctx.vec_stats is not None:
        ctx.vec_stats.hit(n)
    return True


def _segments(n: int, windows) -> Optional[List[Tuple[int, int, bool]]]:
    """Ordered (lo, hi, scalar?) segments interleaving trace windows with
    bulk spans; None when the windows are not disjoint and ordered."""
    spans = [(lo, hi) for lo, hi in windows if lo < hi]
    prev = 0
    out: List[Tuple[int, int, bool]] = []
    for lo, hi in spans:
        if lo < prev:
            return None
        if lo > prev:
            out.append((prev, lo, False))
        out.append((lo, hi, True))
        prev = hi
    if prev < n:
        out.append((prev, n, False))
    return out


def run_windowed(plan: VecPlan, env: dict, ctx, start: int, stop: int,
                 step: int, iter_weight: float, where: str,
                 scalar_iter: Callable[[int], None],
                 collect: Optional[list] = None):
    """Bulk path for a profiled parallel loop (OpenMP pfor, Kokkos
    pattern).  Trace-window iterations run on the scalar tier with the
    tracer active; the spans between them run in bulk.  Returns
    ``(costs, crits, tracer)`` exactly as ``_profiled_loop`` would, or
    None to fall back."""
    if not ctx.vectorize or ctx.protection == ATOMIC:
        return None
    n = len(range(start, stop, step))
    if n < MIN_WINDOWED_ITERS:
        return None
    prep = _prepare(plan, env, ctx, start, stop, step, n)
    if prep is None:
        return None
    site_seq = _iter_sites(iter_weight, plan.sites)
    bounds = _cost_bounds(ctx.cost, site_seq, n)
    if bounds[-1] > ctx.fuel:
        if ctx.vec_stats is not None:
            ctx.vec_stats.miss()
        return None
    tracer = Tracer(n)
    segs = _segments(n, tracer.windows)
    if segs is None:
        return None
    prev_trace = ctx.trace
    ctx.trace = tracer
    bulk_iters = 0
    try:
        for lo_k, hi_k, scalar in segs:
            if scalar:
                for k in range(lo_k, hi_k):
                    tracer.begin_iteration(k)
                    ctx.crit_units = 0.0
                    ctx.cost += iter_weight
                    r = scalar_iter(start + k * step)
                    if collect is not None:
                        collect.append(r)
            else:
                _exec_segment(plan, prep, env, lo_k, hi_k, collect=collect)
                ctx.cost = float(bounds[hi_k])
                bulk_iters += hi_k - lo_k
    finally:
        ctx.trace = prev_trace
    ctx.crit_units = 0.0
    # leave the loop variable and tracer cursor exactly as the scalar
    # tier's final iteration would
    env[plan.var] = start + (n - 1) * step
    tracer.begin_iteration(n - 1)
    tracer.check(where)
    costs = bounds[1:] - bounds[:-1]
    crits = np.zeros(n, dtype=np.float64)
    if ctx.vec_stats is not None:
        ctx.vec_stats.hit(bulk_iters)
    return costs, crits, tracer
