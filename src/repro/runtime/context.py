"""Execution context shared by all MiniPar runtimes.

The context carries the simulated clock (``cost``, in abstract op units),
the fuel limit that models the harness' kill timer, the active runtime
(which implements the parallel constructs), and the race-detection state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from ..faults import inject
from ..lang.errors import FuelExhausted, MemoryExhausted
from .machine import Machine
from .tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from .runtimes import BaseRuntime


class ExecCtx:
    """Per-execution interpreter state.

    ``cost`` is the running *work* counter in op units.  Serial statements
    add to it directly; parallel regions additionally record, per candidate
    processor count, how much faster the region would have been than its
    serial work (``parallel_adjust``), so one execution prices the program
    at every thread count.

    ``work_scale`` models a problem ``S`` times larger than the arrays the
    interpreter actually touches: program work (and message sizes, atomic
    counts, GPU thread counts) scale by ``S`` while hardware overheads
    (fork/join, latency, kernel launch) stay fixed.  This is what lets a
    4k-element interpreted run stand in for the paper's multi-million
    element timing runs without multi-million interpreted iterations.
    """

    __slots__ = (
        "machine", "rt", "kernels", "cost", "fuel", "work_scale",
        "extra_units", "trace", "protection", "crit_units",
        "parallel_adjust", "in_parallel", "prof",
        "gpu_thread", "gpu_block", "gpu_block_dim", "gpu_grid_dim",
        "mem_budget", "mem_used", "vectorize", "vec_stats",
    )

    def __init__(
        self,
        machine: Machine,
        rt: "BaseRuntime",
        fuel: Optional[int] = None,
        work_scale: float = 1.0,
        vectorize: bool = True,
        vec_stats=None,
    ):
        self.machine = machine
        self.rt = rt
        self.kernels: Dict[str, object] = {}
        self.cost = 0.0
        self.fuel = float(fuel if fuel is not None else machine.fuel)
        self.work_scale = float(work_scale)
        self.extra_units = 0.0   # unscaled additions (comm waits, idling)
        self.trace: Optional[Tracer] = None
        self.protection = 0
        self.crit_units = 0.0
        self.parallel_adjust: Dict[int, float] = {}
        self.in_parallel = False
        # optional ProfBuilder (repro.prof); None keeps the zero-overhead
        # fast path — every instrumentation site guards on `ctx.prof is None`
        self.prof = None
        # SIMT identity (set by the GPU runtime per thread)
        self.gpu_thread = 0
        self.gpu_block = 0
        self.gpu_block_dim = 1
        self.gpu_grid_dim = 1
        # tier-2 vectorized execution (repro.runtime.vectorize): opt-out
        # switch plus optional shared idiom-hit counters (a VecStats)
        self.vectorize = bool(vectorize)
        self.vec_stats = vec_stats
        # memory budget in simulated bytes; allocations charge against it
        # (infinite unless a fault plan grants this context a tiny budget,
        # which makes the next allocation simulate a node OOM)
        self.mem_budget = float("inf")
        self.mem_used = 0.0
        if inject.ACTIVE is not None:
            rule = inject.ACTIVE.fire("runtime.mem.budget",
                                      type(rt).__name__)
            if rule is not None:
                self.mem_budget = rule.param if rule.param > 0 else 64.0

    def check_fuel(self) -> None:
        """Raise when the interpreter work budget is exhausted.

        Called from loop back-edges — the only places unbounded work can
        accumulate — so straight-line code never pays the check.
        """
        if self.cost > self.fuel:
            raise FuelExhausted(
                f"execution exceeded the work budget ({int(self.fuel)} op units); "
                "treating as a harness timeout"
            )

    def charge_alloc(self, nbytes: float) -> None:
        """Charge an allocation against the memory budget.

        Budgets are infinite in normal operation; a fault plan can grant
        a context a small budget so the next ``alloc_*`` raises
        :class:`MemoryExhausted` — the simulated node-OOM fault.
        """
        self.mem_used += nbytes
        if self.mem_used > self.mem_budget:
            raise MemoryExhausted(
                f"allocation of {int(nbytes)} bytes exceeded the "
                f"{int(self.mem_budget)}-byte memory budget "
                "(simulated node OOM)"
            )

    def clock_units(self, threads: int = 1) -> float:
        """Current simulated clock in (scaled) op units."""
        return (
            self.cost * self.work_scale
            + self.extra_units
            + self.parallel_adjust.get(threads, 0.0)
        )

    def sim_seconds(self, threads: int = 1) -> float:
        """Simulated wall time at ``threads`` processors, in seconds."""
        return self.clock_units(threads) * self.machine.cpu.cycle
