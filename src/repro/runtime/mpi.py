"""MPI runtime: executes a MiniPar program on N simulated ranks.

Each rank runs the compiled kernel on its own OS thread with a private
:class:`ExecCtx` (its local clock, in scaled op units).  Ranks interact
only through :class:`CommWorld`:

* point-to-point: buffered sends append to per-(src, dst, tag) FIFO
  queues stamped with an arrival time from the alpha-beta network model;
  receives block until a matching message exists, then advance the local
  clock to ``max(now, arrival)``;
* collectives: call-sequence-matched rendezvous — every rank's k-th
  collective must agree on (kind, root, op) or the run aborts with
  :class:`MPIUsageError` (the moral equivalent of MPI's undefined
  behaviour on mismatched collectives, surfaced deterministically);
* deadlock: all live ranks blocked with nothing deliverable ⇒
  :class:`DeadlockError` on every rank.  A rank that *finishes* while
  others still wait for it also triggers detection.

Message values are copied on send (MPI has no shared memory), and all
message matching is (src, tag)-deterministic, so results do not depend on
thread scheduling.  Simulated time = max over ranks of the final clock.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults import inject
from ..lang.errors import DeadlockError, MiniParError, MPIUsageError, RuntimeFailure
from .compile import CompiledProgram, PForInfo
from .context import ExecCtx
from .machine import Machine
from .runtimes import BaseRuntime, OpenMPRuntime, fold, run_loop_serial
from .values import Array, deep_copy_value, nbytes

_SCALAR_COLLECTIVE_BYTES = 8


class _Abort(MiniParError):
    """Internal: another rank failed; unwind quietly."""


@dataclass
class _Collective:
    signature: Tuple
    values: Dict[int, object] = field(default_factory=dict)
    arrivals: Dict[int, float] = field(default_factory=dict)
    done: bool = False
    completion: float = 0.0
    results: Dict[int, object] = field(default_factory=dict)


class CommWorld:
    """Shared state connecting the rank threads of one MPI job."""

    def __init__(self, nranks: int, machine: Machine, work_scale: float):
        self.nranks = nranks
        self.machine = machine
        self.scale = work_scale
        self.cond = threading.Condition()
        self.queues: Dict[Tuple[int, int, int], deque] = defaultdict(deque)
        self.blocked = 0
        self.alive = nranks
        self.failure: Optional[BaseException] = None
        self.collectives: Dict[int, _Collective] = {}
        self.waiters: Dict[int, object] = {}
        self._next_waiter = 0

    # All methods below must be called with self.cond held. ------------------

    def _units(self, seconds: float) -> float:
        return seconds / self.machine.cpu.cycle

    def abort(self, exc: BaseException) -> None:
        if self.failure is None:
            self.failure = exc
        self.cond.notify_all()

    def check_abort(self) -> None:
        if self.failure is not None:
            raise _Abort()

    def _all_stuck(self) -> bool:
        """True when no registered waiter's predicate is satisfiable.

        A blocked rank whose predicate just became true still counts in
        ``blocked`` until it wakes, so deadlock is only declared after
        re-evaluating every waiter's condition under the lock.
        """
        return all(not p() for p in self.waiters.values())

    def wait_for(self, predicate) -> None:
        """Block until predicate() or the world aborts; detects deadlock."""
        self.blocked += 1
        wid = self._next_waiter
        self._next_waiter += 1
        self.waiters[wid] = predicate
        try:
            while not predicate():
                self.check_abort()
                if self.blocked >= self.alive and self._all_stuck():
                    self.abort(DeadlockError(
                        f"deadlock: all {self.alive} live rank(s) blocked with "
                        "no deliverable messages"
                    ))
                    raise _Abort()
                self.cond.wait(timeout=10.0)
            self.check_abort()
        finally:
            del self.waiters[wid]
            self.blocked -= 1

    def finish_rank(self) -> None:
        self.alive -= 1
        if 0 < self.alive <= self.blocked and self._all_stuck():
            self.abort(DeadlockError(
                "deadlock: remaining rank(s) blocked after peers finished"
            ))
        self.cond.notify_all()


class MPIRankRuntime(BaseRuntime):
    """The runtime a single rank's ExecCtx dispatches through."""

    model = "mpi"

    def __init__(self, rank: int, world: CommWorld):
        self.rank = rank
        self.world = world
        self.coll_seq = 0

    # -- clock helpers ---------------------------------------------------------

    @staticmethod
    def _clock(ctx: ExecCtx) -> float:
        return ctx.cost * ctx.work_scale + ctx.extra_units

    @staticmethod
    def _advance_to(ctx: ExecCtx, target: float, category: str = "idle") -> None:
        now = ctx.cost * ctx.work_scale + ctx.extra_units
        if target > now:
            ctx.extra_units += target - now
            if ctx.prof is not None:
                ctx.prof.add_extra(category, target - now)

    def _validate_rank(self, r, what: str) -> int:
        if not isinstance(r, int) or not 0 <= r < self.world.nranks:
            raise MPIUsageError(
                f"invalid {what} {r!r} for communicator of size {self.world.nranks}"
            )
        return r

    # -- point to point -----------------------------------------------------------

    def mpi_rank(self, ctx: ExecCtx) -> int:
        return self.rank

    def mpi_size(self, ctx: ExecCtx) -> int:
        return self.world.nranks

    def mpi_send(self, ctx: ExecCtx, value, dest, tag) -> None:
        w = self.world
        dest = self._validate_rank(dest, "destination rank")
        size = nbytes(value) * ctx.work_scale
        travel = w._units(w.machine.net.point_to_point(int(size), self.rank, dest))
        with w.cond:
            w.check_abort()
            now = self._clock(ctx)
            # sender pays an injection overhead; message lands after travel
            ctx.extra_units += 0.3 * travel
            if ctx.prof is not None:
                ctx.prof.add_extra("message", 0.3 * travel)
                ctx.prof.count("messages")
                ctx.prof.count("message_bytes", float(size))
            msg = (deep_copy_value(value), now + travel)
            q = w.queues[(self.rank, dest, tag)]
            if inject.ACTIVE is not None:
                rule = inject.ACTIVE.fire(
                    "runtime.mpi.msg", f"{self.rank}->{dest}#t{tag}")
                if rule is not None:
                    if rule.action == "drop":
                        # lost on the wire: the receiver blocks until the
                        # deadlock detector or host watchdog intervenes
                        w.cond.notify_all()
                        return
                    if rule.action == "dup":
                        q.append(msg)
                        q.append((deep_copy_value(value), now + travel))
                        w.cond.notify_all()
                        return
                    if rule.action == "reorder":
                        # delivered ahead of earlier traffic on this channel
                        q.appendleft(msg)
                        w.cond.notify_all()
                        return
            q.append(msg)
            w.cond.notify_all()

    def _recv(self, ctx: ExecCtx, src, tag):
        w = self.world
        src = self._validate_rank(src, "source rank")
        key = (src, self.rank, tag)
        with w.cond:
            q = w.queues[key]
            w.wait_for(lambda: len(q) > 0)
            value, arrival = q.popleft()
        self._advance_to(ctx, arrival, "message")
        ctx.extra_units += w._units(w.machine.net.alpha) * 0.3
        if ctx.prof is not None:
            ctx.prof.add_extra("message", w._units(w.machine.net.alpha) * 0.3)
        return value

    def mpi_recv_float(self, ctx: ExecCtx, src, tag) -> float:
        v = self._recv(ctx, src, tag)
        if isinstance(v, Array) or isinstance(v, bool) or not isinstance(v, (int, float)):
            raise MPIUsageError("mpi_recv_float: message is not a scalar number")
        return float(v)

    def mpi_recv_int(self, ctx: ExecCtx, src, tag) -> int:
        v = self._recv(ctx, src, tag)
        if not isinstance(v, int) or isinstance(v, bool):
            raise MPIUsageError("mpi_recv_int: message is not an int")
        return v

    def mpi_recv_array_float(self, ctx: ExecCtx, src, tag) -> Array:
        v = self._recv(ctx, src, tag)
        if not isinstance(v, Array) or v.elem != "float":
            raise MPIUsageError("mpi_recv_array_float: message is not a float array")
        return v

    def mpi_recv_array_int(self, ctx: ExecCtx, src, tag) -> Array:
        v = self._recv(ctx, src, tag)
        if not isinstance(v, Array) or v.elem != "int":
            raise MPIUsageError("mpi_recv_array_int: message is not an int array")
        return v

    # -- collectives -----------------------------------------------------------------

    def _collective(self, ctx: ExecCtx, kind: str, signature: Tuple, value,
                    payload_bytes: float):
        """Rendezvous with every other rank's matching collective call."""
        w = self.world
        seq = self.coll_seq
        self.coll_seq += 1
        with w.cond:
            w.check_abort()
            c = w.collectives.get(seq)
            if c is None:
                c = w.collectives[seq] = _Collective(signature=signature)
            elif c.signature != signature:
                w.abort(MPIUsageError(
                    f"mismatched collectives at call #{seq}: rank {self.rank} "
                    f"called {signature}, another rank called {c.signature}"
                ))
                raise _Abort()
            c.values[self.rank] = value
            c.arrivals[self.rank] = self._clock(ctx)
            if len(c.values) == w.nranks:
                comm = w._units(w.machine.net.collective(
                    kind, int(payload_bytes * ctx.work_scale), w.nranks
                ))
                c.completion = max(c.arrivals.values()) + comm
                c.results = self._combine(kind, signature, c.values)
                c.done = True
                w.cond.notify_all()
            else:
                w.wait_for(lambda: c.done)
            result = c.results.get(self.rank)
        self._advance_to(ctx, c.completion, "collective")
        if ctx.prof is not None:
            ctx.prof.count("collectives")
            ctx.prof.count(f"collective_bytes_{kind}",
                           payload_bytes * ctx.work_scale)
        return result

    def _combine(self, kind: str, signature: Tuple, values: Dict[int, object]):
        """Compute every rank's result for a completed collective."""
        n = self.world.nranks
        ordered = [values[r] for r in range(n)]
        tag = signature[0]
        if tag == "barrier":
            return {r: None for r in range(n)}
        if tag in ("bcast", "bcast_array", "scatter"):
            root = signature[1]
            v = ordered[root]
            return {r: (v if r == root else deep_copy_value(v)) for r in range(n)}
        if tag == "reduce":
            _, root, op = signature
            total = fold(op, ordered)
            zero = 0 if isinstance(total, int) else 0.0
            return {r: (total if r == root else zero) for r in range(n)}
        if tag == "allreduce":
            op = signature[1]
            total = fold(op, ordered)
            return {r: total for r in range(n)}
        if tag == "scan":
            op = signature[1]
            out: Dict[int, object] = {}
            acc = None
            for r in range(n):
                acc = ordered[r] if acc is None else fold(op, [acc, ordered[r]])
                out[r] = acc
            return out
        if tag in ("reduce_array", "allreduce_array"):
            op = signature[2] if tag == "reduce_array" else signature[1]
            arrays: List[Array] = ordered  # type: ignore[assignment]
            self._check_same_length(arrays, tag)
            length = len(arrays[0].data)
            proto = arrays[0]
            out_arr = Array([0] * length, proto.elem, proto.shape)
            is_int = out_arr.elem == "int"
            for j in range(length):
                out_arr.data[j] = fold(op, [a.data[j] for a in arrays],
                                       as_int=is_int)
            if tag == "reduce_array":
                root = signature[1]
                return {r: (out_arr if r == root else None) for r in range(n)}
            return {r: (out_arr if r == 0 else out_arr.copy()) for r in range(n)}
        if tag in ("gather", "allgather"):
            chunks: List[Array] = ordered  # type: ignore[assignment]
            self._check_same_length(chunks, tag)
            data: List = []
            for a in chunks:
                data.extend(a.data)
            full = Array(data, chunks[0].elem, (len(data),))
            if tag == "gather":
                root = signature[1]
                return {r: (full if r == root else None) for r in range(n)}
            return {r: full for r in range(n)}
        raise AssertionError(tag)  # pragma: no cover

    # -- public collective API ---------------------------------------------------

    def mpi_barrier(self, ctx: ExecCtx) -> None:
        self._collective(ctx, "barrier", ("barrier",), None, 0)

    def mpi_bcast_scalar(self, ctx: ExecCtx, value, root):
        root = self._validate_rank(root, "root rank")
        return self._collective(ctx, "bcast", ("bcast", root), value,
                                _SCALAR_COLLECTIVE_BYTES)

    def mpi_bcast_array(self, ctx: ExecCtx, arr: Array, root) -> None:
        root = self._validate_rank(root, "root rank")
        result = self._collective(ctx, "bcast", ("bcast_array", root), arr,
                                  nbytes(arr))
        assert isinstance(result, Array)
        if len(result.data) != len(arr.data):
            raise MPIUsageError(
                f"mpi_bcast_array: rank {self.rank} buffer has "
                f"{len(arr.data)} elements, root sent {len(result.data)}"
            )
        if self.rank != root:
            arr.data[:] = result.data
        ctx.cost += 0.5 * len(arr.data)

    def mpi_reduce_scalar(self, ctx: ExecCtx, value, op, root):
        root = self._validate_rank(root, "root rank")
        return self._collective(ctx, "reduce", ("reduce", root, op), value,
                                _SCALAR_COLLECTIVE_BYTES)

    def mpi_allreduce_scalar(self, ctx: ExecCtx, value, op):
        return self._collective(ctx, "allreduce", ("allreduce", op), value,
                                _SCALAR_COLLECTIVE_BYTES)

    def mpi_scan_scalar(self, ctx: ExecCtx, value, op):
        return self._collective(ctx, "scan", ("scan", op), value,
                                _SCALAR_COLLECTIVE_BYTES)

    def _check_same_length(self, arrays: List[Array], what: str) -> int:
        lengths = {len(a.data) for a in arrays}
        if len(lengths) != 1:
            raise MPIUsageError(
                f"{what}: ranks passed arrays of different lengths "
                f"{sorted(lengths)}"
            )
        return lengths.pop()

    def mpi_reduce_array(self, ctx: ExecCtx, arr: Array, op, root) -> None:
        root = self._validate_rank(root, "root rank")
        result = self._collective(
            ctx, "reduce", ("reduce_array", root, op, len(arr.data)),
            arr.copy(), nbytes(arr),
        )
        if self.rank == root:
            assert isinstance(result, Array)
            arr.data[:] = result.data
        ctx.cost += 1.0 * len(arr.data)

    def mpi_allreduce_array(self, ctx: ExecCtx, arr: Array, op) -> None:
        result = self._collective(
            ctx, "allreduce", ("allreduce_array", op, len(arr.data)),
            arr.copy(), nbytes(arr),
        )
        assert isinstance(result, Array)
        arr.data[:] = result.data
        ctx.cost += 1.0 * len(arr.data)

    def mpi_scatter_array(self, ctx: ExecCtx, arr: Array, root) -> Array:
        root = self._validate_rank(root, "root rank")
        n = self.world.nranks
        result = self._collective(
            ctx, "scatter", ("scatter", root, len(arr.data)), arr,
            nbytes(arr) / max(1, n),
        )
        assert isinstance(result, Array)
        if len(result.data) % n != 0:
            raise MPIUsageError(
                f"mpi_scatter_array: {len(result.data)} elements do not divide "
                f"evenly across {n} ranks (use padding or a gather-based scheme)"
            )
        k = len(result.data) // n
        chunk = Array(result.data[self.rank * k:(self.rank + 1) * k],
                      result.elem, (k,))
        ctx.cost += 0.5 * k
        return chunk

    def mpi_gather_array(self, ctx: ExecCtx, local: Array, root) -> Array:
        root = self._validate_rank(root, "root rank")
        result = self._collective(
            ctx, "gather", ("gather", root, len(local.data)), local.copy(),
            nbytes(local) * self.world.nranks,
        )
        if self.rank != root:
            return Array([], local.elem, (0,))
        assert isinstance(result, Array)
        ctx.cost += 0.5 * len(result.data)
        return result

    def mpi_allgather_array(self, ctx: ExecCtx, local: Array) -> Array:
        result = self._collective(
            ctx, "allgather", ("allgather", len(local.data)), local.copy(),
            nbytes(local) * self.world.nranks,
        )
        assert isinstance(result, Array)
        ctx.cost += 0.5 * len(result.data)
        return result.copy()


class HybridRankRuntime(MPIRankRuntime, OpenMPRuntime):
    """MPI+OpenMP: an MPI rank whose OpenMP pragmas run at a fixed thread
    count (the hybrid sweeps fix (ranks, threads) per run)."""

    model = "mpi+omp"

    def __init__(self, rank: int, world: CommWorld, threads: int):
        MPIRankRuntime.__init__(self, rank, world)
        self.threads = threads
        self.thread_counts = (threads,)

    def omp_parallel_for(self, env: dict, ctx: ExecCtx, pf: PForInfo) -> None:
        OpenMPRuntime.omp_parallel_for(self, env, ctx, pf)
        # fold the fixed-thread-count adjustment into the rank clock
        adj = ctx.parallel_adjust.pop(self.threads, 0.0)
        ctx.extra_units += adj
        prof = ctx.prof
        if prof is not None:
            # fold this region's named adjust shares the same way: they
            # become extra attributions, with the ideal-parallel remainder
            # (adj minus the named overheads, usually negative) credited
            # back to compute so conservation survives the fold
            named = prof.adjust.pop(self.threads, {})
            folded = 0.0
            for cat, units in named.items():
                prof.add_extra(cat, units)
                folded += units
            prof.add_extra("compute", adj - folded)

    def omp_critical(self, env: dict, ctx: ExecCtx, body) -> None:
        OpenMPRuntime.omp_critical(self, env, ctx, body)

    def omp_atomic(self, env: dict, ctx: ExecCtx, update, scalar_key) -> None:
        OpenMPRuntime.omp_atomic(self, env, ctx, update, scalar_key)


@dataclass
class MPIRunResult:
    """Outcome of one MPI job."""

    ret: object                      # rank 0's kernel return value
    args: Sequence[object]           # rank 0's (mutated) arguments
    sim_seconds: float               # max over ranks of the final clock
    error: Optional[BaseException] = None
    profile: Optional["RunProfile"] = None  # job-level breakdown (opt-in)


def run_mpi(
    program: CompiledProgram,
    kernel: str,
    args: Sequence[object],
    nranks: int,
    machine: Machine,
    work_scale: float = 1.0,
    fuel: Optional[int] = None,
    threads_per_rank: int = 0,
    watchdog_timeout: float = 600.0,
    profile: bool = False,
    vectorize: bool = True,
    vec_stats=None,
) -> MPIRunResult:
    """Run ``kernel`` on ``nranks`` simulated ranks with replicated inputs.

    ``threads_per_rank > 0`` selects the hybrid MPI+OpenMP runtime.
    Inputs are deep-copied per rank (PCGBench MPI prompts state the data
    is replicated on every rank); rank 0's copies are returned for
    correctness checking.

    ``watchdog_timeout`` bounds the host-side join on each rank thread:
    a rank that is wedged (stalled outside the communication layer, so
    the deadlock detector cannot see it) aborts the whole job with a
    ``RuntimeFailure`` once the timeout elapses.
    """
    world = CommWorld(nranks, machine, work_scale)
    rank_args: List[List[object]] = [
        [deep_copy_value(a) for a in args] for _ in range(nranks)
    ]
    ctxs: List[ExecCtx] = []
    for r in range(nranks):
        if threads_per_rank > 0:
            rt: MPIRankRuntime = HybridRankRuntime(r, world, threads_per_rank)
        else:
            rt = MPIRankRuntime(r, world)
        ctx = ExecCtx(machine, rt, fuel=fuel, work_scale=work_scale,
                      vectorize=vectorize, vec_stats=vec_stats)
        if profile:
            from ..prof.record import ProfBuilder
            ctx.prof = ProfBuilder()
        ctxs.append(ctx)

    returns: List[object] = [None] * nranks
    errors: List[Optional[BaseException]] = [None] * nranks

    def rank_main(r: int) -> None:
        try:
            if inject.ACTIVE is not None:
                rule = inject.ACTIVE.fire("runtime.mpi.stall", f"rank{r}")
                if rule is not None:
                    # wedged outside the communication layer: invisible to
                    # the deadlock detector, only the watchdog can act
                    time.sleep(rule.param if rule.param > 0 else 2.0)
                    with world.cond:
                        world.check_abort()
            returns[r] = program.run_kernel(kernel, ctxs[r], rank_args[r])
        except _Abort:
            errors[r] = None
        except BaseException as exc:  # noqa: BLE001 - report any failure
            errors[r] = exc
            with world.cond:
                world.abort(exc)
        finally:
            with world.cond:
                world.finish_rank()

    if nranks == 1:
        rank_main(0)
    else:
        threads = [
            threading.Thread(target=rank_main, args=(r,), daemon=True)
            for r in range(nranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=watchdog_timeout)
            if t.is_alive():
                with world.cond:
                    world.abort(RuntimeFailure("MPI job wedged (host watchdog)"))

    failure = world.failure
    if failure is None:
        failure = next((e for e in errors if e is not None), None)
    if failure is not None:
        return MPIRunResult(ret=None, args=rank_args[0], sim_seconds=0.0,
                            error=failure)
    sim = max(
        (c.cost * c.work_scale + c.extra_units) * machine.cpu.cycle for c in ctxs
    )
    job_profile = _job_profile(ctxs, sim) if profile else None
    return MPIRunResult(ret=returns[0], args=rank_args[0], sim_seconds=sim,
                        profile=job_profile)


def _job_profile(ctxs: Sequence[ExecCtx], sim_seconds: float) -> "RunProfile":
    """Fold per-rank breakdowns into one job profile.

    Categories are the per-rank *means*; the gap between the slowest
    rank's clock (which defines ``sim_seconds``) and the mean is idle
    time — ranks waiting at MPI_Finalize for the straggler.  Summing the
    mean from the category sums (not the rank clocks) keeps the
    conservation identity ``sum(categories) == sim_seconds`` exact.
    """
    from ..prof.record import RunProfile, merge_counters
    cats: Dict[str, float] = {}
    counters: Dict[str, float] = {}
    for c in ctxs:
        for k, v in c.prof.categories_for(c, 1).items():
            cats[k] = cats.get(k, 0.0) + v
        merge_counters(counters, c.prof.counters)
    inv = 1.0 / len(ctxs)
    cats = {k: v * inv for k, v in cats.items()}
    mean = sum(cats.values())
    skew = sim_seconds - mean
    if skew > 0.0:
        cats["idle"] = cats.get("idle", 0.0) + skew
    elif skew:
        # negative skew is averaging float noise (~1 ulp); fold it into
        # compute so no category ever reports negative time
        cats["compute"] = cats.get("compute", 0.0) + skew
    counters["ranks"] = float(len(ctxs))
    return RunProfile(categories=cats, counters=counters)
