"""Execution runtimes for the shared-memory execution models.

Design: parallel loops are executed *once*, sequentially, while

1. attributing cost to each iteration (a per-iteration op-unit profile),
2. tracing memory accesses in sampled windows for race detection, and
3. separating critical-section cost (which serializes) from parallel cost.

From the per-iteration profile we can price the loop at *every* candidate
thread count in one pass (max-chunk sums for static schedules, greedy
bounds for dynamic), which is what makes full scaling sweeps affordable —
the same trick as profile-driven performance models like LogP simulators.

The difference between the OpenMP and Kokkos time models (fork/join that
grows with thread count vs. a persistent pool with log-cost dispatch) is
what reproduces the paper's Figure 5 contrast.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..faults import inject
from ..lang.errors import DataRaceError, RuntimeFailure, TrapError
from . import vectorize as _vec
from .compile import LamClosure, PForInfo
from .context import ExecCtx
from .machine import CPU_THREAD_COUNTS
from .tracer import CRITICAL, Tracer

_REDUCE_FN = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "min": lambda a, b: a if a < b else b,
    "max": lambda a, b: a if a > b else b,
}

_INT_SENTINEL = 2 ** 62


def reduce_identity(op: str, as_int: bool):
    """The identity element of a reduction, in the right numeric kind."""
    if op == "sum":
        return 0 if as_int else 0.0
    if op == "prod":
        return 1 if as_int else 1.0
    if op == "min":
        return _INT_SENTINEL if as_int else math.inf
    return -_INT_SENTINEL if as_int else -math.inf


def fold(op: str, values, as_int: bool = False):
    """Left fold of ``values`` under ``op``; preserves the element kind by
    starting from the first element when present."""
    fn = _REDUCE_FN[op]
    it = iter(values)
    try:
        acc = next(it)
    except StopIteration:
        return reduce_identity(op, as_int)
    for v in it:
        acc = fn(acc, v)
    return acc


def static_chunk_time(costs: np.ndarray, threads: int) -> float:
    """Parallel time of a statically scheduled loop: the max contiguous
    chunk sum under OpenMP's default static schedule (ceil(n/T)-sized
    chunks assigned in order; trailing threads may get none)."""
    n = len(costs)
    if n == 0:
        return 0.0
    if threads <= 1 or n <= 1:
        return float(costs.sum())
    chunk = -(-n // threads)  # ceil
    bounds = np.minimum(np.arange(threads + 1, dtype=np.int64) * chunk, n)
    cums = np.concatenate(([0.0], np.cumsum(costs)))
    chunk_sums = cums[bounds[1:]] - cums[bounds[:-1]]
    return float(chunk_sums.max())


def dynamic_chunk_time(costs: np.ndarray, threads: int, dispatch: float,
                       guided: bool = False) -> float:
    """Lower-bound model of a dynamically scheduled loop: perfect balance
    (total/T) plus per-chunk dispatch overhead, floored by the single
    largest iteration."""
    n = len(costs)
    if n == 0:
        return 0.0
    total = float(costs.sum())
    if threads <= 1:
        return total
    chunks = max(1.0, math.log2(n + 1) * threads) if guided else float(n)
    balanced = total / threads + dispatch * chunks / threads
    return max(balanced, float(costs.max()))


class BaseRuntime:
    """Serial runtime; also the base class for all others.

    Under the serial execution model OpenMP pragmas are *ignored* (the
    paper compiles serial prompts without ``-fopenmp``) and Kokkos/MPI/GPU
    builtins are unavailable (they would be link errors — the harness'
    link check rejects such programs before execution; hitting one here
    means the check was bypassed, so fail loudly).
    """

    model = "serial"
    supports_threads: Tuple[int, ...] = (1,)

    # -- OpenMP constructs (ignored: no -fopenmp) ---------------------------

    def omp_parallel_for(self, env: dict, ctx: ExecCtx, pf: PForInfo) -> None:
        run_loop_serial(env, ctx, pf)

    def omp_critical(self, env: dict, ctx: ExecCtx, body) -> None:
        sig = body(env, ctx)
        if sig is not None:
            raise RuntimeFailure("illegal control flow escaping a critical section")

    def omp_atomic(self, env: dict, ctx: ExecCtx, update, scalar_key) -> None:
        update(env, ctx)

    # -- unavailable models --------------------------------------------------

    def _not_linked(self, what: str):
        raise RuntimeFailure(
            f"{what} is not available under the {self.model!r} execution model "
            "(link error should have been caught by the harness)"
        )

    def kokkos_for(self, env, ctx, n, lam, where):
        self._not_linked("Kokkos")

    def kokkos_reduce(self, env, ctx, n, op, lam, where):
        self._not_linked("Kokkos")

    def kokkos_scan(self, env, ctx, n, op, lam, out, inclusive, where):
        self._not_linked("Kokkos")

    def gpu_sync_threads(self, ctx):
        self._not_linked("GPU intrinsics")

    def __getattr__(self, name: str):
        if name.startswith("mpi_"):
            self._not_linked("MPI")
        raise AttributeError(name)


SerialRuntime = BaseRuntime


def run_loop_serial(env: dict, ctx: ExecCtx, pf: PForInfo) -> None:
    """Execute a parallel-for's loop sequentially (pragma ignored)."""
    lo = pf.lo(env, ctx)
    hi = pf.hi(env, ctx)
    step = pf.step(env, ctx) if pf.step is not None else 1
    if step <= 0:
        raise TrapError(f"for-loop step must be positive, got {step}")
    if pf.vec_plan is not None and _vec.run_serial(
        pf.vec_plan, env, ctx, lo, hi, step, pf.iter_weight
    ):
        return
    body = pf.body
    var = pf.var
    i = lo
    fuel = ctx.fuel
    while i < hi:
        ctx.cost += pf.iter_weight
        if ctx.cost > fuel:
            ctx.check_fuel()
        env[var] = i
        body(env, ctx)
        i += step


def _profiled_loop(
    env: dict,
    ctx: ExecCtx,
    indices: Sequence[int],
    run_iter: Callable[[int], None],
    where: str,
    iter_weight: float,
) -> Tuple[np.ndarray, np.ndarray, Tracer]:
    """Execute ``run_iter`` for each index, returning per-iteration cost,
    per-iteration critical-section cost, and the access tracer."""
    n = len(indices)
    tracer = Tracer(n)
    prev_trace = ctx.trace
    ctx.trace = tracer
    costs: List[float] = []
    crits: List[float] = []
    fuel = ctx.fuel
    try:
        for k, i in enumerate(indices):
            tracer.begin_iteration(k)
            c0 = ctx.cost
            ctx.crit_units = 0.0
            ctx.cost += iter_weight
            run_iter(i)
            if ctx.cost > fuel:
                ctx.check_fuel()
            costs.append(ctx.cost - c0)
            crits.append(ctx.crit_units)
    finally:
        ctx.trace = prev_trace
    tracer.check(where)
    return np.asarray(costs), np.asarray(crits), tracer


def _bd(breakdown: Optional[dict], category: str, units: float) -> None:
    """Accumulate a named share into a profiling breakdown (no-op when
    profiling is off; ``breakdown`` is None on the fast path)."""
    if breakdown is not None and units:
        breakdown[category] = breakdown.get(category, 0.0) + units


def _count_region(prof, tracer: Tracer, kind: str) -> None:
    """Record per-region counters (parallel regions, observed atomics)."""
    prof.count(kind)
    total, distinct = tracer.contention_stats()
    if total:
        prof.count("atomic_ops", float(total))
        prof.count("atomic_targets", float(distinct))


def _atomic_extra(tracer: Tracer, threads: int, conflict_cost: float,
                  scale: float = 1.0) -> float:
    """Serialization penalty for contended atomics at ``threads`` threads.

    With work scaling the op count grows by ``scale``; the target set only
    grows with it when the observed targets were mostly unique (a scatter),
    not when they were a fixed small set (histogram bins, accumulators).
    """
    total, distinct = tracer.contention_stats()
    if total == 0 or threads <= 1:
        return 0.0
    if distinct >= 0.5 * total:
        distinct_scaled = distinct * scale
    else:
        distinct_scaled = float(distinct)
    conflicts = max(0.0, total * scale - distinct_scaled)
    return conflict_cost * conflicts * (1.0 - 1.0 / threads)


class OpenMPRuntime(BaseRuntime):
    """Shared-memory runtime honouring OpenMP pragmas.

    One execution produces simulated times for every thread count in
    ``thread_counts`` via ``ctx.parallel_adjust`` (see ExecCtx).
    """

    model = "openmp"

    def __init__(self, thread_counts: Sequence[int] = CPU_THREAD_COUNTS):
        self.thread_counts = tuple(thread_counts)

    @property
    def supports_threads(self) -> Tuple[int, ...]:
        return self.thread_counts

    def omp_parallel_for(self, env: dict, ctx: ExecCtx, pf: PForInfo) -> None:
        if ctx.in_parallel:
            # nested parallelism disabled (the OpenMP default)
            run_loop_serial(env, ctx, pf)
            return
        if pf.outer_writes:
            raise DataRaceError(
                f"data race in {pf.where}: unsynchronized write(s) to shared "
                f"variable(s) {', '.join(pf.outer_writes)} "
                "(shared by default; no reduction/atomic/critical)",
                pf.where,
            )
        lo = pf.lo(env, ctx)
        hi = pf.hi(env, ctx)
        step = pf.step(env, ctx) if pf.step is not None else 1
        if step <= 0:
            raise TrapError(f"for-loop step must be positive, got {step}")
        indices = range(lo, hi, step)
        body = pf.body
        var = pf.var

        def run_iter(i: int) -> None:
            env[var] = i
            body(env, ctx)

        ctx.in_parallel = True
        start = ctx.cost
        try:
            vec = None
            if pf.vec_plan is not None:
                vec = _vec.run_windowed(
                    pf.vec_plan, env, ctx, lo, hi, step,
                    pf.iter_weight, pf.where, run_iter,
                )
            if vec is None:
                costs, crits, tracer = _profiled_loop(
                    env, ctx, indices, run_iter, pf.where, pf.iter_weight
                )
            else:
                costs, crits, tracer = vec
        finally:
            ctx.in_parallel = False
        work = ctx.cost - start

        cap = None
        if pf.num_threads is not None:
            cap = max(1, int(pf.num_threads(env, ctx)))

        crit_total = float(crits.sum())
        n_crit = int(np.count_nonzero(crits))
        par_costs = costs - crits
        scale = ctx.work_scale
        straggler_units = 0.0
        if inject.ACTIVE is not None:
            rule = inject.ACTIVE.fire("runtime.omp.stall", pf.where)
            if rule is not None:
                # one thread wedged at the implicit barrier: the whole
                # team idles for `param` simulated seconds (deterministic
                # timing perturbation — feeds graceful degradation)
                stall_s = rule.param if rule.param > 0 else 1.0
                straggler_units = stall_s / ctx.machine.cpu.cycle
        prof = ctx.prof
        for t in self.thread_counts:
            eff_t = min(t, cap) if cap is not None else t
            breakdown = {} if prof is not None else None
            region = self._region_time(
                ctx, par_costs, crit_total, n_crit, tracer, eff_t,
                pf.schedule, len(pf.reductions), breakdown=breakdown,
            )
            prev = ctx.parallel_adjust.get(t, 0.0)
            if t > 1:
                region += straggler_units
                _bd(breakdown, "idle", straggler_units)
            ctx.parallel_adjust[t] = prev + region - work * scale
            if breakdown:
                for cat, units in breakdown.items():
                    prof.add_adjust(t, cat, units)
        if prof is not None:
            _count_region(prof, tracer, "parallel_regions")
            prof.count("loop_iterations", float(len(costs)))

    def _region_time(
        self,
        ctx: ExecCtx,
        par_costs: np.ndarray,
        crit_total: float,
        n_crit: int,
        tracer: Tracer,
        threads: int,
        schedule: str,
        n_reductions: int,
        breakdown: Optional[dict] = None,
    ) -> float:
        cpu = ctx.machine.cpu
        scale = ctx.work_scale
        total = float(par_costs.sum()) * scale
        if threads <= 1:
            _bd(breakdown, "critical", crit_total * scale)
            return total + crit_total * scale
        if schedule == "static":
            body = static_chunk_time(par_costs, threads) * scale
        else:
            body = dynamic_chunk_time(
                par_costs, threads, cpu.omp_dispatch_dynamic / scale,
                guided=schedule == "guided",
            ) * scale
        chunk = body
        # memory-bandwidth saturation floor
        body = max(body, total * cpu.mem_frac / min(threads, cpu.mem_sat))
        time = body + (crit_total + cpu.critical_lock * n_crit) * scale
        atomic = _atomic_extra(tracer, threads, cpu.atomic_conflict, scale)
        time += atomic
        time += cpu.omp_region_overhead(threads)
        barrier = 0.0
        if n_reductions:
            barrier = n_reductions * (threads + math.log2(threads)) * 2.0
            time += barrier
        if breakdown is not None:
            # decompose chunk = ideal + imbalance (+ dynamic dispatch);
            # the extra dispatch-free pricing call only runs while profiling
            ideal = total / threads
            if schedule == "static":
                dispatch = 0.0
                imbalance = chunk - ideal
            else:
                base = dynamic_chunk_time(
                    par_costs, threads, 0.0, guided=schedule == "guided",
                ) * scale
                dispatch = chunk - base
                imbalance = base - ideal
            _bd(breakdown, "imbalance", imbalance)
            _bd(breakdown, "dispatch", dispatch)
            _bd(breakdown, "memory", body - chunk)
            _bd(breakdown, "critical",
                (crit_total + cpu.critical_lock * n_crit) * scale)
            _bd(breakdown, "atomic", atomic)
            _bd(breakdown, "fork_join", cpu.omp_region_overhead(threads))
            _bd(breakdown, "barrier", barrier)
        return time

    def omp_critical(self, env: dict, ctx: ExecCtx, body) -> None:
        cpu = ctx.machine.cpu
        prev_prot = ctx.protection
        ctx.protection = CRITICAL
        c0 = ctx.cost
        try:
            sig = body(env, ctx)
        finally:
            ctx.protection = prev_prot
        if sig is not None:
            raise RuntimeFailure("illegal control flow escaping a critical section")
        ctx.cost += cpu.critical_lock
        ctx.crit_units += (ctx.cost - c0)
        if ctx.prof is not None and ctx.trace is None:
            # outside a parallel region the lock cost lands in ctx.cost;
            # reclassify it (inside a region it is attributed per thread
            # count from the crit profile instead)
            ctx.prof.move("critical", cpu.critical_lock)

    def omp_atomic(self, env: dict, ctx: ExecCtx, update, scalar_key) -> None:
        cpu = ctx.machine.cpu
        prev_prot = ctx.protection
        ctx.protection = 2  # CRITICAL-level protection exonerates the write
        try:
            update(env, ctx)
        finally:
            ctx.protection = prev_prot
        ctx.cost += cpu.atomic_op
        t = ctx.trace
        if t is not None:
            t.atomic_ops += 1
            if scalar_key is not None:
                t.atomic_targets.add(scalar_key)
        elif ctx.prof is not None:
            # serial-context atomic: reclassify the RMW cost and count it
            # here (traced atomics are harvested per region instead)
            ctx.prof.move("atomic", cpu.atomic_op)
            ctx.prof.count("atomic_ops")


class KokkosRuntime(BaseRuntime):
    """Runtime for Kokkos-style patterns (persistent thread pool model).

    OpenMP pragmas are ignored (compiled without ``-fopenmp``), as in the
    paper's Kokkos configuration which uses the C++ ``threads`` backend.
    """

    model = "kokkos"

    def __init__(self, thread_counts: Sequence[int] = CPU_THREAD_COUNTS):
        self.thread_counts = tuple(thread_counts)

    @property
    def supports_threads(self) -> Tuple[int, ...]:
        return self.thread_counts

    def _profile_pattern(self, env, ctx, n, lam: LamClosure, where,
                         collect: Optional[List] = None):
        if n < 0:
            raise TrapError(f"pattern extent must be non-negative, got {n}")

        plan = lam.vec_plan
        if plan is not None and (plan.value is not None or collect is None):
            # expr lambdas contribute lane values (collected in bulk);
            # block lambdas vectorize only when no values are collected
            ctx.in_parallel = True
            start = ctx.cost
            try:
                vec = _vec.run_windowed(
                    plan, env, ctx, 0, n, 1,
                    ctx.machine.cpu.kokkos_per_element + lam.weight * 0.0,
                    where, lambda i: lam.call1(env, ctx, i), collect=collect,
                )
            finally:
                ctx.in_parallel = False
            if vec is not None:
                costs, crits, tracer = vec
                return costs, crits, tracer, ctx.cost - start

        def run_iter(i: int) -> None:
            r = lam.call1(env, ctx, i)
            if collect is not None:
                collect.append(r)

        ctx.in_parallel = True
        start = ctx.cost
        try:
            costs, crits, tracer = _profiled_loop(
                env, ctx, range(n), run_iter, where,
                ctx.machine.cpu.kokkos_per_element + lam.weight * 0.0,
            )
        finally:
            ctx.in_parallel = False
        work = ctx.cost - start
        return costs, crits, tracer, work

    def _apply_adjust(self, ctx: ExecCtx, costs, crits, tracer, work,
                      extra_serial: float = 0.0, barriers: int = 1) -> None:
        cpu = ctx.machine.cpu
        scale = ctx.work_scale
        crit_total = float(crits.sum())
        par_costs = costs - crits
        total = float(par_costs.sum()) * scale
        prof = ctx.prof
        for t in self.thread_counts:
            if t <= 1:
                region = (work + extra_serial) * scale
                if prof is not None:
                    prof.add_adjust(t, "critical", crit_total * scale)
            else:
                chunk = static_chunk_time(par_costs, t) * scale
                body = max(chunk, total * cpu.mem_frac / min(t, cpu.mem_sat))
                atomic = _atomic_extra(tracer, t, cpu.atomic_conflict, scale)
                region = (
                    body
                    + (crit_total + extra_serial / t) * scale
                    + atomic
                    + barriers * cpu.kokkos_pattern_overhead(t)
                )
                if prof is not None:
                    prof.add_adjust(t, "imbalance", chunk - total / t)
                    prof.add_adjust(t, "memory", body - chunk)
                    prof.add_adjust(t, "critical", crit_total * scale)
                    # parallel combine/writeback tree of reduce/scan
                    prof.add_adjust(t, "barrier", extra_serial / t * scale)
                    prof.add_adjust(t, "atomic", atomic)
                    prof.add_adjust(t, "dispatch",
                                    barriers * cpu.kokkos_pattern_overhead(t))
            prev = ctx.parallel_adjust.get(t, 0.0)
            ctx.parallel_adjust[t] = prev + region - (work + extra_serial) * scale
        ctx.cost += extra_serial
        if prof is not None:
            _count_region(prof, tracer, "kokkos_patterns")
            prof.count("loop_iterations", float(len(costs)))

    def kokkos_for(self, env: dict, ctx: ExecCtx, n: int, lam: LamClosure,
                   where: str) -> None:
        if ctx.in_parallel:
            for i in range(n):
                lam.call1(env, ctx, i)
            return
        costs, crits, tracer, work = self._profile_pattern(env, ctx, n, lam, where)
        self._apply_adjust(ctx, costs, crits, tracer, work)

    def kokkos_reduce(self, env: dict, ctx: ExecCtx, n: int, op: str,
                      lam: LamClosure, where: str):
        if ctx.in_parallel:
            return fold(op, (lam.call1(env, ctx, i) for i in range(n)))
        values: List = []
        costs, crits, tracer, work = self._profile_pattern(
            env, ctx, n, lam, where, collect=values
        )
        acc = fold(op, values)
        # fold cost: one combine per element (serial), log(t) tree in parallel
        self._apply_adjust(ctx, costs, crits, tracer, work,
                           extra_serial=float(n))
        return acc

    def kokkos_scan(self, env: dict, ctx: ExecCtx, n: int, op: str,
                    lam: LamClosure, out, inclusive: bool, where: str) -> None:
        if op == "prod":
            raise RuntimeFailure("parallel_scan does not support 'prod'")
        if len(out.data) < n:
            raise TrapError(
                f"scan output of length {len(out.data)} shorter than extent {n}"
            )
        values: List = []
        if ctx.in_parallel:
            for i in range(n):
                values.append(lam.call1(env, ctx, i))
            work = 0.0
            costs = crits = np.zeros(0)
            tracer = None
        else:
            costs, crits, tracer, work = self._profile_pattern(
                env, ctx, n, lam, where, collect=values
            )
        is_int = out.elem == "int"
        acc = reduce_identity(op, is_int)
        fn = _REDUCE_FN[op]
        data = out.data
        for i, v in enumerate(values):
            if inclusive:
                acc = fn(acc, v)
                data[i] = int(acc) if is_int else acc
            else:
                data[i] = int(acc) if is_int else acc
                acc = fn(acc, v)
        if tracer is not None:
            # two-pass scan: contributions + combine/writeback, 2 barriers
            self._apply_adjust(ctx, costs, crits, tracer, work,
                               extra_serial=2.0 * n, barriers=2)
