"""Per-shard circuit breakers with a deterministic, count-based clock.

A shard that exhausts its restart budget (``ShardResult.error`` set) has
*failed the whole batch slice it owned*; doing that twice in a row is
strong evidence the shard's worker pool is wedged (poisoned interpreter
state, a leaked injector, resource exhaustion), and continuing to route
work at it turns every batch into a slow failure.  The board trips the
shard's breaker, routes its partitions to the nearest surviving shard
(deterministic ring order, so the same failure history always yields
the same routing), and after ``cooldown`` *batches* — a count, never a
wall clock, so chaos runs replay identically — lets one probe batch
through half-open.  A successful probe closes the breaker; a failed one
re-opens it for another cool-down.

When every shard is open the board fails open (routes home): serving
degraded beats serving nothing, and the home shard's restart loop is
still the best recovery bet available.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class CircuitBreaker:
    """One shard's breaker: closed -> open -> half_open -> closed/open."""

    def __init__(self, failure_threshold: int = 2, cooldown: int = 2):
        self.failure_threshold = max(1, failure_threshold)
        self.cooldown = max(1, cooldown)
        self.state = STATE_CLOSED
        self.consecutive_failures = 0
        self.cooldown_left = 0
        self.trips = 0
        #: (from_state, to_state) transition history, for determinism tests
        self.transitions: List[Tuple[str, str]] = []

    def _move(self, state: str) -> None:
        if state != self.state:
            self.transitions.append((self.state, state))
            self.state = state

    def allow(self) -> bool:
        """May this shard receive work right now?  Half-open allows the
        probe; only a fully open breaker refuses."""
        return self.state != STATE_OPEN

    def tick(self) -> None:
        """Advance the count-based cool-down clock by one batch."""
        if self.state == STATE_OPEN:
            self.cooldown_left -= 1
            if self.cooldown_left <= 0:
                self._move(STATE_HALF_OPEN)

    def record(self, ok: bool) -> None:
        """Record the outcome of one batch slice executed on this shard."""
        if ok:
            self.consecutive_failures = 0
            if self.state == STATE_HALF_OPEN:
                self._move(STATE_CLOSED)
            return
        self.consecutive_failures += 1
        if self.state == STATE_HALF_OPEN \
                or self.consecutive_failures >= self.failure_threshold:
            self._move(STATE_OPEN)
            self.cooldown_left = self.cooldown
            self.trips += 1

    def to_dict(self) -> Dict[str, object]:
        return {"state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "cooldown_left": self.cooldown_left,
                "trips": self.trips}


class BreakerBoard:
    """The service's breakers, one per shard, plus deterministic routing."""

    def __init__(self, shards: int, failure_threshold: int = 2,
                 cooldown: int = 2):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.breakers = [CircuitBreaker(failure_threshold, cooldown)
                         for _ in range(shards)]
        #: routed (home, actual) pairs with home != actual, for tests
        self.reroutes: List[Tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self.breakers)

    def tick(self) -> None:
        """One batch boundary: advance every open breaker's cool-down."""
        for breaker in self.breakers:
            breaker.tick()

    def allow(self, shard: int) -> bool:
        return self.breakers[shard].allow()

    def record(self, shard: int, ok: bool) -> None:
        self.breakers[shard].record(ok)

    def route(self, shard: int) -> int:
        """The shard that should execute ``shard``'s partition: the home
        shard while its breaker admits work, else the nearest following
        shard (ring order) whose breaker does; home again when every
        breaker is open (fail open — degraded beats dead)."""
        n = len(self.breakers)
        for offset in range(n):
            candidate = (shard + offset) % n
            if self.breakers[candidate].allow():
                if candidate != shard:
                    self.reroutes.append((shard, candidate))
                return candidate
        return shard

    def open_count(self) -> int:
        return sum(1 for b in self.breakers if b.state == STATE_OPEN)

    def states(self) -> Dict[str, Dict[str, object]]:
        """JSON-able per-shard breaker state (the ``/metrics`` view)."""
        return {str(i): b.to_dict() for i, b in enumerate(self.breakers)}


__all__ = ["BreakerBoard", "CircuitBreaker", "STATE_CLOSED",
           "STATE_HALF_OPEN", "STATE_OPEN"]
