"""Straggler hedging: quantile thresholds and duplicate bookkeeping.

A *straggler* is a task whose in-flight wall time exceeds
``quantile(completed durations, q) * k`` (the classic hedged-request
recipe: the tail is usually machine noise — a cold page cache, a CPU
migration — not the task).  The pool launches at most
``max_hedges_per_task`` speculative duplicates, only onto otherwise
*idle* workers, and only when no fresh or retried work is waiting, so
hedging can never delay first execution of anything.

Arbitration is first-writer-wins and byte-exact by construction: every
copy of a task computes the identical judged content (status, detail,
times, diagnostics, profile — all deterministic functions of the task
payload), and the only per-copy fields in a worker result (wall-clock
``duration`` and the ``compile_cache`` delta) are observability riders
that never reach the serialised ``EvalRun``.  Whichever copy lands
first is accepted; later arrivals are discarded unread.  The
``guard.hedge.lose`` injection point forces the *first* arrival to be
discarded instead, proving the loser's payload is interchangeable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from .health import GuardPolicy


def duration_quantile(durations: Sequence[float], q: float) -> float:
    """Nearest-rank quantile (q in (0, 1]) of a non-empty sequence."""
    if not durations:
        raise ValueError("quantile of an empty sequence")
    ordered = sorted(durations)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


class HedgeBook:
    """Observed completion times + which tasks have been hedged.

    ``seed`` warm-starts the completed-duration sample from prior-run
    history (the :class:`repro.sched.predict.DurationLedger`), so a
    first-run straggler can be hedged before ``hedge_min_completed``
    tasks finish *this* run.  A cold ledger passes an empty seed and the
    book behaves exactly as before — the threshold stays ``None`` until
    enough in-run completions accumulate.  Seeding is throughput policy
    only: it moves *when* a duplicate launches, never what any copy
    computes.
    """

    def __init__(self, policy: Optional[GuardPolicy] = None,
                 seed: Sequence[float] = ()):
        self.policy = policy or GuardPolicy()
        self.durations: List[float] = list(seed)
        #: task id -> duplicates launched
        self.hedged: Dict[str, int] = {}
        #: accepted results that came from a hedge dispatch
        self.wins = 0

    def observe(self, duration: float) -> None:
        """Record one completed task's wall time."""
        self.durations.append(duration)

    def threshold(self) -> Optional[float]:
        """Current straggler cut in seconds, or None while hedging is
        off or the sample of completed tasks is still too small."""
        p = self.policy
        if not p.hedge or len(self.durations) < max(1, p.hedge_min_completed):
            return None
        cut = (duration_quantile(self.durations, p.hedge_quantile)
               * p.hedge_multiplier)
        return max(cut, p.hedge_min_seconds)

    def may_hedge(self, task_id: str) -> bool:
        return self.hedged.get(task_id, 0) < self.policy.max_hedges_per_task

    def note_hedge(self, task_id: str) -> None:
        self.hedged[task_id] = self.hedged.get(task_id, 0) + 1

    @property
    def launched(self) -> int:
        return sum(self.hedged.values())


__all__ = ["HedgeBook", "duration_quantile"]
