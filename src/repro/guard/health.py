"""Task-health classification: transient faults vs poison tasks.

The pool's retry budget treats every failure the same way; the ledger
does not.  A worker that dies *while running a task* leaves a death
fingerprint on that task, and a task whose fingerprints span
``poison_threshold`` distinct workers is reclassified from "unlucky"
to "poison": the task itself (an infinite loop, an OOM, a segfaulting
interpreter path) is what kills workers, and retrying it anywhere only
burns more of them.  Poison tasks move to the ``quarantined`` status
lane — journaled and resumed (unlike ``system_error``, which is
resampled), reported as their own status, and excluded from every
metric denominator (see ``repro.metrics.passk.INFRA_STATUSES`` and
``repro.analysis.aggregate.PERF_EXCLUDED_STATUSES``).

The quarantine detail is built from content-deterministic facts only
(death count and kinds, never worker ids), so two runs under the same
fault schedule journal byte-identical quarantine payloads — the
property the ``guard-resilience`` chaos invariant asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

#: verdicts from :meth:`HealthLedger.record_death`
VERDICT_TRANSIENT = "transient"
VERDICT_POISON = "poison"


@dataclass(frozen=True)
class GuardPolicy:
    """Supervision knobs threaded into the pool, scheduler, and service.

    Everything here is throughput policy, never correctness policy: any
    two policies produce byte-identical ``EvalRun``\\ s except for which
    tasks land in the ``quarantined`` lane (controlled by
    ``quarantine``/``poison_threshold``).
    """

    #: move poison tasks to the quarantined lane instead of retrying
    quarantine: bool = True
    #: distinct workers a task must kill to be classified poison
    poison_threshold: int = 2
    #: speculatively duplicate straggling tasks onto idle workers
    hedge: bool = True
    #: quantile of completed-task wall times the straggler cut is based on
    hedge_quantile: float = 0.95
    #: a task is a straggler after quantile * multiplier seconds
    hedge_multiplier: float = 3.0
    #: completed tasks needed before the quantile is trusted
    hedge_min_completed: int = 4
    #: floor on the straggler cut — never hedge sub-floor tasks
    hedge_min_seconds: float = 0.25
    #: duplicates ever launched per task (1 = at most one hedge)
    max_hedges_per_task: int = 1


DEFAULT_POLICY = GuardPolicy()


class HealthLedger:
    """Per-task record of worker deaths and the quarantine register."""

    def __init__(self, poison_threshold: int = 2):
        self.poison_threshold = max(1, poison_threshold)
        #: task id -> [(worker, kind, detail), ...]
        self._deaths: Dict[str, List[Tuple[int, str, str]]] = {}
        #: task id -> quarantine detail
        self.quarantined: Dict[str, str] = {}

    # -- recording ----------------------------------------------------------

    def record_death(self, task_id: str, worker: int, kind: str,
                     detail: str) -> str:
        """Record one worker death attributed to ``task_id``; returns
        ``VERDICT_POISON`` once the task has killed ``poison_threshold``
        distinct workers, ``VERDICT_TRANSIENT`` before that."""
        self._deaths.setdefault(task_id, []).append((worker, kind, detail))
        if len(self.distinct_workers(task_id)) >= self.poison_threshold:
            return VERDICT_POISON
        return VERDICT_TRANSIENT

    def quarantine(self, task_id: str, detail: str) -> None:
        self.quarantined[task_id] = detail

    # -- reading ------------------------------------------------------------

    def distinct_workers(self, task_id: str) -> Set[int]:
        return {w for (w, _kind, _detail) in self._deaths.get(task_id, ())}

    def deaths(self, task_id: str) -> List[Tuple[int, str, str]]:
        return list(self._deaths.get(task_id, ()))

    def is_quarantined(self, task_id: str) -> bool:
        return task_id in self.quarantined

    def fingerprint(self, task_id: str) -> str:
        """Content-deterministic description of why a task is poison.

        Deliberately excludes worker ids and timings: two runs under the
        same fault schedule may dispatch the task to differently-numbered
        workers, and the fingerprint flows into the journaled quarantine
        payload, which must be byte-identical across such runs."""
        records = self._deaths.get(task_id, ())
        kinds = ",".join(sorted({kind for (_w, kind, _d) in records}))
        return (f"poison task: killed {len(self.distinct_workers(task_id))} "
                f"distinct workers ({kinds or 'crash'})")


__all__ = ["DEFAULT_POLICY", "GuardPolicy", "HealthLedger",
           "VERDICT_POISON", "VERDICT_TRANSIENT"]
