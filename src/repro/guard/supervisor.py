"""Crash-only recovery: SIGKILL the whole scheduler, resume, same bytes.

The journal layer proves a *journal* survives being killed at any byte
offset; this module proves the *process* does.  :func:`run_supervised`
forks a child that runs :func:`repro.sched.scheduler.run_scheduled`
against a journal with ``resume=True``.  When armed with ``kill_at=k``,
the child installs a fault plan containing ``guard.process.kill`` with
occurrence ``k`` and fires the point once per scheduler event — so at
the k-th event boundary the child delivers ``SIGKILL`` to itself: no
atexit hooks, no flushes, no cleanup, the crash-only worst case.  The
supervisor then respawns the child (unarmed) until a run completes, and
returns its digest.  :func:`crash_resume_sweep` drives that at *every*
event boundary of a reference run and checks each resumed digest
against the reference — the whole-process analogue of the
kill-at-every-journal-index chaos invariant.

Workers orphaned by the SIGKILL (the pool's child processes survive
their parent's death) notice their parent changed underneath them and
exit on their own — see ``_worker_main`` in :mod:`repro.sched.pool`.

Fork is required: the benchmark and model objects carry numpy closures
that cannot cross a spawn boundary.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..faults import inject
from ..faults.plan import FaultPlan, FaultRule


@dataclass(frozen=True)
class SupervisedResult:
    """Outcome of one supervised (possibly killed-and-resumed) run."""

    digest: str
    json: str
    #: scheduler events emitted by the final (completing) incarnation;
    #: with a resumed run this includes journal-replay events
    events: int
    #: child incarnations beyond the first (0 for an unkilled run)
    restarts: int


def _guard_kill_sink(counter: List[int]):
    """Event sink: count boundaries and consult ``guard.process.kill``.

    The key is constant (""), so the injector's per-(point, key)
    occurrence counter *is* the event-boundary index."""

    def sink(event: object) -> None:
        counter[0] += 1
        act = inject.ACTIVE
        if act is not None \
                and act.fire("guard.process.kill", "") is not None:
            os.kill(os.getpid(), signal.SIGKILL)

    return sink


def _child_main(conn, kill_at: Optional[int], plan: Optional[FaultPlan],
                journal_path: str, run_kwargs: dict) -> None:
    from ..sched.events import chain
    from ..sched.scheduler import run_scheduled

    # The fork inherited the parent's process-global injector (if any);
    # this incarnation installs its own plan, so drop the inherited one
    # first — a nested install is a usage error by design.
    if inject.ACTIVE is not None:
        inject.uninstall()
    rules = tuple(plan.rules) if plan is not None else ()
    if kill_at is not None:
        rules += (FaultRule(point="guard.process.kill", action="kill",
                            occurrences=(kill_at,)),)
    if rules:
        inject.install(FaultPlan(rules=rules))
    counter = [0]
    emit = chain(_guard_kill_sink(counter), run_kwargs.pop("emit", None))
    try:
        run, _telemetry = run_scheduled(
            journal_path=journal_path, resume=True, emit=emit,
            **run_kwargs)
        conn.send({"ok": True, "digest": run.digest(),
                   "json": run.to_json(), "events": counter[0]})
    except BaseException as exc:  # noqa: BLE001 - report, don't hang parent
        conn.send({"ok": False, "error": f"{type(exc).__name__}: {exc}"})
    finally:
        conn.close()


def run_supervised(llm, bench, *, workdir: Union[str, Path],
                   kill_at: Optional[int] = None,
                   plan: Optional[FaultPlan] = None,
                   max_restarts: int = 25,
                   **run_kwargs) -> SupervisedResult:
    """Run ``run_scheduled(llm, bench, **run_kwargs)`` under supervision.

    ``kill_at`` arms a one-shot whole-process SIGKILL at that event
    boundary of the *first* incarnation; every later incarnation runs
    unarmed and resumes from the shared journal.  ``plan`` composes
    additional fault rules into every incarnation.  Raises when a child
    fails for any reason other than the armed kill, or when
    ``max_restarts`` incarnations still have not completed.
    """
    if "fork" not in mp.get_all_start_methods():  # pragma: no cover
        raise RuntimeError("run_supervised requires the fork start method")
    ctx = mp.get_context("fork")
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    journal_path = str(workdir / "supervised.journal.jsonl")
    restarts = 0
    while True:
        armed = kill_at if restarts == 0 else None
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_main,
            args=(child_conn, armed, plan, journal_path,
                  dict(run_kwargs, llm=llm, bench=bench)))
        proc.start()
        child_conn.close()
        try:
            payload = parent_conn.recv()
        except EOFError:            # SIGKILL: the pipe just went away
            payload = None
        finally:
            parent_conn.close()
        proc.join()
        if payload is not None:
            if payload.get("ok"):
                return SupervisedResult(
                    digest=payload["digest"], json=payload["json"],
                    events=int(payload["events"]), restarts=restarts)
            raise RuntimeError(
                f"supervised child failed: {payload.get('error')}")
        if armed is None:
            raise RuntimeError(
                "supervised child died without being armed "
                f"(exitcode {proc.exitcode})")
        restarts += 1
        if restarts > max_restarts:
            raise RuntimeError(
                f"supervised run did not converge in {max_restarts} "
                "restarts")


def crash_resume_sweep(llm, bench, *, workdir: Union[str, Path],
                       kill_points: Optional[List[int]] = None,
                       progress=None, **run_kwargs) -> Dict[str, object]:
    """SIGKILL a scheduled run at event boundaries; verify every resumed
    digest matches an unkilled reference.

    ``kill_points=None`` sweeps *every* boundary of the reference run
    (the full-process extension of the kill-at-every-journal-index
    invariant); a list restricts the sweep for cheaper smoke checks.
    Returns a report dict with ``mismatches`` empty on success.
    """
    workdir = Path(workdir)
    reference = run_supervised(llm, bench, workdir=workdir / "reference",
                               **run_kwargs)
    points = (list(kill_points) if kill_points is not None
              else list(range(reference.events)))
    mismatches: List[int] = []
    restarts = 0
    for index, kill_at in enumerate(points):
        if progress is not None:
            progress(f"  kill boundary {index + 1}/{len(points)} "
                     f"(event {kill_at})")
        result = run_supervised(
            llm, bench, workdir=workdir / f"kill_at_{kill_at}",
            kill_at=kill_at, **run_kwargs)
        restarts += result.restarts
        if result.digest != reference.digest \
                or result.json != reference.json:
            mismatches.append(kill_at)
    return {"reference_digest": reference.digest,
            "reference_events": reference.events,
            "checked": len(points), "restarts": restarts,
            "mismatches": mismatches}


__all__ = ["SupervisedResult", "crash_resume_sweep", "run_supervised"]
