"""repro.guard — self-healing supervision for scheduled evaluation.

Four mechanisms, threaded through :mod:`repro.sched` and
:mod:`repro.serve`, all bound by the same exactness discipline as the
vectorized tier: *none of them may change a single byte of the
assembled* :class:`~repro.harness.evaluate.EvalRun` *relative to an
unguarded run* — except the quarantine lane, which exists precisely to
report a task the infrastructure refuses to keep executing.

* :class:`HealthLedger` (``health``) — classifies worker deaths per
  task: a task that kills ``poison_threshold`` *distinct* workers is
  poison, not unlucky, and is quarantined instead of burning the retry
  budget forever.
* :class:`HedgeBook` (``hedge``) — straggler detection: a task running
  past ``quantile(completed) * multiplier`` gets a speculative duplicate
  on an idle worker; first writer wins deterministically.
* :class:`CircuitBreaker` / :class:`BreakerBoard` (``breaker``) —
  per-shard breakers for :mod:`repro.serve`: consecutive shard failures
  trip a breaker, work routes to surviving shards, and a count-based
  cool-down schedules a deterministic half-open probe.
* :func:`run_supervised` (``supervisor``) — crash-only recovery: a
  child process running the scheduler can be SIGKILLed at any event
  boundary (``guard.process.kill``) and restarted until the journaled
  run converges to a byte-identical digest.

See ``docs/resilience.md`` for the semantics and the exactness
guarantee; the ``guard-resilience`` chaos invariant
(:func:`repro.faults.chaos.check_guard_resilience`) pins it in CI.
"""

from .breaker import (
    BreakerBoard,
    CircuitBreaker,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)
from .health import (
    DEFAULT_POLICY,
    GuardPolicy,
    HealthLedger,
    VERDICT_POISON,
    VERDICT_TRANSIENT,
)
from .hedge import HedgeBook, duration_quantile
from .supervisor import SupervisedResult, crash_resume_sweep, run_supervised

__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "DEFAULT_POLICY",
    "GuardPolicy",
    "HealthLedger",
    "HedgeBook",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "SupervisedResult",
    "VERDICT_POISON",
    "VERDICT_TRANSIENT",
    "crash_resume_sweep",
    "duration_quantile",
    "run_supervised",
]
