"""repro — a full reproduction of "Can Large Language Models Write
Parallel Code?" (Nichols et al., HPDC 2024).

The package provides:

* :mod:`repro.lang`     — MiniPar, the small parallel language generated
  samples are written in (lexer/parser/type checker);
* :mod:`repro.runtime`  — simulated execution substrates for all seven
  PCGBench execution models (serial, OpenMP, Kokkos, MPI, MPI+OpenMP,
  CUDA, HIP) with cost models, race detection and deadlock detection;
* :mod:`repro.bench`    — PCGBench itself: 60 problems x 7 models = 420
  prompts, with reference checkers and optimal sequential baselines;
* :mod:`repro.models`   — calibrated simulated LLMs for the paper's seven
  models, built on per-task solution banks and real bug injection;
* :mod:`repro.harness`  — the compile/check/run/time pipeline and the
  end-to-end evaluator;
* :mod:`repro.metrics`  — pass@k, build@k, speedup_n@k, efficiency_n@k;
* :mod:`repro.prof`     — cost-decomposed execution profiles, scaling
  diagnosis (Karp–Flatt, bottleneck verdicts) and lost-cycles analysis;
* :mod:`repro.analysis` — aggregation and regeneration of every table and
  figure in the paper's evaluation.

Quickstart::

    from repro import PCGBench, Runner, load_model, evaluate_model
    from repro.analysis import pass_by_exec_model

    bench = PCGBench(problem_types=["transform"], models=["serial", "openmp"])
    run = evaluate_model(load_model("GPT-3.5"), bench, num_samples=8)
    print(pass_by_exec_model(run))
"""

from .bench import EXECUTION_MODELS, PROBLEM_TYPES, PCGBench, full_benchmark
from .harness import EvalCache, EvalRun, Runner, evaluate_model
from .lang import compile_source
from .models import MODEL_ORDER, SimulatedLLM, all_models, load_model
from .runtime import DEFAULT_MACHINE, Machine

__version__ = "1.0.0"

__all__ = [
    "PCGBench",
    "full_benchmark",
    "EXECUTION_MODELS",
    "PROBLEM_TYPES",
    "Runner",
    "evaluate_model",
    "EvalRun",
    "EvalCache",
    "compile_source",
    "SimulatedLLM",
    "load_model",
    "all_models",
    "MODEL_ORDER",
    "Machine",
    "DEFAULT_MACHINE",
    "__version__",
]
