"""speedup_n@k and efficiency_n@k (paper §6.2, Eq. 5-7).

Per prompt, each generated sample contributes a speedup over the
handwritten sequential baseline, ``T*_p / T_{p,j,n}``; samples that failed
(did not build, were wrong, raced, deadlocked, timed out, or simply were
not measured at processor count n) contribute 0 — an incorrect program's
"speedup" is worthless, and 0 keeps the estimator's expected-best-of-k
semantics meaningful.  The benchmark metric is the |P|-average of the
per-prompt expected best-of-k speedup.

Search prompts are excluded by the caller (footnote 1 of the paper:
super-linear early-exit speedups swamp the other problem types).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .estimators import expected_max_of_k, mean


def sample_speedup(baseline_time: float, sample_time: Optional[float]) -> float:
    """T*/T for one sample at one processor count; 0 for failures."""
    if sample_time is None or sample_time <= 0.0:
        return 0.0
    return baseline_time / sample_time


def prompt_speedup_at_k(baseline_time: float,
                        sample_times: Sequence[Optional[float]],
                        k: int) -> float:
    """Expected best-of-k speedup for one prompt (Eq. 5).

    ``sample_times`` contains only the *judged* samples — callers drop
    ``system_error`` / ``degraded`` samples entirely (they carry no
    evidence about performance) rather than passing them as None, which
    would count them as 0-speedup failures.  When that exclusion leaves
    fewer than k samples, k is clamped to the pool; an empty pool
    contributes 0.
    """
    speedups = [sample_speedup(baseline_time, t) for t in sample_times]
    if not speedups:
        return 0.0
    return expected_max_of_k(speedups, min(k, len(speedups)))


def benchmark_speedup_at_k(
    per_prompt: Iterable[Dict],
    k: int,
) -> float:
    """speedup_n@k over a benchmark (Eq. 6).

    Each entry carries ``baseline`` (T*) and ``times`` (per-sample
    simulated time at the chosen n, None for failures).
    """
    return mean(
        prompt_speedup_at_k(e["baseline"], e["times"], k) for e in per_prompt
    )


def benchmark_efficiency_at_k(per_prompt: Iterable[Dict], k: int) -> float:
    """efficiency_n@k (Eq. 7): per-prompt best-of-k speedup divided by that
    prompt's processor count n (n varies across prompts for CUDA/HIP,
    where it is the kernel thread count — footnote in §8)."""
    vals: List[float] = []
    for e in per_prompt:
        n = e["n"]
        if n <= 0:
            continue
        vals.append(prompt_speedup_at_k(e["baseline"], e["times"], k) / n)
    return mean(vals)
