"""pass@k and build@k over sets of evaluated prompts (Eq. 4)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .estimators import mean, pass_at_k

#: statuses that count as "the sample built" (build@k numerator).
#: ``static_fail`` built fine — MiniParSan rejected it before execution,
#: the static analogue of ``runtime_error``.
BUILT_STATUSES = frozenset(
    {"correct", "wrong_answer", "runtime_error", "timeout", "not_parallel",
     "static_fail"}
)


def prompt_pass_at_k(statuses: Sequence[str], k: int) -> float:
    """pass@k for one prompt from its per-sample harness statuses."""
    return pass_at_k(len(statuses), sum(s == "correct" for s in statuses), k)


def prompt_build_at_k(statuses: Sequence[str], k: int) -> float:
    """build@k: probability at least one of k samples compiles and links."""
    return pass_at_k(len(statuses),
                     sum(s in BUILT_STATUSES for s in statuses), k)


def benchmark_pass_at_k(per_prompt_statuses: Iterable[Sequence[str]],
                        k: int) -> float:
    """Average pass@k over prompts (the |P| average in Eq. 4)."""
    return mean(prompt_pass_at_k(s, k) for s in per_prompt_statuses)


def benchmark_build_at_k(per_prompt_statuses: Iterable[Sequence[str]],
                         k: int) -> float:
    return mean(prompt_build_at_k(s, k) for s in per_prompt_statuses)


def pass_at_k_curve(per_prompt_statuses: List[Sequence[str]],
                    ks: Sequence[int]) -> Dict[int, float]:
    """pass@k at several k values (Fig. 4's series)."""
    return {k: benchmark_pass_at_k(per_prompt_statuses, k) for k in ks}
