"""pass@k and build@k over sets of evaluated prompts (Eq. 4).

Infrastructure failures (``system_error``) are excluded from the
estimator *denominators*: the harness, not the model, failed, so those
samples carry no evidence about the model and must not depress pass@k
the way counting them as failures would.  When exclusion shrinks a
prompt's sample pool below k, k is clamped to the remaining pool (and a
prompt with no judged samples at all contributes 0) — but a *raw* sample
count below k is still a caller error, exactly as before.

``degraded`` samples were judged: correctness passed, only the timing
sweep was fault-perturbed.  They count as correct for pass@k and as
built for build@k (and are excluded from speedups, which they carry no
times for).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .estimators import mean, pass_at_k

#: statuses that count as "the sample built" (build@k numerator).
#: ``static_fail`` built fine — MiniParSan rejected it before execution,
#: the static analogue of ``runtime_error``.  ``degraded`` built *and*
#: ran correctly; only its timing sweep was lost.
BUILT_STATUSES = frozenset(
    {"correct", "wrong_answer", "runtime_error", "timeout", "not_parallel",
     "static_fail", "degraded"}
)

#: statuses that count as "the sample is correct" (pass@k numerator)
CORRECT_STATUSES = frozenset({"correct", "degraded"})

#: infrastructure failures: excluded from every metric denominator.
#: ``system_error`` means the infra gave up transiently (resampled on
#: resume); ``quarantined`` means the guard permanently pulled a poison
#: task that kept killing workers.  Neither sample was ever judged.
INFRA_STATUSES = frozenset({"system_error", "quarantined"})


def judged(statuses: Sequence[str]) -> List[str]:
    """The samples the harness actually judged (infra failures dropped)."""
    return [s for s in statuses if s not in INFRA_STATUSES]


def _at_k(statuses: Sequence[str], k: int, numerator) -> float:
    kept = judged(statuses)
    n, c = len(kept), sum(numerator(s) for s in kept)
    if len(statuses) >= k > n:
        # infra exclusions (not the caller) shrank the pool below k
        if n == 0:
            return 0.0
        k = n
    return pass_at_k(n, c, k)


def prompt_pass_at_k(statuses: Sequence[str], k: int) -> float:
    """pass@k for one prompt from its per-sample harness statuses."""
    return _at_k(statuses, k, lambda s: s in CORRECT_STATUSES)


def prompt_build_at_k(statuses: Sequence[str], k: int) -> float:
    """build@k: probability at least one of k samples compiles and links."""
    return _at_k(statuses, k, lambda s: s in BUILT_STATUSES)


def benchmark_pass_at_k(per_prompt_statuses: Iterable[Sequence[str]],
                        k: int) -> float:
    """Average pass@k over prompts (the |P| average in Eq. 4)."""
    return mean(prompt_pass_at_k(s, k) for s in per_prompt_statuses)


def benchmark_build_at_k(per_prompt_statuses: Iterable[Sequence[str]],
                         k: int) -> float:
    return mean(prompt_build_at_k(s, k) for s in per_prompt_statuses)


def pass_at_k_curve(per_prompt_statuses: List[Sequence[str]],
                    ks: Sequence[int]) -> Dict[int, float]:
    """pass@k at several k values (Fig. 4's series)."""
    return {k: benchmark_pass_at_k(per_prompt_statuses, k) for k in ks}
