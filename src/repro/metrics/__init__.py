"""Evaluation metrics: pass@k / build@k (Eq. 4) and the paper's novel
speedup_n@k / efficiency_n@k (Eq. 5-7)."""

from .estimators import (
    brute_force_expected_max,
    brute_force_pass_at_k,
    expected_max_of_k,
    mean,
    pass_at_k,
)
from .passk import (
    BUILT_STATUSES,
    CORRECT_STATUSES,
    INFRA_STATUSES,
    benchmark_build_at_k,
    benchmark_pass_at_k,
    judged,
    pass_at_k_curve,
    prompt_build_at_k,
    prompt_pass_at_k,
)
from .speedup import (
    benchmark_efficiency_at_k,
    benchmark_speedup_at_k,
    prompt_speedup_at_k,
    sample_speedup,
)

__all__ = [
    "pass_at_k",
    "expected_max_of_k",
    "brute_force_pass_at_k",
    "brute_force_expected_max",
    "mean",
    "prompt_pass_at_k",
    "prompt_build_at_k",
    "benchmark_pass_at_k",
    "benchmark_build_at_k",
    "pass_at_k_curve",
    "BUILT_STATUSES",
    "CORRECT_STATUSES",
    "INFRA_STATUSES",
    "judged",
    "sample_speedup",
    "prompt_speedup_at_k",
    "benchmark_speedup_at_k",
    "benchmark_efficiency_at_k",
]
