"""Unbiased estimators shared by all metrics (paper §6, Eq. 4-7).

Both metrics reduce to order statistics of k samples drawn without
replacement from N generated samples:

* pass@k  = P(at least one of the k is correct)
          = 1 - C(N - c, k) / C(N, k)
* E[max of k values] = sum_j  C(j-1, k-1) / C(N, k) * v_(j)
  where v_(1) <= ... <= v_(N) are the sorted values — the paper's
  derivation (§6.2): the j-th order statistic is the maximum of the drawn
  subset exactly when the other k-1 draws come from the j-1 smaller ones.

Implemented in exact integer arithmetic via ``math.comb`` (no
log-gamma roundoff), with brute-force cross-checks in the test suite.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Sequence


def pass_at_k(n: int, c: int, k: int) -> float:
    """P(>=1 correct among k of N samples, c of which are correct)."""
    if k <= 0:
        raise ValueError("k must be positive")
    if n < k:
        raise ValueError(f"need at least k={k} samples, got {n}")
    if not 0 <= c <= n:
        raise ValueError(f"invalid correct count {c} of {n}")
    if c == 0:
        return 0.0
    if n - c < k:
        return 1.0
    return 1.0 - math.comb(n - c, k) / math.comb(n, k)


def expected_max_of_k(values: Sequence[float], k: int) -> float:
    """E[max of k samples drawn uniformly without replacement].

    ``values`` need not be sorted; failed samples should be encoded as the
    metric's floor (0 for speedups) before calling.
    """
    n = len(values)
    if k <= 0:
        raise ValueError("k must be positive")
    if n < k:
        raise ValueError(f"need at least k={k} values, got {n}")
    ordered = sorted(values)
    total_subsets = math.comb(n, k)
    acc = 0.0
    for j in range(k, n + 1):  # j is 1-based rank; max needs rank >= k
        acc += math.comb(j - 1, k - 1) / total_subsets * ordered[j - 1]
    return acc


def brute_force_pass_at_k(outcomes: Sequence[bool], k: int) -> float:
    """Reference implementation: average over all C(N, k) subsets."""
    n = len(outcomes)
    subsets = list(itertools.combinations(range(n), k))
    hits = sum(1 for s in subsets if any(outcomes[i] for i in s))
    return hits / len(subsets)


def brute_force_expected_max(values: Sequence[float], k: int) -> float:
    """Reference implementation: average max over all C(N, k) subsets."""
    n = len(values)
    subsets = list(itertools.combinations(range(n), k))
    return sum(max(values[i] for i in s) for s in subsets) / len(subsets)


def mean(xs: Iterable[float]) -> float:
    xs = list(xs)
    return sum(xs) / len(xs) if xs else 0.0
