"""Static type checker for MiniPar — the back half of "compilation".

A generated sample that parses but misuses types (wrong argument types,
string where a number is needed, assigning a float to an int variable,
missing return, unknown names...) fails here and is recorded by the harness
as a build failure, exactly as GCC would reject ill-typed C++.

The checker produces a :class:`CheckedProgram` carrying the expression type
map (used by the closure compiler to pick int vs float semantics) and the
set of builtin categories the program touches (used by the parallel-model
usage check).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from . import ast
from . import builtins as bi
from . import types as T
from .errors import TypeError_


@dataclass
class KernelSig:
    name: str
    params: Tuple[Tuple[str, T.Type], ...]
    ret: Optional[T.Type]


@dataclass
class CheckedProgram:
    """A type-checked program ready for the closure compiler."""

    program: ast.Program
    signatures: Dict[str, KernelSig]
    expr_types: Dict[int, T.Type]
    builtin_categories: Set[str] = field(default_factory=set)
    builtins_used: Set[str] = field(default_factory=set)
    uses_omp_pragmas: bool = False

    def type_of(self, node: ast.Expr) -> T.Type:
        return self.expr_types[id(node)]


class _Scope:
    """Lexical scope chain.

    Shadowing a *visible* name is forbidden (so the runtime can use a flat
    per-call environment), but disjoint scopes may reuse a name — two
    sequential loops can both use ``i``.
    """

    def __init__(self) -> None:
        self.stack: List[Dict[str, T.Type]] = [{}]

    def push(self) -> None:
        self.stack.append({})

    def pop(self) -> None:
        self.stack.pop()

    def declare(self, name: str, ty: T.Type, node: ast.Node) -> None:
        if self.lookup(name) is not None:
            raise TypeError_(
                f"redeclaration of {name!r} (MiniPar forbids shadowing a "
                "visible name)",
                node.line, node.col,
            )
        self.stack[-1][name] = ty

    def lookup(self, name: str) -> Optional[T.Type]:
        for frame in reversed(self.stack):
            if name in frame:
                return frame[name]
        return None


class Checker:
    def __init__(self, program: ast.Program):
        self.program = program
        self.expr_types: Dict[int, T.Type] = {}
        self.signatures: Dict[str, KernelSig] = {}
        self.builtin_categories: Set[str] = set()
        self.builtins_used: Set[str] = set()
        self.uses_omp_pragmas = False

    # -- entry --------------------------------------------------------------

    def check(self) -> CheckedProgram:
        for k in self.program.kernels:
            if k.name in self.signatures:
                raise TypeError_(f"duplicate kernel {k.name!r}", k.line, k.col)
            if bi.get(k.name) is not None:
                raise TypeError_(
                    f"kernel {k.name!r} collides with a builtin", k.line, k.col
                )
            seen: Set[str] = set()
            for p in k.params:
                if p.name in seen:
                    raise TypeError_(
                        f"duplicate parameter {p.name!r} in kernel {k.name!r}",
                        p.line, p.col,
                    )
                seen.add(p.name)
            self.signatures[k.name] = KernelSig(
                name=k.name,
                params=tuple((p.name, p.type) for p in k.params),
                ret=k.ret,
            )
        for k in self.program.kernels:
            self._check_kernel(k)
        return CheckedProgram(
            program=self.program,
            signatures=self.signatures,
            expr_types=self.expr_types,
            builtin_categories=self.builtin_categories,
            builtins_used=self.builtins_used,
            uses_omp_pragmas=self.uses_omp_pragmas,
        )

    def _check_kernel(self, k: ast.Kernel) -> None:
        scope = _Scope()
        for p in k.params:
            scope.declare(p.name, p.type, p)
        self._check_block(k.body, scope, k.ret, in_loop=False, in_parallel=False)
        if k.ret is not None and not self._guarantees_return(k.body):
            raise TypeError_(
                f"kernel {k.name!r} declares return type {k.ret} but control "
                "may reach the end of the body without returning",
                k.line, k.col,
            )

    # -- return-path analysis -------------------------------------------------

    def _guarantees_return(self, stmt: ast.Stmt) -> bool:
        if isinstance(stmt, ast.Return):
            return True
        if isinstance(stmt, ast.Block):
            return any(self._guarantees_return(s) for s in stmt.stmts)
        if isinstance(stmt, ast.If):
            return (
                stmt.orelse is not None
                and self._guarantees_return(stmt.then)
                and self._guarantees_return(stmt.orelse)
            )
        return False

    # -- statements -------------------------------------------------------------

    def _check_block(
        self, block: ast.Block, scope: _Scope, ret: Optional[T.Type],
        in_loop, in_parallel: bool = False,
    ) -> None:
        scope.push()
        for s in block.stmts:
            self._check_stmt(s, scope, ret, in_loop, in_parallel)
        scope.pop()

    def _check_stmt(
        self, s: ast.Stmt, scope: _Scope, ret: Optional[T.Type],
        in_loop, in_parallel: bool = False,
    ) -> None:
        if isinstance(s, ast.Block):
            self._check_block(s, scope, ret, in_loop, in_parallel)
        elif isinstance(s, ast.Let):
            init_t = self._check_expr(s.init, scope)
            if s.declared is not None:
                if not self._assignable(s.declared, init_t):
                    raise TypeError_(
                        f"cannot initialize {s.name!r}: {s.declared} from {init_t}",
                        s.line, s.col,
                    )
                var_t = s.declared
            else:
                if init_t is T.UNIT or init_t is T.STR:
                    raise TypeError_(
                        f"cannot infer a value type for {s.name!r} from {init_t}",
                        s.line, s.col,
                    )
                var_t = init_t
            scope.declare(s.name, var_t, s)
        elif isinstance(s, ast.Assign):
            self._check_assign(s, scope)
        elif isinstance(s, ast.If):
            cond_t = self._check_expr(s.cond, scope)
            if cond_t is not T.BOOL:
                raise TypeError_(f"if condition must be bool, found {cond_t}",
                                 s.line, s.col)
            self._check_block(s.then, scope, ret, in_loop, in_parallel)
            if s.orelse is not None:
                self._check_stmt(s.orelse, scope, ret, in_loop, in_parallel)
        elif isinstance(s, ast.For):
            self._check_for(s, scope, ret, in_parallel=in_parallel)
        elif isinstance(s, ast.While):
            cond_t = self._check_expr(s.cond, scope)
            if cond_t is not T.BOOL:
                raise TypeError_(f"while condition must be bool, found {cond_t}",
                                 s.line, s.col)
            self._check_block(s.body, scope, ret, in_loop=True,
                              in_parallel=in_parallel)
        elif isinstance(s, ast.Return):
            if in_parallel:
                raise TypeError_(
                    "'return' may not leave an OpenMP parallel for", s.line, s.col
                )
            if ret is None:
                if s.value is not None:
                    raise TypeError_("return with a value in a unit kernel",
                                     s.line, s.col)
            else:
                if s.value is None:
                    raise TypeError_(f"return must provide a {ret} value",
                                     s.line, s.col)
                vt = self._check_expr(s.value, scope)
                if not self._assignable(ret, vt):
                    raise TypeError_(f"cannot return {vt} from a kernel returning {ret}",
                                     s.line, s.col)
        elif isinstance(s, ast.Break):
            if not in_loop:
                raise TypeError_("'break' outside of a loop", s.line, s.col)
            if in_loop == "parallel":
                raise TypeError_(
                    "'break' may not leave an OpenMP parallel for", s.line, s.col
                )
        elif isinstance(s, ast.Continue):
            if not in_loop:
                raise TypeError_("'continue' outside of a loop", s.line, s.col)
        elif isinstance(s, ast.ExprStmt):
            self._check_expr(s.expr, scope)
        elif isinstance(s, ast.OmpParallelFor):
            self.uses_omp_pragmas = True
            for c in s.clauses:
                if c.kind == "reduction":
                    vt = scope.lookup(c.var)
                    if vt is None:
                        raise TypeError_(
                            f"reduction variable {c.var!r} is not declared",
                            c.line, c.col,
                        )
                    if not T.is_numeric(vt):
                        raise TypeError_(
                            f"reduction variable {c.var!r} must be numeric, is {vt}",
                            c.line, c.col,
                        )
                elif c.kind == "num_threads" and c.value is not None:
                    vt = self._check_expr(c.value, scope)
                    if vt is not T.INT:
                        raise TypeError_("num_threads must be an int", c.line, c.col)
            self._check_for(s.loop, scope, ret, parallel=True, in_parallel=True)
        elif isinstance(s, ast.OmpCritical):
            self.uses_omp_pragmas = True
            self._check_block(s.body, scope, ret, in_loop, in_parallel)
        elif isinstance(s, ast.OmpAtomic):
            self.uses_omp_pragmas = True
            if s.update.op == "=":
                raise TypeError_(
                    "'pragma omp atomic' requires an update (+=, -=, *=, /=)",
                    s.line, s.col,
                )
            self._check_assign(s.update, scope)
        else:  # pragma: no cover - defensive
            raise TypeError_(f"unknown statement {type(s).__name__}", s.line, s.col)

    def _check_for(self, s: ast.For, scope: _Scope, ret: Optional[T.Type],
                   parallel: bool = False, in_parallel: bool = False) -> None:
        lo_t = self._check_expr(s.lo, scope)
        hi_t = self._check_expr(s.hi, scope)
        if lo_t is not T.INT or hi_t is not T.INT:
            raise TypeError_("for-range bounds must be int", s.line, s.col)
        if s.step is not None:
            st = self._check_expr(s.step, scope)
            if st is not T.INT:
                raise TypeError_("for-range step must be int", s.line, s.col)
        scope.push()
        scope.declare(s.var, T.INT, s)
        self._check_block(s.body, scope, ret,
                          in_loop="parallel" if parallel else True,
                          in_parallel=in_parallel or parallel)
        scope.pop()

    def _check_assign(self, s: ast.Assign, scope: _Scope) -> None:
        value_t = self._check_expr(s.value, scope)
        if isinstance(s.target, ast.Name):
            target_t = scope.lookup(s.target.ident)
            if target_t is None:
                raise TypeError_(f"assignment to undeclared variable {s.target.ident!r}",
                                 s.line, s.col)
            self.expr_types[id(s.target)] = target_t
            if isinstance(target_t, T.ArrayType):
                if s.op != "=":
                    raise TypeError_("compound assignment not allowed on arrays",
                                     s.line, s.col)
                if value_t is not target_t:
                    raise TypeError_(f"cannot assign {value_t} to {target_t} variable",
                                     s.line, s.col)
                return
        elif isinstance(s.target, ast.Index):
            target_t = self._check_expr(s.target, scope)
        else:  # pragma: no cover - parser prevents this
            raise TypeError_("invalid assignment target", s.line, s.col)
        if s.op == "=":
            if not self._assignable(target_t, value_t):
                raise TypeError_(f"cannot assign {value_t} to {target_t}",
                                 s.line, s.col)
        else:
            if not (T.is_numeric(target_t) and T.is_numeric(value_t)):
                raise TypeError_(
                    f"compound assignment requires numeric operands "
                    f"({target_t} {s.op} {value_t})",
                    s.line, s.col,
                )
            if target_t is T.INT and value_t is T.FLOAT:
                raise TypeError_("cannot accumulate a float into an int without int()",
                                 s.line, s.col)

    @staticmethod
    def _assignable(target: T.Type, value: T.Type) -> bool:
        if target is value:
            return True
        return target is T.FLOAT and value is T.INT

    # -- expressions ------------------------------------------------------------

    def _check_expr(self, e: ast.Expr, scope: _Scope) -> T.Type:
        t = self._infer(e, scope)
        self.expr_types[id(e)] = t
        return t

    def _infer(self, e: ast.Expr, scope: _Scope) -> T.Type:
        if isinstance(e, ast.IntLit):
            return T.INT
        if isinstance(e, ast.FloatLit):
            return T.FLOAT
        if isinstance(e, ast.BoolLit):
            return T.BOOL
        if isinstance(e, ast.StrLit):
            return T.STR
        if isinstance(e, ast.Name):
            t = scope.lookup(e.ident)
            if t is None:
                raise TypeError_(f"use of undeclared name {e.ident!r}", e.line, e.col)
            return t
        if isinstance(e, ast.Unary):
            ot = self._check_expr(e.operand, scope)
            if e.op == "-":
                if not T.is_numeric(ot):
                    raise TypeError_(f"unary '-' requires a number, found {ot}",
                                     e.line, e.col)
                return ot
            if ot is not T.BOOL:
                raise TypeError_(f"'!' requires bool, found {ot}", e.line, e.col)
            return T.BOOL
        if isinstance(e, ast.Binary):
            return self._infer_binary(e, scope)
        if isinstance(e, ast.Index):
            base_t = self._check_expr(e.base, scope)
            if not isinstance(base_t, T.ArrayType):
                raise TypeError_(f"cannot index into {base_t}", e.line, e.col)
            if len(e.indices) != base_t.ndim:
                raise TypeError_(
                    f"{base_t} requires {base_t.ndim} indices, got {len(e.indices)}",
                    e.line, e.col,
                )
            for ix in e.indices:
                it = self._check_expr(ix, scope)
                if it is not T.INT:
                    raise TypeError_(f"array index must be int, found {it}",
                                     e.line, e.col)
            return base_t.elem
        if isinstance(e, ast.Call):
            return self._infer_call(e, scope)
        if isinstance(e, ast.Lambda):
            raise TypeError_(
                "lambda is only allowed as an argument to a parallel pattern",
                e.line, e.col,
            )
        raise TypeError_(f"unknown expression {type(e).__name__}",
                         e.line, e.col)  # pragma: no cover

    def _infer_binary(self, e: ast.Binary, scope: _Scope) -> T.Type:
        lt = self._check_expr(e.left, scope)
        rt = self._check_expr(e.right, scope)
        op = e.op
        if op in ("&&", "||"):
            if lt is not T.BOOL or rt is not T.BOOL:
                raise TypeError_(f"{op!r} requires bool operands ({lt}, {rt})",
                                 e.line, e.col)
            return T.BOOL
        if op in ("==", "!="):
            if lt is T.BOOL and rt is T.BOOL:
                return T.BOOL
            if T.is_numeric(lt) and T.is_numeric(rt):
                return T.BOOL
            raise TypeError_(f"cannot compare {lt} with {rt}", e.line, e.col)
        if op in ("<", "<=", ">", ">="):
            if not (T.is_numeric(lt) and T.is_numeric(rt)):
                raise TypeError_(f"{op!r} requires numeric operands ({lt}, {rt})",
                                 e.line, e.col)
            return T.BOOL
        if op == "%":
            if lt is T.INT and rt is T.INT:
                return T.INT
            raise TypeError_("'%' requires int operands", e.line, e.col)
        result = T.unify_numeric(lt, rt)
        if result is None:
            raise TypeError_(f"{op!r} requires numeric operands ({lt}, {rt})",
                             e.line, e.col)
        return result

    def _infer_call(self, e: ast.Call, scope: _Scope) -> T.Type:
        sig = bi.get(e.func)
        if sig is not None:
            return self._infer_builtin_call(e, sig, scope)
        ksig = self.signatures.get(e.func)
        if ksig is None:
            raise TypeError_(f"call to unknown function {e.func!r}", e.line, e.col)
        if len(e.args) != len(ksig.params):
            raise TypeError_(
                f"{e.func!r} expects {len(ksig.params)} arguments, got {len(e.args)}",
                e.line, e.col,
            )
        for arg, (pname, pt) in zip(e.args, ksig.params):
            at = self._check_expr(arg, scope)
            if not self._assignable(pt, at):
                raise TypeError_(
                    f"argument {pname!r} of {e.func!r} expects {pt}, got {at}",
                    arg.line, arg.col,
                )
        return ksig.ret if ksig.ret is not None else T.UNIT

    def _infer_builtin_call(self, e: ast.Call, sig: bi.BuiltinSig,
                            scope: _Scope) -> T.Type:
        if len(e.args) not in sig.arity:
            raise TypeError_(
                f"builtin {sig.name!r} expects {' or '.join(map(str, sig.arity))} "
                f"arguments, got {len(e.args)}",
                e.line, e.col,
            )
        arg_types: List[T.Type] = []
        for idx, arg in enumerate(e.args):
            wants_lambda = (
                idx < len(sig.lambda_params) and sig.lambda_params[idx] is not None
            )
            if isinstance(arg, ast.Lambda):
                if not wants_lambda:
                    raise TypeError_(
                        f"builtin {sig.name!r} does not accept a lambda at "
                        f"argument {idx + 1}",
                        arg.line, arg.col,
                    )
                lam_t = self._check_lambda(arg, sig.lambda_params[idx], scope)
                self.expr_types[id(arg)] = lam_t
                arg_types.append(lam_t)
                continue
            if wants_lambda:
                raise TypeError_(
                    f"builtin {sig.name!r} expects a lambda at argument {idx + 1}",
                    arg.line, arg.col,
                )
            at = self._check_expr(arg, scope)
            if idx in sig.str_args:
                if at is not T.STR:
                    raise TypeError_(
                        f"builtin {sig.name!r} expects an operator name "
                        f"(one of {bi.REDUCE_OPS}) at argument {idx + 1}",
                        arg.line, arg.col,
                    )
                assert isinstance(arg, ast.StrLit)
                if arg.value not in bi.REDUCE_OPS:
                    raise TypeError_(
                        f"unknown reduction operator {arg.value!r} "
                        f"(expected one of {bi.REDUCE_OPS})",
                        arg.line, arg.col,
                    )
            elif at is T.STR:
                raise TypeError_(
                    f"builtin {sig.name!r} does not take a string at "
                    f"argument {idx + 1}",
                    arg.line, arg.col,
                )
            arg_types.append(at)
        result = sig.resolve(arg_types)
        if result is None:
            shown = ", ".join(str(t) for t in arg_types)
            raise TypeError_(f"invalid arguments to {sig.name!r}: ({shown})",
                             e.line, e.col)
        self.builtin_categories.add(sig.category)
        self.builtins_used.add(sig.name)
        return result

    def _check_lambda(self, lam: ast.Lambda, param_types: Tuple[T.Type, ...],
                      scope: _Scope) -> T.FuncType:
        if len(lam.params) != len(param_types):
            raise TypeError_(
                f"lambda expects {len(param_types)} parameter(s), "
                f"declared {len(lam.params)}",
                lam.line, lam.col,
            )
        scope.push()
        for pname, pt in zip(lam.params, param_types):
            scope.declare(pname, pt, lam)
        if lam.body_expr is not None:
            result = self._check_expr(lam.body_expr, scope)
        else:
            assert lam.body_block is not None
            self._check_block(lam.body_block, scope, ret=None, in_loop=False)
            result = T.UNIT
        scope.pop()
        return T.FuncType(params=param_types, result=result)


def typecheck(program: ast.Program) -> CheckedProgram:
    """Type-check ``program``; raise :class:`TypeError_` on any violation."""
    return Checker(program).check()
