"""Unparser: render a MiniPar AST back to source text.

Used by the bug injectors — semantic mutations are applied to the AST and
the result is unparsed so that every sample handed to the harness is plain
source text, round-trippable through the parser.
"""

from __future__ import annotations

from typing import List

from . import ast

_INDENT = "    "


class _Printer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def emit(self, text: str) -> None:
        self.lines.append(_INDENT * self.depth + text)

    # -- expressions -------------------------------------------------------

    def expr(self, e: ast.Expr) -> str:
        if isinstance(e, ast.IntLit):
            return str(e.value)
        if isinstance(e, ast.FloatLit):
            text = repr(float(e.value))
            # Guarantee the literal re-lexes as a float.
            if "." not in text and "e" not in text and "E" not in text:
                text += ".0"
            return text
        if isinstance(e, ast.BoolLit):
            return "true" if e.value else "false"
        if isinstance(e, ast.StrLit):
            return f'"{e.value}"'
        if isinstance(e, ast.Name):
            return e.ident
        if isinstance(e, ast.Unary):
            return f"{e.op}{self._atom(e.operand)}"
        if isinstance(e, ast.Binary):
            return f"{self._atom(e.left)} {e.op} {self._atom(e.right)}"
        if isinstance(e, ast.Index):
            idx = ", ".join(self.expr(i) for i in e.indices)
            return f"{self._atom(e.base)}[{idx}]"
        if isinstance(e, ast.Call):
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{e.func}({args})"
        if isinstance(e, ast.Lambda):
            params = ", ".join(e.params)
            if e.body_expr is not None:
                return f"({params}) => {self.expr(e.body_expr)}"
            assert e.body_block is not None
            inner = _Printer()
            inner.depth = self.depth
            inner.block(e.body_block)
            body = "\n".join(inner.lines)
            return f"({params}) => {body.lstrip()}"
        raise AssertionError(f"unknown expression {type(e).__name__}")

    def _atom(self, e: ast.Expr) -> str:
        """Render with parentheses when needed to preserve structure."""
        text = self.expr(e)
        if isinstance(e, (ast.Binary, ast.Unary)):
            return f"({text})"
        return text

    # -- statements --------------------------------------------------------

    def block(self, b: ast.Block) -> None:
        self.emit("{")
        self.depth += 1
        for s in b.stmts:
            self.stmt(s)
        self.depth -= 1
        self.emit("}")

    def _inline_block(self, prefix: str, b: ast.Block) -> None:
        """Emit ``prefix {`` ... ``}`` with the brace on the prefix line."""
        self.emit(prefix + " {")
        self.depth += 1
        for s in b.stmts:
            self.stmt(s)
        self.depth -= 1
        self.emit("}")

    def stmt(self, s: ast.Stmt) -> None:
        if isinstance(s, ast.Block):
            self.block(s)
        elif isinstance(s, ast.Let):
            ann = f": {s.declared}" if s.declared is not None else ""
            self.emit(f"let {s.name}{ann} = {self.expr(s.init)};")
        elif isinstance(s, ast.Assign):
            self.emit(f"{self.expr(s.target)} {s.op} {self.expr(s.value)};")
        elif isinstance(s, ast.If):
            self._inline_block(f"if ({self.expr(s.cond)})", s.then)
            node = s.orelse
            while node is not None:
                # splice "else if" chains onto the closing brace line
                if isinstance(node, ast.If):
                    self.lines[-1] += f" else if ({self.expr(node.cond)}) {{"
                    self.depth += 1
                    for inner in node.then.stmts:
                        self.stmt(inner)
                    self.depth -= 1
                    self.emit("}")
                    node = node.orelse
                else:
                    assert isinstance(node, ast.Block)
                    self.lines[-1] += " else {"
                    self.depth += 1
                    for inner in node.stmts:
                        self.stmt(inner)
                    self.depth -= 1
                    self.emit("}")
                    node = None
        elif isinstance(s, ast.For):
            self._inline_block(self._for_header(s), s.body)
        elif isinstance(s, ast.While):
            self._inline_block(f"while ({self.expr(s.cond)})", s.body)
        elif isinstance(s, ast.Return):
            if s.value is None:
                self.emit("return;")
            else:
                self.emit(f"return {self.expr(s.value)};")
        elif isinstance(s, ast.Break):
            self.emit("break;")
        elif isinstance(s, ast.Continue):
            self.emit("continue;")
        elif isinstance(s, ast.ExprStmt):
            self.emit(f"{self.expr(s.expr)};")
        elif isinstance(s, ast.OmpParallelFor):
            clauses = "".join(" " + self._clause(c) for c in s.clauses)
            self.emit(f"pragma omp parallel for{clauses}")
            self._inline_block(self._for_header(s.loop), s.loop.body)
        elif isinstance(s, ast.OmpCritical):
            self.emit("pragma omp critical")
            self.block(s.body)
        elif isinstance(s, ast.OmpAtomic):
            self.emit("pragma omp atomic")
            self.stmt(s.update)
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown statement {type(s).__name__}")

    def _for_header(self, s: ast.For) -> str:
        step = f" step {self.expr(s.step)}" if s.step is not None else ""
        return f"for ({s.var} in {self.expr(s.lo)}..{self.expr(s.hi)}{step})"

    @staticmethod
    def _clause(c: ast.OmpClause) -> str:
        if c.kind == "reduction":
            return f"reduction({c.op}: {c.var})"
        if c.kind == "schedule":
            return f"schedule({c.schedule})"
        p = _Printer()
        return f"num_threads({p.expr(c.value)})" if c.value is not None else "num_threads(1)"

    # -- top level ----------------------------------------------------------

    def kernel(self, k: ast.Kernel) -> None:
        params = ", ".join(f"{p.name}: {p.type}" for p in k.params)
        ret = f" -> {k.ret}" if k.ret is not None else ""
        self._inline_block(f"kernel {k.name}({params}){ret}", k.body)

    def program(self, p: ast.Program) -> str:
        for i, k in enumerate(p.kernels):
            if i:
                self.lines.append("")
            self.kernel(k)
        return "\n".join(self.lines) + "\n"


def unparse(program: ast.Program) -> str:
    """Render ``program`` as MiniPar source text."""
    return _Printer().program(program)


def unparse_expr(e: ast.Expr) -> str:
    """Render a single expression (used in diagnostics and mutation logs)."""
    return _Printer().expr(e)
