"""MiniPar: the small parallel language that PCGBench samples are written in.

The front end mirrors a real compiler pipeline:

    source text --lex--> tokens --parse--> AST --typecheck--> CheckedProgram

:func:`compile_source` is the harness' "compiler invocation": any
:class:`~repro.lang.errors.CompileError` it raises is recorded as a build
failure, mirroring how the paper's harness records GCC compile status.
"""

from __future__ import annotations

from . import ast, builtins, types
from .errors import (
    CompileError,
    DataRaceError,
    DeadlockError,
    FuelExhausted,
    GPUFault,
    LexError,
    MiniParError,
    MPIUsageError,
    ParseError,
    RuntimeFailure,
    SimTimeLimitExceeded,
    TrapError,
    TypeError_,
)
from .lexer import lex
from .parser import parse
from .typecheck import CheckedProgram, KernelSig, typecheck
from .unparse import unparse, unparse_expr

__all__ = [
    "ast",
    "builtins",
    "types",
    "lex",
    "parse",
    "typecheck",
    "compile_source",
    "unparse",
    "unparse_expr",
    "CheckedProgram",
    "KernelSig",
    "MiniParError",
    "CompileError",
    "LexError",
    "ParseError",
    "TypeError_",
    "RuntimeFailure",
    "TrapError",
    "FuelExhausted",
    "SimTimeLimitExceeded",
    "DataRaceError",
    "DeadlockError",
    "MPIUsageError",
    "GPUFault",
]


def compile_source(source: str) -> CheckedProgram:
    """Lex, parse and type-check MiniPar source text.

    Raises :class:`CompileError` (or a subclass) on any front-end failure.
    """
    return typecheck(parse(source))
