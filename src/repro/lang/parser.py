"""Recursive-descent parser for MiniPar.

Grammar (informal):

    program     := kernel*
    kernel      := "kernel" NAME "(" params? ")" ("->" type)? block
    param       := NAME ":" type
    type        := "int" | "float" | "bool"
                 | "array" "<" scalar ">" | "array2d" "<" scalar ">"
    block       := "{" stmt* "}"
    stmt        := let | assign | if | for | while | return | break
                 | continue | pragma | block | exprStmt
    let         := "let" NAME (":" type)? "=" expr ";"
    assign      := target ("="|"+="|"-="|"*="|"/=") expr ";"
    if          := "if" "(" expr ")" block ("else" (if | block))?
    for         := "for" "(" NAME "in" expr ".." expr ("step" expr)? ")" block
    while       := "while" "(" expr ")" block
    pragma      := "pragma" "omp" ompSpec
    ompSpec     := "parallel" "for" clause* for
                 | "critical" block
                 | "atomic" assign
    clause      := "reduction" "(" redop ":" NAME ")"
                 | "schedule" "(" NAME ")"
                 | "num_threads" "(" expr ")"

Expressions use conventional C precedence.  Lambdas ``(i) => expr`` /
``(i) => { ... }`` are only accepted in call-argument position (they are
the Kokkos-style functor arguments).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import ast
from .errors import ParseError
from .lexer import lex
from .tokens import TokKind, Token
from .types import Type, type_from_name

_SCALAR_NAMES = ("int", "float", "bool")
_REDUCTION_OPS = ("+", "*", "min", "max")


class Parser:
    def __init__(self, tokens: List[Token]):
        self.toks = tokens
        self.i = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        j = min(self.i + offset, len(self.toks) - 1)
        return self.toks[j]

    def _at(self, kind: TokKind, text: Optional[str] = None) -> bool:
        t = self._peek()
        return t.kind is kind and (text is None or t.text == text)

    def _advance(self) -> Token:
        t = self.toks[self.i]
        if t.kind is not TokKind.EOF:
            self.i += 1
        return t

    def _expect(self, kind: TokKind, what: str = "") -> Token:
        t = self._peek()
        if t.kind is not kind:
            expected = what or kind.name.lower()
            raise ParseError(f"expected {expected}, found {t.text!r}", t.line, t.col)
        return self._advance()

    def _expect_name(self, text: Optional[str] = None) -> Token:
        t = self._expect(TokKind.NAME, text or "identifier")
        if text is not None and t.text != text:
            raise ParseError(f"expected {text!r}, found {t.text!r}", t.line, t.col)
        return t

    # -- top level ---------------------------------------------------------

    def parse_program(self) -> ast.Program:
        kernels = []
        while not self._at(TokKind.EOF):
            kernels.append(self.parse_kernel())
        if not kernels:
            t = self._peek()
            raise ParseError("empty program: expected at least one kernel", t.line, t.col)
        return ast.Program(kernels=tuple(kernels))

    def parse_kernel(self) -> ast.Kernel:
        kw = self._expect_name("kernel")
        name = self._expect(TokKind.NAME, "kernel name")
        self._expect(TokKind.LPAREN)
        params: List[ast.Param] = []
        if not self._at(TokKind.RPAREN):
            while True:
                pn = self._expect(TokKind.NAME, "parameter name")
                self._expect(TokKind.COLON)
                pt = self.parse_type()
                params.append(ast.Param(name=pn.text, type=pt, line=pn.line, col=pn.col))
                if self._at(TokKind.COMMA):
                    self._advance()
                else:
                    break
        self._expect(TokKind.RPAREN)
        ret: Optional[Type] = None
        if self._at(TokKind.ARROW):
            self._advance()
            ret = self.parse_type()
        body = self.parse_block()
        return ast.Kernel(
            name=name.text, params=tuple(params), ret=ret, body=body,
            line=kw.line, col=kw.col,
        )

    def parse_type(self) -> Type:
        t = self._expect(TokKind.NAME, "type name")
        if t.text in _SCALAR_NAMES:
            ty = type_from_name(t.text)
            assert ty is not None
            return ty
        if t.text in ("array", "array2d"):
            self._expect(TokKind.LT, "'<'")
            elem = self._expect(TokKind.NAME, "scalar element type")
            if elem.text not in _SCALAR_NAMES:
                raise ParseError(
                    f"array element must be a scalar type, found {elem.text!r}",
                    elem.line, elem.col,
                )
            self._expect(TokKind.GT, "'>'")
            ty = type_from_name(f"{t.text}<{elem.text}>")
            if ty is None:
                raise ParseError(f"unsupported type {t.text}<{elem.text}>", t.line, t.col)
            return ty
        raise ParseError(f"unknown type {t.text!r}", t.line, t.col)

    # -- statements ----------------------------------------------------------

    def parse_block(self) -> ast.Block:
        lb = self._expect(TokKind.LBRACE, "'{'")
        stmts: List[ast.Stmt] = []
        while not self._at(TokKind.RBRACE):
            if self._at(TokKind.EOF):
                raise ParseError("unterminated block: expected '}'", lb.line, lb.col)
            stmts.append(self.parse_stmt())
        self._advance()
        return ast.Block(stmts=tuple(stmts), line=lb.line, col=lb.col)

    def parse_stmt(self) -> ast.Stmt:
        t = self._peek()
        if t.kind is TokKind.LBRACE:
            return self.parse_block()
        if t.kind is not TokKind.NAME:
            raise ParseError(f"expected statement, found {t.text!r}", t.line, t.col)
        kw = t.text
        if kw == "let":
            return self._parse_let()
        if kw == "if":
            return self._parse_if()
        if kw == "for":
            return self._parse_for()
        if kw == "while":
            return self._parse_while()
        if kw == "return":
            self._advance()
            if self._at(TokKind.SEMI):
                self._advance()
                return ast.Return(value=None, line=t.line, col=t.col)
            v = self.parse_expr()
            self._expect(TokKind.SEMI, "';'")
            return ast.Return(value=v, line=t.line, col=t.col)
        if kw == "break":
            self._advance()
            self._expect(TokKind.SEMI, "';'")
            return ast.Break(line=t.line, col=t.col)
        if kw == "continue":
            self._advance()
            self._expect(TokKind.SEMI, "';'")
            return ast.Continue(line=t.line, col=t.col)
        if kw == "pragma":
            return self._parse_pragma()
        # assignment or expression statement
        return self._parse_assign_or_expr()

    def _parse_let(self) -> ast.Let:
        t = self._advance()  # let
        name = self._expect(TokKind.NAME, "variable name")
        declared: Optional[Type] = None
        if self._at(TokKind.COLON):
            self._advance()
            declared = self.parse_type()
        self._expect(TokKind.ASSIGN, "'='")
        init = self.parse_expr()
        self._expect(TokKind.SEMI, "';'")
        return ast.Let(name=name.text, declared=declared, init=init, line=t.line, col=t.col)

    def _parse_if(self) -> ast.If:
        t = self._advance()  # if
        self._expect(TokKind.LPAREN, "'('")
        cond = self.parse_expr()
        self._expect(TokKind.RPAREN, "')'")
        then = self.parse_block()
        orelse: Optional[ast.Stmt] = None
        if self._at(TokKind.NAME, "else"):
            self._advance()
            if self._at(TokKind.NAME, "if"):
                orelse = self._parse_if()
            else:
                orelse = self.parse_block()
        return ast.If(cond=cond, then=then, orelse=orelse, line=t.line, col=t.col)

    def _parse_for_header(self) -> Tuple[Token, str, ast.Expr, ast.Expr, Optional[ast.Expr]]:
        t = self._advance()  # for
        self._expect(TokKind.LPAREN, "'('")
        var = self._expect(TokKind.NAME, "loop variable")
        self._expect_name("in")
        lo = self.parse_expr()
        self._expect(TokKind.DOTDOT, "'..'")
        hi = self.parse_expr()
        step: Optional[ast.Expr] = None
        if self._at(TokKind.NAME, "step"):
            self._advance()
            step = self.parse_expr()
        self._expect(TokKind.RPAREN, "')'")
        return t, var.text, lo, hi, step

    def _parse_for(self) -> ast.For:
        t, var, lo, hi, step = self._parse_for_header()
        body = self.parse_block()
        return ast.For(var=var, lo=lo, hi=hi, step=step, body=body, line=t.line, col=t.col)

    def _parse_pragma(self) -> ast.Stmt:
        t = self._advance()  # pragma
        self._expect_name("omp")
        spec = self._expect(TokKind.NAME, "omp directive")
        if spec.text == "parallel":
            self._expect_name("for")
            clauses: List[ast.OmpClause] = []
            while self._at(TokKind.NAME) and self._peek().text in (
                "reduction", "schedule", "num_threads",
            ):
                clauses.append(self._parse_omp_clause())
            if not self._at(TokKind.NAME, "for"):
                p = self._peek()
                raise ParseError(
                    "'pragma omp parallel for' must be followed by a for loop",
                    p.line, p.col,
                )
            loop = self._parse_for()
            return ast.OmpParallelFor(clauses=tuple(clauses), loop=loop, line=t.line, col=t.col)
        if spec.text == "critical":
            body = self.parse_block()
            return ast.OmpCritical(body=body, line=t.line, col=t.col)
        if spec.text == "atomic":
            stmt = self._parse_assign_or_expr()
            if not isinstance(stmt, ast.Assign):
                raise ParseError(
                    "'pragma omp atomic' must be followed by an update assignment",
                    t.line, t.col,
                )
            return ast.OmpAtomic(update=stmt, line=t.line, col=t.col)
        raise ParseError(f"unknown omp directive {spec.text!r}", spec.line, spec.col)

    def _parse_omp_clause(self) -> ast.OmpClause:
        name = self._advance()
        self._expect(TokKind.LPAREN, "'('")
        if name.text == "reduction":
            opt = self._peek()
            if opt.kind is TokKind.PLUS:
                op = "+"
                self._advance()
            elif opt.kind is TokKind.STAR:
                op = "*"
                self._advance()
            elif opt.kind is TokKind.NAME and opt.text in ("min", "max"):
                op = opt.text
                self._advance()
            else:
                raise ParseError(
                    f"invalid reduction operator {opt.text!r} "
                    f"(expected one of {_REDUCTION_OPS})",
                    opt.line, opt.col,
                )
            self._expect(TokKind.COLON, "':'")
            var = self._expect(TokKind.NAME, "reduction variable")
            self._expect(TokKind.RPAREN, "')'")
            return ast.OmpClause(kind="reduction", op=op, var=var.text,
                                 line=name.line, col=name.col)
        if name.text == "schedule":
            kind = self._expect(TokKind.NAME, "schedule kind")
            if kind.text not in ("static", "dynamic", "guided"):
                raise ParseError(f"unknown schedule {kind.text!r}", kind.line, kind.col)
            self._expect(TokKind.RPAREN, "')'")
            return ast.OmpClause(kind="schedule", schedule=kind.text,
                                 line=name.line, col=name.col)
        # num_threads
        value = self.parse_expr()
        self._expect(TokKind.RPAREN, "')'")
        return ast.OmpClause(kind="num_threads", value=value, line=name.line, col=name.col)

    def _parse_while(self) -> ast.While:
        t = self._advance()  # while
        self._expect(TokKind.LPAREN, "'('")
        cond = self.parse_expr()
        self._expect(TokKind.RPAREN, "')'")
        body = self.parse_block()
        return ast.While(cond=cond, body=body, line=t.line, col=t.col)

    def _parse_assign_or_expr(self) -> ast.Stmt:
        t = self._peek()
        expr = self.parse_expr()
        k = self._peek().kind
        ops = {
            TokKind.ASSIGN: "=",
            TokKind.PLUSEQ: "+=",
            TokKind.MINUSEQ: "-=",
            TokKind.STAREQ: "*=",
            TokKind.SLASHEQ: "/=",
        }
        if k in ops:
            if not isinstance(expr, (ast.Name, ast.Index)):
                p = self._peek()
                raise ParseError("invalid assignment target", p.line, p.col)
            self._advance()
            value = self.parse_expr()
            self._expect(TokKind.SEMI, "';'")
            return ast.Assign(target=expr, op=ops[k], value=value, line=t.line, col=t.col)
        self._expect(TokKind.SEMI, "';'")
        return ast.ExprStmt(expr=expr, line=t.line, col=t.col)

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at(TokKind.OROR):
            t = self._advance()
            right = self._parse_and()
            left = ast.Binary(op="||", left=left, right=right, line=t.line, col=t.col)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_cmp()
        while self._at(TokKind.ANDAND):
            t = self._advance()
            right = self._parse_cmp()
            left = ast.Binary(op="&&", left=left, right=right, line=t.line, col=t.col)
        return left

    _CMP = {
        TokKind.LT: "<", TokKind.LE: "<=", TokKind.GT: ">",
        TokKind.GE: ">=", TokKind.EQEQ: "==", TokKind.NEQ: "!=",
    }

    def _parse_cmp(self) -> ast.Expr:
        left = self._parse_add()
        k = self._peek().kind
        if k in self._CMP:
            t = self._advance()
            right = self._parse_add()
            return ast.Binary(op=self._CMP[k], left=left, right=right, line=t.line, col=t.col)
        return left

    def _parse_add(self) -> ast.Expr:
        left = self._parse_mul()
        while self._peek().kind in (TokKind.PLUS, TokKind.MINUS):
            t = self._advance()
            right = self._parse_mul()
            left = ast.Binary(op=t.text, left=left, right=right, line=t.line, col=t.col)
        return left

    def _parse_mul(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().kind in (TokKind.STAR, TokKind.SLASH, TokKind.PERCENT):
            t = self._advance()
            right = self._parse_unary()
            left = ast.Binary(op=t.text, left=left, right=right, line=t.line, col=t.col)
        return left

    def _parse_unary(self) -> ast.Expr:
        t = self._peek()
        if t.kind is TokKind.MINUS:
            self._advance()
            return ast.Unary(op="-", operand=self._parse_unary(), line=t.line, col=t.col)
        if t.kind is TokKind.NOT:
            self._advance()
            return ast.Unary(op="!", operand=self._parse_unary(), line=t.line, col=t.col)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._at(TokKind.LBRACKET):
                t = self._advance()
                indices = [self.parse_expr()]
                if self._at(TokKind.COMMA):
                    self._advance()
                    indices.append(self.parse_expr())
                self._expect(TokKind.RBRACKET, "']'")
                expr = ast.Index(base=expr, indices=tuple(indices), line=t.line, col=t.col)
            else:
                return expr

    def _is_lambda_ahead(self) -> bool:
        """At a '(' — does a lambda ``(a, b) =>`` start here?"""
        if not self._at(TokKind.LPAREN):
            return False
        j = self.i + 1
        if self.toks[j].kind is TokKind.RPAREN:
            return self.toks[j + 1].kind is TokKind.FATARROW
        while True:
            if self.toks[j].kind is not TokKind.NAME:
                return False
            j += 1
            if self.toks[j].kind is TokKind.COMMA:
                j += 1
                continue
            if self.toks[j].kind is TokKind.RPAREN:
                return self.toks[j + 1].kind is TokKind.FATARROW
            return False

    def _parse_lambda(self) -> ast.Lambda:
        t = self._expect(TokKind.LPAREN)
        params: List[str] = []
        while not self._at(TokKind.RPAREN):
            params.append(self._expect(TokKind.NAME, "lambda parameter").text)
            if self._at(TokKind.COMMA):
                self._advance()
        self._advance()  # )
        self._expect(TokKind.FATARROW, "'=>'")
        if self._at(TokKind.LBRACE):
            body = self.parse_block()
            return ast.Lambda(params=tuple(params), body_block=body, line=t.line, col=t.col)
        body_expr = self.parse_expr()
        return ast.Lambda(params=tuple(params), body_expr=body_expr, line=t.line, col=t.col)

    def _parse_primary(self) -> ast.Expr:
        t = self._peek()
        if t.kind is TokKind.INT:
            self._advance()
            return ast.IntLit(value=int(t.text), line=t.line, col=t.col)
        if t.kind is TokKind.FLOAT:
            self._advance()
            return ast.FloatLit(value=float(t.text), line=t.line, col=t.col)
        if t.kind is TokKind.STRING:
            self._advance()
            return ast.StrLit(value=t.text, line=t.line, col=t.col)
        if t.kind is TokKind.LPAREN:
            if self._is_lambda_ahead():
                return self._parse_lambda()
            self._advance()
            inner = self.parse_expr()
            self._expect(TokKind.RPAREN, "')'")
            return inner
        if t.kind is TokKind.NAME:
            if t.text == "true":
                self._advance()
                return ast.BoolLit(value=True, line=t.line, col=t.col)
            if t.text == "false":
                self._advance()
                return ast.BoolLit(value=False, line=t.line, col=t.col)
            if t.text in ("let", "if", "for", "while", "return", "kernel", "pragma"):
                raise ParseError(f"unexpected keyword {t.text!r} in expression", t.line, t.col)
            self._advance()
            if self._at(TokKind.LPAREN):
                self._advance()
                args: List[ast.Expr] = []
                while not self._at(TokKind.RPAREN):
                    if self._is_lambda_ahead():
                        args.append(self._parse_lambda())
                    else:
                        args.append(self.parse_expr())
                    if self._at(TokKind.COMMA):
                        self._advance()
                        if self._at(TokKind.RPAREN):
                            p = self._peek()
                            raise ParseError(
                                "trailing comma in argument list",
                                p.line, p.col,
                            )
                    elif not self._at(TokKind.RPAREN):
                        p = self._peek()
                        raise ParseError(
                            f"expected ',' or ')' in argument list, found {p.text!r}",
                            p.line, p.col,
                        )
                self._advance()  # )
                return ast.Call(func=t.text, args=tuple(args), line=t.line, col=t.col)
            return ast.Name(ident=t.text, line=t.line, col=t.col)
        raise ParseError(f"expected expression, found {t.text!r}", t.line, t.col)


def parse(source: str) -> ast.Program:
    """Parse MiniPar source text into a :class:`~repro.lang.ast.Program`."""
    toks = lex(source)
    parser = Parser(toks)
    prog = parser.parse_program()
    return prog
