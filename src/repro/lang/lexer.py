"""Hand-written lexer for MiniPar.

MiniPar source is what the simulated LLMs emit, so the lexer must reject
malformed text with precise positions — injected "syntax error" bugs are
caught here or in the parser, just as GCC would reject malformed C++.
"""

from __future__ import annotations

from typing import List

from .errors import LexError
from .tokens import KEYWORDS, ONE_CHAR, TWO_CHAR, TokKind, Token

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")


class Lexer:
    """Converts MiniPar source text into a token list."""

    def __init__(self, source: str):
        self.src = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.src) and self.src[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.src[i] if i < len(self.src) else ""

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments (// line and /* block */)."""
        while self.pos < len(self.src):
            c = self._peek()
            if c in " \t\r\n":
                self._advance()
            elif c == "/" and self._peek(1) == "/":
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
            elif c == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.col
                self._advance(2)
                while self.pos < len(self.src):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", start_line, start_col)
            else:
                return

    def _lex_number(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        while self._peek() in _DIGITS:
            self._advance()
        is_float = False
        # A '.' begins a fractional part only if NOT '..' (range operator).
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self._advance()
            if self._peek() not in _DIGITS:
                raise LexError("digit expected after decimal point", self.line, self.col)
            while self._peek() in _DIGITS:
                self._advance()
        if self._peek() in ("e", "E"):
            is_float = True
            self._advance()
            if self._peek() in ("+", "-"):
                self._advance()
            if self._peek() not in _DIGITS:
                raise LexError("malformed exponent", self.line, self.col)
            while self._peek() in _DIGITS:
                self._advance()
        text = self.src[start : self.pos]
        return Token(TokKind.FLOAT if is_float else TokKind.INT, text, line, col)

    def _lex_name(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        while self._peek() in _IDENT_CONT:
            self._advance()
        text = self.src[start : self.pos]
        return Token(TokKind.NAME, text, line, col)

    def _lex_string(self) -> Token:
        line, col = self.line, self.col
        self._advance()  # opening quote
        start = self.pos
        while self._peek() not in ('"', ""):
            if self._peek() == "\n":
                raise LexError("unterminated string literal", line, col)
            self._advance()
        if self._peek() != '"':
            raise LexError("unterminated string literal", line, col)
        text = self.src[start : self.pos]
        self._advance()  # closing quote
        return Token(TokKind.STRING, text, line, col)

    def tokens(self) -> List[Token]:
        """Lex the whole input, returning tokens ending with EOF."""
        out: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.src):
                out.append(Token(TokKind.EOF, "", self.line, self.col))
                return out
            c = self._peek()
            if c in _DIGITS:
                out.append(self._lex_number())
            elif c in _IDENT_START:
                out.append(self._lex_name())
            elif c == '"':
                out.append(self._lex_string())
            else:
                two = c + self._peek(1)
                if two in TWO_CHAR:
                    out.append(Token(TWO_CHAR[two], two, self.line, self.col))
                    self._advance(2)
                elif c in ONE_CHAR:
                    out.append(Token(ONE_CHAR[c], c, self.line, self.col))
                    self._advance()
                else:
                    raise LexError(f"unexpected character {c!r}", self.line, self.col)


def lex(source: str) -> List[Token]:
    """Tokenize ``source``; raise :class:`LexError` on malformed input."""
    return Lexer(source).tokens()


def is_keyword(tok: Token) -> bool:
    """True if a NAME token spells a reserved word."""
    return tok.kind is TokKind.NAME and tok.text in KEYWORDS
