"""The MiniPar type system.

Scalar types: ``int``, ``float``, ``bool``.
Aggregates:   ``array<T>`` (1-D) and ``array2d<T>`` (2-D) of scalars.
Internal:     ``unit`` (statement-valued calls), ``str`` (operator-name
              literals passed to builtins), and function types for lambdas.

Types are interned singletons so identity comparison works and the type
checker stays allocation-free on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class Type:
    """Base class; concrete types are the frozen dataclasses below."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        return "type"


@dataclass(frozen=True)
class ScalarType(Type):
    name: str  # "int" | "float" | "bool"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayType(Type):
    elem: ScalarType
    ndim: int  # 1 or 2

    def __str__(self) -> str:
        return f"array<{self.elem}>" if self.ndim == 1 else f"array2d<{self.elem}>"


@dataclass(frozen=True)
class UnitType(Type):
    def __str__(self) -> str:
        return "unit"


@dataclass(frozen=True)
class StrType(Type):
    """Type of string literals used as operator names for builtins."""

    def __str__(self) -> str:
        return "str"


@dataclass(frozen=True)
class FuncType(Type):
    """Type of a lambda: parameter types and result type."""

    params: Tuple[Type, ...]
    result: Type

    def __str__(self) -> str:
        ps = ", ".join(str(p) for p in self.params)
        return f"({ps}) => {self.result}"


# Interned singletons -------------------------------------------------------

INT = ScalarType("int")
FLOAT = ScalarType("float")
BOOL = ScalarType("bool")
UNIT = UnitType()
STR = StrType()

ARRAY_INT = ArrayType(INT, 1)
ARRAY_FLOAT = ArrayType(FLOAT, 1)
ARRAY_BOOL = ArrayType(BOOL, 1)
ARRAY2D_INT = ArrayType(INT, 2)
ARRAY2D_FLOAT = ArrayType(FLOAT, 2)

_BY_NAME: Dict[str, Type] = {
    "int": INT,
    "float": FLOAT,
    "bool": BOOL,
    "array<int>": ARRAY_INT,
    "array<float>": ARRAY_FLOAT,
    "array<bool>": ARRAY_BOOL,
    "array2d<int>": ARRAY2D_INT,
    "array2d<float>": ARRAY2D_FLOAT,
}


def type_from_name(name: str) -> Optional[Type]:
    """Resolve a type spelling (as written in source) to its singleton."""
    return _BY_NAME.get(name)


def array_of(elem: ScalarType, ndim: int = 1) -> ArrayType:
    """The (interned when possible) array type with the given element."""
    key = f"array<{elem}>" if ndim == 1 else f"array2d<{elem}>"
    existing = _BY_NAME.get(key)
    if isinstance(existing, ArrayType):
        return existing
    return ArrayType(elem, ndim)


def is_numeric(t: Type) -> bool:
    return t is INT or t is FLOAT


def unify_numeric(a: Type, b: Type) -> Optional[Type]:
    """Result type of an arithmetic op on ``a`` and ``b``.

    ``int op int -> int``; any mix with float promotes to float; anything
    else is a type error (returns None).
    """
    if a is INT and b is INT:
        return INT
    if (a is INT or a is FLOAT) and (b is INT or b is FLOAT):
        return FLOAT
    return None
