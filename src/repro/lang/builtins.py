"""Builtin function catalog for MiniPar.

Each builtin has a *category* that ties it to an execution model:

* ``core``   — available everywhere (math, allocation, sort, ...)
* ``kokkos`` — Kokkos-style parallel patterns
* ``mpi``    — message passing primitives
* ``gpu``    — SIMT thread indexing / atomics / barriers

The type checker resolves calls through this catalog; the runtimes supply
the implementations.  The harness' "did the model actually use the parallel
programming model" check (paper §7.2) string-matches on these names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import types as T

#: Operator names accepted by reduction/scan builtins.
REDUCE_OPS = ("sum", "prod", "min", "max")


@dataclass(frozen=True)
class BuiltinSig:
    """A builtin's signature.

    ``resolve(arg_types) -> result type`` returns None when the argument
    types are invalid; the type checker turns that into a compile error.
    ``lambda_params`` gives, per argument index, the parameter types a
    lambda argument must accept (or None for a non-lambda argument).
    """

    name: str
    category: str
    resolve: Callable[[Sequence[T.Type]], Optional[T.Type]]
    arity: Tuple[int, ...]  # accepted argument counts
    lambda_params: Tuple[Optional[Tuple[T.Type, ...]], ...] = ()
    str_args: Tuple[int, ...] = ()  # indices that must be operator strings
    doc: str = ""


def _fixed(params: Sequence[T.Type], result: T.Type) -> Callable:
    """Resolver for a fixed signature with int→float promotion."""

    def resolve(args: Sequence[T.Type]) -> Optional[T.Type]:
        if len(args) != len(params):
            return None
        for got, want in zip(args, params):
            if got is want:
                continue
            if want is T.FLOAT and got is T.INT:
                continue
            return None
        return result

    return resolve


def _numeric_binop(args: Sequence[T.Type]) -> Optional[T.Type]:
    if len(args) != 2:
        return None
    return T.unify_numeric(args[0], args[1])


def _numeric_unop(args: Sequence[T.Type]) -> Optional[T.Type]:
    if len(args) != 1 or not T.is_numeric(args[0]):
        return None
    return args[0]


def _float_unop(args: Sequence[T.Type]) -> Optional[T.Type]:
    if len(args) != 1 or not T.is_numeric(args[0]):
        return None
    return T.FLOAT


def _is_num_array(t: T.Type, ndim: int = 1) -> bool:
    return isinstance(t, T.ArrayType) and t.ndim == ndim and t.elem in (T.INT, T.FLOAT)


_REGISTRY: Dict[str, BuiltinSig] = {}


def _register(sig: BuiltinSig) -> None:
    _REGISTRY[sig.name] = sig


def get(name: str) -> Optional[BuiltinSig]:
    """Look up a builtin by name (None if not a builtin)."""
    return _REGISTRY.get(name)


def all_names() -> List[str]:
    return sorted(_REGISTRY)


def names_in_category(category: str) -> List[str]:
    return sorted(n for n, s in _REGISTRY.items() if s.category == category)


# --------------------------------------------------------------------------
# core
# --------------------------------------------------------------------------

def _len_resolve(args):
    if len(args) == 1 and isinstance(args[0], T.ArrayType) and args[0].ndim == 1:
        return T.INT
    return None


def _dim_resolve(args):
    if len(args) == 1 and isinstance(args[0], T.ArrayType) and args[0].ndim == 2:
        return T.INT
    return None


def _copy_resolve(args):
    if len(args) == 1 and isinstance(args[0], T.ArrayType):
        return args[0]
    return None


def _fill_resolve(args):
    if len(args) == 2 and _is_num_array(args[0]):
        if args[0].elem is T.FLOAT and T.is_numeric(args[1]):
            return T.UNIT
        if args[0].elem is T.INT and args[1] is T.INT:
            return T.UNIT
    return None


def _sort_resolve(args):
    if len(args) == 1 and _is_num_array(args[0]):
        return T.UNIT
    return None


def _swap_resolve(args):
    if len(args) == 3 and _is_num_array(args[0]) and args[1] is T.INT and args[2] is T.INT:
        return T.UNIT
    return None


def _select_resolve(args):
    if len(args) == 3 and args[0] is T.BOOL:
        if args[1] is args[2]:
            return args[1]
        return T.unify_numeric(args[1], args[2])
    return None


def _cast_int(args):
    if len(args) == 1 and (T.is_numeric(args[0]) or args[0] is T.BOOL):
        return T.INT
    return None


def _cast_float(args):
    if len(args) == 1 and (T.is_numeric(args[0]) or args[0] is T.BOOL):
        return T.FLOAT
    return None


for _name, _resolve, _arity, _doc in [
    ("len", _len_resolve, (1,), "Number of elements in a 1-D array."),
    ("rows", _dim_resolve, (1,), "Number of rows of a 2-D array."),
    ("cols", _dim_resolve, (1,), "Number of columns of a 2-D array."),
    ("min", _numeric_binop, (2,), "Minimum of two numbers."),
    ("max", _numeric_binop, (2,), "Maximum of two numbers."),
    ("abs", _numeric_unop, (1,), "Absolute value."),
    ("sqrt", _float_unop, (1,), "Square root."),
    ("sin", _float_unop, (1,), "Sine."),
    ("cos", _float_unop, (1,), "Cosine."),
    ("exp", _float_unop, (1,), "Natural exponential."),
    ("log", _float_unop, (1,), "Natural logarithm."),
    ("floor", _float_unop, (1,), "Floor, as a float."),
    ("ceil", _float_unop, (1,), "Ceiling, as a float."),
    ("pow", _fixed((T.FLOAT, T.FLOAT), T.FLOAT), (2,), "x raised to y."),
    ("int", _cast_int, (1,), "Cast to int (truncates floats toward zero)."),
    ("float", _cast_float, (1,), "Cast to float."),
    ("alloc_float", _fixed((T.INT,), T.ARRAY_FLOAT), (1,), "Zeroed float array."),
    ("alloc_int", _fixed((T.INT,), T.ARRAY_INT), (1,), "Zeroed int array."),
    ("alloc2d_float", _fixed((T.INT, T.INT), T.ARRAY2D_FLOAT), (2,),
     "Zeroed 2-D float array."),
    ("alloc2d_int", _fixed((T.INT, T.INT), T.ARRAY2D_INT), (2,),
     "Zeroed 2-D int array."),
    ("copy", _copy_resolve, (1,), "Deep copy of an array."),
    ("fill", _fill_resolve, (2,), "Set every element of an array to a value."),
    ("sort", _sort_resolve, (1,), "In-place ascending sort (like std::sort)."),
    ("swap", _swap_resolve, (3,), "Swap two elements of an array."),
    ("select", _select_resolve, (3,), "Ternary: select(cond, a, b)."),
]:
    _register(BuiltinSig(_name, "core", _resolve, _arity, doc=_doc))


# --------------------------------------------------------------------------
# kokkos
# --------------------------------------------------------------------------

def _pfor_resolve(args):
    if len(args) == 2 and args[0] is T.INT and isinstance(args[1], T.FuncType):
        return T.UNIT
    return None


def _preduce_resolve(args):
    if (
        len(args) == 3
        and args[0] is T.INT
        and args[1] is T.STR
        and isinstance(args[2], T.FuncType)
        and T.is_numeric(args[2].result)
    ):
        return args[2].result
    return None


def _pscan_resolve(args):
    if (
        len(args) == 4
        and args[0] is T.INT
        and args[1] is T.STR
        and isinstance(args[2], T.FuncType)
        and T.is_numeric(args[2].result)
        and _is_num_array(args[3])
    ):
        return T.UNIT
    return None


_register(BuiltinSig(
    "parallel_for", "kokkos", _pfor_resolve, (2,),
    lambda_params=(None, (T.INT,)),
    doc="Kokkos::parallel_for over [0, n): parallel_for(n, (i) => { ... }).",
))
_register(BuiltinSig(
    "parallel_reduce", "kokkos", _preduce_resolve, (3,),
    lambda_params=(None, None, (T.INT,)),
    str_args=(1,),
    doc='Kokkos::parallel_reduce: parallel_reduce(n, "sum", (i) => contrib).',
))
_register(BuiltinSig(
    "parallel_scan_inclusive", "kokkos", _pscan_resolve, (4,),
    lambda_params=(None, None, (T.INT,), None),
    str_args=(1,),
    doc='Inclusive parallel scan of per-index contributions into out.',
))
_register(BuiltinSig(
    "parallel_scan_exclusive", "kokkos", _pscan_resolve, (4,),
    lambda_params=(None, None, (T.INT,), None),
    str_args=(1,),
    doc='Exclusive parallel scan of per-index contributions into out.',
))


# --------------------------------------------------------------------------
# mpi
# --------------------------------------------------------------------------

def _send_resolve(args):
    if len(args) == 3 and args[1] is T.INT and args[2] is T.INT:
        if T.is_numeric(args[0]) or _is_num_array(args[0]):
            return T.UNIT
    return None


def _recv_arr_resolve_float(args):
    if len(args) == 2 and args[0] is T.INT and args[1] is T.INT:
        return T.ARRAY_FLOAT
    return None


def _recv_arr_resolve_int(args):
    if len(args) == 2 and args[0] is T.INT and args[1] is T.INT:
        return T.ARRAY_INT
    return None


def _is_num_array_any(t: T.Type) -> bool:
    return isinstance(t, T.ArrayType) and t.elem in (T.INT, T.FLOAT)


def _bcast_arr_resolve(args):
    if len(args) == 2 and _is_num_array_any(args[0]) and args[1] is T.INT:
        return T.UNIT
    return None


def _reduce_scalar_float(args):
    if len(args) == 3 and T.is_numeric(args[0]) and args[1] is T.STR and args[2] is T.INT:
        return T.FLOAT
    return None


def _reduce_scalar_int(args):
    if len(args) == 3 and args[0] is T.INT and args[1] is T.STR and args[2] is T.INT:
        return T.INT
    return None


def _allreduce_float(args):
    if len(args) == 2 and T.is_numeric(args[0]) and args[1] is T.STR:
        return T.FLOAT
    return None


def _allreduce_int(args):
    if len(args) == 2 and args[0] is T.INT and args[1] is T.STR:
        return T.INT
    return None


def _reduce_array_resolve(args):
    if len(args) == 3 and _is_num_array_any(args[0]) and args[1] is T.STR and args[2] is T.INT:
        return T.UNIT
    return None


def _allreduce_array_resolve(args):
    if len(args) == 2 and _is_num_array_any(args[0]) and args[1] is T.STR:
        return T.UNIT
    return None


def _scatter_resolve(args):
    if len(args) == 2 and _is_num_array(args[0]) and args[1] is T.INT:
        return args[0]
    return None


def _gather_resolve(args):
    if len(args) == 2 and _is_num_array(args[0]) and args[1] is T.INT:
        return args[0]
    return None


def _allgather_resolve(args):
    if len(args) == 1 and _is_num_array(args[0]):
        return args[0]
    return None


def _scan_float(args):
    if len(args) == 2 and T.is_numeric(args[0]) and args[1] is T.STR:
        return T.FLOAT
    return None


def _scan_int(args):
    if len(args) == 2 and args[0] is T.INT and args[1] is T.STR:
        return T.INT
    return None


for _name, _resolve, _arity, _strargs, _doc in [
    ("mpi_rank", _fixed((), T.INT), (0,), (), "This process' rank."),
    ("mpi_size", _fixed((), T.INT), (0,), (), "Number of ranks."),
    ("mpi_send", _send_resolve, (3,), (),
     "Buffered send: mpi_send(value, dest, tag)."),
    ("mpi_recv_float", _fixed((T.INT, T.INT), T.FLOAT), (2,), (),
     "Blocking receive of a float: mpi_recv_float(src, tag)."),
    ("mpi_recv_int", _fixed((T.INT, T.INT), T.INT), (2,), (),
     "Blocking receive of an int."),
    ("mpi_recv_array_float", _recv_arr_resolve_float, (2,), (),
     "Blocking receive of a float array."),
    ("mpi_recv_array_int", _recv_arr_resolve_int, (2,), (),
     "Blocking receive of an int array."),
    ("mpi_bcast_float", _fixed((T.FLOAT, T.INT), T.FLOAT), (2,), (),
     "Broadcast a float from root; returns the root's value on every rank."),
    ("mpi_bcast_int", _fixed((T.INT, T.INT), T.INT), (2,), (),
     "Broadcast an int from root."),
    ("mpi_bcast_array", _bcast_arr_resolve, (2,), (),
     "Broadcast an array from root, in place."),
    ("mpi_reduce_float", _reduce_scalar_float, (3,), (1,),
     'Reduce to root: mpi_reduce_float(v, "sum", root); non-roots get 0.'),
    ("mpi_reduce_int", _reduce_scalar_int, (3,), (1,),
     "Reduce an int to root."),
    ("mpi_allreduce_float", _allreduce_float, (2,), (1,),
     "All-reduce a float."),
    ("mpi_allreduce_int", _allreduce_int, (2,), (1,),
     "All-reduce an int."),
    ("mpi_reduce_array", _reduce_array_resolve, (3,), (1,),
     "Elementwise reduce an array into root's copy, in place."),
    ("mpi_allreduce_array", _allreduce_array_resolve, (2,), (1,),
     "Elementwise all-reduce an array, in place on every rank."),
    ("mpi_scatter_array", _scatter_resolve, (2,), (),
     "Even scatter from root; returns this rank's chunk."),
    ("mpi_gather_array", _gather_resolve, (2,), (),
     "Gather chunks to root; returns full array at root, empty elsewhere."),
    ("mpi_allgather_array", _allgather_resolve, (1,), (),
     "Gather chunks to every rank."),
    ("mpi_scan_float", _scan_float, (2,), (1,),
     "Inclusive prefix reduction across ranks."),
    ("mpi_scan_int", _scan_int, (2,), (1,),
     "Inclusive prefix reduction across ranks (int)."),
    ("mpi_barrier", _fixed((), T.UNIT), (0,), (), "Synchronize all ranks."),
]:
    _register(BuiltinSig(_name, "mpi", _resolve, _arity, str_args=_strargs, doc=_doc))


# --------------------------------------------------------------------------
# gpu
# --------------------------------------------------------------------------

def _atomic_resolve(args):
    if len(args) == 3 and _is_num_array(args[0]) and args[1] is T.INT:
        if args[0].elem is T.FLOAT and T.is_numeric(args[2]):
            return T.UNIT
        if args[0].elem is T.INT and args[2] is T.INT:
            return T.UNIT
    return None


for _name, _resolve, _arity, _doc in [
    ("thread_idx", _fixed((), T.INT), (0,), "Thread index within the block."),
    ("block_idx", _fixed((), T.INT), (0,), "Block index within the grid."),
    ("block_dim", _fixed((), T.INT), (0,), "Threads per block."),
    ("grid_dim", _fixed((), T.INT), (0,), "Blocks in the grid."),
    ("sync_threads", _fixed((), T.UNIT), (0,), "Block-wide barrier."),
]:
    _register(BuiltinSig(_name, "gpu", _resolve, _arity, doc=_doc))

# Atomic updates exist in every ecosystem the paper tests (std::atomic,
# #pragma omp atomic, Kokkos::atomic_add, CUDA/HIP atomicAdd), so they get
# their own category, linkable under every execution model.
for _name, _doc in [
    ("atomic_add", "Atomically a[i] += v."),
    ("atomic_min", "Atomically a[i] = min(a[i], v)."),
    ("atomic_max", "Atomically a[i] = max(a[i], v)."),
]:
    _register(BuiltinSig(_name, "atomic", _atomic_resolve, (3,), doc=_doc))
