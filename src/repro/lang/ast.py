"""Abstract syntax tree for MiniPar.

Nodes are small slotted dataclasses.  Every node carries a source position
(line, col) so the type checker and runtime can report precise locations,
and so AST-level bug injection can be mapped back to source text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .types import Type


@dataclass(slots=True)
class Node:
    line: int = field(default=0, kw_only=True)
    col: int = field(default=0, kw_only=True)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(slots=True)
class Expr(Node):
    pass


@dataclass(slots=True)
class IntLit(Expr):
    value: int = 0


@dataclass(slots=True)
class FloatLit(Expr):
    value: float = 0.0


@dataclass(slots=True)
class BoolLit(Expr):
    value: bool = False


@dataclass(slots=True)
class StrLit(Expr):
    """String literal; only valid as an operator name argument to builtins
    such as ``parallel_reduce(n, "sum", ...)``."""

    value: str = ""


@dataclass(slots=True)
class Name(Expr):
    ident: str = ""


@dataclass(slots=True)
class Unary(Expr):
    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass(slots=True)
class Binary(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass(slots=True)
class Index(Expr):
    """1-D ``a[i]`` or 2-D ``m[i, j]`` array access."""

    base: Expr = None  # type: ignore[assignment]
    indices: Tuple[Expr, ...] = ()


@dataclass(slots=True)
class Call(Expr):
    """Call of a user kernel or a builtin (``func`` is a bare name)."""

    func: str = ""
    args: Tuple[Expr, ...] = ()


@dataclass(slots=True)
class Lambda(Expr):
    """``(i) => expr`` or ``(i) => { stmts }``; only valid as a builtin
    argument (Kokkos-style patterns)."""

    params: Tuple[str, ...] = ()
    body_expr: Optional[Expr] = None
    body_block: Optional["Block"] = None


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass(slots=True)
class Stmt(Node):
    pass


@dataclass(slots=True)
class Block(Stmt):
    stmts: Tuple[Stmt, ...] = ()


@dataclass(slots=True)
class Let(Stmt):
    name: str = ""
    declared: Optional[Type] = None
    init: Expr = None  # type: ignore[assignment]


@dataclass(slots=True)
class Assign(Stmt):
    """``target op= value`` where target is a Name or Index and op is one of
    ``=``, ``+=``, ``-=``, ``*=``, ``/=``."""

    target: Expr = None  # type: ignore[assignment]
    op: str = "="
    value: Expr = None  # type: ignore[assignment]


@dataclass(slots=True)
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Block = None  # type: ignore[assignment]
    orelse: Optional[Stmt] = None  # Block or nested If


@dataclass(slots=True)
class For(Stmt):
    """``for (i in lo..hi step s) { ... }``; iterates the half-open range."""

    var: str = ""
    lo: Expr = None  # type: ignore[assignment]
    hi: Expr = None  # type: ignore[assignment]
    step: Optional[Expr] = None
    body: Block = None  # type: ignore[assignment]


@dataclass(slots=True)
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Block = None  # type: ignore[assignment]


@dataclass(slots=True)
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass(slots=True)
class Break(Stmt):
    pass


@dataclass(slots=True)
class Continue(Stmt):
    pass


@dataclass(slots=True)
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass(slots=True)
class OmpClause(Node):
    """A single OpenMP clause: ``reduction(op: var)`` or ``schedule(kind)``."""

    kind: str = ""            # "reduction" | "schedule" | "num_threads"
    op: str = ""              # reduction operator: + * min max
    var: str = ""             # reduction variable
    schedule: str = ""        # "static" | "dynamic" | "guided"
    value: Optional[Expr] = None  # num_threads expression


@dataclass(slots=True)
class OmpParallelFor(Stmt):
    """``pragma omp parallel for [clauses]`` applied to a for loop."""

    clauses: Tuple[OmpClause, ...] = ()
    loop: For = None  # type: ignore[assignment]


@dataclass(slots=True)
class OmpCritical(Stmt):
    """``pragma omp critical`` applied to a block — serialized execution."""

    body: Block = None  # type: ignore[assignment]


@dataclass(slots=True)
class OmpAtomic(Stmt):
    """``pragma omp atomic`` applied to a single update assignment."""

    update: Assign = None  # type: ignore[assignment]


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


@dataclass(slots=True)
class Param(Node):
    name: str = ""
    type: Type = None  # type: ignore[assignment]


@dataclass(slots=True)
class Kernel(Node):
    """A top-level function.  The entry kernel is named by the prompt."""

    name: str = ""
    params: Tuple[Param, ...] = ()
    ret: Optional[Type] = None
    body: Block = None  # type: ignore[assignment]


@dataclass(slots=True)
class Program(Node):
    kernels: Tuple[Kernel, ...] = ()

    def kernel(self, name: str) -> Kernel:
        """Look up a kernel by name; raises KeyError if absent."""
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(name)


def walk(node: Node):
    """Yield ``node`` and all AST descendants in preorder."""
    stack = [node]
    while stack:
        n = stack.pop()
        yield n
        for slot in n.__dataclass_fields__:
            v = getattr(n, slot)
            if isinstance(v, Node):
                stack.append(v)
            elif isinstance(v, tuple):
                for item in v:
                    if isinstance(item, Node):
                        stack.append(item)
