"""Token definitions for the MiniPar lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokKind(Enum):
    """The kinds of tokens produced by the lexer."""

    # literals / identifiers
    INT = auto()
    FLOAT = auto()
    STRING = auto()
    NAME = auto()

    # punctuation
    LPAREN = auto()
    RPAREN = auto()
    LBRACE = auto()
    RBRACE = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    COMMA = auto()
    SEMI = auto()
    COLON = auto()
    DOTDOT = auto()
    ARROW = auto()       # ->
    FATARROW = auto()    # =>

    # operators
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    LT = auto()
    LE = auto()
    GT = auto()
    GE = auto()
    EQEQ = auto()
    NEQ = auto()
    ANDAND = auto()
    OROR = auto()
    NOT = auto()
    ASSIGN = auto()
    PLUSEQ = auto()
    MINUSEQ = auto()
    STAREQ = auto()
    SLASHEQ = auto()

    EOF = auto()


#: Reserved words.  ``pragma``/``omp`` and clause names are *not* reserved:
#: they are contextual keywords recognised by the parser, matching how real
#: compilers treat ``#pragma omp`` text.
KEYWORDS = frozenset(
    {
        "kernel",
        "let",
        "if",
        "else",
        "for",
        "while",
        "in",
        "step",
        "return",
        "break",
        "continue",
        "true",
        "false",
        "pragma",
    }
)

#: Two-character operator spellings, checked before single characters.
TWO_CHAR = {
    "..": TokKind.DOTDOT,
    "->": TokKind.ARROW,
    "=>": TokKind.FATARROW,
    "<=": TokKind.LE,
    ">=": TokKind.GE,
    "==": TokKind.EQEQ,
    "!=": TokKind.NEQ,
    "&&": TokKind.ANDAND,
    "||": TokKind.OROR,
    "+=": TokKind.PLUSEQ,
    "-=": TokKind.MINUSEQ,
    "*=": TokKind.STAREQ,
    "/=": TokKind.SLASHEQ,
}

ONE_CHAR = {
    "(": TokKind.LPAREN,
    ")": TokKind.RPAREN,
    "{": TokKind.LBRACE,
    "}": TokKind.RBRACE,
    "[": TokKind.LBRACKET,
    "]": TokKind.RBRACKET,
    ",": TokKind.COMMA,
    ";": TokKind.SEMI,
    ":": TokKind.COLON,
    "+": TokKind.PLUS,
    "-": TokKind.MINUS,
    "*": TokKind.STAR,
    "/": TokKind.SLASH,
    "%": TokKind.PERCENT,
    "<": TokKind.LT,
    ">": TokKind.GT,
    "=": TokKind.ASSIGN,
    "!": TokKind.NOT,
}


@dataclass(frozen=True)
class Token:
    """A single lexed token with its source position (1-based)."""

    kind: TokKind
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.col})"
