"""Error types for the MiniPar language front end.

The harness distinguishes *compile-time* failures (lexing, parsing, type
checking) from *runtime* failures (wrong answer, race, deadlock, timeout).
All compile-time failures derive from :class:`CompileError` so the harness
can record a single ``build failed`` status, mirroring how the paper's
harness records the compile status of generated C++.
"""

from __future__ import annotations


class MiniParError(Exception):
    """Base class for all MiniPar errors."""


class CompileError(MiniParError):
    """A failure while turning source text into an executable program."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.message = message
        self.line = line
        self.col = col
        super().__init__(self.__str__())

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.line:
            return f"{self.line}:{self.col}: {self.message}"
        return self.message


class LexError(CompileError):
    """An invalid character or malformed literal in the source text."""


class ParseError(CompileError):
    """The token stream does not match the MiniPar grammar."""


class TypeError_(CompileError):
    """A type error found by the static checker.

    Named with a trailing underscore to avoid shadowing the Python builtin.
    """


class RuntimeFailure(MiniParError):
    """Base class for failures raised while executing a program."""


class TrapError(RuntimeFailure):
    """A runtime trap: out-of-bounds index, division by zero, bad cast."""


class FuelExhausted(RuntimeFailure):
    """The interpreter ran out of fuel (models the harness' 3-minute cap)."""


class MemoryExhausted(RuntimeFailure):
    """An allocation exceeded the execution context's memory budget
    (models a node OOM-killing the evaluation process)."""


class SimTimeLimitExceeded(RuntimeFailure):
    """Simulated execution time exceeded the harness time limit."""


class DataRaceError(RuntimeFailure):
    """The shared-memory runtime detected a data race in a parallel loop."""

    def __init__(self, message: str, location: str = ""):
        self.location = location
        super().__init__(message)


class DeadlockError(RuntimeFailure):
    """The MPI runtime detected that all ranks are blocked."""


class MPIUsageError(RuntimeFailure):
    """An MPI primitive was misused (bad rank, mismatched collective...)."""


class GPUFault(RuntimeFailure):
    """A GPU-side fault (e.g. out-of-range atomic, bad launch config)."""
