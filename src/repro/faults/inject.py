"""The fault injector: the runtime half of ``repro.faults``.

Instrumented code asks one question — ``inject.fire(point, key)`` — at each
named injection point.  The answer (a :class:`FaultRule` or ``None``) is a
pure function of the installed plan and a deterministic occurrence counter,
never of wall-clock time, thread arrival order, or randomness:

* Counters are keyed ``(point, scoped key)`` and advance by one per fire,
  so "the 3rd send on channel 0->1" means the same thing on every run.
* Keys are namespaced by the active :meth:`FaultInjector.scope` — the
  harness opens one scope per ``evaluate_sample`` call (named after the
  prompt and source hash, *not* the attempt), so a retried sample sees
  fresh occurrence indices past the ones its first attempt consumed, and
  a serial run and a scheduled run count identically.

The hot path is guarded twice: callers check ``if inject.ACTIVE is not
None`` before calling (one global load when no injector is installed),
and :meth:`fire` returns before taking the lock when the point has no
rules.  A fault-free plan therefore leaves the pipeline byte-identical —
the second chaos invariant.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .plan import FaultPlan, FaultRule

#: The process-global injector, or None.  Callers must guard every
#: ``fire()`` with ``if inject.ACTIVE is not None`` so the uninstalled
#: fast path costs a single module-attribute load.
ACTIVE: Optional["FaultInjector"] = None


class FaultInjected(Exception):
    """Raised by instrumented code when a rule asks for a hard failure.

    ``transient`` distinguishes faults the runner should retry (infra
    flake, OOM on a shared node) from ones it should not.  The class
    attribute ``injected`` lets classification code recognise injected
    faults without importing this module.
    """

    injected = True

    def __init__(self, point: str, detail: str = "", transient: bool = True):
        super().__init__(detail or f"injected fault at {point}")
        self.point = point
        self.transient = transient


@dataclass(frozen=True)
class FaultEvent:
    """One decision the injector made (fired or explicitly declined
    because the occurrence index did not match)."""

    point: str
    key: str
    index: int
    action: str
    fired: bool

    def line(self) -> str:
        mark = "FIRE" if self.fired else "skip"
        return f"{mark} {self.point} key={self.key} n={self.index} " \
               f"action={self.action}"


class _Scope:
    __slots__ = ("name", "counters", "fired")

    def __init__(self, name: str):
        self.name = name
        self.counters: Dict[Tuple[str, str], int] = {}
        self.fired = 0


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at named injection points.

    Thread-safe: MPI rank threads and GPU launch loops fire concurrently.
    The event log records every decision at a point that *has rules*, in
    a canonical order (see :meth:`canonical_log`), so two runs can be
    compared without being sensitive to thread interleaving.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rules = plan.by_point()
        self._lock = threading.Lock()
        self._root = _Scope("")
        self._scopes = threading.local()
        self._named_scopes: Dict[str, _Scope] = {}
        self.events: List[FaultEvent] = []

    # -- scoping -------------------------------------------------------------

    def _scope(self) -> _Scope:
        return getattr(self._scopes, "scope", None) or self._root

    @contextmanager
    def scope(self, name: str):
        """Namespace occurrence counters under ``name`` for this thread.

        The harness opens one scope per evaluated sample so occurrence
        indices mean "the Nth event *while evaluating this sample*".
        Scopes do not reset across re-entry with the same name within a
        single injector — a retried attempt continues the count, which is
        what lets a transient single-occurrence fault succeed on retry.
        """
        prev = getattr(self._scopes, "scope", None)
        with self._lock:
            sc = self._named_scopes.get(name)
            if sc is None:
                sc = self._named_scopes[name] = _Scope(name)
        self._scopes.scope = sc
        try:
            yield sc
        finally:
            self._scopes.scope = prev

    # -- the injection point API ---------------------------------------------

    def fire(self, point: str, key: str = "") -> Optional[FaultRule]:
        """Advance the ``(point, key)`` occurrence counter and return the
        first matching rule, or None.  Counters advance only for points
        that have rules, so an installed-but-irrelevant injector never
        perturbs behaviour."""
        rules = self._rules.get(point)
        if not rules:
            return None
        scope = self._scope()
        qualified = f"{scope.name}|{key}" if scope.name else key
        ckey = (point, key)
        with self._lock:
            index = scope.counters.get(ckey, 0)
            scope.counters[ckey] = index + 1
            hit = None
            for rule in rules:
                if rule.match and rule.match not in qualified:
                    continue
                if rule.occurrences is not None \
                        and index not in rule.occurrences:
                    continue
                hit = rule
                break
            action = hit.action if hit is not None else rules[0].action
            self.events.append(FaultEvent(point=point, key=qualified,
                                          index=index, action=action,
                                          fired=hit is not None))
            if hit is not None:
                scope.fired += 1
        return hit

    def scope_fired(self) -> int:
        """Faults fired so far in this thread's active scope — lets the
        runner detect whether a pipeline phase was fault-perturbed."""
        return self._scope().fired

    # -- introspection -------------------------------------------------------

    def fired_events(self) -> List[FaultEvent]:
        with self._lock:
            return [e for e in self.events if e.fired]

    def canonical_log(self) -> List[str]:
        """The event stream in a canonical order: sorted by (point, key,
        index).  Occurrence counters are per-(point, key), so this order
        is invariant under thread interleaving — the form the
        same-seed-same-stream chaos invariant compares."""
        with self._lock:
            events = sorted(self.events,
                            key=lambda e: (e.point, e.key, e.index))
        return [e.line() for e in events]


# -- install / uninstall ---------------------------------------------------------


def install(plan: FaultPlan) -> FaultInjector:
    """Install a process-global injector for ``plan`` and return it.
    Nested installs are a usage error — uninstall first."""
    global ACTIVE
    if ACTIVE is not None:
        raise RuntimeError("a FaultInjector is already installed")
    ACTIVE = FaultInjector(plan)
    return ACTIVE


def uninstall() -> None:
    global ACTIVE
    ACTIVE = None


def installed() -> Optional[FaultInjector]:
    return ACTIVE


@contextmanager
def injector(plan: FaultPlan):
    """``with injector(plan) as inj:`` — install for the duration."""
    inj = install(plan)
    try:
        yield inj
    finally:
        uninstall()


__all__ = ["ACTIVE", "FaultInjected", "FaultEvent", "FaultInjector",
           "install", "uninstall", "installed", "injector"]
