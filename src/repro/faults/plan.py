"""Fault plans: seeded, declarative schedules of what to break and when.

A :class:`FaultPlan` is a tuple of :class:`FaultRule`\\ s.  Each rule names
one *injection point* — a place in the runtimes, the scheduler, or the
harness that consults the installed :class:`~repro.faults.inject.FaultInjector`
— and says which *occurrences* of which *sites* should fail, and how.

Determinism is the whole design: a rule never rolls dice at fire time.
Randomness only enters when a plan is *generated* (:meth:`FaultPlan.from_seed`
draws rules with ``random.Random(seed)``), so the same seed always yields
the same plan, and the same plan always produces the same fault schedule
for the same program — the property the chaos invariants assert.

The registry below is the single source of truth for injection-point
names; rules naming an unknown point or action are rejected at plan
construction, not discovered as silent no-ops mid-run.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

#: injection-point registry: point name -> (layer, valid actions, description)
INJECTION_POINTS: Dict[str, Tuple[str, Tuple[str, ...], str]] = {
    "runtime.mpi.msg": (
        "runtime", ("drop", "dup", "reorder"),
        "perturb one point-to-point MPI message (lost, duplicated, or "
        "delivered ahead of earlier traffic on the same channel)"),
    "runtime.mpi.stall": (
        "runtime", ("stall",),
        "wedge one rank thread before it starts executing (param: seconds); "
        "exercises the host watchdog in run_mpi"),
    "runtime.omp.stall": (
        "runtime", ("stall",),
        "wedge one thread of an OpenMP team at the implicit barrier for "
        "param simulated seconds (deterministic timing perturbation)"),
    "runtime.gpu.abort": (
        "runtime", ("abort",),
        "abort a GPU kernel launch before any thread runs"),
    "runtime.mem.budget": (
        "runtime", ("oom",),
        "give one ExecCtx a tiny memory budget (param: bytes, default 64) "
        "so the next alloc_* builtin simulates a node OOM"),
    "harness.flake": (
        "harness", ("raise",),
        "raise a transient infrastructure fault at the start of one "
        "evaluate_sample attempt"),
    "harness.timing": (
        "harness", ("fault",),
        "fail the timing sweep of a correct sample (the graceful-"
        "degradation path: the sample becomes a 'degraded' record)"),
    "sched.worker.kill": (
        "sched", ("kill",),
        "hard-kill the worker process (os._exit) before it executes a "
        "task; keys look like '<task_id>#a<attempt>'"),
    "sched.result.corrupt": (
        "sched", ("corrupt",),
        "replace a worker's result payload with garbage on the parent "
        "side of the result queue"),
    "sched.journal.torn_write": (
        "sched", ("torn",),
        "write only a prefix of one journal line (param: fraction kept, "
        "default 0.5) and then crash the run"),
    "sched.cache.truncate": (
        "sched", ("truncate",),
        "truncate a sample-cache entry on write"),
    "sched.cache.bitflip": (
        "sched", ("bitflip",),
        "flip one byte of a sample-cache entry on write"),
    "serve.shard.die": (
        "serve", ("abort",),
        "abort one service shard's pool loop right after a task finishes "
        "(the journal already holds it — journal-then-notify); the shard "
        "runner must recover by resuming from its per-shard journal; "
        "keys look like 'shard<N>'"),
    "guard.process.kill": (
        "guard", ("kill",),
        "SIGKILL the whole scheduler process at one event boundary (the "
        "occurrence index is the boundary index); the supervisor "
        "(repro.guard.supervisor) must resume the run to a byte-identical "
        "digest"),
    "guard.disk.enospc": (
        "guard", ("enospc",),
        "simulate ENOSPC on one sample-cache snapshot write; the cache "
        "must degrade to a future miss (recompute) instead of corrupting "
        "or crashing the run"),
    "guard.hedge.lose": (
        "guard", ("lose",),
        "discard the first-arriving result of a hedged task while its "
        "duplicate is still in flight, forcing the duplicate to win — "
        "proves first-writer-wins arbitration is content-deterministic"),
}

#: layer name -> points, for layer-filtered plan generation
LAYERS: Dict[str, Tuple[str, ...]] = {}
for _name, (_layer, _, _) in INJECTION_POINTS.items():
    LAYERS.setdefault(_layer, ())
    LAYERS[_layer] = LAYERS[_layer] + (_name,)


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: *where* (point + key match), *when*
    (occurrence indices), and *what* (action + parameter).

    ``match`` is a substring test against the site key (scope-qualified);
    the empty string matches every site.  ``occurrences`` lists which
    per-``(point, key)`` occurrence indices fire; ``None`` means every
    occurrence.  ``param`` is action-specific (seconds to stall, bytes of
    memory budget, fraction of a journal line to keep).
    """

    point: str
    action: str
    match: str = ""
    occurrences: Optional[Tuple[int, ...]] = (0,)
    param: float = 0.0

    def __post_init__(self):
        info = INJECTION_POINTS.get(self.point)
        if info is None:
            raise ValueError(f"unknown injection point {self.point!r}; "
                             f"known: {sorted(INJECTION_POINTS)}")
        if self.action not in info[1]:
            raise ValueError(
                f"invalid action {self.action!r} for {self.point!r}; "
                f"valid: {info[1]}")
        if self.occurrences is not None:
            object.__setattr__(self, "occurrences",
                               tuple(int(o) for o in self.occurrences))

    def to_dict(self) -> Dict[str, object]:
        return {"point": self.point, "action": self.action,
                "match": self.match,
                "occurrences": (list(self.occurrences)
                                if self.occurrences is not None else None),
                "param": self.param}

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "FaultRule":
        occ = raw.get("occurrences", (0,))
        return cls(point=str(raw["point"]), action=str(raw["action"]),
                   match=str(raw.get("match", "")),
                   occurrences=tuple(occ) if occ is not None else None,
                   param=float(raw.get("param", 0.0)))


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault rules, optionally tagged with the
    seed that generated it (0 for hand-written plans)."""

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))

    def by_point(self) -> Dict[str, Tuple[FaultRule, ...]]:
        out: Dict[str, Tuple[FaultRule, ...]] = {}
        for rule in self.rules:
            out[rule.point] = out.get(rule.point, ()) + (rule,)
        return out

    def restricted(self, layers: Iterable[str]) -> "FaultPlan":
        """The sub-plan touching only the given layers."""
        keep = {p for layer in layers for p in LAYERS.get(layer, ())}
        return FaultPlan(tuple(r for r in self.rules if r.point in keep),
                         seed=self.seed)

    # -- persistence ---------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps({"seed": self.seed,
                           "rules": [r.to_dict() for r in self.rules]},
                          indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        raw = json.loads(text)
        return cls(seed=int(raw.get("seed", 0)),
                   rules=tuple(FaultRule.from_dict(r)
                               for r in raw.get("rules", [])))

    # -- seeded generation ---------------------------------------------------

    @classmethod
    def from_seed(cls, seed: int, layers: Sequence[str] = ("runtime",
                                                           "harness",
                                                           "sched"),
                  rules_per_layer: int = 2) -> "FaultPlan":
        """Draw a deterministic plan: ``rules_per_layer`` rules from each
        requested layer, with occurrence indices biased to early hits so
        short runs still see faults."""
        rng = random.Random(seed)
        rules = []
        for layer in layers:
            points = LAYERS.get(layer)
            if not points:
                raise ValueError(f"unknown fault layer {layer!r}; "
                                 f"known: {sorted(LAYERS)}")
            for _ in range(rules_per_layer):
                point = rng.choice(points)
                actions = INJECTION_POINTS[point][1]
                action = rng.choice(actions)
                occurrence = rng.randrange(0, 3)
                rules.append(FaultRule(
                    point=point, action=action,
                    occurrences=(occurrence,),
                    param=_default_param(point, action)))
        return cls(tuple(rules), seed=seed)


def _default_param(point: str, action: str) -> float:
    if point == "runtime.mpi.stall":
        return 2.0
    if point == "runtime.mem.budget":
        return 64.0
    if point == "sched.journal.torn_write":
        return 0.5
    return 0.0


#: field kept for introspection/tests
__all__ = ["FaultPlan", "FaultRule", "INJECTION_POINTS", "LAYERS"]
