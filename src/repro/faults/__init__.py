"""repro.faults — deterministic, seeded fault injection for the pipeline.

Three pieces:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan`/:class:`FaultRule`
  schedules and the injection-point registry.
* :mod:`repro.faults.inject` — the process-global :class:`FaultInjector`
  consulted at named points in the runtimes, scheduler, and harness.
* :mod:`repro.faults.chaos` — the invariant suite behind ``repro chaos``
  (imported lazily: it depends on the harness, which depends on this
  package).

See ``docs/faults.md`` for the taxonomy and the chaos invariants.
"""

from .inject import (FaultEvent, FaultInjected, FaultInjector, injector,
                     install, installed, uninstall)
from .plan import INJECTION_POINTS, LAYERS, FaultPlan, FaultRule

__all__ = [
    "FaultPlan", "FaultRule", "INJECTION_POINTS", "LAYERS",
    "FaultInjector", "FaultInjected", "FaultEvent",
    "install", "uninstall", "installed", "injector",
]
