"""Chaos invariants: the properties that make fault injection *safe*.

An injection engine is only trustworthy if it is (a) deterministic —
the same seed must replay the same faults, or a chaos failure cannot be
debugged; (b) transparent — installing the injector with nothing to
inject must not perturb a single byte of output, or every fault-free run
pays an integrity tax; and (c) survivable — the resilience machinery it
exists to exercise must actually recover.  This module states those
properties as executable checks over a small fixed benchmark slice
(transform x {serial, openmp}, two samples of one simulated LLM):

1. **event-determinism** — evaluating twice under ``FaultPlan.from_seed``
   yields an identical canonical event stream *and* identical
   ``EvalRun`` JSON.
2. **injector-transparency** — a fault-free plan with the injector
   installed produces an ``EvalRun`` byte-identical to no injector at
   all, and records zero decision events (counters only advance for
   points with rules).
3. **sched-resilience** — killing every task's first worker attempt and
   corrupting every task's first result still converges, via the pool's
   retry budget, to the fault-free run.
4. **kill-resume** — for a journaled run, truncating the journal after
   *every* record index (a kill between any two commits) and resuming
   reproduces the fault-free metrics exactly.
5. **profile-determinism** — cost-decomposed profiling (``repro.prof``)
   composes with injection: the same seed yields byte-identical
   *profiled* ``EvalRun`` JSON, and turning profiling on never perturbs
   the statuses or times of the run it decorates.
6. **serve-resilience** — the evaluation service (``repro.serve``)
   survives a shard worker pool dying mid-request (``serve.shard.die``)
   composed with worker kills: every shard resumes from its per-shard
   journal and the served result stays byte-identical to a direct
   ``evaluate_model`` call.
7. **vectorize-resilience** — the tier-2 numpy executor
   (``repro.runtime.vectorize``) composes with injection: under the
   same fault plan, runs with the tier on and off produce byte-identical
   ``EvalRun`` JSON — faults land at the same points regardless of which
   tier executes the loops between them.
8. **guard-resilience** — the self-healing supervision layer
   (``repro.guard``) preserves exactness: an aggressive straggler-hedging
   policy (with injected first-arrival losses) reproduces the serial run
   byte for byte; a task that kills every worker it touches lands in the
   ``quarantined`` lane exactly once, deterministically across runs; and
   SIGKILLing the whole scheduler process at event boundaries
   (``guard.process.kill``) resumes to the reference digest.
9. **dispatch-resilience** — cost-predictive dispatch
   (``repro.sched.predict``) is throughput policy only: every dispatch
   policy (``lpt``/``fifo``/``random``) reproduces the serial reference
   byte for byte, and a warm duration ledger composed with shard deaths
   and worker kills inside the service (LPT shard balancing + the
   work-stealing board under ``serve.shard.die``) still serves the
   byte-identical run.

``repro chaos`` runs all nine from the command line; the CI ``chaos``
and ``chaos-guard`` jobs and ``tests/faults/test_chaos.py`` pin them as
regressions.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from ..bench.registry import PCGBench
from ..harness.evaluate import EvalRun, evaluate_model
from ..models import load_model
from .inject import injector
from .plan import FaultPlan, FaultRule

#: the fixed slice every chaos check runs on: small enough for CI, rich
#: enough to cross two runtimes and exercise source-level task dedup
CHAOS_PTYPES = ("transform",)
CHAOS_EXEC = ("serial", "openmp")
CHAOS_LLM = "GPT-3.5"
CHAOS_SAMPLES = 2
CHAOS_SEED = 7


@dataclass
class ChaosReport:
    """Outcome of one invariant check."""

    invariant: str
    passed: bool
    detail: str = ""

    def line(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.invariant}: {self.detail}"


def chaos_slice() -> Tuple[object, PCGBench]:
    """(llm, bench) for the fixed chaos slice."""
    bench = PCGBench(problem_types=list(CHAOS_PTYPES),
                     models=list(CHAOS_EXEC))
    return load_model(CHAOS_LLM), bench


def _eval(llm, bench, with_timing: bool = False, **kw) -> EvalRun:
    return evaluate_model(llm, bench, num_samples=CHAOS_SAMPLES,
                          temperature=0.2, with_timing=with_timing,
                          seed=CHAOS_SEED, **kw)


def check_event_determinism(seed: int = 11) -> ChaosReport:
    """Same seed => identical event stream and identical EvalRun."""
    llm, bench = chaos_slice()
    plan = FaultPlan.from_seed(seed).restricted(("runtime", "harness"))
    logs: List[str] = []
    payloads: List[str] = []
    inj = None
    for _ in range(2):
        with injector(plan) as inj:
            run = _eval(llm, bench, with_timing=True)
        logs.append(inj.canonical_log())
        payloads.append(run.to_json())
    if logs[0] != logs[1]:
        return ChaosReport("event-determinism", False,
                           f"seed {seed} produced two different event "
                           "streams")
    if payloads[0] != payloads[1]:
        return ChaosReport("event-determinism", False,
                           f"seed {seed} produced two different EvalRuns")
    return ChaosReport(
        "event-determinism", True,
        f"seed {seed}: {len(inj.events)} decisions "
        f"({len(inj.fired_events())} fired) replayed identically")


def check_injector_transparency() -> ChaosReport:
    """Fault-free plan installed => byte-identical EvalRun, zero events."""
    llm, bench = chaos_slice()
    bare = _eval(llm, bench, with_timing=True)
    with injector(FaultPlan(rules=(), seed=0)) as inj:
        shadowed = _eval(llm, bench, with_timing=True)
    if shadowed.to_json() != bare.to_json():
        return ChaosReport("injector-transparency", False,
                           "installing a fault-free injector changed the "
                           "EvalRun")
    if inj.events:
        return ChaosReport("injector-transparency", False,
                           f"a fault-free plan recorded {len(inj.events)} "
                           "decision events; the fast path leaked")
    return ChaosReport("injector-transparency", True,
                       "fault-free run is byte-identical with the injector "
                       "installed and recorded zero events")


def check_profile_determinism(seed: int = 11) -> ChaosReport:
    """Profiling composes with injection: replayable and non-perturbing.

    Same seed twice with ``profile=True`` must yield byte-identical
    profiled ``EvalRun`` JSON (profiles replay with the faults), and the
    profiled run stripped of its ``profile`` fields must equal the
    unprofiled run under the same plan (profiling observes the
    simulation, it never changes it — even mid-fault)."""
    import json

    llm, bench = chaos_slice()
    plan = FaultPlan.from_seed(seed).restricted(("runtime", "harness"))
    payloads: List[str] = []
    for _ in range(2):
        with injector(plan):
            run = _eval(llm, bench, with_timing=True, profile=True)
        payloads.append(run.to_json())
    if payloads[0] != payloads[1]:
        return ChaosReport("profile-determinism", False,
                           f"seed {seed} produced two different profiled "
                           "EvalRuns")
    with injector(plan):
        plain = _eval(llm, bench, with_timing=True)

    def strip(payload: str) -> dict:
        doc = json.loads(payload)
        for rec in doc.get("prompts", {}).values():
            for sample in rec.get("samples", ()):
                sample.pop("profile", None)
        return doc

    if strip(payloads[0]) != strip(plain.to_json()):
        return ChaosReport("profile-determinism", False,
                           "enabling profiling perturbed statuses or times "
                           "under the injected plan")
    n_profiles = sum(
        1 for rec in plain.prompts.values() for _ in rec.samples)
    return ChaosReport(
        "profile-determinism", True,
        f"seed {seed}: profiled run replayed identically and matches the "
        f"unprofiled run across {n_profiles} samples")


def check_sched_resilience(jobs: int = 4) -> ChaosReport:
    """Worker kills + result corruption still converge to the clean run.

    Every task's first worker attempt is killed (``#a0``) and every
    task's first delivered result is corrupted; the pool's retry budget
    (kill -> retry 1, corrupt -> retry 2) must absorb both and produce
    the fault-free ``EvalRun``.  The slice's task count stays under the
    worker crash budget (``4*jobs + 4``).
    """
    llm, bench = chaos_slice()
    reference = _eval(llm, bench, jobs=1)
    plan = FaultPlan(rules=(
        FaultRule(point="sched.worker.kill", action="kill", match="#a0"),
        FaultRule(point="sched.result.corrupt", action="corrupt"),
    ), seed=0)
    with injector(plan):
        chaotic = _eval(llm, bench, jobs=jobs)
    if chaotic.to_json() != reference.to_json():
        return ChaosReport("sched-resilience", False,
                           "run under worker kills + result corruption "
                           "diverged from the fault-free run")
    return ChaosReport("sched-resilience", True,
                       "every first attempt killed and every first result "
                       "corrupted; retries converged to the clean run")


def check_kill_resume(workdir: Union[str, Path],
                      jobs: int = 2,
                      log: Optional[Callable[[str], None]] = None
                      ) -> ChaosReport:
    """Kill at every journal index => resume reproduces the clean run.

    A "kill after the i-th committed record" is simulated by truncating
    a reference journal to its first i lines (records are committed iff
    newline-terminated; mid-record kills are covered byte-by-byte in
    ``tests/sched/test_journal.py``) and resuming from the truncation.
    """
    llm, bench = chaos_slice()
    workdir = Path(workdir)
    ref_journal = workdir / "reference.jsonl"
    reference = _eval(llm, bench, jobs=jobs, journal=str(ref_journal))
    lines = ref_journal.read_text().splitlines(keepends=True)
    mismatches: List[int] = []
    for cut in range(len(lines)):
        if log is not None:
            log(f"  kill point {cut + 1}/{len(lines)}")
        path = workdir / f"kill_at_{cut}.jsonl"
        path.write_text("".join(lines[:cut]))
        resumed = _eval(llm, bench, jobs=jobs, journal=str(path),
                        resume=True)
        if resumed.to_json() != reference.to_json():
            mismatches.append(cut)
    if mismatches:
        return ChaosReport("kill-resume", False,
                           "resume diverged after kills at journal "
                           f"indices {mismatches}")
    return ChaosReport("kill-resume", True,
                       f"{len(lines)} kill points (header + "
                       f"{len(lines) - 1} records), every resume "
                       "reproduced the reference run")


def check_serve_resilience(workdir: Union[str, Path],
                           jobs: int = 2) -> ChaosReport:
    """Shard deaths + worker kills inside the service still serve the
    byte-identical run.

    One request is pushed through an in-process :class:`EvalService`
    under a plan that (a) hard-kills every task's first worker attempt
    and (b) aborts each shard's pool loop right after its first task
    finishes (``serve.shard.die``, once per shard).  The shard runners
    must resume from their per-shard journals, and the served
    ``EvalRun`` must match a direct fault-free ``evaluate_model`` call
    byte for byte — the differential guarantee under maximum
    infrastructure hostility.
    """
    import asyncio

    from ..serve import EvalRequest, EvalService
    from ..serve.client import ServiceClient

    llm, bench = chaos_slice()
    reference = _eval(llm, bench)
    plan = FaultPlan(rules=(
        FaultRule(point="sched.worker.kill", action="kill", match="#a0"),
        FaultRule(point="serve.shard.die", action="abort",
                  occurrences=(0,)),
    ), seed=0)
    request = EvalRequest(model=CHAOS_LLM, ptypes=CHAOS_PTYPES,
                          exec_models=CHAOS_EXEC, samples=CHAOS_SAMPLES,
                          seed=CHAOS_SEED)

    async def _serve_once() -> Tuple[EvalRun, dict]:
        service = EvalService(Path(workdir), shards=2, jobs_per_shard=jobs,
                              sample_cache=False)
        await service.start()
        try:
            run = await ServiceClient(service).evaluate(request)
        finally:
            await service.shutdown(drain=True)
        return run, service.metrics_snapshot()

    with injector(plan):
        served, snap = asyncio.run(_serve_once())
    if served.to_json() != reference.to_json():
        return ChaosReport("serve-resilience", False,
                           "served run under shard deaths + worker kills "
                           "diverged from direct evaluation")
    if snap["shard_restarts"] < 1:
        return ChaosReport("serve-resilience", False,
                           "the shard-death fault never fired "
                           "(shard_restarts == 0); the invariant is vacuous")
    return ChaosReport(
        "serve-resilience", True,
        f"{snap['shard_restarts']} shard deaths and every first worker "
        f"attempt killed; {snap['tasks_from_journal']} tasks resumed from "
        "per-shard journals and the served run matches direct evaluation")


def check_vectorize_resilience(seed: int = 11) -> ChaosReport:
    """Tier choice is invisible even mid-fault.

    The vectorized executor claims byte-identical behaviour to the
    scalar tier; that claim must hold *under injection* too — a fault
    plan whose rules fire between, before, or after vectorized loops
    must produce the identical event sequence and the identical
    ``EvalRun`` on both tiers.  This closes the one gap the fault-free
    differential suite cannot: a tier that perturbed fault ordering
    (e.g. by skipping an injection point inside a bulk-executed loop)
    would pass every clean-run golden and still desynchronise replay.
    """
    from ..harness.runner import Runner

    llm, bench = chaos_slice()
    plan = FaultPlan.from_seed(seed).restricted(("runtime", "harness"))
    payloads: List[str] = []
    logs: List[str] = []
    for vec in (True, False):
        with injector(plan) as inj:
            run = _eval(llm, bench, with_timing=True,
                        runner=Runner(vectorize=vec))
        payloads.append(run.to_json())
        logs.append(inj.canonical_log())
    if logs[0] != logs[1]:
        return ChaosReport("vectorize-resilience", False,
                           "the two tiers drew different fault-decision "
                           "streams from the same plan")
    if payloads[0] != payloads[1]:
        return ChaosReport("vectorize-resilience", False,
                           "EvalRuns diverged between the numpy and scalar "
                           "tiers under the injected plan")
    return ChaosReport(
        "vectorize-resilience", True,
        f"seed {seed}: fault plan replayed identically on both execution "
        "tiers with byte-identical EvalRuns")


def check_guard_resilience(workdir: Union[str, Path],
                           jobs: int = 2,
                           log: Optional[Callable[[str], None]] = None
                           ) -> ChaosReport:
    """The guard layer (quarantine, hedging, crash-only recovery)
    preserves exactness under maximum supervision pressure.

    Three sub-properties, each non-vacuous by construction:

    * **hedging transparency** — an aggressive policy (every completed
      task re-arms the straggler cut at zero seconds) composed with
      injected first-arrival losses (``guard.hedge.lose``) must produce
      an ``EvalRun`` byte-identical to the serial reference: speculation
      is throughput policy, never content policy.
    * **poison determinism** — a kill rule pinned to one sample task's
      every attempt makes that task slaughter workers until the health
      ledger quarantines it.  Two such runs must be byte-identical, the
      victim's slots must carry ``quarantined`` (exactly its slot count,
      exactly once per task), and pass@1 over the victim's prompt must
      equal pass@1 with the quarantined samples dropped — the
      denominator-exclusion wiring, end to end.
    * **crash-only recovery** — SIGKILLing the whole scheduler process
      at sampled event boundaries (``guard.process.kill`` via
      :func:`repro.guard.run_supervised`) and resuming from the journal
      reproduces the unkilled reference digest every time.
    """
    from ..guard import GuardPolicy, crash_resume_sweep
    from ..harness.runner import Runner
    from ..metrics import prompt_pass_at_k
    from ..sched.plan import KIND_SAMPLE, build_plan

    llm, bench = chaos_slice()
    emit = log or (lambda line: None)
    reference = _eval(llm, bench)

    # (a) aggressive hedging + injected first-arrival losses
    emit("  guard: hedging transparency ...")
    eager = GuardPolicy(hedge_multiplier=0.0, hedge_min_completed=1,
                        hedge_min_seconds=0.0)
    lose_plan = FaultPlan(rules=(
        FaultRule(point="guard.hedge.lose", action="lose"),), seed=0)
    with injector(lose_plan):
        hedged = _eval(llm, bench, jobs=jobs, guard=eager)
    if hedged.to_json() != reference.to_json():
        return ChaosReport("guard-resilience", False,
                           "aggressive hedging (with injected hedge "
                           "losses) perturbed the EvalRun")

    # (b) a poison task is quarantined exactly once, deterministically
    emit("  guard: poison-task quarantine ...")
    plan_obj = build_plan(llm, bench, CHAOS_SAMPLES, 0.2, False, Runner(),
                          CHAOS_SEED)
    victim = next(tid for tid, spec in plan_obj.tasks.items()
                  if spec.kind == KIND_SAMPLE)
    victim_slots = [(pp.uid, slot.sample_index)
                    for pp in plan_obj.prompts for slot in pp.slots
                    if slot.task_id == victim]
    poison_plan = FaultPlan(rules=(
        FaultRule(point="sched.worker.kill", action="kill", match=victim),
    ), seed=0)
    payloads: List[str] = []
    for _ in range(2):
        with injector(poison_plan):
            run = _eval(llm, bench, jobs=jobs)
        payloads.append(run.to_json())
    if payloads[0] != payloads[1]:
        return ChaosReport("guard-resilience", False,
                           "two runs under the same poison schedule "
                           "produced different EvalRuns")
    got = [(uid, i) for uid, rec in run.prompts.items()
           for i, s in enumerate(rec.samples) if s.status == "quarantined"]
    if sorted(got) != sorted(victim_slots) or not got:
        return ChaosReport(
            "guard-resilience", False,
            f"expected quarantined slots {sorted(victim_slots)}, "
            f"got {sorted(got)}")
    victim_uid = victim_slots[0][0]
    statuses = run.prompts[victim_uid].statuses()
    survivors = [s for s in statuses if s != "quarantined"]
    if survivors and prompt_pass_at_k(statuses, 1) \
            != prompt_pass_at_k(survivors, 1):
        return ChaosReport("guard-resilience", False,
                           "quarantined samples leaked into the pass@1 "
                           "denominator")

    # (c) whole-process SIGKILL at sampled event boundaries, then resume
    emit("  guard: crash-only recovery ...")
    sweep_dir = Path(workdir) / "supervised"
    probe = crash_resume_sweep(llm, bench, workdir=sweep_dir,
                               kill_points=[], num_samples=CHAOS_SAMPLES,
                               temperature=0.2, seed=CHAOS_SEED, jobs=jobs)
    events = int(probe["reference_events"])
    stride = max(1, events // 4)
    points = sorted(set(range(0, events, stride)) | {events - 1})
    sweep = crash_resume_sweep(llm, bench, workdir=sweep_dir,
                               kill_points=points, progress=log,
                               num_samples=CHAOS_SAMPLES, temperature=0.2,
                               seed=CHAOS_SEED, jobs=jobs)
    if sweep["mismatches"]:
        return ChaosReport("guard-resilience", False,
                           "crash-resume diverged after SIGKILLs at event "
                           f"boundaries {sweep['mismatches']}")
    if sweep["restarts"] < len(points):
        return ChaosReport("guard-resilience", False,
                           "the whole-process kill never fired "
                           f"({sweep['restarts']} restarts over "
                           f"{len(points)} armed boundaries); the "
                           "invariant is vacuous")
    return ChaosReport(
        "guard-resilience", True,
        f"hedged run byte-identical; poison task quarantined exactly once "
        f"across {len(victim_slots)} slot(s) in both runs; "
        f"{sweep['checked']} whole-process SIGKILLs "
        f"({sweep['restarts']} restarts) all resumed to the reference "
        "digest")


def check_dispatch_resilience(workdir: Union[str, Path],
                              jobs: int = 2) -> ChaosReport:
    """Cost-predictive dispatch is throughput policy, never content
    policy — even warm, even mid-fault.

    Two sub-properties:

    * **policy transparency** — the scheduler under every dispatch
      policy (``lpt``, ``fifo``, ``random``) reproduces the serial
      reference byte for byte: the ready-queue order and the duration
      predictions behind it cannot leak into the ``EvalRun``.
    * **warm-ledger survivability** — a ledger warmed by a prior run
      drives LPT shard balancing and the work-stealing board inside the
      service while every task's first worker attempt is killed and
      each shard's pool loop dies once (``serve.shard.die``); the served
      run must still match the reference, with the ledger demonstrably
      consulted (non-vacuity: ``ledger_predictions > 0`` and at least
      one shard restart).
    """
    import asyncio

    from ..sched.scheduler import run_scheduled
    from ..serve import EvalRequest, EvalService
    from ..serve.client import ServiceClient

    llm, bench = chaos_slice()
    reference = _eval(llm, bench)

    # (a) every policy is byte-transparent
    for policy in ("lpt", "fifo", "random"):
        run = _eval(llm, bench, jobs=jobs, dispatch=policy)
        if run.to_json() != reference.to_json():
            return ChaosReport(
                "dispatch-resilience", False,
                f"dispatch policy {policy!r} perturbed the EvalRun")

    # (b) warm the service's ledger with a direct scheduled run, then
    # serve the same request under shard deaths + worker kills
    serve_dir = Path(workdir)
    serve_dir.mkdir(parents=True, exist_ok=True)
    warm_run, _ = run_scheduled(
        llm, bench, num_samples=CHAOS_SAMPLES, temperature=0.2,
        seed=CHAOS_SEED, jobs=jobs,
        ledger_path=serve_dir / "durations.jsonl")
    if warm_run.to_json() != reference.to_json():
        return ChaosReport("dispatch-resilience", False,
                           "the ledger-warming run diverged from the "
                           "reference")
    plan = FaultPlan(rules=(
        FaultRule(point="sched.worker.kill", action="kill", match="#a0"),
        FaultRule(point="serve.shard.die", action="abort",
                  occurrences=(0,)),
    ), seed=0)
    request = EvalRequest(model=CHAOS_LLM, ptypes=CHAOS_PTYPES,
                          exec_models=CHAOS_EXEC, samples=CHAOS_SAMPLES,
                          seed=CHAOS_SEED)

    async def _serve_once() -> Tuple[EvalRun, dict]:
        service = EvalService(serve_dir, shards=2, jobs_per_shard=jobs,
                              sample_cache=False, dispatch="lpt")
        await service.start()
        try:
            run = await ServiceClient(service).evaluate(request)
        finally:
            await service.shutdown(drain=True)
        return run, service.metrics_snapshot()

    with injector(plan):
        served, snap = asyncio.run(_serve_once())
    if served.to_json() != reference.to_json():
        return ChaosReport("dispatch-resilience", False,
                           "warm-ledger LPT serving under shard deaths + "
                           "worker kills diverged from direct evaluation")
    if snap["shard_restarts"] < 1:
        return ChaosReport("dispatch-resilience", False,
                           "the shard-death fault never fired "
                           "(shard_restarts == 0); the invariant is vacuous")
    if snap["ledger_predictions"] < 1:
        return ChaosReport("dispatch-resilience", False,
                           "the warmed ledger was never consulted "
                           "(ledger_predictions == 0); the invariant is "
                           "vacuous")
    return ChaosReport(
        "dispatch-resilience", True,
        "all three dispatch policies byte-identical; warm-ledger LPT "
        f"serving survived {snap['shard_restarts']} shard death(s) with "
        f"{snap['ledger_predictions']} ledger-predicted tasks "
        f"(hit rate {snap['ledger_hit_rate']:.2f}, MAE "
        f"{snap['pred_mae_seconds']:.3f}s) and matches direct evaluation")


def run_chaos(seed: int = 11, jobs: int = 4,
              workdir: Optional[Union[str, Path]] = None,
              log: Optional[Callable[[str], None]] = None,
              only: Optional[str] = None) -> List[ChaosReport]:
    """Run the invariant suite; returns one report per check.

    ``only`` restricts the run to a single named invariant (e.g.
    ``"guard-resilience"`` for the CI ``chaos-guard`` job); an unknown
    name yields an empty report list, which callers should treat as a
    usage error.
    """
    emit = log or (lambda line: None)
    reports: List[ChaosReport] = []

    def step(name: str, fn: Callable[[], ChaosReport]) -> None:
        if only is not None and name != only:
            return
        emit(f"chaos: checking {name} ...")
        report = fn()
        emit(report.line())
        reports.append(report)

    step("injector-transparency", check_injector_transparency)
    step("event-determinism", lambda: check_event_determinism(seed))
    step("profile-determinism", lambda: check_profile_determinism(seed))
    step("vectorize-resilience", lambda: check_vectorize_resilience(seed))
    step("sched-resilience", lambda: check_sched_resilience(jobs))
    if workdir is not None:
        step("kill-resume",
             lambda: check_kill_resume(workdir, jobs=min(jobs, 2), log=log))
        step("serve-resilience",
             lambda: check_serve_resilience(Path(workdir) / "serve",
                                            jobs=min(jobs, 2)))
        step("guard-resilience",
             lambda: check_guard_resilience(Path(workdir) / "guard",
                                            jobs=min(jobs, 2), log=log))
        step("dispatch-resilience",
             lambda: check_dispatch_resilience(Path(workdir) / "dispatch",
                                               jobs=min(jobs, 2)))
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            step("kill-resume",
                 lambda: check_kill_resume(tmp, jobs=min(jobs, 2), log=log))
            step("serve-resilience",
                 lambda: check_serve_resilience(Path(tmp) / "serve",
                                                jobs=min(jobs, 2)))
            step("guard-resilience",
                 lambda: check_guard_resilience(Path(tmp) / "guard",
                                                jobs=min(jobs, 2), log=log))
            step("dispatch-resilience",
                 lambda: check_dispatch_resilience(Path(tmp) / "dispatch",
                                                   jobs=min(jobs, 2)))
    return reports
