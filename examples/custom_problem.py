#!/usr/bin/env python3
"""Extend PCGBench with a custom problem and test your own solutions.

PCGBench's 60 problems are ordinary :class:`~repro.bench.Problem` values;
nothing stops a user from defining new ones — here, a softmax-style
normalisation — and running handwritten candidate solutions through the
identical harness pipeline (usage check, race detection, timing).

Run:  python examples/custom_problem.py
"""

import numpy as np

from repro.bench import ParamSpec, Problem, render_prompt
from repro.harness import Runner


# -- define the problem -----------------------------------------------------

def _generate(rng, n):
    return {"x": np.round(rng.uniform(-2.0, 2.0, n), 3),
            "out": np.zeros(n)}


def _reference(inputs):
    e = np.exp(inputs["x"])
    return {"out": e / e.sum()}


softmax = Problem(
    name="softmax_normalize",
    ptype="transform",   # piggyback on an existing type for reporting
    description=(
        "Compute the softmax of x into out: out[i] = exp(x[i]) divided by "
        "the sum of exp(x[j]) over all j."
    ),
    params=(
        ParamSpec("x", "array<float>", "in"),
        ParamSpec("out", "array<float>", "out"),
    ),
    ret=None,
    generate=_generate,
    reference=_reference,
    examples=(("x = [0, 0]", "out becomes [0.5, 0.5]"),),
    tol=1e-5,
)

prompt = render_prompt(softmax, "openmp")
print(prompt.text)

# -- candidate solutions -------------------------------------------------------

GOOD = """
kernel softmax_normalize(x: array<float>, out: array<float>) {
    let total = 0.0;
    pragma omp parallel for reduction(+: total)
    for (i in 0..len(x)) {
        total += exp(x[i]);
    }
    pragma omp parallel for
    for (i in 0..len(x)) {
        out[i] = exp(x[i]) / total;
    }
}
"""

# classic bug: the accumulation race (no reduction clause)
RACY = GOOD.replace(" reduction(+: total)", "")

# classic bug: serial code for a parallel prompt
SEQUENTIAL = """
kernel softmax_normalize(x: array<float>, out: array<float>) {
    let total = 0.0;
    for (i in 0..len(x)) {
        total += exp(x[i]);
    }
    for (i in 0..len(x)) {
        out[i] = exp(x[i]) / total;
    }
}
"""

runner = Runner()
for label, source in [("good", GOOD), ("racy", RACY),
                      ("sequential", SEQUENTIAL)]:
    result = runner.evaluate_sample(source, prompt, with_timing=True)
    line = f"{label:10s} -> {result.status}"
    if result.detail:
        line += f"  ({result.detail[:70]})"
    print(line)
    if result.times:
        t1, t32 = result.times[1], result.times[32]
        print(f"{'':13s}1 thread {t1*1e3:.3f} ms, 32 threads {t32*1e3:.3f} ms "
              f"(speedup {t1/t32:.1f}x)")

# the racy candidate above never executed: MiniParSan convicted it
# statically (status 'static_fail').  Disable the screen to watch the
# dynamic Tracer catch the same bug at runtime instead:
dynamic = Runner(static_screen=False)
result = dynamic.evaluate_sample(RACY, prompt)
print(f"{'racy (dyn)':10s} -> {result.status}  ({result.detail[:70]})")
