#!/usr/bin/env python3
"""Evaluate several (simulated) LLMs on a slice of PCGBench and print the
paper's Figure 1/2/3-style tables for that slice.

A full-paper run is just `problem_types=None, models=None` with more
samples (see benchmarks/); this example keeps the slice small so it
finishes in a few seconds.

Run:  python examples/evaluate_models.py
"""

from repro import PCGBench, Runner, evaluate_model, load_model
from repro.analysis import (
    fig1_pass_by_exec_model,
    fig2_overall,
    fig3_pass_by_ptype,
    status_breakdown,
)

MODELS = ["CodeLlama-13B", "Phind-CodeLlama-V2", "GPT-3.5"]

bench = PCGBench(
    problem_types=["transform", "reduce", "histogram", "sparse_la"],
    models=["serial", "openmp", "mpi", "cuda"],
)
runner = Runner()

runs = {}
for name in MODELS:
    print(f"evaluating {name} on {len(bench)} prompts ...")
    runs[name] = evaluate_model(
        load_model(name), bench, num_samples=6, temperature=0.2,
        runner=runner, seed=7,
    )

for builder in (fig1_pass_by_exec_model, fig2_overall, fig3_pass_by_ptype):
    _, text = builder(runs)
    print("\n" + text)

print("\nHarness status breakdown (all samples, GPT-3.5):")
for status, count in sorted(status_breakdown(runs["GPT-3.5"]).items()):
    print(f"  {status:14s} {count}")
