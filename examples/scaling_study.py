#!/usr/bin/env python3
"""Scaling study: how one kernel's simulated performance scales across
the paper's processor grids — and how common pathologies (critical
sections, contended atomics, root-only MPI) destroy it.

This exercises the cost models directly, the way §8 RQ3 compares
generated-code variants: same correct answer, very different scaling.

Run:  python examples/scaling_study.py
"""

from repro.analysis import render_table
from repro.bench import all_problems, render_prompt
from repro.harness import Runner, compile_sample
from repro.models.solutions import variants_for

problem = next(p for p in all_problems() if p.name == "hist_mod_k")
runner = Runner(mpi_rank_counts=(1, 4, 16, 64, 256, 512))
t_star = runner.baseline_time(problem)
print(f"problem: {problem.name}   baseline T* = {t_star*1e3:.3f} ms\n")

# -- OpenMP: atomic vs critical ----------------------------------------------

rows = []
for variant in variants_for(problem, "openmp"):
    program, err = compile_sample(variant.source, "openmp")
    assert program is not None, err
    times = runner.measure(program, render_prompt(problem, "openmp"))
    rows.append([variant.name] + [
        f"{t_star / times[n]:.2f}x" for n in sorted(times)
    ])
print(render_table(
    ["OpenMP variant"] + [str(n) for n in runner.thread_counts],
    rows, title="OpenMP histogram: speedup over baseline by thread count",
))

# -- MPI: block distribution vs root-only ----------------------------------------

rows = []
for variant in variants_for(problem, "mpi"):
    program, err = compile_sample(variant.source, "mpi")
    assert program is not None, err
    times = runner.measure(program, render_prompt(problem, "mpi"))
    rows.append([variant.name] + [
        f"{t_star / times[n]:.2f}x" if n in times else "-"
        for n in runner.mpi_rank_counts
    ])
print("\n" + render_table(
    ["MPI variant"] + [str(n) for n in runner.mpi_rank_counts],
    rows, title="MPI histogram: speedup over baseline by rank count",
))

# -- GPU: atomics vs one-thread-does-everything --------------------------------------

rows = []
for variant in variants_for(problem, "cuda"):
    program, err = compile_sample(variant.source, "cuda")
    assert program is not None, err
    times = runner.measure(program, render_prompt(problem, "cuda"))
    ((n, t),) = times.items()
    rows.append([variant.name, f"{n}", f"{t*1e3:.3f} ms",
                 f"{t_star / t:.2f}x"])
print("\n" + render_table(
    ["CUDA variant", "kernel threads", "time", "speedup"],
    rows, title="CUDA histogram: kernel-thread scaling",
))
