#!/usr/bin/env python3
"""A tour of MiniPar, the language PCGBench samples are written in —
and of the failure modes the harness detects in it.

Every snippet below is compiled and (where possible) executed for real;
this file doubles as living documentation of the language surface.

Run:  python examples/minipar_tour.py
"""

from repro.lang import CompileError, compile_source
from repro.runtime import (
    DEFAULT_MACHINE,
    Array,
    ExecCtx,
    KokkosRuntime,
    OpenMPRuntime,
    SerialRuntime,
    compile_program,
    launch,
    run_mpi,
)


def run_serial(src, kernel, args):
    prog = compile_program(compile_source(src))
    ctx = ExecCtx(DEFAULT_MACHINE, SerialRuntime())
    return prog.run_kernel(kernel, ctx, args)


def show(title):
    print(f"\n=== {title} " + "=" * max(0, 56 - len(title)))


# ---------------------------------------------------------------------------
show("basics: types, control flow, builtins")
src = """
kernel collatz_steps(n: int) -> int {
    let steps = 0;
    while (n > 1) {
        if (n % 2 == 0) {
            n = n / 2;
        } else {
            n = 3 * n + 1;
        }
        steps += 1;
    }
    return steps;
}
"""
print("collatz_steps(27) =", run_serial(src, "collatz_steps", [27]))

# ---------------------------------------------------------------------------
show("arrays, helpers, recursion")
src = """
kernel fib(n: int) -> int {
    if (n < 2) {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}

kernel fill_fib(out: array<int>) {
    for (i in 0..len(out)) {
        out[i] = fib(i);
    }
}
"""
out = Array.zeros(10, "int")
run_serial(src, "fill_fib", [out])
print("fib table:", out.data)

# ---------------------------------------------------------------------------
show("the type checker is a real compiler front end")
for bad, why in [
    ("kernel f() -> int { return 1.5; }", "float returned from int kernel"),
    ("kernel f() { let x = 1; let x = 2; }", "shadowing"),
    ("kernel f(x: array<float>) { x += x; }", "compound ops on arrays"),
    ("kernel f() -> int { if (true) { return 1; } }", "missing return path"),
    ("kernel f() { pragma omp parallel for\n for (i in 0..4) { break; } }",
     "break out of a parallel loop"),
]:
    try:
        compile_source(bad)
        print(f"  UNEXPECTEDLY OK: {why}")
    except CompileError as e:
        print(f"  rejected ({why}): {e}")

# ---------------------------------------------------------------------------
show("OpenMP: one profiled run prices every thread count")
src = """
kernel l2_norm_sq(x: array<float>) -> float {
    let total = 0.0;
    pragma omp parallel for reduction(+: total)
    for (i in 0..len(x)) {
        total += x[i] * x[i];
    }
    return total;
}
"""
prog = compile_program(compile_source(src))
x = Array.from_list([0.5] * 4096, "float")
ctx = ExecCtx(DEFAULT_MACHINE, OpenMPRuntime(), work_scale=512)
print("norm^2 =", prog.run_kernel("l2_norm_sq", ctx, [x]))
for t in (1, 4, 16, 32):
    print(f"  {t:2d} threads: {ctx.sim_seconds(t)*1e3:7.3f} ms")

# ---------------------------------------------------------------------------
show("Kokkos patterns")
src = """
kernel normalize(x: array<float>) {
    let total = parallel_reduce(len(x), "sum", (i) => x[i]);
    parallel_for(len(x), (i) => {
        x[i] = x[i] / total;
    });
}
"""
prog = compile_program(compile_source(src))
x = Array.from_list([1.0, 3.0, 4.0], "float")
ctx = ExecCtx(DEFAULT_MACHINE, KokkosRuntime())
prog.run_kernel("normalize", ctx, [x])
print("normalized:", x.data)

# ---------------------------------------------------------------------------
show("MPI: ranks, collectives, and detected deadlocks")
src = """
kernel ring_max(x: array<float>) -> float {
    let r = mpi_rank();
    mpi_send(x[r], (r + 1) % mpi_size(), 0);
    let from_left = mpi_recv_float((r + mpi_size() - 1) % mpi_size(), 0);
    return mpi_allreduce_float(max(x[r], from_left), "max");
}
"""
prog = compile_program(compile_source(src))
res = run_mpi(prog, "ring_max", [Array.from_list([3., 9., 1., 5.], "float")],
              nranks=4, machine=DEFAULT_MACHINE)
print("ring_max over 4 ranks ->", res.ret)

deadlock = compile_program(compile_source("""
kernel stuck(x: array<float>) -> float {
    return mpi_recv_float((mpi_rank() + 1) % mpi_size(), 0);
}
"""))
res = run_mpi(deadlock, "stuck", [Array.zeros(1, "float")], 4, DEFAULT_MACHINE)
print("everyone-receives program ->", type(res.error).__name__)

# ---------------------------------------------------------------------------
show("CUDA: SIMT kernels, atomics, race detection")
src = """
kernel count_positive(x: array<float>, result: array<int>) {
    let i = block_idx() * block_dim() + thread_idx();
    if (i < len(x)) {
        if (x[i] > 0.0) {
            atomic_add(result, 0, 1);
        }
    }
}
"""
prog = compile_program(compile_source(src))
x = Array.from_list([1.0, -2.0, 3.0, 4.0, -5.0], "float")
result = Array.zeros(1, "int")
res = launch(prog, "count_positive", [x, result], 5, DEFAULT_MACHINE)
print("positives =", result.data[0])

racy = compile_program(compile_source(
    src.replace("atomic_add(result, 0, 1);", "result[0] += 1;")
))
res = launch(racy, "count_positive",
             [x, Array.zeros(1, "int")], 5, DEFAULT_MACHINE)
print("same kernel without the atomic ->", type(res.error).__name__)
