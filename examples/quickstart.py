#!/usr/bin/env python3
"""Quickstart: the MiniPar substrate and the PCGBench harness in 60 lines.

1. Write a parallel program in MiniPar (the language generated samples
   are written in) and run it under three execution models.
2. Take a real PCGBench prompt, have a simulated LLM complete it, and
   push the completion through the full harness pipeline.

Run:  python examples/quickstart.py
"""

from repro import PCGBench, Runner, load_model
from repro.lang import compile_source
from repro.runtime import (
    DEFAULT_MACHINE,
    Array,
    ExecCtx,
    OpenMPRuntime,
    SerialRuntime,
    compile_program,
    run_mpi,
)

# -- 1. MiniPar under three runtimes ----------------------------------------

SOURCE = """
kernel dot(x: array<float>, y: array<float>) -> float {
    let total = 0.0;
    pragma omp parallel for reduction(+: total)
    for (i in 0..len(x)) {
        total += x[i] * y[i];
    }
    return total;
}
"""

program = compile_program(compile_source(SOURCE))
x = Array.from_list([float(i) for i in range(4096)], "float")
y = Array.from_list([2.0] * 4096, "float")

ctx = ExecCtx(DEFAULT_MACHINE, SerialRuntime(), work_scale=512)
serial = program.run_kernel("dot", ctx, [x, y])
print(f"serial:  dot = {serial:.0f}   simulated time {ctx.sim_seconds()*1e3:.2f} ms")

ctx = ExecCtx(DEFAULT_MACHINE, OpenMPRuntime(), work_scale=512)
program.run_kernel("dot", ctx, [x, y])
for threads in (1, 8, 32):
    t = ctx.sim_seconds(threads)
    print(f"openmp:  {threads:2d} threads -> {t*1e3:7.3f} ms "
          f"(speedup {ctx.sim_seconds(1)/t:5.2f}x)")

# the same program is valid MPI+OpenMP code: run it on 8 simulated ranks
MPI_SOURCE = SOURCE.replace(
    "let total = 0.0;",
    "let rank = mpi_rank();\n    let size = mpi_size();\n    let total = 0.0;",
).replace(
    "for (i in 0..len(x)) {",
    "for (i in rank * (len(x) / size).."
    "(rank + 1) * (len(x) / size)) {",
).replace(
    "return total;",
    'return mpi_allreduce_float(total, "sum");',
)
mpi_prog = compile_program(compile_source(MPI_SOURCE))
res = run_mpi(mpi_prog, "dot", [x, y], nranks=8, machine=DEFAULT_MACHINE,
              work_scale=512, threads_per_rank=4)
print(f"mpi+omp: 8 ranks x 4 threads -> dot = {res.ret:.0f}, "
      f"{res.sim_seconds*1e3:.3f} ms")

# -- 2. A PCGBench prompt through the full pipeline ---------------------------

bench = PCGBench(problem_types=["scan"], models=["kokkos"])
prompt = bench.prompt("scan/partial_minimums/kokkos")
print("\n--- the paper's Listing 1 prompt (Kokkos partial minimums) ---")
print(prompt.text)

llm = load_model("GPT-3.5")
runner = Runner()
sample = llm.generate(prompt, num_samples=1, temperature=0.2, seed=42)[0]
print("\n--- GPT-3.5 (simulated) completion ---")
print(sample.source)

result = runner.evaluate_sample(sample.source, prompt, with_timing=True)
print(f"harness verdict: {result.status}")
if result.status == "correct":
    t_star = runner.baseline_time(prompt.problem)
    for n, t in sorted(result.times.items()):
        print(f"  {n:3d} threads: {t*1e3:8.3f} ms  "
              f"speedup over baseline {t_star/t:5.2f}x")
