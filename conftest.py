"""Repo-level pytest bootstrap: make src/ importable without an install
(useful on offline machines where editable installs cannot build)."""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
