"""Ablation D3+ — the paper's proposed problem-size metric extension
(§6.2, closing paragraph): parameterise performance by problem size to
study the *computational complexity* of generated code.

We fit cost ~ a * n^b for the optimal baselines and for characteristic
generated-code shapes, and check the complexity gaps the harness should
expose: the naive O(n^2) scan that parallel prompts commonly elicit shows
an exponent gap of ~1 against the O(n) baseline, and the radix-2 FFT
baseline beats direct DFT samples by ~1 as well."""

from repro.analysis.problem_size import (
    baseline_size_scaling,
    complexity_gap,
)
from repro.analysis.tables import render_table
from repro.bench import all_problems
from repro.models.solutions import variants_for

from conftest import publish

SIZES = (128, 256, 512, 1024)


def _problem(name):
    return next(p for p in all_problems() if p.name == name)


def test_ablation_problem_size(benchmark):
    rows = []

    def build():
        rows.clear()
        # baselines: expected exponents
        for name, lo, hi in [("relu", 0.85, 1.15),
                             ("sort_ascending", 1.0, 1.4),
                             ("gemm", 1.3, 2.1),
                             ("dft", 1.0, 1.5)]:
            scaling = baseline_size_scaling(_problem(name), SIZES)
            rows.append((f"baseline:{name}", f"{scaling.exponent:.2f}",
                         f"[{lo}, {hi}]"))
            assert lo <= scaling.exponent <= hi, (name, scaling.exponent)

        # generated-code complexity gaps vs. baseline
        scan = _problem("prefix_sum")
        naive = next(v for v in variants_for(scan, "openmp")
                     if "naive" in v.name)
        gap = complexity_gap(naive.source, scan, SIZES)
        rows.append(("omp naive scan vs baseline",
                     f"gap {gap['gap']:+.2f}", "~ +1"))
        assert 0.6 <= gap["gap"] <= 1.4

        dft = _problem("dft")
        direct = variants_for(dft, "serial")[0]
        gap = complexity_gap(direct.source, dft, SIZES)
        rows.append(("direct DFT vs radix-2 baseline",
                     f"gap {gap['gap']:+.2f}", "~ +1"))
        assert 0.5 <= gap["gap"] <= 1.5
        return rows

    benchmark(build)
    publish("ablation_problem_size", render_table(
        ["program", "fitted exponent / gap", "expected"], rows,
        title="Ablation — problem-size complexity fits (cost ~ a * n^b)",
    ))
