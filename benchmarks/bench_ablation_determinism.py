"""Ablation D2 (DESIGN.md §5) — the deterministic simulated clock.

The paper times real binaries (10-run averages to tame noise, §7.2); this
reproduction prices runs with a deterministic cost model instead, so a
measurement re-run must reproduce *bit-identical* simulated times.  This
is what makes the figure benchmarks reproducible run-to-run — and it is a
property worth guarding, since any accidental wall-clock dependence or
dict-ordering effect in the runtimes would silently break it.
"""

from repro.bench import PCGBench
from repro.harness import Runner, evaluate_model
from repro.models import load_model

from conftest import publish


def _timed_pass(seed: int):
    bench = PCGBench(problem_types=["reduce"],
                     models=["openmp", "mpi", "cuda"])
    runner = Runner(mpi_rank_counts=(1, 4, 16))
    return evaluate_model(load_model("GPT-4"), bench, num_samples=3,
                          temperature=0.2, with_timing=True, seed=seed,
                          runner=runner)


def test_ablation_deterministic_clock(benchmark):
    first = _timed_pass(seed=23)
    second = benchmark(_timed_pass, 23)

    mismatches = []
    for uid, rec in first.prompts.items():
        other = second.prompts[uid]
        if rec.baseline != other.baseline:
            mismatches.append((uid, "baseline"))
        for i, (a, b) in enumerate(zip(rec.samples, other.samples)):
            if a.status != b.status or a.times != b.times:
                mismatches.append((uid, i))
    publish(
        "ablation_determinism",
        "Ablation D2 — repeated timed evaluation: "
        + ("bit-identical simulated times"
           if not mismatches else f"{len(mismatches)} mismatches"),
    )
    assert not mismatches, mismatches[:5]
