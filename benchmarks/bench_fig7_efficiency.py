"""Figure 7 — efficiency_n@1 for serial and parallel prompts at the
headline processor counts.

Paper shapes to hold: no model uses parallel resources efficiently — the
best overall parallel efficiency is low (paper: 0.13 for GPT-4, worst
0.06 for CodeLlama-34B); GPT-4 leads, CodeLlama-34B is at the bottom of
the field; serial efficiency (speedup/1) is far higher than parallel."""

from repro.analysis import fig7_efficiency

from conftest import publish


def test_fig7_efficiency(benchmark, timed_runs):
    data, text = benchmark(fig7_efficiency, timed_runs)
    publish("fig7_efficiency", text)

    overall = {name: row["all-parallel"] for name, row in data.items()}
    # everyone is inefficient in absolute terms
    for name, eff in overall.items():
        assert eff < 0.45, (name, eff)
    # GPT-4 leads, CodeLlama-34B trails (within a small tolerance band)
    assert overall["GPT-4"] >= max(overall.values()) - 0.02, overall
    assert overall["CodeLlama-34B"] <= min(
        v for k, v in overall.items() if k != "CodeLlama-34B"
    ) + 0.05, overall

    # serial prompts: correct code is ~baseline speed, so efficiency ~1
    for name, row in data.items():
        if row["serial"] > 0:
            assert row["serial"] <= 1.25, (name, row["serial"])
            assert row["serial"] > 3 * row["all-parallel"], name
