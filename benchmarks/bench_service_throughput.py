"""Serving-layer throughput: requests/sec with batching on vs off.

The workload is a burst of overlapping requests — the shape the
micro-batcher exists for.  With batching on, one batch executes the
content-deduplicated union of the requests' task sets; with batching
off, every request is its own batch and re-executes its full plan.  The
sample cache is disabled so the comparison measures *batching*, not
cross-batch caching.
"""

import asyncio
import time

import pytest

from repro.serve import EvalRequest, EvalService, ServiceClient

#: a burst of overlapping requests: same slice, staggered exec columns,
#: so cross-request dedup has both shared and private tasks
_BURST = [
    EvalRequest(model="GPT-3.5", ptypes=("transform",),
                exec_models=("serial", "openmp"), samples=2, seed=7),
    EvalRequest(model="GPT-3.5", ptypes=("transform",),
                exec_models=("serial", "openmp"), samples=2, seed=7),
    EvalRequest(model="GPT-3.5", ptypes=("transform",),
                exec_models=("openmp", "kokkos"), samples=2, seed=7),
    EvalRequest(model="GPT-3.5", ptypes=("transform",),
                exec_models=("serial", "kokkos"), samples=2, seed=7),
]


def _serve_burst(workdir, batching):
    """Push the burst through a fresh service; returns (wall_s, metrics)."""

    async def main():
        service = EvalService(workdir, shards=2, jobs_per_shard=2,
                              sample_cache=False, batching=batching,
                              batch_window=0.2, max_batch=len(_BURST),
                              max_queue=len(_BURST))
        await service.start()
        client = ServiceClient(service)
        t0 = time.perf_counter()
        ids = [client.submit(req) for req in _BURST]
        runs = await asyncio.gather(*(client.result(i) for i in ids))
        wall = time.perf_counter() - t0
        await service.shutdown(drain=True)
        assert all(r.prompts for r in runs)
        return wall, service.metrics_snapshot()

    return asyncio.run(main())


@pytest.mark.parametrize("batching", [False, True],
                         ids=["batching-off", "batching-on"])
def test_service_burst_throughput(benchmark, tmp_path_factory, batching):
    """Requests/sec over the burst, batching on vs off."""
    counter = [0]

    def once():
        counter[0] += 1
        workdir = tmp_path_factory.mktemp(
            f"serve-{'on' if batching else 'off'}-{counter[0]}")
        return _serve_burst(workdir, batching)

    wall, snap = benchmark.pedantic(once, rounds=2, iterations=1,
                                    warmup_rounds=0)
    assert snap["completed"] == len(_BURST)
    print(f"\nbatching={'on' if batching else 'off'}: "
          f"{len(_BURST) / wall:.2f} req/s, "
          f"{snap['tasks_executed']} tasks executed "
          f"({snap['tasks_deduped']} deduped)")


def test_batching_executes_fewer_tasks(tmp_path):
    """The acceptance check: batching on strictly beats batching off on
    executed-task count for an overlapping burst, and completes every
    request either way."""
    wall_off, snap_off = _serve_burst(tmp_path / "off", batching=False)
    wall_on, snap_on = _serve_burst(tmp_path / "on", batching=True)
    print(f"\nburst of {len(_BURST)}: off {wall_off:.2f}s "
          f"({snap_off['tasks_executed']} tasks) vs on {wall_on:.2f}s "
          f"({snap_on['tasks_executed']} tasks, "
          f"{snap_on['tasks_deduped']} deduped)")
    assert snap_off["completed"] == len(_BURST)
    assert snap_on["completed"] == len(_BURST)
    assert snap_off["failed"] == 0 and snap_on["failed"] == 0
    # same total demand either way ...
    assert snap_on["tasks_planned"] == snap_off["tasks_planned"]
    # ... but batching executes only the deduplicated union
    assert snap_on["tasks_executed"] < snap_off["tasks_executed"]
    assert snap_on["tasks_deduped"] > 0
