"""Figure 2 — each LLM's serial vs parallel pass@1 over PCGBench.

Paper shapes to hold: every model drops substantially from serial to
parallel; GPT-3.5 leads parallel (~40%) with GPT-4 a couple of points
behind (~38%); Phind-V2 is the best open model (~32%); the remaining open
models land in the 10-19% band; CodeLlama-34B scores below CodeLlama-13B
on parallel prompts (the confident-repetition effect)."""

from repro.analysis import fig2_overall

from conftest import publish


def test_fig2_overall(benchmark, k1_runs):
    data, text = benchmark(fig2_overall, k1_runs)
    publish("fig2_overall", text)

    for name, row in data.items():
        assert row["parallel"] < row["serial"], name

    par = {name: row["parallel"] for name, row in data.items()}
    # closed models lead; GPT-3.5 edges out GPT-4
    assert par["GPT-3.5"] >= par["GPT-4"] - 0.02
    assert par["GPT-3.5"] == max(par.values())
    # Phind-V2 best open model
    open_models = ["CodeLlama-7B", "CodeLlama-13B", "StarCoderBase",
                   "CodeLlama-34B", "Phind-CodeLlama-V2"]
    assert max(open_models, key=par.get) == "Phind-CodeLlama-V2"
    # 34B below 13B on parallel prompts
    assert par["CodeLlama-34B"] <= par["CodeLlama-13B"] + 0.02
