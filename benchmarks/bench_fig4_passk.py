"""Figure 4 — pass@k on the parallel prompts for k in {1, 5, 10, 20}
(open models, temperature 0.8, as in §7.1: the chat models are excluded
from the high-sample configuration).

Paper shapes to hold: pass@k rises with k for every model, begins to
plateau by k=20, keeps the same model ordering at every k, and Phind-V2
leads the open models throughout (reaching ~46% at k=20)."""

from repro.analysis import fig4_pass_curve

from conftest import publish

KS = (1, 5, 10, 20)


def test_fig4_pass_at_k(benchmark, passk_runs):
    data, text = benchmark(fig4_pass_curve, passk_runs, KS)
    publish("fig4_passk", text)

    for name, series in data.items():
        vals = [series[k] for k in KS]
        assert all(b >= a for a, b in zip(vals, vals[1:])), name
        # plateau: the k=10 -> 20 gain is smaller than the 1 -> 5 gain
        assert (series[20] - series[10]) <= (series[5] - series[1]) + 1e-9, name

    # Phind-V2 leads the open models at every k
    for k in KS:
        leader = max(data, key=lambda m: data[m][k])
        assert leader == "Phind-CodeLlama-V2", (k, leader)
    # and its k=20 score lands in the paper's neighbourhood (~46%)
    assert 0.30 <= data["Phind-CodeLlama-V2"][20] <= 0.62
