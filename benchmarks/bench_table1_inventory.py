"""Table 1 — the PCGBench inventory: 12 problem types x 5 problems x 7
execution models = 420 prompts.  Benchmarks full benchmark construction
(prompt rendering included)."""

from repro.analysis import table1
from repro.bench import PCGBench

from conftest import publish


def test_table1_inventory(benchmark):
    built = benchmark(PCGBench)
    assert len(built) == 420
    text = table1(built)
    publish("table1_inventory", text)
    assert "TOTAL" in text
