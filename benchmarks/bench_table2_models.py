"""Table 2 — the evaluated models with their published HumanEval/MBPP
scores, plus this reproduction's serial pass@1 as the comparable column."""

from repro.analysis import render_table
from repro.analysis.aggregate import pass_at_k_for
from repro.models import MODEL_CARDS, MODEL_ORDER

from conftest import publish


def test_table2_models(benchmark, k1_runs):
    def build():
        rows = []
        for name in MODEL_ORDER:
            card = MODEL_CARDS[name]
            serial = pass_at_k_for(k1_runs[name].by_exec_model("serial"), 1)
            rows.append((
                name, card["params"] or "-",
                "yes" if card["open_weights"] else "no",
                card["humaneval"] if card["humaneval"] is not None else "-",
                card["mbpp"] if card["mbpp"] is not None else "-",
                f"{100 * serial:.1f}",
            ))
        return render_table(
            ["model", "params", "weights", "HumanEval", "MBPP",
             "PCGBench serial pass@1 (%)"],
            rows, title="Table 2 — evaluated models", floatfmt="{:.2f}",
        )

    text = benchmark(build)
    publish("table2_models", text)
    assert "GPT-4" in text
