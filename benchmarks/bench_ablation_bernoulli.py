"""Ablation D1 (DESIGN.md §5) — real execution vs a coin-flip oracle.

The reproduction's defining design choice is that every sample travels
the full compile → link → usage-check → run → validate pipeline.  This
ablation replaces the harness with a pure Bernoulli oracle that trusts
the profile probability p(correct | model, exec, ptype) directly, and
quantifies what the pipeline adds:

* pipeline effects the oracle cannot see — sequential fallbacks caught by
  the usage check, injected bugs that happen to stay benign, mutations
  whose failure mode depends on input data;
* and, structurally, the oracle has no notion of *performance*: it can
  emit a pass@1 number but no speedup_n@k at all, which is why the paper
  needed a harness rather than an accuracy model.
"""

import numpy as np
import pytest

from repro.analysis import pass_serial_vs_parallel
from repro.models import load_model, profile

from conftest import publish


def bernoulli_pass_at_1(bench, model_name: str, samples: int,
                        seed: int = 11) -> dict:
    """The oracle: per-prompt Bernoulli(p) with no execution at all."""
    prof = profile(model_name)
    rng = np.random.default_rng(seed)
    stats = {"serial": [], "parallel": []}
    for prompt in bench.prompts:
        p = prof.p_correct(prompt.model, prompt.problem.ptype)
        hits = rng.uniform(size=samples) < p
        bucket = "serial" if prompt.model == "serial" else "parallel"
        stats[bucket].append(hits.mean())
    return {k: float(np.mean(v)) for k, v in stats.items()}


@pytest.mark.parametrize("model_name", ["GPT-3.5", "CodeLlama-13B"])
def test_ablation_bernoulli_vs_pipeline(benchmark, bench, k1_runs,
                                        model_name):
    oracle = benchmark(bernoulli_pass_at_1, bench, model_name, 8)
    real = pass_serial_vs_parallel(k1_runs[model_name], k=1)

    lines = [f"Ablation D1 — {model_name}: full pipeline vs Bernoulli oracle"]
    for bucket in ("serial", "parallel"):
        lines.append(
            f"  {bucket:8s}  pipeline {100 * real[bucket]:5.1f}%   "
            f"oracle {100 * oracle[bucket]:5.1f}%   "
            f"gap {100 * (real[bucket] - oracle[bucket]):+5.1f} pts"
        )
    publish(f"ablation_bernoulli_{model_name}", "\n".join(lines))

    # the two agree in broad strokes (the profiles are the common cause)...
    assert abs(real["parallel"] - oracle["parallel"]) < 0.25
    # ...but the pipeline is not a pass-through of the profile: usage
    # checks, benign mutations and data-dependent failures move the number
    assert real != oracle
