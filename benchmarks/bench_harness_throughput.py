"""Microbenchmarks of the harness itself: per-sample cost of the
compile → check → run → validate pipeline under each execution model,
plus end-to-end throughput of the serial loop vs the repro.sched worker
pool at jobs ∈ {1, 2, 4}.

These are genuine wall-clock benchmarks (pytest-benchmark's bread and
butter) and what bounds the cost of a full 420-prompt evaluation pass.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.bench import PCGBench, all_problems, render_prompt
from repro.harness import Runner, evaluate_model
from repro.models import load_model
from repro.models.solutions import variants_for
from repro.sched import Telemetry

_RUNNER = Runner(correctness_trials=2)
_PROBLEM = next(p for p in all_problems() if p.name == "sum_of_elements")


@pytest.mark.parametrize(
    "model", ["serial", "openmp", "kokkos", "mpi", "mpi+omp", "cuda"]
)
def test_sample_evaluation_throughput(benchmark, model):
    prompt = render_prompt(_PROBLEM, model)
    source = variants_for(_PROBLEM, model)[0].source
    result = benchmark(_RUNNER.evaluate_sample, source, prompt)
    assert result.status == "correct"


def test_compile_throughput(benchmark):
    from repro.harness import compile_sample

    source = variants_for(_PROBLEM, "openmp")[0].source
    program, reason = benchmark(compile_sample, source, "openmp")
    assert program is not None, reason


def test_timing_sweep_throughput(benchmark):
    prompt = render_prompt(_PROBLEM, "openmp")
    source = variants_for(_PROBLEM, "openmp")[0].source
    program, _ = __import__("repro.harness", fromlist=["compile_sample"]) \
        .compile_sample(source, "openmp")

    result = benchmark(_RUNNER.measure, program, prompt)
    assert set(result) == set(_RUNNER.thread_counts)


# -- scheduler vs serial loop ---------------------------------------------------

def _sched_workload():
    """A moderate slice: 30 prompts x 6 samples with timing sweeps."""
    bench = PCGBench(problem_types=["transform", "reduce"],
                     models=["serial", "openmp", "kokkos"])
    return load_model("GPT-3.5"), bench


def _sched_pass(llm, bench, jobs):
    return evaluate_model(llm, bench, num_samples=6, temperature=0.2,
                          with_timing=True, seed=21, jobs=jobs)


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_scheduler_throughput(benchmark, jobs):
    """Wall-clock of one full evaluation pass: serial loop (jobs=1) vs
    the worker pool.  The pool wins even on one core because content-hash
    task dedup evaluates each distinct generated source once."""
    llm, bench = _sched_workload()
    run = benchmark.pedantic(_sched_pass, args=(llm, bench, jobs),
                             rounds=2, iterations=1, warmup_rounds=0)
    assert len(run.prompts) == len(bench.prompts)


# -- tiered vectorized execution -----------------------------------------------

_BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_harness.json"


def _record_baseline(**updates):
    """Read-modify-write the committed baseline file, so the vectorize
    and hedging recorders can each refresh their own keys."""
    doc = {}
    if _BASELINE_PATH.exists():
        doc = json.loads(_BASELINE_PATH.read_text())
    doc.update(updates)
    _BASELINE_PATH.write_text(json.dumps(doc, indent=2) + "\n")

#: Element-wise affine workloads the numpy tier lowers to bulk kernels.
#: (Problems whose bodies divide, branch, or call builtins stay scalar by
#: design — see docs/vectorize.md — so they are not speedup cases.)
_VEC_CASES = [("sum_of_elements", "serial"), ("sum_of_elements", "openmp"),
              ("sum_of_squares", "openmp"), ("cube_elements", "serial"),
              ("cube_elements", "kokkos")]


def _vec_case_inputs(name, model):
    problem = next(p for p in all_problems() if p.name == name)
    return render_prompt(problem, model), variants_for(problem, model)[0].source


def _tier_seconds(runner, prompt, source, repeats, batch=8):
    """Best-of-N wall-clock of a *batch* of timed evaluations — a single
    evaluation is ~1ms here, so batching keeps timer noise out of the
    regression gate."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(batch):
            result = runner.evaluate_sample(source, prompt, with_timing=True)
            assert result.status == "correct", result.detail
        best = min(best, time.perf_counter() - t0)
    return best


def measure_vectorize_speedups(repeats=5):
    """Per-case wall-clock speedup of the numpy tier over the scalar tier
    on the timed pipeline.  A ratio of two timings on the same host, so
    the committed baseline is machine-portable."""
    speedups = {}
    for name, model in _VEC_CASES:
        prompt, source = _vec_case_inputs(name, model)
        on = Runner(correctness_trials=2, vectorize=True)
        off = Runner(correctness_trials=2, vectorize=False)
        on.evaluate_sample(source, prompt, with_timing=True)    # warm caches
        off.evaluate_sample(source, prompt, with_timing=True)
        t_on = _tier_seconds(on, prompt, source, repeats)
        t_off = _tier_seconds(off, prompt, source, repeats)
        speedups[f"{name}/{model}"] = t_off / t_on
    return speedups


@pytest.mark.parametrize("vectorize", [False, True],
                         ids=["vec-off", "vec-on"])
def test_vectorized_tier_throughput(benchmark, vectorize):
    """Per-sample timed-pipeline cost on each execution tier — the pair of
    numbers behind the committed BENCH_harness.json speedups."""
    prompt, source = _vec_case_inputs("cube_elements", "openmp")
    runner = Runner(correctness_trials=2, vectorize=vectorize)
    result = benchmark(runner.evaluate_sample, source, prompt,
                       with_timing=True)
    assert result.status == "correct"


def test_vectorize_speedup_meets_baseline():
    """The acceptance check + CI perf-regression gate for the numpy tier:
    element-wise problems run >=2x faster with the tier on, and no case
    drops more than 20% below the speedup recorded in BENCH_harness.json.

    Re-record after a deliberate change with::

        REPRO_BENCH_RECORD=1 PYTHONPATH=src python -m pytest \
            benchmarks/bench_harness_throughput.py -k speedup
    """
    measured = measure_vectorize_speedups()
    geomean = 1.0
    for speedup in measured.values():
        geomean *= speedup
    geomean **= 1.0 / len(measured)
    print("\nvectorize speedup (timed pipeline, scalar/numpy):")
    for case, speedup in measured.items():
        print(f"  {case:28s} {speedup:5.2f}x")
    print(f"  {'geomean':28s} {geomean:5.2f}x")
    if os.environ.get("REPRO_BENCH_RECORD"):
        _record_baseline(
            comment="wall-clock speedup of the numpy tier over the "
                    "scalar tier on the timed pipeline; same-host "
                    "ratios, so portable across machines",
            vectorize_speedup={k: round(v, 2)
                               for k, v in measured.items()},
            geomean=round(geomean, 2))
        return
    baseline = json.loads(_BASELINE_PATH.read_text())
    assert set(measured) == set(baseline["vectorize_speedup"])
    assert geomean >= 2.0, \
        f"geomean {geomean:.2f}x is below the 2x acceptance floor"
    assert geomean >= baseline["geomean"] * 0.8, (
        f"geomean {geomean:.2f}x regressed >20% below the recorded "
        f"{baseline['geomean']:.2f}x")
    for case, speedup in measured.items():
        # per-case floor: a lowering that stops firing shows up as ~1.0x
        assert speedup >= 1.5, \
            f"{case}: {speedup:.2f}x — did the bulk lowering stop firing?"


# -- guard supervision: straggler hedging --------------------------------------

def _hedged_pass(llm, bench, hedging):
    from repro.guard import GuardPolicy

    return evaluate_model(llm, bench, num_samples=6, temperature=0.2,
                          with_timing=True, seed=21, jobs=2,
                          guard=GuardPolicy(hedge=hedging))


@pytest.mark.parametrize("hedging", [False, True],
                         ids=["hedge-off", "hedge-on"])
def test_scheduler_hedging_throughput(benchmark, hedging):
    """Full scheduled pass with straggler hedging on vs off — the axis
    behind the committed hedging-overhead baseline."""
    llm, bench = _sched_workload()
    run = benchmark.pedantic(_hedged_pass, args=(llm, bench, hedging),
                             rounds=2, iterations=1, warmup_rounds=0)
    assert len(run.prompts) == len(bench.prompts)


def test_hedging_overhead_meets_baseline():
    """The acceptance check for hedging: byte-identical output, and the
    hedged pass stays within 25% of the unhedged pass when nothing
    straggles (speculation only spends otherwise-idle workers).

    Re-record after a deliberate change with::

        REPRO_BENCH_RECORD=1 PYTHONPATH=src python -m pytest \
            benchmarks/bench_harness_throughput.py -k hedging_overhead
    """
    llm, bench = _sched_workload()
    _hedged_pass(llm, bench, hedging=False)     # warm compile/solutions
    best = {}
    runs = {}
    for hedging in (False, True):
        best[hedging] = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            runs[hedging] = _hedged_pass(llm, bench, hedging)
            best[hedging] = min(best[hedging], time.perf_counter() - t0)
    overhead = best[True] / best[False]
    print(f"\nhedging: off {best[False]:.2f}s vs on {best[True]:.2f}s "
          f"({overhead - 1.0:+.1%})")
    assert runs[True].to_json() == runs[False].to_json()
    if os.environ.get("REPRO_BENCH_RECORD"):
        _record_baseline(hedging={
            "comment": "wall-clock ratio of a hedged jobs=2 pass over "
                       "an unhedged one; ~1.0 when nothing straggles",
            "jobs": 2, "overhead": round(overhead, 3)})
        return
    baseline = json.loads(_BASELINE_PATH.read_text())["hedging"]
    assert overhead < max(1.25, baseline["overhead"] * 1.2), (
        f"hedging overhead {overhead:.2f}x regressed past the recorded "
        f"{baseline['overhead']:.2f}x")


# -- MiniParSan pre-execution screen -------------------------------------------

def _mutant_heavy_samples():
    """Race/deadlock mutants of every parallel solution: the workload the
    static screen is built for (each one costs a full Tracer conviction
    when executed dynamically)."""
    import numpy as np

    from repro.models.mutate import _MUTATORS, mutator_names

    race_muts = ["drop_reduction_clause", "drop_atomic_pragma",
                 "drop_critical", "atomic_to_plain", "inplace_stencil",
                 "mpi_collective_skew", "mpi_recv_deadlock"]
    samples = []
    for p in all_problems():
        for model in ("openmp", "kokkos", "mpi", "mpi+omp", "cuda"):
            variants = variants_for(p, model)
            if not variants:
                continue
            applicable = set(mutator_names(model))
            for name in race_muts:
                if name not in applicable:
                    continue
                mutated = _MUTATORS[name](variants[0].source,
                                          np.random.default_rng(7))
                if mutated is not None and mutated != variants[0].source:
                    samples.append((render_prompt(p, model), mutated))
    return samples


def _screen_pass(samples, static_screen):
    runner = Runner(correctness_trials=2, static_screen=static_screen)
    return [runner.evaluate_sample(src, prompt).status
            for prompt, src in samples]


def test_static_screen_reduces_wall_time_on_mutants():
    """The acceptance check: short-circuiting definite diagnostics to
    ``static_fail`` beats executing every racy mutant under the Tracer."""
    samples = _mutant_heavy_samples()
    t0 = time.perf_counter()
    off = _screen_pass(samples, static_screen=False)
    t_off = time.perf_counter() - t0
    t0 = time.perf_counter()
    on = _screen_pass(samples, static_screen=True)
    t_on = time.perf_counter() - t0
    screened = sum(s == "static_fail" for s in on)
    print(f"\nstatic screen: off {t_off:.2f}s vs on {t_on:.2f}s over "
          f"{len(samples)} mutants ({screened} screened statically)")
    assert screened > 0
    assert t_on < t_off


@pytest.mark.parametrize("static_screen", [False, True],
                         ids=["screen-off", "screen-on"])
def test_mutant_screen_throughput(benchmark, static_screen):
    samples = _mutant_heavy_samples()[:20]
    benchmark.pedantic(_screen_pass, args=(samples, static_screen),
                       rounds=2, iterations=1, warmup_rounds=0)


# -- fault injector hot-path overhead ------------------------------------------

def test_idle_injector_adds_no_overhead():
    """The acceptance check for ``repro.faults``: an installed injector
    with a fault-free plan must cost nothing on the hot path — `fire()`
    never runs for unlisted points — and must not perturb a single byte
    of the run."""
    from repro.faults import FaultPlan, injector

    llm, bench = _sched_workload()
    t0 = time.perf_counter()
    bare = _sched_pass(llm, bench, jobs=1)
    t_bare = time.perf_counter() - t0
    t0 = time.perf_counter()
    with injector(FaultPlan(rules=())) as inj:
        installed = _sched_pass(llm, bench, jobs=1)
    t_installed = time.perf_counter() - t0
    print(f"\nidle injector: bare {t_bare:.2f}s vs installed "
          f"{t_installed:.2f}s ({t_installed / t_bare - 1.0:+.1%})")
    assert installed.to_json() == bare.to_json()
    assert inj.events == []
    # generous noise margin: the guard is one global load per site
    assert t_installed < t_bare * 1.10


@pytest.mark.parametrize("installed", [False, True],
                         ids=["no-injector", "idle-injector"])
def test_injector_guard_throughput(benchmark, installed):
    """Per-sample pipeline cost with and without an idle injector — the
    pair of numbers that quantifies the `inject.ACTIVE` guard."""
    from repro.faults import FaultPlan, injector

    prompt = render_prompt(_PROBLEM, "openmp")
    source = variants_for(_PROBLEM, "openmp")[0].source
    if installed:
        with injector(FaultPlan(rules=())):
            result = benchmark(_RUNNER.evaluate_sample, source, prompt)
    else:
        result = benchmark(_RUNNER.evaluate_sample, source, prompt)
    assert result.status == "correct"


# -- cost-decomposed profiler overhead -----------------------------------------

def test_profiling_off_is_free_on_is_bounded():
    """The acceptance check for ``repro.prof``: with ``profile=False``
    every instrumentation site is one ``ctx.prof is None`` load (the
    default path *is* today's pipeline), and turning profiling on only
    decorates the run — same statuses and times, bounded wall overhead."""
    import json

    llm, bench = _sched_workload()
    _sched_pass(llm, bench, jobs=1)     # warm compile/solution caches
    t0 = time.perf_counter()
    off = _sched_pass(llm, bench, jobs=1)
    t_off = time.perf_counter() - t0
    t0 = time.perf_counter()
    on = evaluate_model(llm, bench, num_samples=6, temperature=0.2,
                        with_timing=True, seed=21, profile=True)
    t_on = time.perf_counter() - t0
    print(f"\nprofiler: off {t_off:.2f}s vs on {t_on:.2f}s "
          f"({t_on / t_off - 1.0:+.1%})")

    def strip(run):
        doc = json.loads(run.to_json())
        for rec in doc["prompts"].values():
            for sample in rec["samples"]:
                sample.pop("profile", None)
        return doc

    assert strip(on) == strip(off)
    assert any(s.profile for r in on.prompts.values() for s in r.samples)
    # attribution is bookkeeping on already-priced quantities; generous
    # noise margin, same spirit as the idle-injector bound above
    assert t_on < t_off * 1.25


@pytest.mark.parametrize("profile", [False, True],
                         ids=["prof-off", "prof-on"])
def test_profiler_guard_throughput(benchmark, profile):
    """Per-sample timed-pipeline cost with and without profiling — the
    pair of numbers that quantifies the ``ctx.prof`` guard."""
    prompt = render_prompt(_PROBLEM, "openmp")
    source = variants_for(_PROBLEM, "openmp")[0].source
    result = benchmark(_RUNNER.evaluate_sample, source, prompt,
                       with_timing=True, profile=profile)
    assert result.status == "correct"
    assert (result.profile is not None) == profile


# -- cost-predictive dispatch: makespan on skewed workloads ---------------------

def _dispatch_sleep(ctx, payload):
    """Synthetic task: cost is the payload, exactly — the pure-dispatch
    workload (no harness noise) behind the committed makespan baseline."""
    time.sleep(payload["seconds"])
    return {"status": "ok", "seconds": payload["seconds"]}


def _skewed_tasks():
    """The longest-task-last pathology: one 0.8s task buried near the
    end of FIFO order behind forty 0.06s tasks.  FIFO strands one worker
    on the long task after the shorts have drained; LPT starts it first
    and packs the shorts around it (0.8 ~= sum(shorts)/(jobs-1), the
    skew that maximises the gap between the two policies)."""
    tasks = [(f"short-{i:03d}", {"seconds": 0.06}) for i in range(40)]
    tasks.insert(36, ("long-000", {"seconds": 0.8}))
    return tasks


def _dispatch_pass(policy, jobs=4):
    """One pool pass over the skewed workload under ``policy``; returns
    (makespan, queue-wait p50, queue-wait p95), measured from the first
    task dispatch so process-spawn cost cancels out of the comparison."""
    from repro.sched import WorkerPool, order_tasks
    from repro.sched.events import TaskStarted

    tasks = _skewed_tasks()
    predictions = {tid: (payload["seconds"], "ledger")
                   for tid, payload in tasks}
    order = order_tasks([tid for tid, _ in tasks], policy, predictions)
    payloads = dict(tasks)
    started = {}

    def sink(event):
        if isinstance(event, TaskStarted):
            started.setdefault(event.task_id, time.perf_counter())

    pool = WorkerPool(jobs=jobs, work_fn=_dispatch_sleep, emit=sink)
    executed, failures = pool.run([(tid, payloads[tid]) for tid in order],
                                  predictions=predictions)
    done = time.perf_counter()
    assert not failures and len(executed) == len(tasks)
    t0 = min(started.values())
    waits = sorted(t - t0 for t in started.values())
    return (done - t0, waits[len(waits) // 2],
            waits[min(len(waits) - 1, int(len(waits) * 0.95))])


@pytest.mark.parametrize("policy", ["fifo", "lpt"])
def test_dispatch_makespan_throughput(benchmark, policy):
    """Makespan of the skewed workload under each dispatch policy — the
    pair of numbers behind the committed dispatch baseline."""
    makespan, _, _ = benchmark.pedantic(_dispatch_pass, args=(policy,),
                                        rounds=2, iterations=1,
                                        warmup_rounds=0)
    assert makespan > 0


def test_dispatch_makespan_meets_baseline():
    """The acceptance check + CI perf-regression gate for LPT dispatch:
    on the skewed workload at jobs=4, LPT cuts makespan >=20% vs FIFO,
    and neither the improvement nor the absolute LPT makespan regresses
    more than 20% past the committed baseline (the workload is
    sleep-dominated, so absolute seconds are machine-portable).

    Re-record after a deliberate change with::

        REPRO_BENCH_RECORD=1 PYTHONPATH=src python -m pytest \
            benchmarks/bench_harness_throughput.py -k dispatch_makespan
    """
    best = {}
    wait_p50 = {}
    wait_p95 = {}
    for policy in ("fifo", "lpt"):
        best[policy] = float("inf")
        for _ in range(2):
            makespan, p50, p95 = _dispatch_pass(policy)
            if makespan < best[policy]:
                best[policy] = makespan
                wait_p50[policy], wait_p95[policy] = p50, p95
    improvement = 1.0 - best["lpt"] / best["fifo"]
    print(f"\ndispatch makespan (jobs=4, skewed): "
          f"fifo {best['fifo']:.3f}s vs lpt {best['lpt']:.3f}s "
          f"({improvement:+.1%}); queue-wait p95 "
          f"fifo {wait_p95['fifo']:.3f}s vs lpt {wait_p95['lpt']:.3f}s")
    if os.environ.get("REPRO_BENCH_RECORD"):
        _record_baseline(dispatch={
            "comment": "makespan of a skewed sleep workload (one 0.8s "
                       "task behind forty 0.06s tasks) on a jobs=4 pool "
                       "under each dispatch policy; sleep-dominated, so "
                       "portable across machines",
            "jobs": 4,
            "fifo_makespan": round(best["fifo"], 3),
            "lpt_makespan": round(best["lpt"], 3),
            "improvement": round(improvement, 3),
            "queue_wait_p50": {k: round(v, 3)
                               for k, v in wait_p50.items()},
            "queue_wait_p95": {k: round(v, 3)
                               for k, v in wait_p95.items()},
        })
        return
    baseline = json.loads(_BASELINE_PATH.read_text())["dispatch"]
    assert improvement >= 0.20, (
        f"LPT improved makespan only {improvement:.1%} over FIFO — "
        "below the 20% acceptance floor")
    assert best["lpt"] <= baseline["lpt_makespan"] * 1.2, (
        f"LPT makespan {best['lpt']:.3f}s regressed >20% past the "
        f"recorded {baseline['lpt_makespan']:.3f}s")


def test_scheduler_beats_serial():
    """The acceptance check: jobs=4 beats the serial loop outright."""
    llm, bench = _sched_workload()
    t0 = time.perf_counter()
    serial = _sched_pass(llm, bench, jobs=1)
    t_serial = time.perf_counter() - t0
    tel = Telemetry()
    t0 = time.perf_counter()
    parallel = evaluate_model(llm, bench, num_samples=6, temperature=0.2,
                              with_timing=True, seed=21, jobs=4, events=tel)
    t_parallel = time.perf_counter() - t0
    print(f"\nscheduler: jobs=1 {t_serial:.2f}s vs jobs=4 {t_parallel:.2f}s "
          f"({tel.executed} unique tasks, utilization "
          f"{tel.utilization():.0%})")
    assert parallel.to_json() == serial.to_json()
    assert t_parallel < t_serial
