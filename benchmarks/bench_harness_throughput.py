"""Microbenchmarks of the harness itself: per-sample cost of the
compile → check → run → validate pipeline under each execution model.

These are genuine wall-clock benchmarks (pytest-benchmark's bread and
butter) and what bounds the cost of a full 420-prompt evaluation pass.
"""

import pytest

from repro.bench import all_problems, render_prompt
from repro.harness import Runner
from repro.models.solutions import variants_for

_RUNNER = Runner(correctness_trials=2)
_PROBLEM = next(p for p in all_problems() if p.name == "sum_of_elements")


@pytest.mark.parametrize(
    "model", ["serial", "openmp", "kokkos", "mpi", "mpi+omp", "cuda"]
)
def test_sample_evaluation_throughput(benchmark, model):
    prompt = render_prompt(_PROBLEM, model)
    source = variants_for(_PROBLEM, model)[0].source
    result = benchmark(_RUNNER.evaluate_sample, source, prompt)
    assert result.status == "correct"


def test_compile_throughput(benchmark):
    from repro.harness import compile_sample

    source = variants_for(_PROBLEM, "openmp")[0].source
    program, reason = benchmark(compile_sample, source, "openmp")
    assert program is not None, reason


def test_timing_sweep_throughput(benchmark):
    prompt = render_prompt(_PROBLEM, "openmp")
    source = variants_for(_PROBLEM, "openmp")[0].source
    program, _ = __import__("repro.harness", fromlist=["compile_sample"]) \
        .compile_sample(source, "openmp")

    result = benchmark(_RUNNER.measure, program, prompt)
    assert set(result) == set(_RUNNER.thread_counts)
