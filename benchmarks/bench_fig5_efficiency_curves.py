"""Figure 5 — efficiency_n@1 across processor counts for MPI (ranks),
OpenMP and Kokkos (threads); search prompts excluded (footnote 1).

Paper shapes to hold: OpenMP efficiency starts high and decays with
thread count; Kokkos curves are flatter across n than OpenMP's; Phind-V2
is the most efficient model on MPI prompts; GPT-4 is in the top tier for
OpenMP and Kokkos."""

from repro.analysis import fig5_efficiency_curves

from conftest import publish

MPI_NS = (1, 4, 16, 64, 256, 512)
THREAD_NS = (1, 2, 4, 8, 16, 32)


def test_fig5_efficiency_curves(benchmark, timed_runs):
    data, text = benchmark(fig5_efficiency_curves, timed_runs,
                           MPI_NS, THREAD_NS)
    publish("fig5_efficiency_curves", text)

    omp, kokkos, mpi = data["openmp"], data["kokkos"], data["mpi"]

    for name in omp:
        if omp[name][1] <= 0:
            continue  # model solved too few OpenMP prompts to compare
        # efficiency decays from 1-2 threads to 32
        assert omp[name][32] < omp[name][2] + 1e-9, name

    # Kokkos flatter than OpenMP: relative drop from 8 to 32 threads is
    # smaller for Kokkos, averaged over models that solved both
    drops_omp, drops_kk = [], []
    for name in omp:
        if omp[name][8] > 0 and kokkos[name][8] > 0:
            drops_omp.append(omp[name][32] / omp[name][8])
            drops_kk.append(kokkos[name][32] / kokkos[name][8])
    assert drops_kk and sum(drops_kk) / len(drops_kk) >= \
        sum(drops_omp) / len(drops_omp) - 0.05

    # Phind-V2 tops MPI efficiency at scale
    at512 = {name: series[512] for name, series in mpi.items()}
    top_mpi = sorted(at512, key=at512.get, reverse=True)[:2]
    assert "Phind-CodeLlama-V2" in top_mpi, at512

    # GPT-4 in the top tier for the shared-memory models at 32 threads
    for series in (omp, kokkos):
        at32 = {name: s[32] for name, s in series.items()}
        top3 = sorted(at32, key=at32.get, reverse=True)[:3]
        assert "GPT-4" in top3, at32
