"""Figure 3 — pass@1 per problem type.

Paper shapes to hold: transform (near-)best, sparse linear algebra worst,
bottom five = {sparse_la, scan, fft, geometry, sort}, smaller open models
rank graph higher than the top models do.

Statistical note: each (model, ptype) cell is 35 prompts whose outcomes
are near-deterministic at temperature 0.2, so single-model tail *order*
carries ±1-2 positions of frozen sampling noise — in the paper exactly as
here (GPT-4 already displaces sort for graph).  The strong assertions are
therefore made on the across-model mean profile, where the noise averages
out, with weaker per-model constraints on top."""

import numpy as np

from repro.analysis import fig3_pass_by_ptype

from conftest import publish

PAPER_BOTTOM_FIVE = {"sparse_la", "scan", "fft", "geometry", "sort"}


def test_fig3_problem_types(benchmark, k1_runs):
    data, text = benchmark(fig3_pass_by_ptype, k1_runs)
    publish("fig3_problem_types", text)

    ptypes = list(next(iter(data.values())))
    mean_profile = {
        pt: float(np.mean([row[pt] for row in data.values()]))
        for pt in ptypes
    }
    mean_ranked = sorted(mean_profile, key=mean_profile.get, reverse=True)

    # --- across-model profile: the paper's core claims ---
    assert "transform" in mean_ranked[:2], mean_ranked
    assert set(mean_ranked[-5:]) == PAPER_BOTTOM_FIVE, mean_ranked
    assert "sparse_la" in mean_ranked[-3:], mean_ranked
    # easy tier leads: transform/search/reduce occupy the top three
    assert set(mean_ranked[:3]) <= {"transform", "search", "reduce"}, mean_ranked

    # --- weak per-model constraints (noise-tolerant) ---
    for name, row in data.items():
        ranked = sorted(row, key=row.get, reverse=True)
        assert "transform" in ranked[:5], (name, ranked)
        assert "sparse_la" not in ranked[:4], (name, ranked)

    # small-model quirk: graph ranks higher for CodeLlama-7B than GPT-4
    def rank_of(name, ptype):
        ranked = sorted(data[name], key=data[name].get, reverse=True)
        return ranked.index(ptype)

    assert rank_of("CodeLlama-7B", "graph") < rank_of("GPT-4", "graph")
