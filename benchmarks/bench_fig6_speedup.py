"""Figure 6 — speedup_n@1 for the parallel prompts at the paper's
headline processor counts (32 threads OpenMP/Kokkos, 512 ranks MPI,
4x64 hybrid, kernel threads for CUDA/HIP); search excluded.

Paper shapes to hold: GPT-4 posts the highest overall parallel speedup
(the paper's 20.28x headline) even though GPT-3.5 has the higher pass@1;
the CodeLlama family trails the field."""

from repro.analysis import fig6_speedups

from conftest import publish


def test_fig6_speedups(benchmark, timed_runs):
    data, text = benchmark(fig6_speedups, timed_runs)
    publish("fig6_speedup", text)

    overall = {name: row["all-parallel"] for name, row in data.items()}
    # GPT-4 is the speedup leader despite not leading pass@1
    assert max(overall, key=overall.get) == "GPT-4", overall
    # and the headline number is a genuine parallel speedup, of the same
    # order as the paper's 20x (shape, not absolute agreement)
    assert 4.0 <= overall["GPT-4"] <= 80.0, overall

    # CodeLlama base models trail the closed models
    for name in ("CodeLlama-7B", "CodeLlama-34B"):
        assert overall[name] < overall["GPT-4"], overall
