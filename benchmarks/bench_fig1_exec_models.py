"""Figure 1 — pass@1 per execution model per LLM.

Paper shape to hold: every model orders serial (best) > OpenMP >
CUDA/HIP ~ Kokkos > MPI/MPI+OpenMP (worst), with Kokkos varying between
model sizes (small models sink on Kokkos; large models keep it just
behind OpenMP)."""

from repro.analysis import fig1_pass_by_exec_model

from conftest import publish


def test_fig1_pass_by_exec_model(benchmark, k1_runs):
    data, text = benchmark(fig1_pass_by_exec_model, k1_runs)
    publish("fig1_exec_models", text)

    for name, row in data.items():
        # serial dominates every parallel model
        for m in ("openmp", "kokkos", "mpi", "mpi+omp", "cuda", "hip"):
            assert row["serial"] >= row[m], (name, m)
        # MPI-family at the bottom of the parallel ordering
        assert row["openmp"] >= row["mpi+omp"], name

    # the paper's headline OpenMP observation: GPT-4 nearly closes the
    # serial gap on OpenMP
    gpt4 = data["GPT-4"]
    assert gpt4["openmp"] >= 0.55 * gpt4["serial"]
