"""Ablation — machine-model sensitivity.

The cost-model constants are synthetic, so the reproduction's claims must
be *robust* to them in direction even if not in magnitude.  This ablation
re-times one well-formed OpenMP solution under three machine variants and
checks the knobs act as documented (docs/cost_model.md):

* higher memory-saturation point => better 32-thread efficiency;
* heavier fork/join => worse small-problem scaling;
* the OpenMP-decays-vs-Kokkos-flat contrast survives all variants.
"""

from repro.analysis.tables import render_table
from repro.bench import all_problems, render_prompt
from repro.harness import Runner, compile_sample
from repro.models.solutions import variants_for
from repro.runtime import DEFAULT_MACHINE, CPUSpec

from conftest import publish

MACHINES = {
    "default": DEFAULT_MACHINE,
    "wide-memory": DEFAULT_MACHINE.with_overrides(
        cpu=CPUSpec(mem_sat=26.0)),
    "fat-fork": DEFAULT_MACHINE.with_overrides(
        cpu=CPUSpec(omp_fork_per_thread=900.0)),
}


def _efficiency(machine, problem, model, source):
    runner = Runner(machine=machine)
    program, err = compile_sample(source, model)
    assert program is not None, err
    times = runner.measure(program, render_prompt(problem, model))
    t_star = runner.baseline_time(problem)
    return {n: t_star / t / n for n, t in times.items()}


def test_ablation_machine_sensitivity(benchmark):
    problem = next(p for p in all_problems() if p.name == "axpy")
    omp_src = variants_for(problem, "openmp")[0].source
    kk_src = variants_for(problem, "kokkos")[0].source

    def build():
        rows = []
        effs = {}
        for name, machine in MACHINES.items():
            omp = _efficiency(machine, problem, "openmp", omp_src)
            kk = _efficiency(machine, problem, "kokkos", kk_src)
            effs[name] = (omp, kk)
            rows.append((name, f"{omp[2]:.3f}", f"{omp[32]:.3f}",
                         f"{kk[2]:.3f}", f"{kk[32]:.3f}"))
        return rows, effs

    rows, effs = benchmark(build)
    publish("ablation_machine", render_table(
        ["machine", "omp eff@2", "omp eff@32", "kokkos eff@2",
         "kokkos eff@32"],
        rows, title="Ablation — cost-model sensitivity (axpy efficiency)",
    ))

    default_omp, default_kk = effs["default"]
    wide_omp, _ = effs["wide-memory"]
    fat_omp, fat_kk = effs["fat-fork"]

    # knob 1: more memory bandwidth lifts high-thread-count efficiency
    assert wide_omp[32] > default_omp[32]
    # knob 2: heavier fork/join hurts OpenMP but not Kokkos
    assert fat_omp[32] < default_omp[32]
    assert fat_kk[32] == default_kk[32]
    # invariant: the Fig. 5 contrast (Kokkos flatter from 8 -> 32 threads)
    # survives every machine variant
    for name, (omp, kk) in effs.items():
        assert kk[32] / kk[8] >= omp[32] / omp[8] - 0.05, name
