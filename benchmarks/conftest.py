"""Shared fixtures for the per-figure benchmark harness.

Three full-benchmark evaluation passes back every figure, mirroring the
paper's §7.1 generation configurations:

* ``k1_runs``    — 8 samples/prompt at temperature 0.2 (paper: 20), all
  seven models; backs Figures 1-3 and Table 2's surrogate columns.
* ``passk_runs`` — 40 samples/prompt at temperature 0.8 (paper: 200),
  open models only (the paper excludes GPT-3.5/4 from this config for
  cost); backs Figure 4.
* ``timed_runs`` — 5 samples/prompt at temperature 0.2 with full timing
  sweeps; backs Figures 5-7.

Sample counts are scaled down from the paper's so the cold-cache pass
stays in minutes; scale further with ``REPRO_SAMPLES=<n>`` or re-scale up
for a closer replication.  All passes are cached under ``.repro_cache``
(override with ``REPRO_CACHE``), so the benchmarked figure builders

measure aggregation cost against warm results, the way the paper's plots
are regenerated from measurement logs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import PCGBench
from repro.harness import EvalCache, Runner
from repro.models import MODEL_ORDER, load_model, profile

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

K1_SAMPLES = 8
PASSK_SAMPLES = 40
TIMED_SAMPLES = 5


@pytest.fixture(scope="session")
def bench():
    return PCGBench()


@pytest.fixture(scope="session")
def cache():
    return EvalCache()


@pytest.fixture(scope="session")
def runner():
    return Runner()


@pytest.fixture(scope="session")
def k1_runs(bench, cache, runner):
    return {
        name: cache.get_or_run(load_model(name), bench,
                               num_samples=K1_SAMPLES, temperature=0.2,
                               seed=11, runner=runner)
        for name in MODEL_ORDER
    }


@pytest.fixture(scope="session")
def passk_runs(bench, cache, runner):
    open_models = [m for m in MODEL_ORDER if not profile(m).chat_only]
    return {
        name: cache.get_or_run(load_model(name), bench,
                               num_samples=PASSK_SAMPLES, temperature=0.8,
                               seed=13, runner=runner)
        for name in open_models
    }


@pytest.fixture(scope="session")
def timed_runs(bench, cache, runner):
    return {
        name: cache.get_or_run(load_model(name), bench,
                               num_samples=TIMED_SAMPLES, temperature=0.2,
                               with_timing=True, seed=17, runner=runner)
        for name in MODEL_ORDER
    }


def publish(name: str, text: str) -> None:
    """Write a figure/table's text rendering into results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
