"""build@k — reported alongside pass@k in the paper's §7.3.

build@k is the probability that at least one of k samples *compiles and
links* (regardless of correctness).  Shapes to hold: build@1 dominates
pass@1 for every model (compiling is necessary, not sufficient), and the
build/pass gap is wider on parallel prompts than serial ones — parallel
APIs give models more ways to write plausible-but-wrong code that still
compiles."""

from repro.analysis.aggregate import build_at_k_for, pass_at_k_for
from repro.analysis.tables import per_model_table

from conftest import publish


def test_buildk(benchmark, k1_runs):
    def build():
        data = {}
        for name, run in k1_runs.items():
            serial = run.by_exec_model("serial")
            parallel = run.parallel_prompts()
            data[name] = {
                "serial build@1": build_at_k_for(serial, 1),
                "serial pass@1": pass_at_k_for(serial, 1),
                "parallel build@1": build_at_k_for(parallel, 1),
                "parallel pass@1": pass_at_k_for(parallel, 1),
            }
        return data

    data = benchmark(build)
    text = per_model_table(
        "build@1 vs pass@1 (%) — §7.3",
        ["serial build@1", "serial pass@1",
         "parallel build@1", "parallel pass@1"],
        data,
    )
    publish("buildk", text)

    for name, row in data.items():
        assert row["serial build@1"] >= row["serial pass@1"], name
        assert row["parallel build@1"] >= row["parallel pass@1"], name
        gap_serial = row["serial build@1"] - row["serial pass@1"]
        gap_parallel = row["parallel build@1"] - row["parallel pass@1"]
        assert gap_parallel >= gap_serial - 0.05, name
