"""The acceptance scenario: the profiler mechanically reproduces the
paper's Figure 5 explanation.  On a stencil, the OpenMP efficiency decay
is attributed to fork/join overhead (growing with thread count) plus the
memory-bandwidth floor, while the Kokkos twin's persistent pool keeps its
dispatch cost flat."""

import pytest

from repro.bench import PCGBench
from repro.harness import Runner, evaluate_model
from repro.models import load_model
from repro.models.solutions import variants_for
from repro.prof import classify_bottleneck


@pytest.fixture(scope="module")
def runner():
    return Runner()


@pytest.fixture(scope="module")
def profiles(runner):
    bench = PCGBench(problem_types=["stencil"])
    out = {}
    for prompt in bench.prompts:
        if prompt.problem.name != "jacobi_2d" \
                or prompt.model not in ("openmp", "kokkos"):
            continue
        variant = variants_for(prompt.problem, prompt.model)[0]
        res = runner.evaluate_sample(variant.source, prompt,
                                     with_timing=True, profile=True)
        assert res.status == "correct", (prompt.uid, res.detail)
        out[prompt.model] = res.profile
    assert set(out) == {"openmp", "kokkos"}
    return out


class TestFigure5Mechanism:
    def test_openmp_decay_is_fork_join_plus_memory(self, profiles):
        prof = profiles["openmp"]
        ns = [n for n in prof.ns() if n > 1]
        fork = [prof.at(n).get("fork_join", 0.0) for n in ns]
        assert all(v > 0.0 for v in fork), "every region pays fork/join"
        assert fork == sorted(fork) and fork[-1] > fork[0], \
            "fork/join grows with thread count"
        top = max(prof.ns())
        assert prof.at(top).get("memory", 0.0) > 0.0, \
            "the largest count hits the bandwidth floor"
        assert prof.share(top, "compute") < 0.9

    def test_kokkos_dispatch_is_flat(self, profiles):
        prof = profiles["kokkos"]
        ns = [n for n in prof.ns() if n > 1]
        dispatch = [prof.at(n).get("dispatch", 0.0) for n in ns]
        assert all(v > 0.0 for v in dispatch)
        assert max(dispatch) < 2.0 * min(dispatch), \
            "persistent pool: dispatch does not grow like fork/join"
        assert all(prof.at(n).get("fork_join", 0.0) == 0.0 for n in ns), \
            "kokkos never pays OpenMP region fork/join"

    def test_openmp_overhead_exceeds_kokkos_at_scale(self, profiles):
        top = max(profiles["openmp"].ns())
        omp = profiles["openmp"].at(top).get("fork_join", 0.0)
        kk = profiles["kokkos"].at(top).get("dispatch", 0.0)
        assert omp > kk, \
            "the mechanism behind the Figure 5 contrast at the largest n"

    def test_both_leave_compute_bound_at_scale(self, profiles):
        for model, prof in profiles.items():
            top = max(prof.ns())
            assert classify_bottleneck(prof.at(top)) != "compute-bound", \
                (model, prof.at(top))


class TestFig8Table:
    def test_lost_cycles_table_renders_both_models(self):
        from repro.analysis import fig8_lost_cycles

        llm = load_model("GPT-3.5")
        bench = PCGBench(problem_types=["stencil"],
                         models=["openmp", "kokkos"])
        run = evaluate_model(llm, bench, num_samples=2, temperature=0.2,
                             with_timing=True, seed=7, profile=True)
        data, text = fig8_lost_cycles({"GPT-3.5": run})
        assert set(data) == {"openmp", "kokkos"}
        assert "lost-cycles share, openmp" in text
        assert "lost-cycles share, kokkos" in text
        assert "lost time by category" in text
        for exec_model in ("openmp", "kokkos"):
            shares = data[exec_model]["GPT-3.5"]
            assert shares, "profiled run must produce series"
            top = max(shares)
            assert 0.0 <= sum(v for k, v in shares[top].items()
                              if k != "compute") <= 1.0
