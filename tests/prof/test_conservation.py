"""Conservation golden tests for every execution model.

The acceptance invariant of :mod:`repro.prof`: at every measured
processor count the profile's category seconds sum to the simulated time
(1e-9 relative), and turning profiling on never perturbs a single float
of the times it decorates.
"""

import pytest

from repro.bench import PCGBench
from repro.bench.spec import EXECUTION_MODELS
from repro.harness import Runner
from repro.models.solutions import variants_for
from repro.prof import CATEGORIES

REL_TOL = 1e-9
#: slice crossing compute-, contention- and memory-shaped problems
PTYPES = ("sort", "reduce", "histogram", "stencil")

#: one counter each runtime family must have produced
EXPECTED_COUNTER = {
    "openmp": "parallel_regions",
    "kokkos": "kokkos_patterns",
    "mpi": "ranks",
    "mpi+omp": "ranks",
    "cuda": "kernel_launches",
    "hip": "kernel_launches",
}


@pytest.fixture(scope="module")
def runner():
    return Runner()


@pytest.fixture(scope="module")
def bench():
    return PCGBench(problem_types=list(PTYPES))


def prompts_for(bench, exec_model):
    """The first prompt of each problem type for one execution model."""
    first = {}
    for p in bench.prompts:
        if p.model == exec_model and p.problem.ptype not in first:
            first[p.problem.ptype] = p
    return [first[pt] for pt in PTYPES]


def assert_conserved(profile, times, where):
    assert set(profile.categories) == set(times), where
    for n, t in sorted(times.items()):
        cats = profile.at(n)
        assert set(cats) <= set(CATEGORIES), (where, n, cats)
        assert all(v >= 0.0 for v in cats.values()), (where, n, cats)
        total = profile.total(n)
        assert abs(total - t) <= REL_TOL * max(abs(t), 1e-300), \
            f"{where} n={n}: categories sum {total!r} != sim {t!r}"


@pytest.mark.parametrize("exec_model", EXECUTION_MODELS)
class TestConservation:
    def test_categories_sum_to_sim_seconds(self, bench, runner, exec_model):
        checked = 0
        for prompt in prompts_for(bench, exec_model):
            variant = variants_for(prompt.problem, prompt.model)[0]
            res = runner.evaluate_sample(variant.source, prompt,
                                         with_timing=True, profile=True)
            assert res.status == "correct", (prompt.uid, res.detail)
            assert res.profile is not None
            assert res.profile.model == exec_model
            assert_conserved(res.profile, res.times, prompt.uid)
            checked += len(res.times)
        assert checked >= len(PTYPES)

    def test_every_variant_tier_conserves(self, bench, runner, exec_model):
        """Each quality tier takes different code paths (atomics vs
        critical sections, schedule kinds); all of them must conserve."""
        prompt = prompts_for(bench, exec_model)[PTYPES.index("histogram")]
        for i, variant in enumerate(variants_for(prompt.problem,
                                                 prompt.model)):
            res = runner.evaluate_sample(variant.source, prompt,
                                         with_timing=True, profile=True)
            if res.status != "correct":
                continue
            assert_conserved(res.profile, res.times,
                             f"{prompt.uid}[{i}]")

    def test_profiling_does_not_perturb_times(self, bench, runner,
                                              exec_model):
        """profile=True yields the same floats as profile=False — the
        instrumentation observes the clocks, it never reorders them."""
        prompt = prompts_for(bench, exec_model)[0]
        variant = variants_for(prompt.problem, prompt.model)[0]
        off = runner.evaluate_sample(variant.source, prompt,
                                     with_timing=True)
        on = runner.evaluate_sample(variant.source, prompt,
                                    with_timing=True, profile=True)
        assert off.status == on.status == "correct"
        assert off.profile is None
        assert off.times == on.times    # exact float equality

    def test_expected_counters_present(self, bench, runner, exec_model):
        key = EXPECTED_COUNTER.get(exec_model)
        if key is None:         # serial: no parallel construct to count
            pytest.skip("no counter expectation for serial")
        prompt = prompts_for(bench, exec_model)[0]
        variant = variants_for(prompt.problem, prompt.model)[0]
        res = runner.evaluate_sample(variant.source, prompt,
                                     with_timing=True, profile=True)
        assert res.status == "correct", (prompt.uid, res.detail)
        assert res.profile.counters.get(key, 0.0) >= 1.0, \
            (prompt.uid, res.profile.counters)


class TestContentionCounters:
    def _first_atomic_counters(self, bench, runner, exec_model):
        for prompt in bench.prompts:
            if prompt.model != exec_model \
                    or prompt.problem.ptype != "histogram":
                continue
            for variant in variants_for(prompt.problem, prompt.model):
                res = runner.evaluate_sample(variant.source, prompt,
                                             with_timing=True, profile=True)
                if res.status != "correct" or res.profile is None:
                    continue
                counters = res.profile.counters
                if counters.get("atomic_ops", 0.0) > 0.0:
                    return counters
        pytest.fail(f"no correct atomic-using {exec_model} histogram "
                    "variant")

    def test_omp_atomic_histogram_surfaces_ops(self, bench, runner):
        """``#pragma omp atomic`` histograms surface the tracer's op
        count (targets stay 0 there — the pragma path prices array
        updates as fully contended, see ``_atomic_extra``)."""
        counters = self._first_atomic_counters(bench, runner, "openmp")
        assert counters["atomic_ops"] >= 1.0
        assert "atomic_targets" in counters

    def test_gpu_atomic_builtin_reports_distinct_targets(self, bench,
                                                         runner):
        """``atomic_add`` histograms record distinct bins, so the
        profile exposes both halves of Tracer.contention_stats."""
        counters = self._first_atomic_counters(bench, runner, "cuda")
        assert counters["atomic_targets"] >= 1.0
        assert counters["atomic_ops"] >= counters["atomic_targets"]
