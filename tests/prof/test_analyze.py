"""Unit tests for the scaling-diagnosis layer: Karp–Flatt fractions,
bottleneck verdicts, lost-cycles aggregation, and the cost-tree renderer."""

import pytest

from repro.prof import (
    CATEGORIES,
    Profile,
    bottleneck,
    classify_bottleneck,
    karp_flatt,
    lost_cycles_by_n,
    overhead_growth,
    profile_of,
    render_cost_tree,
    serial_fraction,
)


def amdahl_times(f, t1=1.0, ns=(1, 2, 4, 8, 16, 32)):
    """Ideal Amdahl curve with serial fraction ``f``."""
    return {n: t1 * (f + (1.0 - f) / n) for n in ns}


class TestKarpFlatt:
    def test_recovers_amdahl_serial_fraction(self):
        fractions = karp_flatt(amdahl_times(0.08))
        assert fractions, "expected one fraction per n > 1"
        for n, e in fractions.items():
            assert e == pytest.approx(0.08, abs=1e-12), n

    def test_perfect_scaling_is_zero(self):
        for e in karp_flatt(amdahl_times(0.0)).values():
            assert e == pytest.approx(0.0, abs=1e-12)

    def test_degenerate_inputs(self):
        assert karp_flatt({}) == {}
        assert karp_flatt({1: 1.0}) == {}
        assert karp_flatt({1: 0.0, 2: 1.0}) == {}

    def test_base_need_not_be_one(self):
        fractions = karp_flatt({4: 1.0, 16: 0.25})
        assert list(fractions) == [16]
        assert fractions[16] == pytest.approx(0.0, abs=1e-12)

    def test_serial_fraction_reports_largest_n(self):
        assert serial_fraction(amdahl_times(0.05)) == \
            pytest.approx(0.05, abs=1e-12)
        assert serial_fraction({1: 1.0}) is None

    def test_overhead_growth_flags_non_amdahl_decay(self):
        assert overhead_growth(amdahl_times(0.1)) == \
            pytest.approx(0.0, abs=1e-12)
        # linear per-processor overhead: e grows with n
        times = {n: 1.0 / n + 0.004 * n for n in (1, 2, 4, 8, 16, 32)}
        growth = overhead_growth(times)
        assert growth is not None and growth > 0.02
        assert overhead_growth({1: 1.0, 2: 0.5}) is None


class TestClassify:
    def test_compute_bound_below_threshold(self):
        assert classify_bottleneck({"compute": 0.9, "memory": 0.1}) == \
            "compute-bound"

    def test_each_group_wins_when_dominant(self):
        expected = {
            "message": "comm-bound",
            "collective": "comm-bound",
            "memory": "memory-bandwidth-bound",
            "fork_join": "overhead-bound",
            "kernel_launch": "overhead-bound",
            "atomic": "contention-bound",
            "critical": "contention-bound",
            "imbalance": "load-imbalanced",
            "idle": "load-imbalanced",
        }
        for category, verdict in expected.items():
            cats = {"compute": 0.5, category: 0.5}
            assert classify_bottleneck(cats) == verdict, category

    def test_empty_and_zero_are_compute_bound(self):
        assert classify_bottleneck({}) == "compute-bound"
        assert classify_bottleneck({"compute": 0.0}) == "compute-bound"

    def test_bottleneck_uses_largest_n(self):
        p = Profile(model="openmp", categories={
            1: {"compute": 1.0},
            32: {"compute": 0.2, "fork_join": 0.8},
        })
        assert bottleneck(p) == "overhead-bound"
        assert bottleneck(Profile(model="serial")) == "compute-bound"


class _Sample:
    def __init__(self, status="correct", profile=None):
        self.status = status
        self.profile = profile


class TestLostCycles:
    def _profile_dict(self, lost_share):
        return Profile(model="openmp", categories={
            32: {"compute": 1.0 - lost_share, "fork_join": lost_share},
        }).to_dict()

    def test_profile_of_accepts_dict_object_and_none(self):
        p = Profile(model="x", categories={1: {"compute": 1.0}})
        assert profile_of(_Sample(profile=p)) is p
        assert profile_of(_Sample(profile=p.to_dict())) == p
        assert profile_of(_Sample(profile=None)) is None

    def test_means_shares_over_correct_samples_only(self):
        samples = [
            _Sample(profile=self._profile_dict(0.2)),
            _Sample(profile=self._profile_dict(0.4)),
            _Sample(status="wrong_answer", profile=self._profile_dict(0.9)),
            _Sample(),                      # correct but unprofiled
        ]
        shares = lost_cycles_by_n(samples)
        assert list(shares) == [32]
        assert shares[32]["fork_join"] == pytest.approx(0.3)
        assert shares[32]["compute"] == pytest.approx(0.7)


class TestRenderCostTree:
    def test_tree_shape_and_verdicts(self):
        p = Profile(model="openmp", categories={
            1: {"compute": 1.0},
            32: {"compute": 0.2, "memory": 0.6, "fork_join": 0.2},
        })
        times = {1: 1.0, 32: 1.0}
        text = render_cost_tree(p, times)
        assert "n=1" in text and "n=32" in text
        assert "[compute-bound]" in text
        assert "[memory-bandwidth-bound]" in text
        assert "memory" in text and "fork_join" in text
        assert "Karp–Flatt" in text

    def test_no_times_still_renders(self):
        p = Profile(model="serial", categories={1: {"compute": 2.0}})
        text = render_cost_tree(p)
        assert "n=1" in text and "Karp–Flatt" not in text
